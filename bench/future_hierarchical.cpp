// §6 future work: "it would be interesting to evaluate our algorithm on a
// hierarchical physical topology such as Clouds. Indeed, the lack of global
// lock of our algorithm would avoid useless communication between two
// distant geographic sites."
//
// Two clusters of 16 sites; intra-cluster latency 0.6 ms (the paper's γ),
// inter-cluster latency swept 2..50 ms. The control-token algorithms must
// shuttle the global lock across the WAN on every request, conflicting or
// not; LASS pays the WAN price only for genuinely cross-cluster conflicts.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Future work (§6): two-cluster Cloud topology, phi=4, "
               "high load, N=32 (2 x 16), M=80, local gamma=0.6 ms.\n";

  const std::vector<double> wan_ms = {0.6, 2.0, 5.0, 10.0, 25.0, 50.0};
  const std::vector<algo::Algorithm> series = {
      algo::Algorithm::kBouabdallahLaforest,
      algo::Algorithm::kLassWithoutLoan,
      algo::Algorithm::kLassWithLoan,
  };

  std::vector<experiment::ExperimentConfig> configs;
  for (double wan : wan_ms) {
    for (auto alg : series) {
      auto cfg = paper_config(alg, /*phi=*/4, /*rho=*/0.5, opts);
      cfg.system.hierarchical_clusters = 2;
      cfg.system.hierarchical_remote_latency = sim::from_ms(wan);
      configs.push_back(cfg);
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table table({"WAN latency (ms)", "BL wait (ms)", "no-loan wait (ms)",
               "loan wait (ms)", "BL/LASS", "use BL/loan (%)"});
  std::size_t idx = 0;
  for (double wan : wan_ms) {
    const auto& bl = results[idx++];
    const auto& noloan = results[idx++];
    const auto& loan = results[idx++];
    table.add_row(
        {Table::fmt(wan, 1), Table::fmt(bl.waiting_mean_ms, 1),
         Table::fmt(noloan.waiting_mean_ms, 1),
         Table::fmt(loan.waiting_mean_ms, 1),
         Table::fmt(loan.waiting_mean_ms > 0
                        ? bl.waiting_mean_ms / loan.waiting_mean_ms
                        : 0.0,
                    2) +
             "x",
         Table::fmt(bl.use_rate * 100, 1) + " / " +
             Table::fmt(loan.use_rate * 100, 1)});
  }
  emit(table, opts, "future_hierarchical.csv");
  std::cout << "\nExpectation (the paper's conjecture): the BL/LASS gap "
               "widens as the WAN latency grows — the global lock crosses "
               "the WAN for every request.\n";
  return 0;
}
