// Design ablation: the §4.6 optimizations (single-resource shortcut and
// early forwarding stop), measured through message counts and waiting time
// at a small (phi=4) and the largest (phi=80) request size.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Ablation: §4.6 optimizations, high load (rho=0.5).\n";

  struct Variant {
    const char* name;
    bool single_res;
    bool stop_forwarding;
  };
  const std::vector<Variant> variants = {
      {"none", false, false},
      {"single-res only", true, false},
      {"stop-forward only", false, true},
      {"both (default)", true, true},
  };
  const std::vector<int> phis = {4, 80};

  std::vector<experiment::ExperimentConfig> configs;
  for (int phi : phis) {
    for (const auto& v : variants) {
      auto cfg =
          paper_config(algo::Algorithm::kLassWithLoan, phi, /*rho=*/0.5, opts);
      cfg.system.opt_single_resource = v.single_res;
      cfg.system.opt_stop_forwarding = v.stop_forwarding;
      configs.push_back(cfg);
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table table({"phi", "optimizations", "msgs/CS", "use rate (%)",
               "mean wait (ms)"});
  std::size_t idx = 0;
  for (int phi : phis) {
    for (const auto& v : variants) {
      const auto& r = results[idx++];
      table.add_row({std::to_string(phi), v.name,
                     Table::fmt(r.messages_per_cs, 1),
                     Table::fmt(r.use_rate * 100.0, 1),
                     Table::fmt(r.waiting_mean_ms, 1)});
    }
  }
  emit(table, opts, "ablation_optimizations.csv");
  std::cout << "\nExpectation: both optimizations reduce msgs/CS without "
               "hurting use rate; single-res matters most at phi=4.\n";
  return 0;
}
