// Figure 5 (a, b): resource-use rate vs maximum request size φ, for medium
// (ρ = 5) and high (ρ = 0.5) load, N = 32, M = 80. Five series: Incremental,
// Bouabdallah-Laforest, LASS without loan, LASS with loan, shared memory.
// Also prints the §5.2 claim row: LASS/BL use-rate ratio per φ.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::ExperimentConfig;
using experiment::ExperimentResult;
using experiment::fmt_estimate;
using experiment::Table;

namespace {

const std::vector<int> kPhis = {1, 2, 4, 8, 12, 16, 20, 28, 40, 56, 80};

const std::vector<algo::Algorithm> kSeries = {
    algo::Algorithm::kIncremental,
    algo::Algorithm::kBouabdallahLaforest,
    algo::Algorithm::kLassWithoutLoan,
    algo::Algorithm::kLassWithLoan,
    algo::Algorithm::kCentralSharedMemory,
};

void run_load(const char* label, double rho, const BenchOptions& opts,
              const std::string& csv,
              std::vector<experiment::LabeledResult>& all_results) {
  std::vector<ExperimentConfig> configs;
  for (int phi : kPhis) {
    for (algo::Algorithm alg : kSeries) {
      configs.push_back(paper_config(alg, phi, rho, opts));
    }
  }
  const auto results =
      run_sweep_with_progress(configs, opts, std::string("fig5-") + label);
  for (const auto& r : results) {
    all_results.push_back(experiment::LabeledResult{label, r});
  }

  std::cout << "\n=== Figure 5 — resource use rate (%), " << label
            << " load (rho=" << rho << ", N=32, M=80) ===\n";
  Table table({"phi", "Incremental", "Bouabdallah-Laforest", "Without loan",
               "With loan", "in shared memory", "best-LASS / BL"});
  std::size_t idx = 0;
  for (int phi : kPhis) {
    std::vector<double> rates;
    for (std::size_t s = 0; s < kSeries.size(); ++s) {
      rates.push_back(results[idx++].use_rate * 100.0);
    }
    const double best_lass = std::max(rates[2], rates[3]);
    const double ratio = rates[1] > 0.0 ? best_lass / rates[1] : 0.0;
    table.add_row({std::to_string(phi), Table::fmt(rates[0], 1),
                   Table::fmt(rates[1], 1), Table::fmt(rates[2], 1),
                   Table::fmt(rates[3], 1), Table::fmt(rates[4], 1),
                   Table::fmt(ratio, 2) + "x"});
  }
  emit(table, opts, csv);
}

/// Replicated flavor (--reps N >= 2): every cell becomes mean ± 95% CI over
/// independent seed substreams; the ratio column compares the means.
void run_load_replicated(
    const char* label, double rho, const BenchOptions& opts,
    const std::string& csv,
    std::vector<experiment::LabeledReplicatedResult>& all_results) {
  std::vector<experiment::ReplicatedConfig> configs;
  for (int phi : kPhis) {
    for (algo::Algorithm alg : kSeries) {
      configs.push_back(experiment::ReplicatedConfig{
          paper_config(alg, phi, rho, opts), opts.reps});
    }
  }
  const auto results = run_replicated_sweep_with_progress(
      configs, opts, std::string("fig5-") + label);
  for (const auto& r : results) {
    all_results.push_back(experiment::LabeledReplicatedResult{label, r});
  }

  std::cout << "\n=== Figure 5 — resource use rate (%) ± 95% CI, " << label
            << " load (rho=" << rho << ", N=32, M=80, reps=" << opts.reps
            << ") ===\n";
  Table table({"phi", "Incremental", "Bouabdallah-Laforest", "Without loan",
               "With loan", "in shared memory", "best-LASS / BL"});
  std::size_t idx = 0;
  for (int phi : kPhis) {
    std::vector<metrics::Estimate> rates;
    for (std::size_t s = 0; s < kSeries.size(); ++s) {
      metrics::Estimate e = results[idx++].use_rate;
      e.mean *= 100.0;
      e.ci95_half *= 100.0;
      rates.push_back(e);
    }
    const double best_lass = std::max(rates[2].mean, rates[3].mean);
    const double ratio = rates[1].mean > 0.0 ? best_lass / rates[1].mean : 0.0;
    table.add_row({std::to_string(phi), fmt_estimate(rates[0], 1),
                   fmt_estimate(rates[1], 1), fmt_estimate(rates[2], 1),
                   fmt_estimate(rates[3], 1), fmt_estimate(rates[4], 1),
                   Table::fmt(ratio, 2) + "x"});
  }
  emit(table, opts, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv, /*supports_json=*/true);
  std::cout << "Reproduces paper Figure 5: impact of request size over "
               "resource use rate.\n";
  if (opts.reps > 1) {
    std::vector<experiment::LabeledReplicatedResult> all_results;
    run_load_replicated("medium", 5.0, opts, "fig5a_medium_load.csv",
                        all_results);
    run_load_replicated("high", 0.5, opts, "fig5b_high_load.csv", all_results);
    emit_json("fig5_use_rate", all_results, opts);
  } else {
    std::vector<experiment::LabeledResult> all_results;
    run_load("medium", 5.0, opts, "fig5a_medium_load.csv", all_results);
    run_load("high", 0.5, opts, "fig5b_high_load.csv", all_results);
    emit_json("fig5_use_rate", all_results, opts);
  }
  std::cout << "\nPaper claims to check: LASS curves track the shared-memory "
               "shape;\nuse-rate gain over BL grows as phi shrinks (paper: "
               "0.4x-20x);\nloan helps most for medium request sizes at high "
               "load.\n";
  return 0;
}
