// Interpretation ablation: the Bouabdallah-Laforest control token can be
// released right after registration (the literal reading of the 2000 paper)
// or held until the requester gathered every resource token (the global-lock
// behaviour the evaluated system exhibits — see DESIGN.md). This bench
// quantifies the difference so the choice is transparent.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Ablation: BL control-token discipline (N=32, M=80).\n";

  const std::vector<int> phis = {1, 4, 16, 80};
  const std::vector<std::pair<const char*, double>> loads = {{"medium", 5.0},
                                                             {"high", 0.5}};

  std::vector<experiment::ExperimentConfig> configs;
  for (const auto& [label, rho] : loads) {
    for (int phi : phis) {
      for (bool early : {false, true}) {
        auto cfg = paper_config(algo::Algorithm::kBouabdallahLaforest, phi,
                                rho, opts);
        cfg.system.bl_release_control_token_early = early;
        configs.push_back(cfg);
      }
      // LASS reference for the same point.
      configs.push_back(
          paper_config(algo::Algorithm::kLassWithLoan, phi, rho, opts));
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table table({"load", "phi", "BL (CT held)", "BL (CT early)",
               "LASS with loan", "use held/early/lass (%)"});
  std::size_t idx = 0;
  for (const auto& [label, rho] : loads) {
    for (int phi : phis) {
      const auto& held = results[idx++];
      const auto& early = results[idx++];
      const auto& lass = results[idx++];
      table.add_row(
          {label, std::to_string(phi),
           Table::fmt(held.waiting_mean_ms, 1) + " ms",
           Table::fmt(early.waiting_mean_ms, 1) + " ms",
           Table::fmt(lass.waiting_mean_ms, 1) + " ms",
           Table::fmt(held.use_rate * 100, 1) + " / " +
               Table::fmt(early.use_rate * 100, 1) + " / " +
               Table::fmt(lass.use_rate * 100, 1)});
    }
  }
  emit(table, opts, "ablation_bl_variant.csv");
  std::cout << "\nThe held variant reproduces the paper's global-lock "
               "behaviour; the early variant shows how much of BL's deficit "
               "is the lock discipline rather than the static schedule.\n";
  return 0;
}
