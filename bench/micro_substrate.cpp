// google-benchmark micro-benchmarks of the substrate: event queue, network
// delivery, request-queue operations, resource-set algebra. These guard the
// simulator's own performance (a slow substrate would silently cap the
// experiment sizes the figure benches can afford).
#include <benchmark/benchmark.h>

#include "algo/lass/token.hpp"
#include "core/resource_set.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mra;

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<sim::SimTime>(rng.uniform_int(0, 1'000'000)),
                 []() {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(1 << 10)->Arg(1 << 14);

void BM_SimulatorSelfPost(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 10'000;
    std::function<void()> tick = [&]() {
      if (--remaining > 0) sim.schedule_in(10, tick);
    };
    sim.schedule_in(0, tick);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(10'000 * state.iterations());
}
BENCHMARK(BM_SimulatorSelfPost);

struct PingMsg final : net::Message {
  [[nodiscard]] std::string_view kind() const override { return "Ping"; }
};

class PingNode final : public net::Node {
 public:
  int received = 0;
  void on_message(SiteId from, const net::Message& /*msg*/) override {
    ++received;
    if (received < 10'000) {
      network_->send(id(), from, std::make_unique<PingMsg>());
    }
  }
};

void BM_NetworkPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim, net::make_fixed_latency(sim::microseconds(600)), 1);
    PingNode a;
    PingNode b;
    net.add_node(a);
    net.add_node(b);
    net.start();
    net.send(0, 1, std::make_unique<PingMsg>());
    sim.run();
    benchmark::DoNotOptimize(b.received);
  }
  state.SetItemsProcessed(10'000 * state.iterations());
}
BENCHMARK(BM_NetworkPingPong);

void BM_SortedRequestQueueInsert(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  sim::Rng rng(3);
  for (auto _ : state) {
    algo::lass::SortedRequestQueue q;
    for (int i = 0; i < n; ++i) {
      algo::lass::ReqItem item;
      item.type = algo::lass::ReqType::kRes;
      item.r = 0;
      item.sinit = static_cast<SiteId>(i);
      item.id = 1;
      item.mark = rng.next_double() * 100.0;
      q.insert(item);
    }
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SortedRequestQueueInsert)->Arg(32)->Arg(256);

void BM_ResourceSetOps(benchmark::State& state) {
  ResourceSet a(1024);
  ResourceSet b(1024);
  sim::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    a.insert(static_cast<ResourceId>(rng.uniform_int(0, 1023)));
    b.insert(static_cast<ResourceId>(rng.uniform_int(0, 1023)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subset_of(b));
    benchmark::DoNotOptimize(a.intersects(b));
    benchmark::DoNotOptimize(a.set_difference(b).size());
  }
}
BENCHMARK(BM_ResourceSetOps);

}  // namespace
