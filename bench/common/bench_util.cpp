#include "common/bench_util.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/cli.hpp"
#include "obs/heartbeat.hpp"

namespace mra::bench {

using cli::flag_value;

BenchOptions parse_options(int argc, char** argv, bool supports_json) {
  BenchOptions opts;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (flag_value(argc, argv, i, "--seed", v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(argc, argv, i, "--threads", v)) {
      opts.threads = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag_value(argc, argv, i, "--reps", v)) {
      opts.reps = static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
      if (opts.reps == 0) {
        std::cerr << "--reps must be >= 1\n";
        std::exit(2);
      }
    } else if (arg == "--ci") {
      opts.ci = true;
    } else if (flag_value(argc, argv, i, "--csv", v)) {
      opts.csv_path = v;
    } else if (flag_value(argc, argv, i, "--progress", v)) {
      opts.progress_path = v;
    } else if (flag_value(argc, argv, i, "--json", v)) {
      if (!supports_json) {
        // A requested artifact must fail fast, not be silently dropped.
        std::cerr << "--json is not supported by this bench (fig5_use_rate, "
                     "fig6_waiting_phi4, micro_engine and mra_scenarios emit "
                     "JSON)\n";
        std::exit(2);
      }
      opts.json_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --quick --seed=S --threads=T --reps=N --ci "
                   "--csv=PATH --progress=PATH"
                << (supports_json ? " --json=PATH" : "") << "\n";
      std::exit(0);
    } else {
      // A mistyped flag must not silently drop an output artifact either.
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opts.ci && opts.reps < 2) {
    // A requested error bar must fail fast, not degrade to a point estimate.
    std::cerr << "--ci needs --reps >= 2 (confidence intervals require "
                 "independent replications)\n";
    std::exit(2);
  }
  return opts;
}

experiment::ExperimentConfig paper_config(algo::Algorithm algorithm, int phi,
                                          double rho,
                                          const BenchOptions& options) {
  experiment::ExperimentConfig cfg;
  cfg.system.algorithm = algorithm;
  cfg.system.num_sites = 32;
  cfg.system.num_resources = 80;
  cfg.system.seed = options.seed;
  cfg.system.network_latency = sim::from_ms(0.6);
  cfg.workload = workload::medium_load(phi, 80);
  cfg.workload.rho = rho;
  cfg.warmup = options.warmup();
  cfg.measure = options.measure();
  return cfg;
}

namespace {

// Heartbeat over done/failed/total counters; null when no --progress was
// given.
std::unique_ptr<obs::Heartbeat> sweep_heartbeat(
    const BenchOptions& options, const std::string& phase,
    const std::atomic<std::uint64_t>& done,
    const std::atomic<std::uint64_t>& failed, std::uint64_t total) {
  if (options.progress_path.empty()) return nullptr;
  obs::Heartbeat::Options hb;
  hb.phase = phase;
  hb.progress_path = options.progress_path;
  return std::make_unique<obs::Heartbeat>(hb, [&done, &failed, total] {
    obs::ProgressSnapshot s;
    s.jobs_done = done.load(std::memory_order_relaxed);
    s.jobs_failed = failed.load(std::memory_order_relaxed);
    s.jobs_total = total;
    return s;
  });
}

}  // namespace

std::vector<experiment::ExperimentResult> run_sweep_with_progress(
    const std::vector<experiment::ExperimentConfig>& configs,
    const BenchOptions& options, const std::string& phase) {
  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  const auto heartbeat =
      sweep_heartbeat(options, phase, jobs_done, jobs_failed, configs.size());
  return experiment::run_sweep(configs, options.threads, &jobs_done,
                               &jobs_failed);
}

std::vector<experiment::ReplicatedResult> run_replicated_sweep_with_progress(
    const std::vector<experiment::ReplicatedConfig>& configs,
    const BenchOptions& options, const std::string& phase) {
  std::uint64_t total = 0;
  for (const auto& cfg : configs) total += cfg.replications;
  std::atomic<std::uint64_t> reps_done{0};
  std::atomic<std::uint64_t> reps_failed{0};
  const auto heartbeat =
      sweep_heartbeat(options, phase, reps_done, reps_failed, total);
  return experiment::run_replicated_sweep(configs, options.threads, &reps_done,
                                          &reps_failed);
}

void emit(const experiment::Table& table, const BenchOptions& options,
          const std::string& default_csv_name) {
  table.print(std::cout);
  const std::string path =
      options.csv_path.empty() ? default_csv_name : options.csv_path;
  if (!path.empty()) {
    table.write_csv(path);
    std::cout << "(csv: " << path << ")\n";
  }
}

void emit_json(const std::string& bench_name,
               const std::vector<experiment::LabeledResult>& results,
               const BenchOptions& options) {
  if (options.json_path.empty()) return;
  experiment::write_results_json_file(options.json_path, bench_name, results);
  std::cout << "(json: " << options.json_path << ")\n";
}

void emit_json(
    const std::string& bench_name,
    const std::vector<experiment::LabeledReplicatedResult>& results,
    const BenchOptions& options) {
  if (options.json_path.empty()) return;
  experiment::write_replicated_json_file(options.json_path, bench_name,
                                         results);
  std::cout << "(json: " << options.json_path << ")\n";
}

}  // namespace mra::bench
