#include "common/bench_util.hpp"

#include <cstdlib>
#include <cstring>

namespace mra::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--csv=", 0) == 0) {
      opts.csv_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --quick --seed=S --csv=PATH\n";
      std::exit(0);
    }
  }
  return opts;
}

experiment::ExperimentConfig paper_config(algo::Algorithm algorithm, int phi,
                                          double rho,
                                          const BenchOptions& options) {
  experiment::ExperimentConfig cfg;
  cfg.system.algorithm = algorithm;
  cfg.system.num_sites = 32;
  cfg.system.num_resources = 80;
  cfg.system.seed = options.seed;
  cfg.system.network_latency = sim::from_ms(0.6);
  cfg.workload = workload::medium_load(phi, 80);
  cfg.workload.rho = rho;
  cfg.warmup = options.warmup();
  cfg.measure = options.measure();
  return cfg;
}

void emit(const experiment::Table& table, const BenchOptions& options,
          const std::string& default_csv_name) {
  table.print(std::cout);
  const std::string path =
      options.csv_path.empty() ? default_csv_name : options.csv_path;
  if (!path.empty()) {
    table.write_csv(path);
    std::cout << "(csv: " << path << ")\n";
  }
}

}  // namespace mra::bench
