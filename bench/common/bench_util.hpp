// Shared helpers for the figure/table bench binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "experiment/sweep.hpp"
#include "experiment/table.hpp"

namespace mra::bench {

/// Scale knobs common to every bench binary, settable from the command line:
///   --quick        shorter measurement window (CI-friendly)
///   --seed=S       base RNG seed
///   --csv=PATH     also write the table as CSV
struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 1;
  std::string csv_path;

  sim::SimDuration warmup() const {
    return quick ? sim::from_ms(500) : sim::from_ms(2000);
  }
  sim::SimDuration measure() const {
    return quick ? sim::from_ms(4000) : sim::from_ms(20000);
  }
};

BenchOptions parse_options(int argc, char** argv);

/// Builds the paper's standard experiment config: N=32, M=80, γ=0.6 ms.
experiment::ExperimentConfig paper_config(algo::Algorithm algorithm, int phi,
                                          double rho,
                                          const BenchOptions& options);

/// Prints the table and optionally writes the CSV next to the binary.
void emit(const experiment::Table& table, const BenchOptions& options,
          const std::string& default_csv_name);

}  // namespace mra::bench
