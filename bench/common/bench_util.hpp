// Shared helpers for the figure/table bench binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "experiment/json.hpp"
#include "experiment/replicate.hpp"
#include "experiment/sweep.hpp"
#include "experiment/table.hpp"

namespace mra::bench {

/// Scale knobs common to every bench binary, settable from the command line:
///   --quick        shorter measurement window (CI-friendly)
///   --seed=S       base RNG seed
///   --threads=T    sweep worker threads (0 = hardware concurrency)
///   --reps=N       independent replications per configuration (default 1);
///                  N >= 2 reports mean ± 95% CI and p50/p95/p99 per series
///   --ci           assert that confidence intervals are being produced
///                  (errors out unless --reps >= 2)
///   --csv=PATH     also write the table as CSV
///   --json=PATH    also write machine-readable results (BENCH_*.json)
///   --progress=P   heartbeat: live sweep progress on stderr plus a JSON
///                  progress file at P, updated every ~2s of wall time
struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  std::size_t reps = 1;
  bool ci = false;
  std::string csv_path;
  std::string json_path;
  std::string progress_path;

  sim::SimDuration warmup() const {
    return quick ? sim::from_ms(500) : sim::from_ms(2000);
  }
  sim::SimDuration measure() const {
    return quick ? sim::from_ms(4000) : sim::from_ms(20000);
  }
};

/// `supports_json` declares whether the calling bench emits JSON: a --json
/// request to a bench that cannot honor it fails fast here (exit 2) instead
/// of silently dropping the artifact.
BenchOptions parse_options(int argc, char** argv, bool supports_json = false);

/// Builds the paper's standard experiment config: N=32, M=80, γ=0.6 ms.
experiment::ExperimentConfig paper_config(algo::Algorithm algorithm, int phi,
                                          double rho,
                                          const BenchOptions& options);

/// experiment::run_sweep with an obs::Heartbeat attached when --progress
/// was given (plain sweep otherwise). `phase` labels the stderr lines and
/// the progress file. The heartbeat only reads a job counter — results are
/// byte-identical with and without it.
[[nodiscard]] std::vector<experiment::ExperimentResult>
run_sweep_with_progress(const std::vector<experiment::ExperimentConfig>& configs,
                        const BenchOptions& options, const std::string& phase);

/// Replicated flavor: the heartbeat counts individual replications (each is
/// one simulation), not merged configs.
[[nodiscard]] std::vector<experiment::ReplicatedResult>
run_replicated_sweep_with_progress(
    const std::vector<experiment::ReplicatedConfig>& configs,
    const BenchOptions& options, const std::string& phase);

/// Prints the table and optionally writes the CSV next to the binary.
void emit(const experiment::Table& table, const BenchOptions& options,
          const std::string& default_csv_name);

/// Writes the labeled results as JSON when --json=PATH was given (no-op
/// otherwise). `bench_name` identifies the producing binary in the file.
void emit_json(const std::string& bench_name,
               const std::vector<experiment::LabeledResult>& results,
               const BenchOptions& options);

/// Replicated-run flavor (rows carry replications, CI half-widths and tail
/// quantiles).
void emit_json(
    const std::string& bench_name,
    const std::vector<experiment::LabeledReplicatedResult>& results,
    const BenchOptions& options);

}  // namespace mra::bench
