// Design ablation: the scheduling-policy function A (§3.3.2) is a parameter
// of the algorithm. Compares the paper's choice (average of non-zero
// counters) against max, sum and min-nonzero under both loads.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Ablation: scheduling function A (phi=16, N=32, M=80).\n";

  const std::vector<MarkPolicy> policies = {
      MarkPolicy::kAverageNonZero, MarkPolicy::kMaxValue,
      MarkPolicy::kSumNonZero, MarkPolicy::kMinNonZero};
  const std::vector<std::pair<const char*, double>> loads = {{"medium", 5.0},
                                                             {"high", 0.5}};

  std::vector<experiment::ExperimentConfig> configs;
  for (const auto& [label, rho] : loads) {
    for (MarkPolicy p : policies) {
      auto cfg =
          paper_config(algo::Algorithm::kLassWithLoan, /*phi=*/16, rho, opts);
      cfg.system.mark_policy = p;
      configs.push_back(cfg);
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table table({"load", "A", "use rate (%)", "mean wait (ms)", "stddev (ms)"});
  std::size_t idx = 0;
  for (const auto& [label, rho] : loads) {
    for (MarkPolicy p : policies) {
      const auto& r = results[idx++];
      table.add_row({label, to_string(p), Table::fmt(r.use_rate * 100.0, 1),
                     Table::fmt(r.waiting_mean_ms, 1),
                     Table::fmt(r.waiting_stddev_ms, 1)});
    }
  }
  emit(table, opts, "ablation_mark_function.csv");
  std::cout << "\nNote: sum penalises large requests, min-nonzero favours "
               "them; the paper's avg-nonzero balances both.\n";
  return 0;
}
