// Figure 6 (a, b): average waiting time (ms) with stddev at φ = 4 for
// Bouabdallah-Laforest, LASS without loan and LASS with loan, under medium
// and high load. The paper reports ≈8x (medium) and ≈11x (high) lower
// waiting for LASS, and ≈20% further gain from the loan at high load.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::fmt_estimate;
using experiment::Table;

namespace {

const std::vector<algo::Algorithm> kSeries = {
    algo::Algorithm::kBouabdallahLaforest,
    algo::Algorithm::kLassWithoutLoan,
    algo::Algorithm::kLassWithLoan,
};

void run_load(const char* label, double rho, const BenchOptions& opts,
              const std::string& csv,
              std::vector<experiment::LabeledResult>& all_results) {
  std::vector<experiment::ExperimentConfig> configs;
  for (algo::Algorithm alg : kSeries) {
    configs.push_back(paper_config(alg, /*phi=*/4, rho, opts));
  }
  const auto results =
      run_sweep_with_progress(configs, opts, std::string("fig6-") + label);
  for (const auto& r : results) {
    all_results.push_back(experiment::LabeledResult{label, r});
  }

  std::cout << "\n=== Figure 6 — average waiting time, phi=4, " << label
            << " load (rho=" << rho << ") ===\n";
  Table table({"algorithm", "mean wait (ms)", "stddev (ms)", "p50", "p95",
               "p99", "completed", "vs BL"});
  const double bl = results[0].waiting_mean_ms;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double factor = r.waiting_mean_ms > 0.0 ? bl / r.waiting_mean_ms : 0.0;
    table.add_row({r.algorithm, Table::fmt(r.waiting_mean_ms, 1),
                   Table::fmt(r.waiting_stddev_ms, 1),
                   Table::fmt(r.waiting_p50_ms, 1),
                   Table::fmt(r.waiting_p95_ms, 1),
                   Table::fmt(r.waiting_p99_ms, 1),
                   std::to_string(r.requests_completed),
                   i == 0 ? "1.00x" : Table::fmt(factor, 2) + "x lower"});
  }
  emit(table, opts, csv);
}

/// Replicated flavor (--reps N >= 2): mean ± 95% CI over independent seed
/// substreams; tail quantiles come from the pooled per-rep samples.
void run_load_replicated(
    const char* label, double rho, const BenchOptions& opts,
    const std::string& csv,
    std::vector<experiment::LabeledReplicatedResult>& all_results) {
  std::vector<experiment::ReplicatedConfig> configs;
  for (algo::Algorithm alg : kSeries) {
    configs.push_back(experiment::ReplicatedConfig{
        paper_config(alg, /*phi=*/4, rho, opts), opts.reps});
  }
  const auto results = run_replicated_sweep_with_progress(
      configs, opts, std::string("fig6-") + label);
  for (const auto& r : results) {
    all_results.push_back(experiment::LabeledReplicatedResult{label, r});
  }

  std::cout << "\n=== Figure 6 — average waiting time ± 95% CI, phi=4, "
            << label << " load (rho=" << rho << ", reps=" << opts.reps
            << ") ===\n";
  Table table({"algorithm", "mean wait (ms)", "stddev (ms)", "p50", "p95",
               "p99", "completed", "vs BL"});
  const double bl = results[0].waiting_mean_ms.mean;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double factor =
        r.waiting_mean_ms.mean > 0.0 ? bl / r.waiting_mean_ms.mean : 0.0;
    table.add_row({r.algorithm, fmt_estimate(r.waiting_mean_ms, 1),
                   Table::fmt(r.waiting_pooled.stddev(), 1),
                   Table::fmt(r.waiting_p50_ms, 1),
                   Table::fmt(r.waiting_p95_ms, 1),
                   Table::fmt(r.waiting_p99_ms, 1),
                   std::to_string(r.requests_completed),
                   i == 0 ? "1.00x" : Table::fmt(factor, 2) + "x lower"});
  }
  emit(table, opts, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv, /*supports_json=*/true);
  std::cout << "Reproduces paper Figure 6: average waiting time (phi=4).\n";
  if (opts.reps > 1) {
    std::vector<experiment::LabeledReplicatedResult> all_results;
    run_load_replicated("medium", 5.0, opts, "fig6a_medium_load.csv",
                        all_results);
    run_load_replicated("high", 0.5, opts, "fig6b_high_load.csv", all_results);
    emit_json("fig6_waiting_phi4", all_results, opts);
  } else {
    std::vector<experiment::LabeledResult> all_results;
    run_load("medium", 5.0, opts, "fig6a_medium_load.csv", all_results);
    run_load("high", 0.5, opts, "fig6b_high_load.csv", all_results);
    emit_json("fig6_waiting_phi4", all_results, opts);
  }
  return 0;
}
