// §6 future work: "it would be interesting to evaluate the impact of this
// threshold on other metrics". Sweeps the loan threshold (0 = loan disabled)
// across request-size regimes under high load and reports use rate, waiting
// time and loan traffic.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Ablation (paper §6 future work): loan threshold sweep, "
               "high load (rho=0.5), N=32, M=80.\n";

  const std::vector<int> thresholds = {0, 1, 2, 4, 8};
  const std::vector<int> phis = {4, 8, 16, 40, 80};

  std::vector<experiment::ExperimentConfig> configs;
  for (int phi : phis) {
    for (int thr : thresholds) {
      auto cfg = paper_config(thr == 0 ? algo::Algorithm::kLassWithoutLoan
                                       : algo::Algorithm::kLassWithLoan,
                              phi, /*rho=*/0.5, opts);
      cfg.system.loan_threshold = thr == 0 ? 1 : thr;
      configs.push_back(cfg);
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table table({"phi", "threshold", "use rate (%)", "mean wait (ms)",
               "loans used", "loans failed"});
  std::size_t idx = 0;
  for (int phi : phis) {
    for (int thr : thresholds) {
      const auto& r = results[idx++];
      table.add_row({std::to_string(phi),
                     thr == 0 ? "off" : std::to_string(thr),
                     Table::fmt(r.use_rate * 100.0, 1),
                     Table::fmt(r.waiting_mean_ms, 1),
                     std::to_string(r.loans_used),
                     std::to_string(r.loans_failed)});
    }
  }
  emit(table, opts, "ablation_loan_threshold.csv");
  std::cout << "\nPaper claim to check: threshold 1 improves use rate for "
               "medium request sizes; gains flatten (or revert) as the "
               "threshold grows.\n";
  return 0;
}
