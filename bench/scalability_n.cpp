// Scalability in the number of sites, in two regimes.
//
// Paper scale (always): N ∈ {8..128} at the paper's M = 80, phi = 4, high
// load — how each algorithm's synchronization cost grows with system size
// (the regime where BL's serialized control token and Maddi's broadcasts
// hurt most). Tables + `scale_<algo>_n<N>` JSON rows.
//
// Memory scale (ROADMAP item 1): single LASS-with-loan runs at large N
// reporting wall-clock, peak RSS and bytes/site into the bench JSON
// (`bigscale_lass-loan_n<N>` rows) — the numbers DESIGN.md §13's flat
// per-site layout exists to bound. N ∈ {1024, 4096} by default (CI-sized);
// `--max-sites=K` appends steps up to K (10^5, 10^6). Per-site load is
// normalized so the *aggregate* offered load stays the paper's N = 32
// point (rho scales with N/32): without that, 10^6 sites each offering
// paper load would queue O(N) conflicting requests on 80 resources — a
// different experiment. These rows measure memory capacity and engine
// wall-clock at scale, not protocol waiting time.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/cli.hpp"
#include "metrics/memory.hpp"
#include "workload/driver.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

namespace {

/// One JSON row; zero-valued fields are skipped by bench_compare, so paper
/// rows gate on use_rate/waiting while bigscale rows gate on memory.
struct ScaleRow {
  std::string label;
  double use_rate = 0.0;
  double waiting_mean_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t requests_completed = 0;
  double wall_ms = 0.0;               ///< informational (machine-dependent)
  double events_per_sec = 0.0;        ///< bigscale rows only
  std::uint64_t rss_peak_kb = 0;      ///< bigscale rows only (VmHWM)
  double bytes_per_site = 0.0;        ///< bigscale rows only (RSS delta / N)
};

std::string algo_slug(algo::Algorithm alg) {
  switch (alg) {
    case algo::Algorithm::kBouabdallahLaforest: return "bl";
    case algo::Algorithm::kLassWithoutLoan: return "lass";
    case algo::Algorithm::kLassWithLoan: return "lass-loan";
    case algo::Algorithm::kCentralSharedMemory: return "central";
    default: return "other";
  }
}

/// Builds an N-site LASS-with-loan system, runs the aggregate-normalized
/// workload for `horizon`, and reports footprint + wall-clock. The RSS
/// delta brackets construction AND the run, so queue growth and arena
/// spill are charged to bytes/site too. `keep` pins measured systems so
/// the allocator cannot recycle their pages into the next build.
ScaleRow run_bigscale(
    int n, const BenchOptions& opts, sim::SimDuration horizon,
    std::vector<std::unique_ptr<algo::AllocationSystem>>& keep) {
  const std::uint64_t before_kb = metrics::read_vm_rss_kb();

  algo::SystemConfig sys;
  sys.algorithm = algo::Algorithm::kLassWithLoan;
  sys.num_sites = n;
  sys.num_resources = 80;
  sys.seed = opts.seed;
  sys.network_latency = sim::from_ms(0.6);
  auto system = algo::AllocationSystem::create(sys);

  const auto wall_start = std::chrono::steady_clock::now();
  system->start();

  workload::WorkloadConfig wl = workload::high_load(/*phi=*/4, /*M=*/80);
  wl.rho *= static_cast<double>(n) / 32.0;  // constant aggregate load
  workload::WorkloadRunner runner(*system, wl,
                                  sys.seed ^ 0x9E3779B97F4A7C15ULL);
  runner.start();
  system->simulator().run(horizon);

  const auto wall_end = std::chrono::steady_clock::now();
  const std::uint64_t after_kb = metrics::read_vm_rss_kb();

  ScaleRow row;
  row.label = "bigscale_lass-loan_n" + std::to_string(n);
  row.events = system->simulator().events_processed();
  row.messages = system->network().total_messages();
  row.requests_completed = runner.collector().completed();
  row.wall_ms = std::chrono::duration<double, std::milli>(wall_end -
                                                          wall_start)
                    .count();
  if (row.wall_ms > 0) {
    row.events_per_sec =
        static_cast<double>(row.events) / (row.wall_ms / 1e3);
  }
  row.rss_peak_kb = metrics::read_vm_peak_kb();
  if (after_kb > before_kb) {
    row.bytes_per_site =
        static_cast<double>(after_kb - before_kb) * 1024.0 / n;
  }
  keep.push_back(std::move(system));
  return row;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << "{\"tool\":\"scalability_n\",\"results\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    if (i != 0) f << ",";
    f << "\n  {\"label\":\"" << r.label << "\""
      << ",\"use_rate\":" << num(r.use_rate)
      << ",\"waiting_mean_ms\":" << num(r.waiting_mean_ms)
      << ",\"events\":" << r.events << ",\"messages\":" << r.messages
      << ",\"requests_completed\":" << r.requests_completed
      << ",\"wall_ms\":" << num(r.wall_ms)
      << ",\"events_per_sec\":" << num(r.events_per_sec)
      << ",\"rss_peak_kb\":" << r.rss_peak_kb
      << ",\"bytes_per_site\":" << num(r.bytes_per_site) << "}";
  }
  f << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --max-sites is this bench's own flag; strip it before the shared parse
  // (parse_options rejects unknown flags).
  int max_sites = 0;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::flag_value(argc, argv, i, "--max-sites", v)) {
      max_sites = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else {
      args.push_back(argv[i]);
    }
  }
  const BenchOptions opts =
      parse_options(static_cast<int>(args.size()), args.data(),
                    /*supports_json=*/true);
  std::cout << "Scalability: N sweep (M=80, phi=4, high load).\n";

  const std::vector<int> ns = {8, 16, 32, 64, 128};
  const std::vector<algo::Algorithm> series = {
      algo::Algorithm::kBouabdallahLaforest,
      algo::Algorithm::kLassWithoutLoan,
      algo::Algorithm::kLassWithLoan,
      algo::Algorithm::kCentralSharedMemory,
  };

  std::vector<experiment::ExperimentConfig> configs;
  for (int n : ns) {
    for (auto alg : series) {
      auto cfg = paper_config(alg, /*phi=*/4, /*rho=*/0.5, opts);
      cfg.system.num_sites = n;
      configs.push_back(cfg);
    }
  }
  const auto results =
      run_sweep_with_progress(configs, opts, "scalability_n");

  std::vector<ScaleRow> rows;
  Table use({"N", "BL use (%)", "no-loan use (%)", "loan use (%)",
             "shm use (%)"});
  Table wait({"N", "BL wait (ms)", "no-loan wait (ms)", "loan wait (ms)",
              "shm wait (ms)", "BL/LASS"});
  std::size_t idx = 0;
  for (int n : ns) {
    const auto& bl = results[idx];
    const auto& noloan = results[idx + 1];
    const auto& loan = results[idx + 2];
    const auto& shm = results[idx + 3];
    for (std::size_t s = 0; s < series.size(); ++s) {
      const auto& res = results[idx + s];
      ScaleRow row;
      row.label =
          "scale_" + algo_slug(series[s]) + "_n" + std::to_string(n);
      row.use_rate = res.use_rate;
      row.waiting_mean_ms = res.waiting_mean_ms;
      row.messages = res.messages;
      row.requests_completed = res.requests_completed;
      rows.push_back(row);
    }
    idx += series.size();
    use.add_row({std::to_string(n), Table::fmt(bl.use_rate * 100, 1),
                 Table::fmt(noloan.use_rate * 100, 1),
                 Table::fmt(loan.use_rate * 100, 1),
                 Table::fmt(shm.use_rate * 100, 1)});
    wait.add_row({std::to_string(n), Table::fmt(bl.waiting_mean_ms, 1),
                  Table::fmt(noloan.waiting_mean_ms, 1),
                  Table::fmt(loan.waiting_mean_ms, 1),
                  Table::fmt(shm.waiting_mean_ms, 1),
                  Table::fmt(loan.waiting_mean_ms > 0
                                 ? bl.waiting_mean_ms / loan.waiting_mean_ms
                                 : 0.0,
                             2) +
                      "x"});
  }
  std::cout << "\n--- resource use rate ---\n";
  emit(use, opts, "scalability_n_use.csv");
  std::cout << "\n--- average waiting time ---\n";
  emit(wait, opts, "scalability_n_wait.csv");
  std::cout << "\nExpectation: the BL/LASS gap widens with N (every extra "
               "site queues behind the single control token).\n";

  // ---- memory-scale rows (ROADMAP item 1) --------------------------------
  std::vector<int> big_ns = {1024, 4096};
  for (int n : {100'000, 1'000'000}) {
    if (max_sites >= n) big_ns.push_back(n);
  }
  const sim::SimDuration horizon =
      opts.quick ? sim::from_ms(200) : sim::from_ms(1000);

  std::cout << "\n--- memory scale (lass-loan, aggregate-normalized load) "
               "---\n";
  std::printf("%-26s %12s %12s %10s %12s %14s\n", "row", "events",
              "completed", "wall_ms", "rss_peak_kb", "bytes/site");
  std::vector<std::unique_ptr<algo::AllocationSystem>> keep;
  for (int n : big_ns) {
    ScaleRow row = run_bigscale(n, opts, horizon, keep);
    std::printf("%-26s %12llu %12llu %10.1f %12llu %14.0f\n",
                row.label.c_str(),
                static_cast<unsigned long long>(row.events),
                static_cast<unsigned long long>(row.requests_completed),
                row.wall_ms, static_cast<unsigned long long>(row.rss_peak_kb),
                row.bytes_per_site);
    rows.push_back(row);
  }

  if (!opts.json_path.empty()) {
    write_json(opts.json_path, rows);
    std::cout << "(json: " << opts.json_path << ")\n";
  }
  return 0;
}
