// Scalability in the number of sites: the paper fixes N = 32; this bench
// sweeps N at the paper's M = 80, phi = 4 to show how each algorithm's
// synchronization cost grows with the system size (the regime where BL's
// serialized control token and Maddi's broadcasts hurt most).
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Scalability: N sweep (M=80, phi=4, high load).\n";

  const std::vector<int> ns = {8, 16, 32, 64, 128};
  const std::vector<algo::Algorithm> series = {
      algo::Algorithm::kBouabdallahLaforest,
      algo::Algorithm::kLassWithoutLoan,
      algo::Algorithm::kLassWithLoan,
      algo::Algorithm::kCentralSharedMemory,
  };

  std::vector<experiment::ExperimentConfig> configs;
  for (int n : ns) {
    for (auto alg : series) {
      auto cfg = paper_config(alg, /*phi=*/4, /*rho=*/0.5, opts);
      cfg.system.num_sites = n;
      configs.push_back(cfg);
    }
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  Table use({"N", "BL use (%)", "no-loan use (%)", "loan use (%)",
             "shm use (%)"});
  Table wait({"N", "BL wait (ms)", "no-loan wait (ms)", "loan wait (ms)",
              "shm wait (ms)", "BL/LASS"});
  std::size_t idx = 0;
  for (int n : ns) {
    const auto& bl = results[idx++];
    const auto& noloan = results[idx++];
    const auto& loan = results[idx++];
    const auto& shm = results[idx++];
    use.add_row({std::to_string(n), Table::fmt(bl.use_rate * 100, 1),
                 Table::fmt(noloan.use_rate * 100, 1),
                 Table::fmt(loan.use_rate * 100, 1),
                 Table::fmt(shm.use_rate * 100, 1)});
    wait.add_row({std::to_string(n), Table::fmt(bl.waiting_mean_ms, 1),
                  Table::fmt(noloan.waiting_mean_ms, 1),
                  Table::fmt(loan.waiting_mean_ms, 1),
                  Table::fmt(shm.waiting_mean_ms, 1),
                  Table::fmt(loan.waiting_mean_ms > 0
                                 ? bl.waiting_mean_ms / loan.waiting_mean_ms
                                 : 0.0,
                             2) +
                      "x"});
  }
  std::cout << "\n--- resource use rate ---\n";
  emit(use, opts, "scalability_n_use.csv");
  std::cout << "\n--- average waiting time ---\n";
  emit(wait, opts, "scalability_n_wait.csv");
  std::cout << "\nExpectation: the BL/LASS gap widens with N (every extra "
               "site queues behind the single control token).\n";
  return 0;
}
