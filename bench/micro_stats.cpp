// Statistics micro-bench: throughput of the metrics primitives the
// replicated-experiment layer leans on — QuantileSketch add/merge/query,
// RunningStats add, Histogram add. Tracked by the CI perf gate next to
// micro_engine (scripts/bench_compare.py diffs its BENCH_micro_stats.json),
// so every workload is deterministic: the `samples` counts never vary across
// machines, only the wall-clock `ops_per_sec` rates do.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "metrics/stats.hpp"
#include "sim/random.hpp"

namespace {

using namespace mra;

/// One row of BENCH_micro_stats.json. `samples` is deterministic (seeded
/// draws, fixed budgets); `wall_ms` and `ops_per_sec` are machine-dependent.
struct StatsResult {
  std::string label;
  std::uint64_t samples = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// The accumulators are observable state (counts/quantiles are read after the
// loop), but percentile query results need an explicit sink so the calls
// cannot be elided.
volatile double g_sink = 0.0;

std::vector<double> draw_samples(std::uint64_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  // Exponential waiting-time-shaped samples spanning several bucket decades.
  for (std::uint64_t i = 0; i < n; ++i) xs.push_back(rng.exponential(5.0));
  return xs;
}

StatsResult run_sketch_add(std::uint64_t budget, std::uint64_t seed) {
  const std::vector<double> xs = draw_samples(budget, seed);
  metrics::QuantileSketch sketch;
  WallTimer timer;
  for (double x : xs) sketch.add(x);
  StatsResult r;
  r.label = "sketch_add";
  r.samples = sketch.count();
  r.wall_ms = timer.elapsed_ms();
  r.ops_per_sec = static_cast<double>(r.samples) / (r.wall_ms / 1e3);
  return r;
}

StatsResult run_sketch_merge(std::uint64_t budget, std::uint64_t seed,
                             std::size_t parts, std::size_t rounds) {
  const std::vector<double> xs = draw_samples(budget, seed);
  std::vector<metrics::QuantileSketch> sketches(parts);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sketches[i % parts].add(xs[i]);
  }
  WallTimer timer;
  std::uint64_t merges = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    metrics::QuantileSketch merged;
    for (const auto& s : sketches) {
      merged.merge(s);
      ++merges;
    }
    g_sink = g_sink + merged.percentile(99);
  }
  StatsResult r;
  r.label = "sketch_merge";
  r.samples = merges;
  r.wall_ms = timer.elapsed_ms();
  r.ops_per_sec = static_cast<double>(merges) / (r.wall_ms / 1e3);
  return r;
}

StatsResult run_sketch_percentile(std::uint64_t budget, std::uint64_t seed,
                                  std::uint64_t queries) {
  const std::vector<double> xs = draw_samples(budget, seed);
  metrics::QuantileSketch sketch;
  for (double x : xs) sketch.add(x);
  static constexpr double kPs[] = {50.0, 90.0, 95.0, 99.0, 99.9};
  WallTimer timer;
  double sink = 0.0;
  for (std::uint64_t q = 0; q < queries; ++q) {
    sink += sketch.percentile(kPs[q % 5]);
  }
  g_sink = g_sink + sink;
  StatsResult r;
  r.label = "sketch_percentile";
  r.samples = queries;
  r.wall_ms = timer.elapsed_ms();
  r.ops_per_sec = static_cast<double>(queries) / (r.wall_ms / 1e3);
  return r;
}

StatsResult run_running_stats_add(std::uint64_t budget, std::uint64_t seed) {
  const std::vector<double> xs = draw_samples(budget, seed);
  metrics::RunningStats stats;
  WallTimer timer;
  for (double x : xs) stats.add(x);
  StatsResult r;
  r.label = "running_stats_add";
  r.samples = stats.count();
  r.wall_ms = timer.elapsed_ms();
  r.ops_per_sec = static_cast<double>(r.samples) / (r.wall_ms / 1e3);
  return r;
}

StatsResult run_histogram_add(std::uint64_t budget, std::uint64_t seed) {
  const std::vector<double> xs = draw_samples(budget, seed);
  metrics::Histogram hist(0.0, 50.0, 256);
  WallTimer timer;
  for (double x : xs) hist.add(x);
  StatsResult r;
  r.label = "histogram_add";
  r.samples = hist.total();
  r.wall_ms = timer.elapsed_ms();
  r.ops_per_sec = static_cast<double>(r.samples) / (r.wall_ms / 1e3);
  return r;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_json(const std::string& path,
                const std::vector<StatsResult>& results) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << "{\"tool\":\"micro_stats\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StatsResult& r = results[i];
    if (i != 0) f << ",";
    f << "\n  {\"label\":\"" << r.label << "\""
      << ",\"samples\":" << r.samples << ",\"wall_ms\":" << num(r.wall_ms)
      << ",\"ops_per_sec\":" << num(r.ops_per_sec) << "}";
  }
  f << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, /*supports_json=*/true);
  const std::uint64_t budget = options.quick ? 200'000 : 2'000'000;
  const std::uint64_t queries = options.quick ? 100'000 : 1'000'000;
  const std::size_t merge_rounds = options.quick ? 100 : 400;

  std::vector<StatsResult> results;
  std::printf("%-20s %12s %10s %14s\n", "workload", "samples", "wall_ms",
              "ops/sec");
  // Best of kReps: machine noise only ever slows a run down, so the fastest
  // repetition is the most faithful throughput estimate (same policy as
  // micro_engine; counts are identical across repetitions).
  constexpr int kReps = 5;
  auto emit = [&results](auto&& run_once) {
    StatsResult best = run_once();
    for (int rep = 1; rep < kReps; ++rep) {
      StatsResult r = run_once();
      if (r.wall_ms < best.wall_ms) best = r;
    }
    std::printf("%-20s %12llu %10.1f %14.0f\n", best.label.c_str(),
                static_cast<unsigned long long>(best.samples), best.wall_ms,
                best.ops_per_sec);
    results.push_back(best);
  };

  emit([&]() { return run_sketch_add(budget, options.seed); });
  emit([&]() {
    return run_sketch_merge(budget, options.seed, /*parts=*/256, merge_rounds);
  });
  emit([&]() { return run_sketch_percentile(budget, options.seed, queries); });
  emit([&]() { return run_running_stats_add(budget, options.seed); });
  emit([&]() { return run_histogram_add(budget, options.seed); });

  if (!options.json_path.empty()) {
    write_json(options.json_path, results);
    std::cout << "(json: " << options.json_path << ")\n";
  }
  return 0;
}
