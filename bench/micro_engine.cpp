// Engine throughput bench: how fast the discrete-event core itself runs,
// independent of any protocol. This is the binary the CI perf gate tracks
// (scripts/bench_compare.py diffs its BENCH_micro_engine.json against the
// previous run of main), so its workloads are deterministic: the event and
// message *counts* never vary across machines, only the wall-clock rates do.
//
// Three workload families, each at N ∈ {64, 512, 4096} sites:
//
//   events_nN    — N self-reposting timers; every tick also schedules a
//                  timeout and cancels the previous one, exercising the
//                  schedule/cancel/pop cycle with deliver-sized captures;
//   messages_nN  — a fixed population of ping messages hopping around a
//                  ring with rotating strides, exercising Network::deliver
//                  (allocation, FIFO watermark, per-kind stats);
//   scenario_*   — three registered scenarios end to end, so the gate also
//                  sees the full protocol stack, not just the substrate.
//
// Plus a memory family, measured before any throughput workload touches the
// heap: memory_nN builds an N-site LASS system and reports its resident
// footprint (bytes/site from the RSS delta, process peak RSS so far) — the
// ROADMAP "million sites" regression tripwire. Gated lower-is-better by
// scripts/bench_compare.py.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "common/bench_util.hpp"
#include "metrics/memory.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mra;

/// One row of BENCH_micro_engine.json. Counts are deterministic; rates and
/// wall_ms are machine-dependent. The gate thresholds only the *_per_sec
/// rates of the long-running engine workloads; the scenario rows run for
/// tens of milliseconds, too short for a stable rate, so their throughput
/// goes out as `messages_per_sec_wall` — informational by naming contract
/// with scripts/bench_compare.py.
struct EngineResult {
  std::string label;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t requests_completed = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double messages_per_sec = 0.0;
  double messages_per_sec_wall = 0.0;  ///< scenario rows only
  std::uint64_t rss_peak_kb = 0;       ///< memory rows only (VmHWM)
  double bytes_per_site = 0.0;         ///< memory rows only (RSS delta / N)
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --------------------------------------------------------------------------
// events_nN: N timers, each tick = 1 pop + 2 schedules + 1 cancel.
// --------------------------------------------------------------------------

struct TimerSite {
  sim::Simulator* sim = nullptr;
  sim::SimDuration period = 0;
  sim::EventId timeout = 0;
  bool has_timeout = false;
  std::uint64_t ticks = 0;
};

void tick(TimerSite* s, std::uint64_t total_budget, std::uint64_t* total) {
  ++s->ticks;
  ++*total;
  // The timeout is almost always cancelled by the next tick — the same
  // pattern as a protocol retransmission timer.
  if (s->has_timeout) s->sim->cancel(s->timeout);
  s->timeout = s->sim->schedule_in(10 * s->period, []() {});
  s->has_timeout = true;
  if (*total + 1 < total_budget) {
    // Capture a deliver-sized payload (pointer + two words), matching what
    // Network::deliver's callbacks carry through the queue.
    const std::uint64_t seq = s->ticks;
    sim::Simulator* sim = s->sim;
    sim->schedule_in(s->period, [s, seq, total_budget, total]() {
      (void)seq;
      tick(s, total_budget, total);
    });
  }
}

EngineResult run_events(int n, std::uint64_t budget, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng(seed);
  std::vector<TimerSite> sites(static_cast<std::size_t>(n));
  std::uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    auto& s = sites[static_cast<std::size_t>(i)];
    s.sim = &sim;
    s.period = sim::microseconds(rng.uniform_int(3, 997));
    sim.schedule_in(s.period, [site = &s, budget, &total]() {
      tick(site, budget, &total);
    });
  }
  WallTimer timer;
  sim.run();
  EngineResult r;
  r.label = "events_n" + std::to_string(n);
  r.events = sim.events_processed();
  r.wall_ms = timer.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms / 1e3);
  return r;
}

// --------------------------------------------------------------------------
// messages_nN: a fixed ping population hopping a ring with rotating strides.
// --------------------------------------------------------------------------

struct PingMsg final : net::Message {
  std::uint64_t hop = 0;
  std::uint64_t salt = 0;
  [[nodiscard]] std::string_view kind() const override { return "Ping"; }
};

class PingSite final : public net::Node {
 public:
  std::uint64_t budget = 0;
  std::uint64_t* sent = nullptr;

  void on_message(SiteId /*from*/, const net::Message& msg) override {
    const auto& ping = static_cast<const PingMsg&>(msg);
    if (*sent >= budget) return;
    ++*sent;
    auto next = std::make_unique<PingMsg>();
    next->hop = ping.hop + 1;
    next->salt = ping.salt;
    // Rotate the stride so traffic spreads over many (src, dst) links
    // instead of hammering one FIFO watermark slot.
    const int n = network()->node_count();
    const auto stride = static_cast<SiteId>(1 + (ping.hop + ping.salt) % 7);
    const auto dst = static_cast<SiteId>((id() + stride) % n);
    network()->send(id(), dst, std::move(next));
  }
};

EngineResult run_messages(int n, std::uint64_t budget, std::uint64_t seed) {
  sim::Simulator sim;
  net::Network net(sim, net::make_fixed_latency(sim::microseconds(600)), seed);
  std::vector<PingSite> sites(static_cast<std::size_t>(n));
  std::uint64_t sent = 0;
  for (auto& s : sites) {
    s.budget = budget;
    s.sent = &sent;
    net.add_node(s);
  }
  net.start();
  const int population = n < 256 ? n : 256;
  WallTimer timer;
  for (int i = 0; i < population; ++i) {
    auto msg = std::make_unique<PingMsg>();
    msg->salt = static_cast<std::uint64_t>(i);
    ++sent;
    net.send(static_cast<SiteId>(i),
             static_cast<SiteId>((i + 1) % n), std::move(msg));
  }
  sim.run();
  EngineResult r;
  r.label = "messages_n" + std::to_string(n);
  r.events = sim.events_processed();
  r.messages = net.total_messages();
  r.wall_ms = timer.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms / 1e3);
  r.messages_per_sec = static_cast<double>(r.messages) / (r.wall_ms / 1e3);
  return r;
}

// --------------------------------------------------------------------------
// memory_nN: resident footprint of a freshly built N-site protocol stack.
// --------------------------------------------------------------------------

// `keep` holds every previously measured system alive: freeing it would let
// the allocator recycle those pages into the next build and silently zero
// the RSS delta. Returns 0 bytes/site when /proc/self/status is unreadable
// (non-Linux) — bench_compare skips zero baselines, so the gate degrades to
// a no-op there instead of failing.
EngineResult run_memory(
    int n, std::uint64_t seed,
    std::vector<std::unique_ptr<algo::AllocationSystem>>& keep) {
  const std::uint64_t before_kb = metrics::read_vm_rss_kb();
  algo::SystemConfig sys;
  sys.algorithm = algo::Algorithm::kLassWithLoan;
  sys.num_sites = n;
  sys.num_resources = 80;
  sys.seed = seed;
  sys.network_latency = sim::from_ms(0.6);
  auto system = algo::AllocationSystem::create(sys);
  system->start();
  const std::uint64_t after_kb = metrics::read_vm_rss_kb();
  keep.push_back(std::move(system));
  EngineResult r;
  r.label = "memory_n" + std::to_string(n);
  r.rss_peak_kb = metrics::read_vm_peak_kb();
  if (after_kb > before_kb) {
    r.bytes_per_site =
        static_cast<double>(after_kb - before_kb) * 1024.0 / n;
  }
  return r;
}

// --------------------------------------------------------------------------
// scenario_*: full stack through three registered scenarios.
// --------------------------------------------------------------------------

EngineResult run_one_scenario(const std::string& name,
                              const bench::BenchOptions& options) {
  scenario::ScenarioSpec spec = scenario::find_scenario(name);
  spec.system.seed = options.seed;
  spec.warmup = options.warmup();
  spec.measure = options.measure();
  WallTimer timer;
  const experiment::ExperimentResult res =
      scenario::run_scenario(spec, spec.system.algorithm);
  EngineResult r;
  r.label = "scenario_" + name;
  r.messages = res.messages;
  r.requests_completed = res.requests_completed;
  r.wall_ms = timer.elapsed_ms();
  r.messages_per_sec_wall =
      static_cast<double>(r.messages) / (r.wall_ms / 1e3);
  return r;
}

// --------------------------------------------------------------------------
// Output
// --------------------------------------------------------------------------

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_json(const std::string& path,
                const std::vector<EngineResult>& results) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << "{\"tool\":\"micro_engine\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    if (i != 0) f << ",";
    f << "\n  {\"label\":\"" << r.label << "\""
      << ",\"events\":" << r.events << ",\"messages\":" << r.messages
      << ",\"requests_completed\":" << r.requests_completed
      << ",\"wall_ms\":" << num(r.wall_ms)
      << ",\"events_per_sec\":" << num(r.events_per_sec)
      << ",\"messages_per_sec\":" << num(r.messages_per_sec)
      << ",\"messages_per_sec_wall\":" << num(r.messages_per_sec_wall)
      << ",\"rss_peak_kb\":" << r.rss_peak_kb
      << ",\"bytes_per_site\":" << num(r.bytes_per_site)
      << "}";
  }
  f << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, /*supports_json=*/true);
  // Per-workload event/message budgets. Deterministic: identical across
  // machines and runs, so bench_compare.py can treat the counts as exact.
  const std::uint64_t budget = options.quick ? 200'000 : 1'000'000;
  const std::vector<int> sizes = {64, 512, 4096};
  const std::vector<std::string> scenarios = {"paper-phi4", "zipf-hot",
                                              "bursty"};

  std::vector<EngineResult> results;

  // Memory rows first, on a pristine heap: the throughput workloads below
  // allocate (and free) enough to both inflate VmHWM and feed the allocator
  // arena, which would corrupt the per-site deltas. Measured once — a
  // repeat on the warmed arena would read ~0. Sizes stop at 1024 because
  // larger N belongs to bench/scalability_n.cpp's bigscale rows (which go
  // to 10^6 under --max-sites); these rows exist to catch per-site
  // regressions at the paper's scale. The flat per-site layout
  // (DESIGN.md §13) keeps bytes/site roughly constant across this range —
  // before it, N=1024 cost ~1.3 MB/site.
  {
    const std::vector<int> memory_sizes = {64, 256, 1024};
    std::vector<std::unique_ptr<algo::AllocationSystem>> keep;
    for (int n : memory_sizes) {
      EngineResult r = run_memory(n, options.seed, keep);
      std::printf("%-22s rss_peak=%llu kB  %.0f bytes/site\n",
                  r.label.c_str(),
                  static_cast<unsigned long long>(r.rss_peak_kb),
                  r.bytes_per_site);
      results.push_back(r);
    }
  }

  std::printf("%-22s %12s %12s %10s %14s %14s\n", "workload", "events",
              "messages", "wall_ms", "events/sec", "messages/sec");
  // Best of kReps: a run can only be slowed by machine noise, never sped
  // up, so the fastest repetition is the most faithful throughput estimate
  // — this is what keeps the CI gate's false-failure rate down (observed
  // single-run swings reach ~15% on busy machines; the minimum of five is
  // comfortably tighter). Counts are identical across repetitions (same
  // seed).
  constexpr int kReps = 5;
  auto emit = [&results](auto&& run_once) {
    EngineResult best = run_once();
    for (int rep = 1; rep < kReps; ++rep) {
      EngineResult r = run_once();
      if (r.wall_ms < best.wall_ms) best = r;
    }
    const double shown_rate = best.messages_per_sec != 0.0
                                  ? best.messages_per_sec
                                  : best.messages_per_sec_wall;
    std::printf("%-22s %12llu %12llu %10.1f %14.0f %14.0f\n",
                best.label.c_str(),
                static_cast<unsigned long long>(best.events),
                static_cast<unsigned long long>(best.messages), best.wall_ms,
                best.events_per_sec, shown_rate);
    results.push_back(best);
  };

  for (int n : sizes) {
    emit([&]() { return run_events(n, budget, options.seed); });
  }
  for (int n : sizes) {
    emit([&]() { return run_messages(n, budget, options.seed); });
  }
  for (const std::string& name : scenarios) {
    emit([&]() { return run_one_scenario(name, options); });
  }

  if (!options.json_path.empty()) {
    write_json(options.json_path, results);
    std::cout << "(json: " << options.json_path << ")\n";
  }
  return 0;
}
