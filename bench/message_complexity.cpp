// Message complexity (§1/§2 discussion): messages per critical section for
// every algorithm, as a function of the system size N and of the request
// size φ. Contrasts tree routing (Naimi-Tréhel / LASS: O(log N)) against the
// broadcast baseline (Maddi: O(N)) and the control-token serialization of
// Bouabdallah-Laforest.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

namespace {

const std::vector<algo::Algorithm> kSeries = {
    algo::Algorithm::kIncremental, algo::Algorithm::kBouabdallahLaforest,
    algo::Algorithm::kLassWithoutLoan, algo::Algorithm::kLassWithLoan,
    algo::Algorithm::kMaddi,
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Messages per critical section (medium load).\n";

  // Sweep N at fixed phi.
  {
    const std::vector<int> ns = {8, 16, 32, 64};
    std::vector<experiment::ExperimentConfig> configs;
    for (int n : ns) {
      for (algo::Algorithm alg : kSeries) {
        auto cfg = paper_config(alg, /*phi=*/4, /*rho=*/5.0, opts);
        cfg.system.num_sites = n;
        configs.push_back(cfg);
      }
    }
    const auto results = experiment::run_sweep(configs, opts.threads);
    std::cout << "\n--- vs system size N (phi=4, M=80) ---\n";
    std::vector<std::string> header = {"N"};
    for (algo::Algorithm a : kSeries) header.emplace_back(algo::to_string(a));
    Table table(header);
    std::size_t idx = 0;
    for (int n : ns) {
      std::vector<std::string> row = {std::to_string(n)};
      for (std::size_t s = 0; s < kSeries.size(); ++s) {
        row.push_back(Table::fmt(results[idx++].messages_per_cs, 1));
      }
      table.add_row(row);
    }
    emit(table, opts, "message_complexity_vs_n.csv");
  }

  // Sweep phi at fixed N.
  {
    const std::vector<int> phis = {1, 4, 16, 40, 80};
    std::vector<experiment::ExperimentConfig> configs;
    for (int phi : phis) {
      for (algo::Algorithm alg : kSeries) {
        configs.push_back(paper_config(alg, phi, /*rho=*/5.0, opts));
      }
    }
    const auto results = experiment::run_sweep(configs, opts.threads);
    std::cout << "\n--- vs request size phi (N=32, M=80) ---\n";
    std::vector<std::string> header = {"phi"};
    for (algo::Algorithm a : kSeries) header.emplace_back(algo::to_string(a));
    Table table(header);
    std::size_t idx = 0;
    for (int phi : phis) {
      std::vector<std::string> row = {std::to_string(phi)};
      for (std::size_t s = 0; s < kSeries.size(); ++s) {
        row.push_back(Table::fmt(results[idx++].messages_per_cs, 1));
      }
      table.add_row(row);
    }
    emit(table, opts, "message_complexity_vs_phi.csv");
  }

  std::cout << "\nExpectation: Maddi grows linearly with N; LASS and BL stay "
               "flat-ish (tree routing); Incremental grows with phi (one "
               "lock round per resource).\n";
  return 0;
}
