// Figures 1 and 4: Gantt illustrations. Runs the same small scenario
// (5 resources, 6 sites) under Bouabdallah-Laforest (global lock, static
// schedule), LASS without loan (no global lock) and LASS with loan (dynamic
// schedule) and renders the resource lanes; the busy fraction printed under
// each diagram is the paper's "coloured area" use-rate reading.
#include <iostream>

#include "common/bench_util.hpp"
#include "experiment/gantt.hpp"

using namespace mra;
using namespace mra::bench;

namespace {

void run_one(algo::Algorithm alg, const BenchOptions& opts) {
  experiment::ExperimentConfig cfg;
  cfg.system.algorithm = alg;
  cfg.system.num_sites = 6;
  cfg.system.num_resources = 5;
  cfg.system.seed = opts.seed;
  cfg.workload = workload::high_load(/*phi=*/3, /*num_resources=*/5);
  cfg.workload.alpha_min = sim::from_ms(8.0);
  cfg.workload.alpha_max = sim::from_ms(20.0);
  cfg.warmup = sim::from_ms(100);
  cfg.measure = sim::from_ms(300);
  cfg.keep_records = true;

  const auto result = experiment::run_experiment(cfg);

  experiment::GanttOptions gopt;
  gopt.columns = 100;
  gopt.start = cfg.warmup;
  gopt.end = cfg.warmup + cfg.measure;

  std::cout << "\n--- " << result.algorithm << " ---\n";
  experiment::render_gantt(std::cout, result.records, 5, gopt);
  std::cout << "busy fraction: "
            << experiment::Table::fmt(
                   experiment::gantt_busy_fraction(result.records, 5, gopt) *
                       100.0,
                   1)
            << "%   (avg wait "
            << experiment::Table::fmt(result.waiting_mean_ms, 1) << " ms, "
            << result.requests_completed << " CS completed)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Reproduces paper Figures 1/4: Gantt view of 5 resources.\n"
            << "Digits mark the site using the resource; '.' is idle time.\n"
            << "Expected ordering of busy fraction: BL < without loan <= "
               "with loan.\n";
  run_one(algo::Algorithm::kBouabdallahLaforest, opts);
  run_one(algo::Algorithm::kLassWithoutLoan, opts);
  run_one(algo::Algorithm::kLassWithLoan, opts);
  return 0;
}
