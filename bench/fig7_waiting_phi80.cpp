// Figure 7 (a, b): average waiting time by request size at φ = 80 (six size
// buckets — the paper plots bars for sizes 1, 17, 33, 49, 65, 80) for
// Bouabdallah-Laforest and both LASS variants, medium and high load.
// Claims to check: BL's waiting barely depends on size; LASS penalises small
// requests (the counter of a hot resource races ahead), and wins overall.
#include <iostream>

#include "common/bench_util.hpp"

using namespace mra;
using namespace mra::bench;
using experiment::Table;

namespace {

const std::vector<algo::Algorithm> kSeries = {
    algo::Algorithm::kBouabdallahLaforest,
    algo::Algorithm::kLassWithoutLoan,
    algo::Algorithm::kLassWithLoan,
};

// Bucket labels as in the paper's legend (φ=80, 6 buckets of ~13.3 each).
const std::vector<std::string> kBucketLabels = {
    "size 1-13", "size 14-27", "size 28-40", "size 41-53", "size 54-67",
    "size 68-80"};

void run_load(const char* label, double rho, const BenchOptions& opts,
              const std::string& csv) {
  std::vector<experiment::ExperimentConfig> configs;
  for (algo::Algorithm alg : kSeries) {
    auto cfg = paper_config(alg, /*phi=*/80, rho, opts);
    cfg.size_buckets = kBucketLabels.size();
    configs.push_back(cfg);
  }
  const auto results = experiment::run_sweep(configs, opts.threads);

  std::cout << "\n=== Figure 7 — waiting time by request size, phi=80, "
            << label << " load (rho=" << rho << ") ===\n";
  std::vector<std::string> header = {"algorithm", "overall"};
  for (const auto& b : kBucketLabels) header.push_back(b);
  Table table(header);
  for (const auto& r : results) {
    std::vector<std::string> row = {r.algorithm,
                                    Table::fmt(r.waiting_mean_ms, 1)};
    for (const auto& bucket : r.waiting_by_size) {
      row.push_back(Table::fmt(bucket.mean_ms, 1) + " (sd " +
                    Table::fmt(bucket.stddev_ms, 0) + ")");
    }
    table.add_row(row);
  }
  emit(table, opts, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::cout << "Reproduces paper Figure 7: waiting time per request size "
               "(phi=80).\n";
  run_load("medium", 5.0, opts, "fig7a_medium_load.csv");
  run_load("high", 0.5, opts, "fig7b_high_load.csv");
  return 0;
}
