// Fabric overhead bench: what the distributed sweep fabric (DESIGN.md §15)
// costs over calling experiment::run_sweep in-process. One `local` row runs
// the reference merge path; the `fabric_wW` rows run the same grid through a
// real coordinator plus W worker threads over a file-queue spool, including
// every fabric cost — claim renames, payload serialization, result files,
// checkpointing, the final merge — and assert the merged bytes equal the
// local row's before reporting a number.
//
// The `jobs` count is deterministic (bench_compare.py gates it strictly);
// jobs_per_sec is the gated rate (advisory across machines, like every
// rate); wall_ms and coordinator_overhead_pct are informational.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/grid.hpp"
#include "fabric/merge.hpp"
#include "fabric/worker.hpp"

namespace {

using namespace mra;
namespace fs = std::filesystem;

/// One row of BENCH_fabric.json.
struct FabricResult {
  std::string label;
  std::uint64_t jobs = 0;  ///< deterministic (strict under --strict-counts)
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
  double coordinator_overhead_pct = 0.0;  ///< vs the local row; informational
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

fabric::GridSpec bench_grid(const bench::BenchOptions& options) {
  fabric::GridSpec grid;
  grid.kind = fabric::GridKind::kSweep;
  grid.scenarios = {"paper-phi4", "zipf-hot", "bursty", "hotspot-k4"};
  grid.algorithms = {"lass", "lass-loan"};
  grid.quick = options.quick;
  grid.seed_set = true;
  grid.seed = options.seed;
  return grid;
}

std::string run_local_timed(const fabric::GridSpec& grid, double& wall_ms) {
  const auto start = std::chrono::steady_clock::now();
  std::ostringstream os;
  if (fabric::run_local(grid, /*threads=*/1, os, /*progress_path=*/"") != 0) {
    throw std::runtime_error("fabric_sweep: local reference run failed");
  }
  wall_ms = elapsed_ms(start);
  return os.str();
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Coordinator + `workers` worker threads over a fresh spool; returns the
/// wall time and checks the merged bytes against `reference`.
double run_fabric_timed(const fabric::GridSpec& grid, int workers,
                        const std::string& reference) {
  const std::string spool =
      (fs::temp_directory_path() /
       ("mra_fabric_bench_w" + std::to_string(workers)))
          .string();
  fs::remove_all(spool);
  fabric::CoordinatorOptions copts;
  copts.spool = spool;
  copts.chunk = 1;
  copts.poll_interval_sec = 0.005;
  copts.out_path = spool + "/merged.json";

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<int> coordinator_code{-1};
  threads.emplace_back(
      [&] { coordinator_code = fabric::run_coordinator(grid, copts); });
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      fabric::WorkerOptions wopts;
      wopts.spool = spool;
      wopts.name = "bench-w" + std::to_string(w);
      wopts.poll_interval_sec = 0.005;
      (void)fabric::run_worker(wopts);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = elapsed_ms(start);

  if (coordinator_code.load() != 0) {
    throw std::runtime_error("fabric_sweep: coordinator failed");
  }
  if (read_all(copts.out_path) != reference) {
    throw std::runtime_error(
        "fabric_sweep: fabric merge differs from the in-process run — the "
        "byte-identity invariant is broken");
  }
  fs::remove_all(spool);
  return wall_ms;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_json(const std::string& path,
                const std::vector<FabricResult>& results) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << "{\"tool\":\"fabric_sweep\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FabricResult& r = results[i];
    if (i != 0) f << ",";
    f << "\n  {\"label\":\"" << r.label << "\""
      << ",\"jobs\":" << r.jobs << ",\"wall_ms\":" << num(r.wall_ms)
      << ",\"jobs_per_sec\":" << num(r.jobs_per_sec)
      << ",\"coordinator_overhead_pct\":" << num(r.coordinator_overhead_pct)
      << "}";
  }
  f << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, /*supports_json=*/true);
  const fabric::GridSpec grid = bench_grid(options);
  const auto jobs = static_cast<std::uint64_t>(grid.job_count());

  std::vector<FabricResult> results;
  double local_ms = 0.0;
  const std::string reference = run_local_timed(grid, local_ms);
  results.push_back({"local", jobs, local_ms,
                     1000.0 * static_cast<double>(jobs) / local_ms, 0.0});

  for (const int workers : {1, 2, 4}) {
    const double wall_ms = run_fabric_timed(grid, workers, reference);
    results.push_back({"fabric_w" + std::to_string(workers), jobs, wall_ms,
                       1000.0 * static_cast<double>(jobs) / wall_ms,
                       100.0 * (wall_ms - local_ms) / local_ms});
  }

  std::printf("%-12s %8s %10s %14s %16s\n", "config", "jobs", "wall_ms",
              "jobs_per_sec", "overhead_vs_local");
  for (const FabricResult& r : results) {
    std::printf("%-12s %8llu %10.1f %14.1f %15.1f%%\n", r.label.c_str(),
                static_cast<unsigned long long>(r.jobs), r.wall_ms,
                r.jobs_per_sec, r.coordinator_overhead_pct);
  }
  std::printf("(every fabric row cmp'd byte-identical to the local row)\n");

  if (!options.json_path.empty()) {
    write_json(options.json_path, results);
    std::printf("(json: %s)\n", options.json_path.c_str());
  }
  return 0;
}
