#!/usr/bin/env bash
# Fails when README.md or DESIGN.md reference repo paths that do not exist.
# Checked path prefixes: src/ tests/ bench/ examples/ scripts/ .github/
# (build/ outputs are intentionally not checked — they only exist after a
# build). Supports the `foo.{hpp,cpp}` brace shorthand used in the docs.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md DESIGN.md; do
  [ -f "$doc" ] || { echo "missing doc: $doc"; fail=1; continue; }
  refs=$(grep -oE '(src|tests|bench|examples|scripts|\.github)/[A-Za-z0-9_./{},*-]+' "$doc" \
         | sed 's/[.,;:)]*$//' | sort -u || true)
  for ref in $refs; do
    # Expand foo.{hpp,cpp} into both members.
    if [[ "$ref" == *'{'* ]]; then
      base="${ref%%\{*}"; rest="${ref#*\{}"; exts="${rest%%\}*}"
      IFS=',' read -ra parts <<< "$exts"
      expanded=()
      for p in "${parts[@]}"; do expanded+=("${base}${p}"); done
    else
      expanded=("$ref")
    fi
    for path in "${expanded[@]}"; do
      # A reference is valid when the path exists, it names a source file
      # without extension (`bench/fig1_gantt` -> bench/fig1_gantt.cpp), or
      # it is a glob that matches something (`tests/test_*.cpp`).
      if [ -e "$path" ] || [ -e "$path.cpp" ] || compgen -G "$path" > /dev/null; then
        continue
      fi
      echo "$doc references nonexistent path: $path"
      fail=1
    done
  done
done

# Source comments cite design sections as "DESIGN.md §N" (optionally
# §N.M); every cited integer section must still exist as a "## N." heading,
# or the comment silently points at nothing after a renumbering.
sections=$(grep -oE '^## [0-9]+\.' DESIGN.md | grep -oE '[0-9]+' | sort -un)
cited=$(grep -rhoE 'DESIGN\.md §[0-9]+' src tests bench examples scripts \
        | grep -oE '[0-9]+$' | sort -un || true)
for sec in $cited; do
  if ! printf '%s\n' "$sections" | grep -qx "$sec"; then
    echo "source comments cite DESIGN.md §$sec but DESIGN.md has no '## $sec.' heading"
    fail=1
  fi
done

# Every rule name referenced by an MRA_NOLINT suppression anywhere in the
# repo must exist in the linter's rule registry (scripts/mra_lint.py
# --list-rules) — a renamed rule must not leave dangling suppressions that
# silently stop suppressing.
rules=$(python3 scripts/mra_lint.py --list-rules)
nolint_refs=$(grep -rhoE 'MRA_NOLINT\(([^)]*)\)' \
                src tests bench examples 2>/dev/null \
              | sed -E 's/^MRA_NOLINT\(//; s/\)$//' | tr ',' '\n' \
              | sed -E 's/^ +//; s/ +$//' | sort -u || true)
for rule in $nolint_refs; do
  if ! printf '%s\n' "$rules" | grep -qx "$rule"; then
    # The fixtures deliberately reference a nonexistent rule to prove the
    # linter rejects it; they are the linter's test inputs, not users of it.
    if grep -rlE "MRA_NOLINT\([^)]*\b$rule\b" src tests bench examples \
         | grep -qv '^tests/lint_fixtures/'; then
      echo "MRA_NOLINT references unknown lint rule: $rule" \
           "(not in scripts/mra_lint.py --list-rules)"
      fail=1
    fi
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "doc reference check FAILED"
  exit 1
fi
echo "doc reference check OK"
