#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

The flight recorder (src/obs/) exports request spans, message flows, and
engine gauges in the Chrome trace-event format so a run can be opened in
Perfetto (ui.perfetto.dev) or chrome://tracing. CI records a scenario and
runs this validator over the output, so a refactor of the exporter cannot
silently produce a file those viewers reject.

Checked invariants, all derived from the trace-event spec subset the
exporter uses (see src/obs/trace_export.cpp):

  shape       top-level object with a "traceEvents" array and
              displayTimeUnit "ms"; every event is an object with a known
              phase ("ph") and a string "name"
  M metadata  process_name / thread_name entries carrying args.name
  X slices    numeric ts >= 0 and dur >= 0, pid and tid present
  i instants  scope "s" in {t, p, g}
  s/f flows   every flow-finish id refers to a flow-start id seen earlier
              in the file (messages still in flight at the end may leave
              an unmatched start, never an orphan finish)
  C counters  non-empty "args" object with numeric series values
  ordering    non-metadata events sorted by ts (the exporter emits
              simulated-time order; a violation means nondeterminism or
              wall-clock leakage crept into the trace body)

--require-counters additionally fails when the file has no C events,
for runs recorded with gauges enabled.

Exit codes: 0 valid, 1 invalid, 2 usage/input error.

Usage:
  scripts/check_trace_json.py run.json
  scripts/check_trace_json.py run.json --require-counters
"""

import argparse
import json
import sys

KNOWN_PHASES = {"M", "X", "i", "s", "f", "C"}
INSTANT_SCOPES = {"t", "p", "g"}


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON from --trace-out")
    parser.add_argument(
        "--require-counters",
        action="store_true",
        help="fail when the trace has no C (counter) events",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_trace_json: cannot read {args.trace}: {err}",
              file=sys.stderr)
        sys.exit(2)

    errors = []

    def bad(index, message):
        errors.append(f"event #{index}: {message}")

    if not isinstance(doc, dict):
        print("check_trace_json: top level is not a JSON object",
              file=sys.stderr)
        sys.exit(1)
    if doc.get("displayTimeUnit") != "ms":
        errors.append("displayTimeUnit is not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("check_trace_json: no 'traceEvents' array", file=sys.stderr)
        sys.exit(1)

    by_phase = {}
    open_flows = set()
    last_ts = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            bad(index, "not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            bad(index, f"unknown phase {phase!r}")
            continue
        by_phase[phase] = by_phase.get(phase, 0) + 1
        if not isinstance(event.get("name"), str) or not event["name"]:
            bad(index, "missing or empty 'name'")
        if "pid" not in event:
            bad(index, "missing 'pid'")

        if phase == "M":
            event_args = event.get("args")
            if not isinstance(event_args, dict) or "name" not in event_args:
                bad(index, "metadata without args.name")
            continue

        ts = event.get("ts")
        if not is_number(ts) or ts < 0:
            bad(index, f"bad ts {ts!r}")
        else:
            # Metadata is header material; everything else must be in
            # simulated-time order or the export is nondeterministic.
            if last_ts is not None and ts < last_ts:
                bad(index, f"ts {ts} goes backwards (previous {last_ts})")
            last_ts = ts

        if phase == "X":
            dur = event.get("dur")
            if not is_number(dur) or dur < 0:
                bad(index, f"slice with bad dur {dur!r}")
            if "tid" not in event:
                bad(index, "slice without tid")
        elif phase == "i":
            if event.get("s") not in INSTANT_SCOPES:
                bad(index, f"instant with bad scope {event.get('s')!r}")
        elif phase == "s":
            flow = event.get("id")
            if flow is None:
                bad(index, "flow start without id")
            else:
                open_flows.add(flow)
        elif phase == "f":
            flow = event.get("id")
            if flow is None:
                bad(index, "flow finish without id")
            elif flow not in open_flows:
                bad(index, f"flow finish id {flow!r} with no earlier start")
        elif phase == "C":
            event_args = event.get("args")
            if not isinstance(event_args, dict) or not event_args:
                bad(index, "counter without args series")
            elif not all(is_number(v) for v in event_args.values()):
                bad(index, "counter with non-numeric series value")

    if by_phase.get("M", 0) == 0:
        errors.append("no metadata (M) events: process/thread names missing")
    if by_phase.get("X", 0) == 0:
        errors.append("no slice (X) events: trace records no request spans")
    if args.require_counters and by_phase.get("C", 0) == 0:
        errors.append("no counter (C) events but --require-counters given")

    summary = ", ".join(
        f"{phase}={by_phase[phase]}" for phase in sorted(by_phase)
    )
    print(f"{args.trace}: {len(events)} events ({summary})")
    if errors:
        for message in errors[:20]:
            print(f"  INVALID: {message}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        print(f"FAIL: {len(errors)} schema violation(s)")
        sys.exit(1)
    print("OK: trace is Perfetto-loadable")


if __name__ == "__main__":
    main()
