#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on performance regressions.

This is the contract the CI perf gate enforces: the new results of a PR are
compared against a baseline (the bench-json artifact of the previous main
run, or the seed under bench/baselines/), and the gate fails when a rate
metric regresses beyond the threshold.

Results are matched by "label" plus the discriminator fields present in
experiment rows (algorithm, phi, rho), so fig5/fig6 files — whose many rows
share a few labels — compare row for row. Metric direction is inferred
from the field name:

  higher is better   *_per_sec, use_rate
  lower is better    waiting_mean_ms, messages_per_cs, rss_peak_kb,
                     bytes_per_site (micro_engine memory rows)
  informational      wall_ms, *_per_sec_wall (too short-lived for a stable
                     rate), *_ci95 confidence half-widths (interval width is
                     a sampling property, not a performance metric — always
                     advisory), stddevs, percentiles, counters (never gate)

Deterministic count fields (events, messages, requests_completed, loans_*)
are bit-identical across machines for the same code, so --strict-counts
turns any drift into a failure — useful when a change must not alter
behaviour, wrong when the workload itself legitimately changed (refresh the
baseline instead; see README "Performance tracking").

--rates-advisory demotes the machine-specific *_per_sec rates — and the
memory fields, which depend on the allocator/libc of the build host — to
printed advisories while machine-independent metrics (use_rate,
waiting_mean_ms) keep gating — the right mode when baseline and new results
come from different hardware, e.g. the committed bench/baselines/ seeds vs
a CI runner.

Exit codes: 0 ok, 1 regression (or count drift under --strict-counts),
2 usage/input error.

Usage:
  scripts/bench_compare.py baseline.json new.json --threshold 15%
  scripts/bench_compare.py a.json b.json --strict-counts --threshold 10
  scripts/bench_compare.py seed.json new.json --rates-advisory --strict-counts
"""

import argparse
import json
import sys

HIGHER_BETTER_SUFFIXES = ("_per_sec",)
HIGHER_BETTER_FIELDS = {"use_rate"}
# _ci95: confidence-interval half-widths shrink with more replications and
# wobble with seeds — advisory context for the reviewer, never a gate.
INFORMATIONAL_SUFFIXES = ("_per_sec_wall", "_ci95")
LOWER_BETTER_FIELDS = {
    "waiting_mean_ms",
    "messages_per_cs",
    "rss_peak_kb",
    "bytes_per_site",
}
# Resident-set sizes move with the build host's allocator and libc, so a
# cross-machine comparison (--rates-advisory) must not gate on them.
MACHINE_DEPENDENT_FIELDS = {"rss_peak_kb", "bytes_per_site"}
COUNT_FIELDS = {
    "events",
    "messages",
    "requests_completed",
    "bytes",
    "loans_used",
    "loans_failed",
    "replications",
    "samples",
    "jobs",
}


def direction(field):
    """Returns 'higher', 'lower', or None (not gated)."""
    if field.endswith(INFORMATIONAL_SUFFIXES):
        return None
    if field.endswith(HIGHER_BETTER_SUFFIXES) or field in HIGHER_BETTER_FIELDS:
        return "higher"
    if field in LOWER_BETTER_FIELDS:
        return "lower"
    return None


def parse_threshold(text):
    value = text.strip().rstrip("%")
    try:
        pct = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad threshold: {text!r}")
    if pct < 0:
        raise argparse.ArgumentTypeError("threshold must be >= 0")
    return pct / 100.0


DISCRIMINATOR_FIELDS = ("algorithm", "phi", "rho")

RATE_SUFFIX = "_per_sec"


def row_key(entry):
    """Identity of one result row: label + whatever discriminators exist."""
    parts = [str(entry.get("label"))]
    for field in DISCRIMINATOR_FIELDS:
        if field in entry:
            parts.append(f"{field}={entry[field]}")
    return " ".join(parts)


def load_results(path):
    def input_error(message):
        # Exit 2, not 1: an unreadable input must stay distinguishable from
        # a genuine perf regression for anything keying off the exit code.
        print(f"bench_compare: {message}", file=sys.stderr)
        sys.exit(2)

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        input_error(f"cannot read {path}: {err}")
    results = doc.get("results")
    if not isinstance(results, list):
        input_error(f"{path} has no 'results' array")
    by_key = {}
    for entry in results:
        if not entry.get("label"):
            input_error(f"{path} has a result without 'label'")
        key = row_key(entry)
        if key in by_key:
            input_error(f"{path} has duplicate result rows for '{key}'")
        by_key[key] = entry
    return doc.get("tool", "?"), by_key


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("new", help="new BENCH_*.json to judge")
    parser.add_argument(
        "--threshold",
        type=parse_threshold,
        default=parse_threshold("15%"),
        help="allowed relative regression on rate metrics (default 15%%)",
    )
    parser.add_argument(
        "--strict-counts",
        action="store_true",
        help="fail when deterministic count fields differ at all",
    )
    parser.add_argument(
        "--rates-advisory",
        action="store_true",
        help="print *_per_sec regressions without failing (cross-machine "
        "comparisons); machine-independent metrics still gate",
    )
    args = parser.parse_args()

    base_tool, base = load_results(args.baseline)
    new_tool, new = load_results(args.new)
    if base_tool != new_tool:
        print(
            f"note: comparing different tools: {base_tool!r} vs {new_tool!r}"
        )

    regressions = []
    drifts = []
    compared = 0
    for label, base_row in sorted(base.items()):
        new_row = new.get(label)
        if new_row is None:
            # A removed/renamed workload is a baseline-refresh matter, not a
            # perf regression; only --strict-counts treats it as failure.
            print(f"  [gone]  {label}: missing from new results")
            if args.strict_counts:
                drifts.append(label)
            continue
        for field, base_val in base_row.items():
            if not isinstance(base_val, (int, float)) or isinstance(
                base_val, bool
            ):
                continue
            new_val = new_row.get(field)
            if not isinstance(new_val, (int, float)):
                continue
            if args.strict_counts and field in COUNT_FIELDS:
                if base_val != new_val:
                    print(
                        f"  [drift] {label}.{field}: {base_val} -> {new_val}"
                    )
                    drifts.append(f"{label}.{field}")
                continue
            sense = direction(field)
            if sense is None or base_val == 0:
                continue
            compared += 1
            if sense == "higher":
                change = (new_val - base_val) / base_val
            else:
                change = (base_val - new_val) / base_val
            advisory = args.rates_advisory and (
                field.endswith(RATE_SUFFIX)
                or field in MACHINE_DEPENDENT_FIELDS
            )
            marker = "ok"
            if change < -args.threshold:
                if advisory:
                    marker = "advisory"
                else:
                    marker = "REGRESSION"
                    regressions.append(f"{label}.{field}")
            print(
                f"  [{marker:>10}] {label}.{field}: "
                f"{base_val:.6g} -> {new_val:.6g} ({change:+.1%})"
            )

    if compared == 0 and not args.strict_counts:
        print("bench_compare: no comparable rate metrics found",
              file=sys.stderr)
        sys.exit(2)

    if regressions or drifts:
        what = []
        if regressions:
            what.append(
                f"{len(regressions)} regression(s) beyond "
                f"{args.threshold:.0%} threshold"
            )
        if drifts:
            what.append(f"{len(drifts)} deterministic-count drift(s)")
        print(f"FAIL: {', '.join(what)}")
        sys.exit(1)
    print(f"OK: {compared} rate metric(s) within {args.threshold:.0%}")


if __name__ == "__main__":
    main()
