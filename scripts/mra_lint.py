#!/usr/bin/env python3
"""mra_lint — determinism and architecture invariant linter for src/.

Every result this repository produces rests on byte-identical replay: traces,
sweeps, and explorer runs must be bit-equal across reruns and --threads
counts. The end-to-end `cmp` checks in CI catch nondeterminism that the smoke
configs happen to exercise; this linter bans the *sources* of nondeterminism
at the source-code level, before they can leak into an output path:

  wall-clock           simulated time only — no steady_clock/system_clock/
                       time()/gettimeofday outside the allowlisted wall-clock
                       boundary (obs/heartbeat.*, metrics/memory.*, and the
                       fabric transport backends src/fabric/transport*, whose
                       lease timeouts and poll intervals are inherently
                       wall-clock; see DESIGN.md §15)
  unordered-container  std::unordered_* iteration order depends on the hash
                       seed and libstdc++ version; use std::map / FlatMap
  raw-random           all randomness flows from seeded splitmix64/xoshiro
                       substreams in sim/random.*; std::mt19937 and
                       std::random_device are banned everywhere else
  pointer-key          containers/comparators/hashers keyed on pointer values
                       make output depend on the allocator's address layout
  message-pool-bypass  net::Message storage must go through the class
                       operator new (thread-local pool); ::new and
                       make_shared<...Msg> bypass it
  sim-std-function     the simulator hot path uses sim::Callback (move-only,
                       small-buffer); std::function in src/sim/ is a
                       per-event heap allocation waiting to happen
  bad-nolint           a suppression that names no rule, an unknown rule, or
                       carries no reason is itself a violation

Suppressions: `// MRA_NOLINT(rule-name): reason` on the violating line, or on
its own line to cover the next line. The rule name must exist in the registry
and the reason must be non-empty — suppressions are grep-able design
decisions, not mute buttons (scripts/check_doc_refs.sh cross-checks the rule
names repo-wide).

Driven by compile_commands.json (pass -p BUILD_DIR): translation units under
--src-root are linted with their real compile arguments when the libclang
Python bindings are available (exact lexing of comments, strings, raw
strings); without libclang the built-in C++ lexer frontend is used — same
rule semantics, so fixture tests and CI agree regardless of environment.
Headers under --src-root are always linted as bare files.

Exit codes: 0 clean, 1 violations found, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import glob as globmod
import json
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    name: str
    summary: str
    # Lint only files whose src-root-relative path starts with one of these
    # prefixes (empty tuple = everywhere under src-root).
    only_under: tuple = ()
    # Skip files whose src-root-relative path starts with one of these.
    allowlist: tuple = ()


RULES = [
    Rule(
        name="wall-clock",
        summary="wall-clock source outside the allowlisted boundary "
        "(simulated time only; see DESIGN.md §14)",
        # fabric/transport*: lease staleness and poll intervals are real
        # elapsed time by design — the boundary stops there; the fabric's
        # coordinator/worker/merge layers above stay wall-clock-free
        # (DESIGN.md §15).
        allowlist=("obs/heartbeat.", "metrics/memory.", "fabric/transport"),
    ),
    Rule(
        name="unordered-container",
        summary="std::unordered_* container (iteration order is "
        "hash-seed-dependent; use std::map or core::FlatMap)",
    ),
    Rule(
        name="raw-random",
        summary="randomness source outside sim/random.* (must consume "
        "seeded splitmix64/xoshiro substreams)",
        allowlist=("sim/random.",),
    ),
    Rule(
        name="pointer-key",
        summary="pointer-keyed ordering or hashing (output becomes "
        "address-layout-dependent)",
    ),
    Rule(
        name="message-pool-bypass",
        summary="net::Message allocation bypassing the class operator new "
        "pool (::new or make_shared/allocate_shared of a message type)",
        allowlist=("net/message_pool.",),
    ),
    Rule(
        name="sim-std-function",
        summary="std::function in src/sim/ (hot paths must use "
        "sim::Callback)",
        only_under=("sim/",),
    ),
    Rule(
        name="bad-nolint",
        summary="malformed MRA_NOLINT suppression (missing rule list, "
        "unknown rule name, or empty reason)",
    ),
]

RULES_BY_NAME = {r.name: r for r in RULES}


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    snippet: str = ""


@dataclass
class Suppression:
    path: str
    line: int  # line the suppression covers
    comment_line: int  # line the comment itself sits on
    rules: tuple
    reason: str
    used: bool = False


@dataclass
class SourceModel:
    """A file reduced to what the rules need: per-line code text with all
    comment and string/char-literal contents blanked out (lengths and line
    structure preserved), plus the comments themselves for NOLINT parsing."""

    path: str
    rel: str  # posix path relative to src-root ("" prefix match = in scope)
    code_lines: list = field(default_factory=list)
    comments: list = field(default_factory=list)  # (1-based line, text)


# ---------------------------------------------------------------------------
# Fallback frontend: a small C++ lexer
# ---------------------------------------------------------------------------

_RAW_STRING_OPEN = re.compile(r'R"([^ ()\\\t\v\f\n]{0,16})\(')


def _lex_sanitize(text):
    """Blank out comment bodies, string and char literal contents from C++
    source, preserving line breaks and column positions. Returns
    (code_lines, comments) where comments is [(1-based line, text)]."""
    out = []
    comments = []
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    comment_start_line = 0
    comment_buf = []

    def emit(ch):
        out.append(ch)

    def blank(ch):
        out.append("\n" if ch == "\n" else " ")

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                blank(ch)
                blank(nxt)
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                blank(ch)
                blank(nxt)
                i += 2
                continue
            m = _RAW_STRING_OPEN.match(text, i) if ch == "R" else None
            if m:
                state = "raw"
                raw_delim = ")" + m.group(1) + '"'
                for c in m.group(0):
                    blank(c)
                i = m.end()
                continue
            if ch == '"':
                state = "string"
                emit(ch)
                i += 1
                continue
            if ch == "'" and not (out and (out[-1].isdigit())):
                # Skip digit separators in numeric literals (1'000'000).
                state = "char"
                emit(ch)
                i += 1
                continue
            if ch == "\n":
                line += 1
            emit(ch)
            i += 1
        elif state == "line_comment":
            if ch == "\\" and nxt == "\n":
                # Backslash-continued line comment spans the next line too.
                comment_buf.append(" ")
                blank(ch)
                emit("\n")
                line += 1
                i += 2
                continue
            if ch == "\n":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                emit(ch)
                line += 1
                i += 1
                continue
            comment_buf.append(ch)
            blank(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                blank(ch)
                blank(nxt)
                i += 2
                continue
            if ch == "\n":
                comment_buf.append("\n")
                emit("\n")
                line += 1
            else:
                comment_buf.append(ch)
                blank(ch)
            i += 1
        elif state == "string":
            if ch == "\\" and nxt:
                blank(ch)
                blank(nxt)
                if nxt == "\n":
                    line += 1
                i += 2
                continue
            if ch == '"':
                emit(ch)
                state = "code"
            elif ch == "\n":  # unterminated; recover
                emit(ch)
                line += 1
                state = "code"
            else:
                blank(ch)
            i += 1
        elif state == "char":
            if ch == "\\" and nxt:
                blank(ch)
                blank(nxt)
                i += 2
                continue
            if ch == "'":
                emit(ch)
                state = "code"
            elif ch == "\n":  # unterminated; recover
                emit(ch)
                line += 1
                state = "code"
            else:
                blank(ch)
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                for c in raw_delim:
                    blank(c)
                i += len(raw_delim)
                state = "code"
                continue
            if ch == "\n":
                emit("\n")
                line += 1
            else:
                blank(ch)
            i += 1
    if state in ("line_comment", "block_comment"):
        comments.append((comment_start_line, "".join(comment_buf)))
    return "".join(out).split("\n"), comments


def lex_frontend(path, rel, _args):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comments = _lex_sanitize(text)
    return SourceModel(path=path, rel=rel, code_lines=code_lines,
                       comments=comments)


# ---------------------------------------------------------------------------
# libclang frontend (preferred when the bindings + shared library exist)
# ---------------------------------------------------------------------------


def _load_libclang():
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    if not cindex.Config.loaded:
        for pattern in (
            "/usr/lib/llvm-*/lib/libclang.so*",
            "/usr/lib/llvm-*/lib/libclang-*.so*",
            "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
            "/usr/lib/libclang.so*",
        ):
            hits = sorted(globmod.glob(pattern), reverse=True)
            if hits:
                cindex.Config.set_library_file(hits[0])
                break
    try:
        cindex.Index.create()
    except Exception:  # library not loadable — fall back
        return None
    return cindex


def make_clang_frontend(cindex):
    index = cindex.Index.create()
    tk = cindex.TokenKind

    def clang_frontend(path, rel, args):
        # Drop the compiler name and -o/-c output plumbing from the
        # compile_commands entry; keep -I/-D/-std flags that affect lexing.
        lex_args = []
        skip_next = False
        for a in args[1:] if args else []:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c"):
                skip_next = a == "-o"
                continue
            if a == path or a.endswith(os.path.basename(path)):
                continue
            lex_args.append(a)
        tu = index.parse(path, args=lex_args)
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().split("\n")
        canvas = [" " * len(l) for l in raw_lines]
        comments = []
        this_file = tu.get_file(path)
        extent = tu.get_extent(path, ((1, 1), (len(raw_lines),
                                               len(raw_lines[-1]) + 1)))
        for tok in tu.get_tokens(extent=extent):
            loc = tok.location
            if loc.file is None or loc.file.name != this_file.name:
                continue
            if tok.kind == tk.COMMENT:
                comments.append((loc.line, tok.spelling))
                continue
            if tok.kind == tk.LITERAL and (
                '"' in tok.spelling or tok.spelling.startswith("'")
            ):
                # Keep the quotes so regexes never cross into literal text;
                # contents stay blank like the lexer frontend.
                spelling = tok.spelling[0] + " " * max(
                    0, len(tok.spelling) - 2) + tok.spelling[-1]
                if "\n" in tok.spelling:
                    continue  # multi-line raw string: leave blanked
            else:
                spelling = tok.spelling
                if "\n" in spelling:
                    continue
            ln, col = loc.line - 1, loc.column - 1
            if ln >= len(canvas):
                continue
            row = canvas[ln]
            if len(row) < col + len(spelling):
                row = row.ljust(col + len(spelling))
            canvas[ln] = row[:col] + spelling + row[col + len(spelling):]
        return SourceModel(path=path, rel=rel, code_lines=canvas,
                           comments=comments)

    return clang_frontend


# ---------------------------------------------------------------------------
# Pattern tables (matched against sanitized code text only)
# ---------------------------------------------------------------------------

_WALL_CLOCK_PATTERNS = [
    (re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)\b"),
     "std::chrono::{} is wall-clock"),
    (re.compile(r"\b(gettimeofday|clock_gettime|timespec_get|localtime"
                r"|gmtime|mktime|ftime)\s*\("),
     "{}() reads the wall clock"),
    (re.compile(r"\bstd\s*::\s*time\s*\("), "std::time() reads the wall clock"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0|&)"),
     "time() reads the wall clock"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
     "clock() reads the process clock"),
]

_UNORDERED_PATTERN = re.compile(
    r"\bunordered_(map|set|multimap|multiset)\b")

_RAW_RANDOM_PATTERNS = [
    (re.compile(r"\b(random_device|mt19937_64|mt19937|minstd_rand0"
                r"|minstd_rand|default_random_engine|ranlux24|ranlux48"
                r"|knuth_b)\b"),
     "std::{} is an unseeded/nonportable randomness source"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand() seeds the libc PRNG"),
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand() is unseeded libc "
     "randomness"),
    (re.compile(r"\b(drand48|lrand48|mrand48|rand_r)\b"),
     "{}() is libc randomness"),
]

_MESSAGE_POOL_BYPASS_PATTERNS = [
    (re.compile(r"::\s*new\s+(net\s*::\s*)?\w*(Message|Msg)\b"),
     "::new bypasses net::Message's pooled operator new"),
    (re.compile(r"\b(make_shared|allocate_shared)\s*<[^>;]*\w*"
                r"(Message|Msg)\b"),
     "{} allocates through the allocator, bypassing the message pool"),
]

_STD_FUNCTION_PATTERN = re.compile(r"\bstd\s*::\s*function\b")

# Ordered/hashed templates whose first template argument being a pointer
# makes behavior depend on the address layout.
_PTR_KEY_TEMPLATE = re.compile(
    r"\b(?:std\s*::\s*)?(map|set|multimap|multiset|less|greater|hash)\s*<"
    r"|\bFlatMap\s*<")


def _first_template_arg(text, open_idx):
    """text[open_idx] == '<'; return the first top-level template argument
    (or None if the brackets never close / look like comparison)."""
    depth, i, n = 1, open_idx + 1, len(text)
    start = i
    while i < n and depth > 0:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "(" or c == ";" or c == "{":
            return None  # comparison expression, not a template
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    if depth == 0:
        return text[start:i - 1]
    return None


# ---------------------------------------------------------------------------
# NOLINT parsing
# ---------------------------------------------------------------------------

# Only the parenthesized form is treated as a suppression attempt; a bare
# "MRA_NOLINT" in comment prose is not parsed.
_NOLINT_ANY = re.compile(r"MRA_NOLINT\s*\(")
_NOLINT_FULL = re.compile(r"MRA_NOLINT\s*\(([^)]*)\)\s*(?::\s*(.*))?")


def parse_suppressions(model):
    """Extract suppressions from a file's comments. A suppression covers its
    own line when the line also holds code, else the next line. Malformed
    suppressions are returned as bad-nolint violations."""
    suppressions = []
    violations = []
    for line_no, text in model.comments:
        for m in _NOLINT_ANY.finditer(text):
            full = _NOLINT_FULL.match(text, m.start())
            if not full:  # unterminated "MRA_NOLINT(" — still malformed
                violations.append(Violation(
                    model.path, line_no, "bad-nolint",
                    "unterminated MRA_NOLINT( — write "
                    "MRA_NOLINT(rule-name): reason"))
                continue
            rule_list = [r.strip() for r in full.group(1).split(",")
                         if r.strip()]
            reason = (full.group(2) or "").strip()
            if not rule_list:
                violations.append(Violation(
                    model.path, line_no, "bad-nolint",
                    "MRA_NOLINT() names no rules"))
                continue
            unknown = [r for r in rule_list if r not in RULES_BY_NAME]
            if unknown:
                violations.append(Violation(
                    model.path, line_no, "bad-nolint",
                    "MRA_NOLINT names unknown rule(s): "
                    + ", ".join(unknown) + " (see --list-rules)"))
                continue
            if not reason:
                violations.append(Violation(
                    model.path, line_no, "bad-nolint",
                    "MRA_NOLINT(" + ", ".join(rule_list) + ") has no reason "
                    "— suppressions must say why"))
                continue
            code = model.code_lines[line_no - 1] if (
                line_no - 1 < len(model.code_lines)) else ""
            covers = line_no if code.strip() else line_no + 1
            suppressions.append(Suppression(
                model.path, covers, line_no, tuple(rule_list), reason))
    return suppressions, violations


# ---------------------------------------------------------------------------
# Rule engine
# ---------------------------------------------------------------------------


def _in_scope(rule, rel):
    if rule.only_under and not any(rel.startswith(p)
                                   for p in rule.only_under):
        return False
    if any(rel.startswith(p) for p in rule.allowlist):
        return False
    return True


def _line_rule(model, rule_name, patterns, violations):
    for idx, line in enumerate(model.code_lines):
        # Preprocessor lines are not flagged: #include <unordered_map> with
        # no use of the container is inert, and flagging it would double-
        # report every real use site.
        if line.lstrip().startswith("#"):
            continue
        for pat, msg in patterns:
            for m in pat.finditer(line):
                what = m.group(1) if m.groups() and m.group(1) else m.group(0)
                violations.append(Violation(
                    model.path, idx + 1, rule_name,
                    msg.format(what.strip()), snippet=line.strip()))


def check_file(model):
    """Run every in-scope rule over one SourceModel. Returns
    (violations, suppressions) after applying suppressions."""
    raw = []

    if _in_scope(RULES_BY_NAME["wall-clock"], model.rel):
        _line_rule(model, "wall-clock", _WALL_CLOCK_PATTERNS, raw)
    if _in_scope(RULES_BY_NAME["unordered-container"], model.rel):
        _line_rule(model, "unordered-container",
                   [(_UNORDERED_PATTERN,
                     "std::{} iteration order is hash-seed-dependent")], raw)
    if _in_scope(RULES_BY_NAME["raw-random"], model.rel):
        _line_rule(model, "raw-random", _RAW_RANDOM_PATTERNS, raw)
    if _in_scope(RULES_BY_NAME["message-pool-bypass"], model.rel):
        _line_rule(model, "message-pool-bypass",
                   _MESSAGE_POOL_BYPASS_PATTERNS, raw)
    if _in_scope(RULES_BY_NAME["sim-std-function"], model.rel):
        _line_rule(model, "sim-std-function",
                   [(_STD_FUNCTION_PATTERN,
                     "std::function in src/sim/ — use sim::Callback")], raw)

    if _in_scope(RULES_BY_NAME["pointer-key"], model.rel):
        # Whole-text scan: template argument lists span lines.
        text = "\n".join(model.code_lines)
        line_starts = [0]
        for line in model.code_lines:
            line_starts.append(line_starts[-1] + len(line) + 1)
        for m in _PTR_KEY_TEMPLATE.finditer(text):
            open_idx = text.index("<", m.start())
            arg = _first_template_arg(text, open_idx)
            if arg is None:
                continue
            arg = arg.strip()
            if arg.endswith("*") and not arg.endswith("**"):
                import bisect
                line_no = bisect.bisect_right(line_starts, m.start())
                tmpl = m.group(0).rstrip("<").strip() or "FlatMap"
                raw.append(Violation(
                    model.path, line_no, "pointer-key",
                    f"{tmpl}<{arg}> orders/hashes on a pointer value — "
                    "output becomes address-layout-dependent",
                    snippet=model.code_lines[line_no - 1].strip()))

    suppressions, bad = parse_suppressions(model)
    kept = []
    for v in raw:
        hit = None
        for s in suppressions:
            if s.line == v.line and v.rule in s.rules:
                hit = s
                break
        if hit:
            hit.used = True
        else:
            kept.append(v)
    kept.extend(bad)
    kept.sort(key=lambda v: (v.line, v.rule))
    return kept, suppressions


# ---------------------------------------------------------------------------
# File discovery
# ---------------------------------------------------------------------------


def discover_files(compile_commands, src_root):
    """TUs from compile_commands.json that live under src_root, plus every
    header under src_root. Returns [(path, clang_args_or_None)]."""
    files = {}
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                path = os.path.normpath(
                    os.path.join(entry["directory"], entry["file"]))
                if not path.startswith(os.path.abspath(src_root) + os.sep):
                    continue
                if "arguments" in entry:
                    args = entry["arguments"]
                else:
                    args = entry.get("command", "").split()
                files[path] = args
    for pattern in ("**/*.hpp", "**/*.h", "**/*.cpp"):
        for path in globmod.glob(os.path.join(src_root, pattern),
                                 recursive=True):
            files.setdefault(os.path.abspath(path), None)
    return sorted(files.items())


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main(argv=None):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        prog="mra_lint.py",
        description="determinism & architecture invariant linter "
        "(rules: " + ", ".join(sorted(RULES_BY_NAME)) + ")")
    ap.add_argument("files", nargs="*",
                    help="explicit files to lint (default: discover from "
                    "compile_commands.json + headers under --src-root)")
    ap.add_argument("-p", "--build-dir", default=os.path.join(repo_root,
                                                              "build"),
                    help="build dir containing compile_commands.json")
    ap.add_argument("--src-root", default=os.path.join(repo_root, "src"),
                    help="root directory the path-scoped rules are relative "
                    "to (default: <repo>/src)")
    ap.add_argument("--json", dest="json_out",
                    help="write a machine-readable report to this path")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule registry (name per line) and exit")
    ap.add_argument("--frontend", choices=["auto", "libclang", "lexer"],
                    default="auto",
                    help="force a frontend (default: libclang when "
                    "available, else the built-in lexer)")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress per-violation output (summary only)")
    opts = ap.parse_args(argv)

    if opts.list_rules:
        for rule in RULES:
            print(rule.name)
        return 0

    src_root = os.path.abspath(opts.src_root)
    if not os.path.isdir(src_root):
        print(f"mra_lint: src root not found: {src_root}", file=sys.stderr)
        return 2

    cindex = None
    if opts.frontend in ("auto", "libclang"):
        cindex = _load_libclang()
        if cindex is None and opts.frontend == "libclang":
            print("mra_lint: libclang frontend requested but the clang "
                  "Python bindings / libclang.so are unavailable",
                  file=sys.stderr)
            return 2
    frontend = make_clang_frontend(cindex) if cindex else lex_frontend
    frontend_name = "libclang" if cindex else "lexer"

    compile_commands = os.path.join(opts.build_dir, "compile_commands.json")
    if opts.files:
        targets = [(os.path.abspath(f), None) for f in opts.files]
    else:
        targets = discover_files(compile_commands, src_root)
        if not targets:
            print(f"mra_lint: no files found under {src_root} "
                  f"(compile_commands: {compile_commands})", file=sys.stderr)
            return 2

    all_violations = []
    all_suppressions = []
    scanned = 0
    for path, args in targets:
        if not os.path.isfile(path):
            print(f"mra_lint: no such file: {path}", file=sys.stderr)
            return 2
        rel = os.path.relpath(path, src_root).replace(os.sep, "/")
        if rel.startswith(".."):
            rel = os.path.basename(path)  # out-of-tree file: no path scoping
        try:
            model = frontend(path, rel, args)
        except Exception as e:  # clang parse hiccup: degrade, don't die
            if frontend is not lex_frontend:
                model = lex_frontend(path, rel, None)
            else:
                print(f"mra_lint: failed to read {path}: {e}",
                      file=sys.stderr)
                return 2
        scanned += 1
        violations, suppressions = check_file(model)
        all_violations.extend(violations)
        all_suppressions.extend(suppressions)

    rel_to_repo = lambda p: os.path.relpath(p, repo_root)  # noqa: E731
    if not opts.quiet:
        for v in all_violations:
            loc = f"{rel_to_repo(v.path)}:{v.line}"
            print(f"{loc}: error: [{v.rule}] {v.message}")
            if v.snippet:
                print(f"    {v.snippet}")
        for s in all_suppressions:
            if not s.used:
                print(f"{rel_to_repo(s.path)}:{s.comment_line}: warning: "
                      f"unused MRA_NOLINT({', '.join(s.rules)}) — nothing "
                      "to suppress on that line")

    if opts.json_out:
        report = {
            "tool": "mra_lint",
            "version": 1,
            "frontend": frontend_name,
            "src_root": src_root,
            "files_scanned": scanned,
            "rules": [{"name": r.name, "summary": r.summary,
                       "only_under": list(r.only_under),
                       "allowlist": list(r.allowlist)} for r in RULES],
            "violations": [{"file": rel_to_repo(v.path), "line": v.line,
                            "rule": v.rule, "message": v.message,
                            "snippet": v.snippet} for v in all_violations],
            "suppressions": [{"file": rel_to_repo(s.path),
                              "line": s.comment_line,
                              "covers_line": s.line,
                              "rules": list(s.rules), "reason": s.reason,
                              "used": s.used} for s in all_suppressions],
        }
        with open(opts.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=False)
            f.write("\n")

    n = len(all_violations)
    status = "FAILED" if n else "OK"
    print(f"mra_lint {status}: {scanned} file(s) scanned "
          f"[{frontend_name} frontend], {n} violation(s), "
          f"{len(all_suppressions)} suppression(s)")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main())
