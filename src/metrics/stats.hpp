// Streaming statistics helpers: Welford mean/variance, a fixed-range
// histogram, a mergeable log-bucketed quantile sketch, and Student-t
// confidence intervals over replicated runs. Everything here is designed to
// merge deterministically: merged accumulators depend only on the multiset
// of samples (plus, for floating-point fields, the merge order the caller
// fixes), never on thread scheduling.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace mra::metrics {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction, Chan et
  /// al.). count/min/max merge exactly; mean/variance/sum agree with the
  /// concatenated stream up to floating-point rounding.
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

  /// One-line JSON object holding the full accumulator state. Doubles use
  /// %.17g (exact IEEE-754 round trip); non-finite values become the quoted
  /// tokens "inf"/"-inf"/"nan" so the output stays valid JSON. deserialize()
  /// restores a bit-identical accumulator: mean/variance/merge behave
  /// exactly as in the original (the fabric's cross-process merge invariant,
  /// DESIGN.md §15).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static RunningStats deserialize(std::string_view text);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are *not*
/// clamped into the edge buckets: they are tracked as underflow/overflow
/// counts (and still enter the percentile rank space, answered with the
/// exact tracked min/max). Non-finite samples are rejected and counted in
/// `nonfinite()` — they never reach an array index.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  /// Finite samples recorded (in-range + underflow + overflow).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t nonfinite() const { return nonfinite_; }

  /// Interpolated percentile, p in [0, 100] (throws std::invalid_argument
  /// outside). Side-correct: p=0 is the exact minimum, p=100 the exact
  /// maximum, ranks landing in the under/overflow regions answer with the
  /// tracked min/max, and in-range ranks interpolate linearly within their
  /// bucket (never the bucket's upper edge for every rank in it). Returns
  /// 0.0 on an empty histogram.
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nonfinite_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mergeable streaming quantile sketch: a log-bucketed histogram in the
/// DDSketch family. Bucket i covers (gamma^(i-1), gamma^i] with
/// gamma = (1+alpha)/(1-alpha), so any in-range percentile estimate lands
/// inside the sample's own bucket — relative error is bounded by
/// gamma - 1 ≈ 2*alpha (2.02% at the default alpha = 0.01), independent of
/// the data range or sample count.
///
/// Coverage is [kMinTrackable, kMaxTrackable] plus a zero bucket for
/// [0, kMinTrackable]; negative samples count as underflow and values above
/// kMaxTrackable as overflow — both stay inside the percentile rank space
/// and answer with the exact tracked min/max, so tails are never silently
/// clamped. Non-finite samples are rejected and counted in `nonfinite()`.
///
/// Merging adds bucket counts, so merged percentiles are *bit-identical* to
/// a single-stream sketch of the concatenated samples, in any merge order —
/// the property the replicated-experiment layer builds on.
class QuantileSketch {
 public:
  /// Smallest/largest magnitudes resolved by their own bucket; chosen for
  /// millisecond-unit waiting times (1e-9 ms = 1 fs .. 1e12 ms ≈ 32 years).
  static constexpr double kMinTrackable = 1e-9;
  static constexpr double kMaxTrackable = 1e12;

  explicit QuantileSketch(double alpha = 0.01);

  void add(double x);

  /// Adds `other`'s samples to this sketch. Throws std::invalid_argument if
  /// the relative-accuracy parameters differ (their buckets don't align).
  void merge(const QuantileSketch& other);

  /// Finite samples recorded (zero bucket + log buckets + under/overflow).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t nonfinite() const { return nonfinite_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Rank-interpolated percentile, p in [0, 100] (throws outside).
  /// Side-correct: the target rank is ceil(p/100 * count) clamped to
  /// [1, count], p=0 answers the exact minimum and p=100 the exact maximum;
  /// estimates are clamped to the observed [min, max]. Returns 0.0 on an
  /// empty sketch. Pure function of the counters, so merged sketches answer
  /// bit-identically to the concatenated stream.
  [[nodiscard]] double percentile(double p) const;

  void reset();

  /// One-line JSON object: alpha, counters, min/max, and the non-zero
  /// buckets as sparse [index, count] pairs (index 0 is the zero bucket).
  /// Doubles use %.17g, non-finite values the quoted tokens "inf"/"-inf"/
  /// "nan". deserialize() reconstructs a sketch whose percentile() and
  /// merge() results are bit-identical to the original's — the property the
  /// distributed fabric ships sketches across processes on (DESIGN.md §15).
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static QuantileSketch deserialize(std::string_view text);

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const;
  [[nodiscard]] double bucket_low(std::size_t idx) const;
  [[nodiscard]] double bucket_high(std::size_t idx) const;

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::int32_t index_offset_ = 0;  ///< log-index of the first log bucket
  std::size_t num_buckets_ = 0;    ///< log buckets (excludes the zero bucket)
  /// counts_[0] is the zero bucket [0, kMinTrackable]; counts_[1 + i] is log
  /// bucket index_offset_ + i. Allocated lazily on first add so that empty
  /// sketches (default-constructed results) stay cheap to copy.
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nonfinite_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided 95% Student-t critical value t_{0.975, df} (df >= 1).
/// Exact table through df = 30, then interpolated in 1/df down to the
/// normal limit 1.960.
[[nodiscard]] double student_t95(std::uint64_t df);

/// A point estimate with a 95% confidence half-width.
struct Estimate {
  double mean = 0.0;
  /// Half-width of the 95% CI; NaN when fewer than two observations make
  /// an interval undefined (JSON export renders that as null).
  double ci95_half = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] double lo() const { return mean - ci95_half; }
  [[nodiscard]] double hi() const { return mean + ci95_half; }
};

/// Student-t 95% confidence interval for the mean of the observations in
/// `per_rep` — one observation per independent replication.
[[nodiscard]] Estimate mean_ci95(const RunningStats& per_rep);

}  // namespace mra::metrics
