// Streaming statistics helpers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mra::metrics {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for waiting-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mra::metrics
