// Per-run metrics collection: waiting times (global and by request size),
// resource-use rate, completed-request counts, and the raw per-request log
// used by the Gantt renderer.
#pragma once

#include <cstdint>
#include <vector>

#include "core/resource_set.hpp"
#include "core/types.hpp"
#include "metrics/stats.hpp"
#include "metrics/usage.hpp"
#include "sim/time.hpp"

namespace mra::metrics {

/// Lifecycle record of one CS request.
struct RequestRecord {
  SiteId site = kNoSite;
  RequestId seq = 0;
  std::size_t size = 0;           ///< number of requested resources
  sim::SimTime issued = 0;
  sim::SimTime granted = 0;
  sim::SimTime released = 0;
  std::vector<ResourceId> resources;
};

class Collector {
 public:
  Collector(ResourceId num_resources, std::size_t size_buckets)
      : usage_(num_resources),
        by_size_(size_buckets) {}

  // Called by the workload driver --------------------------------------------
  void on_issue(sim::SimTime t, SiteId site, RequestId seq,
                const ResourceSet& rs);
  void on_grant(sim::SimTime t, SiteId site, RequestId seq,
                const ResourceSet& rs);
  void on_release(sim::SimTime t, SiteId site, RequestId seq,
                  const ResourceSet& rs);

  /// Cuts the measurement window: discards statistics gathered so far
  /// (requests granted before the cut never re-enter the statistics).
  void reset(sim::SimTime t);

  /// Keep the raw request log (needed by the Gantt renderer; off by default
  /// to bound memory in long sweeps).
  void set_keep_records(bool keep) { keep_records_ = keep; }

  // Results -------------------------------------------------------------------
  [[nodiscard]] const UsageTracker& usage() const { return usage_; }
  [[nodiscard]] const RunningStats& waiting() const { return waiting_; }
  /// Tail quantiles of the waiting time (ms), mergeable across runs.
  [[nodiscard]] const QuantileSketch& waiting_sketch() const {
    return waiting_sketch_;
  }
  /// Waiting stats for requests of size s, bucketed by
  /// bucket = (s - 1) * buckets / max_size; caller fixes max_size.
  [[nodiscard]] const std::vector<RunningStats>& waiting_by_size() const {
    return by_size_;
  }
  void set_max_size(std::size_t max_size) { max_size_ = max_size; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t granted() const { return granted_count_; }
  [[nodiscard]] const std::vector<RequestRecord>& records() const {
    return records_;
  }

 private:
  struct InFlight {
    sim::SimTime issued = 0;
    sim::SimTime granted = 0;
    bool counted = false;  ///< inside the measurement window
  };

  [[nodiscard]] std::size_t bucket_of(std::size_t size) const;

  UsageTracker usage_;
  RunningStats waiting_;
  QuantileSketch waiting_sketch_;
  std::vector<RunningStats> by_size_;
  std::size_t max_size_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t granted_count_ = 0;
  sim::SimTime window_start_ = 0;
  bool keep_records_ = false;
  std::vector<RequestRecord> records_;
  std::vector<InFlight> in_flight_;  // per site
};

}  // namespace mra::metrics
