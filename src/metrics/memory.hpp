// Process-memory probes for the memory-per-site bench gauge. Linux-only by
// implementation (/proc/self/status); on platforms without procfs every probe
// returns 0 and callers emit zeroed fields rather than failing.
#pragma once

#include <cstdint>

namespace mra::metrics {

/// Current resident set size in KiB (VmRSS), or 0 when unavailable.
[[nodiscard]] std::uint64_t read_vm_rss_kb();

/// Peak resident set size in KiB (VmHWM), or 0 when unavailable.
[[nodiscard]] std::uint64_t read_vm_peak_kb();

}  // namespace mra::metrics
