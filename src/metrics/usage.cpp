#include "metrics/usage.hpp"

#include <cassert>

namespace mra::metrics {

void UsageTracker::on_acquire(sim::SimTime t, const ResourceSet& rs) {
  rs.for_each([&](ResourceId r) {
    auto& since = busy_since_[static_cast<std::size_t>(r)];
    assert(since == sim::kTimeInfinity &&
           "UsageTracker: resource acquired twice (mutual exclusion violated)");
    since = t;
  });
}

void UsageTracker::on_release(sim::SimTime t, const ResourceSet& rs) {
  rs.for_each([&](ResourceId r) {
    auto& since = busy_since_[static_cast<std::size_t>(r)];
    assert(since != sim::kTimeInfinity && "UsageTracker: release of free resource");
    assert(t >= since);
    accumulated_ += static_cast<double>(t - since);
    since = sim::kTimeInfinity;
  });
}

void UsageTracker::reset(sim::SimTime t) {
  accumulated_ = 0.0;
  window_start_ = t;
  for (auto& since : busy_since_) {
    if (since != sim::kTimeInfinity) since = t;  // keep counting from the cut
  }
}

double UsageTracker::busy_integral(sim::SimTime now) const {
  double total = accumulated_;
  for (const auto& since : busy_since_) {
    if (since != sim::kTimeInfinity && now > since) {
      total += static_cast<double>(now - since);
    }
  }
  return total;
}

double UsageTracker::use_rate(sim::SimTime now) const {
  const double window = static_cast<double>(now - window_start_);
  if (window <= 0.0) return 0.0;
  return busy_integral(now) / (window * static_cast<double>(busy_since_.size()));
}

}  // namespace mra::metrics
