#include "metrics/collector.hpp"

#include <cassert>

namespace mra::metrics {

std::size_t Collector::bucket_of(std::size_t size) const {
  if (by_size_.empty() || max_size_ <= 1) return 0;
  std::size_t b = (size - 1) * by_size_.size() / max_size_;
  if (b >= by_size_.size()) b = by_size_.size() - 1;
  return b;
}

void Collector::on_issue(sim::SimTime t, SiteId site, RequestId /*seq*/,
                         const ResourceSet& /*rs*/) {
  if (in_flight_.size() <= static_cast<std::size_t>(site)) {
    in_flight_.resize(static_cast<std::size_t>(site) + 1);
  }
  auto& f = in_flight_[static_cast<std::size_t>(site)];
  f.issued = t;
  f.counted = t >= window_start_;
}

void Collector::on_grant(sim::SimTime t, SiteId site, RequestId /*seq*/,
                         const ResourceSet& rs) {
  usage_.on_acquire(t, rs);
  ++granted_count_;
  auto& f = in_flight_[static_cast<std::size_t>(site)];
  f.granted = t;
  if (f.counted) {
    const double wait_ms = sim::to_ms(t - f.issued);
    waiting_.add(wait_ms);
    waiting_sketch_.add(wait_ms);
    by_size_[bucket_of(rs.size())].add(wait_ms);
  }
}

void Collector::on_release(sim::SimTime t, SiteId site, RequestId seq,
                           const ResourceSet& rs) {
  usage_.on_release(t, rs);
  ++completed_;
  if (keep_records_) {
    const auto& f = in_flight_[static_cast<std::size_t>(site)];
    RequestRecord rec;
    rec.site = site;
    rec.seq = seq;
    rec.size = rs.size();
    rec.issued = f.issued;
    rec.granted = f.granted;
    rec.released = t;
    rec.resources = rs.to_vector();
    records_.push_back(std::move(rec));
  }
}

void Collector::reset(sim::SimTime t) {
  usage_.reset(t);
  waiting_.reset();
  waiting_sketch_.reset();
  for (auto& s : by_size_) s.reset();
  completed_ = 0;
  granted_count_ = 0;
  window_start_ = t;
  records_.clear();
  // Requests already granted keep their usage integration (handled by
  // UsageTracker::reset) but never enter the waiting statistics: their
  // `counted` flag refers to the old window.
  for (auto& f : in_flight_) f.counted = f.issued >= t;
}

}  // namespace mra::metrics
