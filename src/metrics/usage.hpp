// Exact resource-use-rate integration (the paper's §5.2 metric: the fraction
// of time resources are in use — the "coloured area" of the Gantt diagram).
#pragma once

#include <cstdint>
#include <vector>

#include "core/resource_set.hpp"
#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra::metrics {

class UsageTracker {
 public:
  explicit UsageTracker(ResourceId num_resources)
      : busy_since_(static_cast<std::size_t>(num_resources), sim::kTimeInfinity) {}

  /// Marks every resource in `rs` busy from `t` on. A resource must not be
  /// acquired twice (that would be a mutual-exclusion violation; asserts).
  void on_acquire(sim::SimTime t, const ResourceSet& rs);

  /// Marks every resource in `rs` free from `t` on.
  void on_release(sim::SimTime t, const ResourceSet& rs);

  /// Discards everything integrated so far and restarts the measurement
  /// window at `t` (warm-up cut). In-flight busy intervals keep counting
  /// from `t`.
  void reset(sim::SimTime t);

  /// Use rate over [window start, now] in [0, 1].
  [[nodiscard]] double use_rate(sim::SimTime now) const;

  /// Integrated busy time in resource-nanoseconds.
  [[nodiscard]] double busy_integral(sim::SimTime now) const;

  [[nodiscard]] ResourceId num_resources() const {
    return static_cast<ResourceId>(busy_since_.size());
  }

 private:
  std::vector<sim::SimTime> busy_since_;  // kTimeInfinity = free
  double accumulated_ = 0.0;              // completed busy time (res-ns)
  sim::SimTime window_start_ = 0;
};

}  // namespace mra::metrics
