#include "metrics/memory.hpp"

#include <cstdio>
#include <cstring>

namespace mra::metrics {
namespace {

// Scans /proc/self/status for a "Key:   <value> kB" line. The file is tiny
// and the probe runs a handful of times per bench row, so a plain line scan
// is plenty.
std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t value = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    unsigned long long kb = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1) {
      value = static_cast<std::uint64_t>(kb);
    }
    break;
  }
  std::fclose(f);
  return value;
}

}  // namespace

std::uint64_t read_vm_rss_kb() { return read_status_kb("VmRSS"); }

std::uint64_t read_vm_peak_kb() { return read_status_kb("VmHWM"); }

}  // namespace mra::metrics
