#include "metrics/stats.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mra::metrics {
namespace {

// %.17g round-trips every finite double exactly through a correctly-rounded
// parser; non-finite values become quoted tokens so the line stays valid
// JSON. This exactness is what makes deserialize(serialize(x)) bit-identical
// to x — the contract the fabric's cross-process merges rely on.
void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "\"nan\"";
  } else if (std::isinf(v)) {
    out += v > 0.0 ? "\"inf\"" : "\"-inf\"";
  } else {
    std::array<char, 32> buf{};
    const int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
    out.append(buf.data(), static_cast<std::size_t>(n));
  }
}

// Strict linear scanner: both serialized formats have a fixed key order, so
// no general JSON parser is needed. Every mismatch throws.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void expect(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      throw std::invalid_argument(
          "metrics deserialize: malformed input at offset " +
          std::to_string(pos));
    }
    pos += lit.size();
  }

  [[nodiscard]] bool peek(char c) const {
    return pos < text.size() && text[pos] == c;
  }

  std::uint64_t read_u64() {
    std::uint64_t v = 0;
    const auto [end, ec] =
        std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (ec != std::errc{}) {
      throw std::invalid_argument(
          "metrics deserialize: expected integer at offset " +
          std::to_string(pos));
    }
    pos = static_cast<std::size_t>(end - text.data());
    return v;
  }

  double read_double() {
    if (peek('"')) {  // the non-finite tokens "inf" / "-inf" / "nan"
      const std::size_t close = text.find('"', pos + 1);
      if (close == std::string_view::npos) {
        throw std::invalid_argument(
            "metrics deserialize: unterminated token at offset " +
            std::to_string(pos));
      }
      const std::string_view tok = text.substr(pos + 1, close - pos - 1);
      pos = close + 1;
      if (tok == "inf") return std::numeric_limits<double>::infinity();
      if (tok == "-inf") return -std::numeric_limits<double>::infinity();
      if (tok == "nan") return std::numeric_limits<double>::quiet_NaN();
      throw std::invalid_argument(
          "metrics deserialize: unknown non-finite token '" +
          std::string(tok) + "'");
    }
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (ec != std::errc{}) {
      throw std::invalid_argument(
          "metrics deserialize: expected number at offset " +
          std::to_string(pos));
    }
    pos = static_cast<std::size_t>(end - text.data());
    return v;
  }
};

}  // namespace

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::serialize() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"mean\":";
  append_double(out, mean_);
  out += ",\"m2\":";
  append_double(out, m2_);
  out += ",\"sum\":";
  append_double(out, sum_);
  out += ",\"min\":";
  append_double(out, min_);
  out += ",\"max\":";
  append_double(out, max_);
  out += '}';
  return out;
}

RunningStats RunningStats::deserialize(std::string_view text) {
  Cursor c{text};
  RunningStats s;
  c.expect("{\"count\":");
  s.count_ = c.read_u64();
  c.expect(",\"mean\":");
  s.mean_ = c.read_double();
  c.expect(",\"m2\":");
  s.m2_ = c.read_double();
  c.expect(",\"sum\":");
  s.sum_ = c.read_double();
  c.expect(",\"min\":");
  s.min_ = c.read_double();
  c.expect(",\"max\":");
  s.max_ = c.read_double();
  c.expect("}");
  return s;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    // Casting NaN/±inf to an integer is UB; they must never reach an index.
    ++nonfinite_;
    return;
  }
  ++total_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  // x just below hi_ can round up to counts_.size() in the division.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::percentile(double p) const {
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("Histogram::percentile: p outside [0, 100]");
  }
  if (total_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  target = std::clamp<std::uint64_t>(target, 1, total_);

  std::uint64_t seen = underflow_;
  if (target <= seen) return min_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c != 0 && target <= seen + c) {
      // Interpolate by rank within the bucket: the r-th of c samples sits at
      // fraction r/c of the bucket, so low ranks answer near the lower edge
      // instead of every rank answering the upper edge.
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(c);
      const double v = bucket_low(i) + width * frac;
      return std::clamp(v, min_, max_);
    }
    seen += c;
  }
  return max_;  // rank lands in the overflow region
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("QuantileSketch: alpha must be in (0, 1)");
  }
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  log_gamma_ = std::log(gamma_);
  // Log bucket j covers (gamma^(j-1), gamma^j]; span every j that a
  // trackable value can map to.
  const auto j_min =
      static_cast<std::int32_t>(std::floor(std::log(kMinTrackable) / log_gamma_));
  const auto j_max =
      static_cast<std::int32_t>(std::ceil(std::log(kMaxTrackable) / log_gamma_));
  index_offset_ = j_min;
  num_buckets_ = static_cast<std::size_t>(j_max - j_min + 1);
}

std::size_t QuantileSketch::bucket_index(double x) const {
  // Precondition: kMinTrackable < x <= kMaxTrackable.
  const auto j =
      static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
  const std::int32_t rel = j - index_offset_;
  const auto clamped = std::clamp<std::int32_t>(
      rel, 0, static_cast<std::int32_t>(num_buckets_) - 1);
  return 1 + static_cast<std::size_t>(clamped);
}

double QuantileSketch::bucket_low(std::size_t idx) const {
  // idx >= 1: log bucket (gamma^(j-1), gamma^j] with j = offset + idx - 1.
  return std::exp(static_cast<double>(index_offset_ +
                                      static_cast<std::int32_t>(idx) - 2) *
                  log_gamma_);
}

double QuantileSketch::bucket_high(std::size_t idx) const {
  return std::exp(static_cast<double>(index_offset_ +
                                      static_cast<std::int32_t>(idx) - 1) *
                  log_gamma_);
}

void QuantileSketch::add(double x) {
  if (!std::isfinite(x)) {
    ++nonfinite_;  // never cast to an index: that cast is UB
    return;
  }
  if (counts_.empty()) counts_.assign(1 + num_buckets_, 0);
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (x < 0.0) {
    ++underflow_;
  } else if (x <= kMinTrackable) {
    ++counts_[0];
  } else if (x > kMaxTrackable) {
    ++overflow_;
  } else {
    ++counts_[bucket_index(x)];
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: mismatched relative-accuracy parameters");
  }
  nonfinite_ += other.nonfinite_;
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(1 + num_buckets_, 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::percentile(double p) const {
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument(
        "QuantileSketch::percentile: p outside [0, 100]");
  }
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::clamp<std::uint64_t>(target, 1, count_);

  std::uint64_t seen = underflow_;
  if (target <= seen) return min_;
  seen += counts_[0];
  if (target <= seen) return std::clamp(0.0, min_, max_);
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c != 0 && target <= seen + c) {
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(c);
      const double lo = bucket_low(i);
      const double v = lo + (bucket_high(i) - lo) * frac;
      return std::clamp(v, min_, max_);
    }
    seen += c;
  }
  return max_;  // rank lands in the overflow region
}

std::string QuantileSketch::serialize() const {
  std::string out = "{\"alpha\":";
  append_double(out, alpha_);
  out += ",\"count\":" + std::to_string(count_);
  out += ",\"underflow\":" + std::to_string(underflow_);
  out += ",\"overflow\":" + std::to_string(overflow_);
  out += ",\"nonfinite\":" + std::to_string(nonfinite_);
  out += ",\"min\":";
  append_double(out, min_);
  out += ",\"max\":";
  append_double(out, max_);
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(i) + ',' + std::to_string(counts_[i]) + ']';
  }
  out += "]}";
  return out;
}

QuantileSketch QuantileSketch::deserialize(std::string_view text) {
  Cursor c{text};
  c.expect("{\"alpha\":");
  const double alpha = c.read_double();
  QuantileSketch s(alpha);  // derives gamma / offset / bucket span from alpha
  c.expect(",\"count\":");
  s.count_ = c.read_u64();
  c.expect(",\"underflow\":");
  s.underflow_ = c.read_u64();
  c.expect(",\"overflow\":");
  s.overflow_ = c.read_u64();
  c.expect(",\"nonfinite\":");
  s.nonfinite_ = c.read_u64();
  c.expect(",\"min\":");
  s.min_ = c.read_double();
  c.expect(",\"max\":");
  s.max_ = c.read_double();
  c.expect(",\"buckets\":[");
  // add() allocates the bucket array on the first sample, so a non-empty
  // sketch always carries it; preserve that invariant (merge iterates over
  // other.counts_, so dropping it would silently lose every bucket).
  if (s.count_ > 0) s.counts_.assign(1 + s.num_buckets_, 0);
  while (!c.peek(']')) {
    c.expect("[");
    const std::uint64_t idx = c.read_u64();
    c.expect(",");
    const std::uint64_t cnt = c.read_u64();
    c.expect("]");
    if (idx >= s.counts_.size()) {
      throw std::invalid_argument(
          "QuantileSketch::deserialize: bucket index out of range");
    }
    s.counts_[idx] = cnt;
    if (c.peek(',')) c.expect(",");
  }
  c.expect("]}");
  return s;
}

void QuantileSketch::reset() {
  counts_.clear();
  count_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  nonfinite_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------------------
// Student-t confidence intervals
// ---------------------------------------------------------------------------

double student_t95(std::uint64_t df) {
  if (df == 0) {
    throw std::invalid_argument("student_t95: df must be >= 1");
  }
  // t_{0.975, df}, exact through df = 30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= kTable.size()) return kTable[df - 1];
  // Above 30, interpolate linearly in 1/df between tabulated anchors — the
  // textbook approximation; error < 1e-3 everywhere.
  struct Anchor {
    double df;
    double t;
  };
  static constexpr std::array<Anchor, 4> kAnchors = {
      Anchor{40.0, 2.021}, Anchor{60.0, 2.000}, Anchor{120.0, 1.980},
      Anchor{std::numeric_limits<double>::infinity(), 1.960}};
  double prev_df = 30.0;
  double prev_t = kTable.back();
  const auto x = static_cast<double>(df);
  for (const Anchor& a : kAnchors) {
    if (x <= a.df) {
      const double w =
          (1.0 / prev_df - 1.0 / x) / (1.0 / prev_df - 1.0 / a.df);
      return prev_t + w * (a.t - prev_t);
    }
    prev_df = a.df;
    prev_t = a.t;
  }
  return 1.960;  // unreachable: the last anchor is at infinity
}

Estimate mean_ci95(const RunningStats& per_rep) {
  Estimate e;
  e.mean = per_rep.mean();
  const std::uint64_t n = per_rep.count();
  if (n < 2) return e;  // ci95_half stays NaN: no interval from one point
  e.ci95_half = student_t95(n - 1) * per_rep.stddev() /
                std::sqrt(static_cast<double>(n));
  return e;
}

}  // namespace mra::metrics
