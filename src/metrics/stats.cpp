#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mra::metrics {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return bucket_low(i) + width;
  }
  return hi_;
}

}  // namespace mra::metrics
