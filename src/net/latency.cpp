#include "net/latency.hpp"

namespace mra::net {

std::unique_ptr<LatencyModel> make_fixed_latency(sim::SimDuration latency) {
  return std::make_unique<FixedLatency>(latency);
}

std::unique_ptr<LatencyModel> make_uniform_jitter_latency(
    sim::SimDuration base, double jitter_fraction) {
  return std::make_unique<UniformJitterLatency>(base, jitter_fraction);
}

std::unique_ptr<LatencyModel> make_bounded_delay_latency(
    sim::SimDuration base, sim::SimDuration bound) {
  return std::make_unique<BoundedDelayLatency>(base, bound);
}

std::unique_ptr<LatencyModel> make_hierarchical_latency(
    int cluster_size, sim::SimDuration local, sim::SimDuration remote) {
  return std::make_unique<HierarchicalLatency>(cluster_size, local, remote);
}

std::unique_ptr<LatencyModel> make_quantized_latency(
    std::unique_ptr<LatencyModel> inner, sim::SimDuration quantum) {
  return std::make_unique<QuantizedLatency>(std::move(inner), quantum);
}

}  // namespace mra::net
