// The pooled allocator behind net::Message's class-level operator new /
// delete.
//
// Every protocol message in a simulation is heap-born (`std::make_unique<M>`)
// and dies a few simulated microseconds later in the delivery callback —
// at large N that is millions of malloc/free pairs doing no useful work.
// This pool routes message storage through a thread-local
// core::FreeListPool: after warm-up a simulation recycles the same few
// cache-warm blocks and the system allocator drops out of the deliver path
// entirely. Thread-local matches the concurrency model (one simulation is
// single-threaded; experiment::run_sweep runs independent simulations on
// worker threads, each with its own pool).
//
// Building with MRA_SANITIZE=ON defines MRA_MESSAGE_POOL_DISABLED, which
// forwards straight to the system allocator so AddressSanitizer can still
// see message lifetime bugs instead of benign pool reuse.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mra::net {

/// Introspection for tests and DESIGN.md §9 examples; all counters are for
/// the calling thread's pool.
struct MessagePoolStats {
  bool enabled = false;            ///< false when MRA_MESSAGE_POOL_DISABLED
  std::uint64_t allocations = 0;   ///< operator new calls served
  std::uint64_t deallocations = 0; ///< operator delete calls served
  std::size_t bytes_reserved = 0;  ///< arena bytes held for recycling
};

[[nodiscard]] MessagePoolStats message_pool_stats();

/// Allocation entry points used by net::Message; not for direct use.
[[nodiscard]] void* message_allocate(std::size_t bytes);
void message_deallocate(void* p, std::size_t bytes) noexcept;

}  // namespace mra::net
