// Network latency models.
//
// All models are deterministic given the RNG seed. The network enforces FIFO
// per ordered link on top of whatever the model returns, matching the paper's
// system model (reliable FIFO channels).
#pragma once

#include <memory>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mra::net {

/// Strategy interface: latency of one message on the link src -> dst.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual sim::SimDuration sample(int src, int dst, sim::Rng& rng) = 0;
};

/// Constant latency (the paper's γ ≈ 0.6 ms).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(sim::SimDuration latency) : latency_(latency) {}
  sim::SimDuration sample(int /*src*/, int /*dst*/, sim::Rng& /*rng*/) override {
    return latency_;
  }

 private:
  sim::SimDuration latency_;
};

/// Uniform jitter around a base latency: base * U[1-jitter, 1+jitter].
class UniformJitterLatency final : public LatencyModel {
 public:
  UniformJitterLatency(sim::SimDuration base, double jitter_fraction)
      : base_(base), jitter_(jitter_fraction) {}
  sim::SimDuration sample(int /*src*/, int /*dst*/, sim::Rng& rng) override {
    const double f = rng.uniform_real(1.0 - jitter_, 1.0 + jitter_);
    return static_cast<sim::SimDuration>(static_cast<double>(base_) * f);
  }

 private:
  sim::SimDuration base_;
  double jitter_;
};

/// Base latency plus a uniformly drawn extra delay in [0, bound]: the
/// adversarial schedule explorer's perturbation model (src/check/explore.*).
/// Messages on *different* links may be reordered by up to `bound`, while
/// the network's per-link watermark keeps each ordered pair FIFO — i.e.
/// delay-bounded reordering within the paper's reliable-FIFO contract.
class BoundedDelayLatency final : public LatencyModel {
 public:
  BoundedDelayLatency(sim::SimDuration base, sim::SimDuration bound)
      : base_(base), bound_(bound) {}
  sim::SimDuration sample(int /*src*/, int /*dst*/, sim::Rng& rng) override {
    if (bound_ <= 0) return base_;
    return base_ + static_cast<sim::SimDuration>(
                       rng.uniform_int(0, static_cast<std::int64_t>(bound_)));
  }

 private:
  sim::SimDuration base_;
  sim::SimDuration bound_;
};

/// Two-level topology: cheap intra-cluster links, expensive inter-cluster
/// links. Models the paper's future-work target (hierarchical Clouds): sites
/// [0, cluster_size) form cluster 0, the next cluster_size sites cluster 1...
class HierarchicalLatency final : public LatencyModel {
 public:
  HierarchicalLatency(int cluster_size, sim::SimDuration local,
                      sim::SimDuration remote)
      : cluster_size_(cluster_size), local_(local), remote_(remote) {}
  sim::SimDuration sample(int src, int dst, sim::Rng& /*rng*/) override {
    return (src / cluster_size_ == dst / cluster_size_) ? local_ : remote_;
  }

 private:
  int cluster_size_;
  sim::SimDuration local_;
  sim::SimDuration remote_;
};

/// Rounds another model's samples *up* to a multiple of `quantum`, aligning
/// deliveries onto a shared time grid. With grid-aligned send times this
/// makes independent messages collide at the same instant — which is exactly
/// what the exhaustive explorer (src/check/dpor.*) enumerates: same-instant
/// commutations. quantum <= 0 passes samples through unchanged.
class QuantizedLatency final : public LatencyModel {
 public:
  QuantizedLatency(std::unique_ptr<LatencyModel> inner,
                   sim::SimDuration quantum)
      : inner_(std::move(inner)), quantum_(quantum) {}
  sim::SimDuration sample(int src, int dst, sim::Rng& rng) override {
    const sim::SimDuration raw = inner_->sample(src, dst, rng);
    if (quantum_ <= 0 || raw <= 0) return raw;
    return (raw + quantum_ - 1) / quantum_ * quantum_;
  }

 private:
  std::unique_ptr<LatencyModel> inner_;
  sim::SimDuration quantum_;
};

/// Factory helpers.
std::unique_ptr<LatencyModel> make_fixed_latency(sim::SimDuration latency);
std::unique_ptr<LatencyModel> make_uniform_jitter_latency(
    sim::SimDuration base, double jitter_fraction);
std::unique_ptr<LatencyModel> make_bounded_delay_latency(
    sim::SimDuration base, sim::SimDuration bound);
std::unique_ptr<LatencyModel> make_hierarchical_latency(
    int cluster_size, sim::SimDuration local, sim::SimDuration remote);
std::unique_ptr<LatencyModel> make_quantized_latency(
    std::unique_ptr<LatencyModel> inner, sim::SimDuration quantum);

}  // namespace mra::net
