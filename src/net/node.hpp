// Base class for protocol participants.
#pragma once

#include <memory>

#include "core/types.hpp"
#include "net/message.hpp"

namespace mra::net {

class Network;

/// A site in the distributed system. Concrete protocols subclass this and
/// implement on_message(). Nodes are registered with a Network, which routes
/// messages and injects the latency model.
class Node {
 public:
  virtual ~Node() = default;

  [[nodiscard]] SiteId id() const { return id_; }

  /// The network this node is registered with (null before registration).
  [[nodiscard]] Network* network() const { return network_; }

  /// Called by the network when a message addressed to this node arrives.
  virtual void on_message(SiteId from, const Message& msg) = 0;

  /// Called once after every node is registered, before the first event.
  virtual void on_start() {}

 protected:
  friend class Network;
  Network* network_ = nullptr;
  SiteId id_ = kNoSite;
};

}  // namespace mra::net
