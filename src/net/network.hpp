// The message-passing substrate: a complete graph of reliable FIFO links.
//
// System model from the paper (§3.1): N reliable nodes, reliable FIFO links
// (no loss, no duplication), complete communication graph, no shared memory.
// FIFO is enforced per ordered pair (src, dst): a message never overtakes an
// earlier message on the same link, even when the latency model jitters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_map.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mra::check {
class Observer;
}  // namespace mra::check

namespace mra::net {

/// Per-kind message statistics.
struct MessageStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  /// Fixed per-message envelope added to Message::wire_size() (addresses,
  /// type tag, transport header).
  static constexpr std::size_t kEnvelopeBytes = 24;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; assigns the next dense SiteId (0-based). The network
  /// does not own nodes.
  SiteId add_node(Node& node);

  /// Calls on_start() on every node (in id order).
  void start();

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(SiteId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Sends `msg` from `src` to `dst`. Self-sends are delivered through the
  /// same path (with latency) unless `allow_zero_latency_self` was set.
  void send(SiteId src, SiteId dst, std::unique_ptr<Message> msg);

  /// Delivery with explicitly zero latency (used by the idealised
  /// shared-memory scheduler, which the paper uses as an upper bound).
  void send_instant(SiteId src, SiteId dst, std::unique_ptr<Message> msg);

  /// Total messages sent so far.
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Messages sent but not yet delivered — the obs-layer in-flight gauge.
  /// Lifetime accounting, deliberately not cleared by reset_stats(): a
  /// warm-up reset must not make in-flight go negative.
  [[nodiscard]] std::uint64_t in_flight_messages() const { return in_flight_; }

  /// Per-kind statistics, keyed by Message::kind(). The transparent
  /// comparator lets deliver() look kinds up by string_view without
  /// materialising a std::string per message.
  using StatsMap = std::map<std::string, MessageStats, std::less<>>;
  [[nodiscard]] const StatsMap& stats_by_kind() const { return stats_; }

  /// Resets statistics (e.g. after a warm-up phase).
  void reset_stats();

  /// Attaches a conformance observer (src/check/): every send emits a kSend
  /// event and every delivery a kDeliver event carrying the same message id,
  /// so oracles can pair them (FIFO/causality checking). Null detaches. The
  /// no-observer delivery path is byte-identical to the unhooked one — one
  /// predictable branch per message.
  void set_observer(check::Observer* observer) { observer_ = observer; }
  [[nodiscard]] check::Observer* observer() const { return observer_; }

 private:
  void deliver(SiteId src, SiteId dst, std::unique_ptr<Message> msg,
               sim::SimDuration latency);

  /// Per-link FIFO watermark. A dense [src * N + dst] matrix is the fastest
  /// lookup but is N^2 (8 TB at N = 10^6), so above kDenseFifoMaxSites the
  /// watermarks switch to one sorted sparse map per source site — each site
  /// talks to a handful of peers (tree fathers), so lookups stay O(log
  /// degree). An absent entry reads as SimTime{} == kTimeZero, the dense
  /// initial value, so the two representations clamp identically
  /// (DESIGN.md §13).
  [[nodiscard]] sim::SimTime& fifo_watermark(SiteId src, SiteId dst) {
    if (!last_delivery_dense_.empty()) {
      return last_delivery_dense_[static_cast<std::size_t>(src) *
                                      nodes_.size() +
                                  static_cast<std::size_t>(dst)];
    }
    return last_delivery_sparse_[static_cast<std::size_t>(src)][dst];
  }

  /// Largest N that keeps the dense watermark matrix (32 MB at 2048).
  static constexpr std::size_t kDenseFifoMaxSites = 2048;

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  sim::Rng rng_;
  std::vector<Node*> nodes_;
  std::vector<sim::SimTime> last_delivery_dense_;
  std::vector<core::FlatMap<SiteId, sim::SimTime, 2>> last_delivery_sparse_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t in_flight_ = 0;
  StatsMap stats_;
  check::Observer* observer_ = nullptr;
  std::int64_t observed_msg_id_ = 0;  ///< message ids handed to the observer
  bool started_ = false;
};

}  // namespace mra::net
