// Polymorphic message base for all protocols.
//
// Messages are heap-allocated, owned by unique_ptr, and handed to the
// destination node by reference. `kind()` is a free-form label used for
// per-type message statistics (the paper's "message complexity" discussions),
// and `wire_size()` approximates the serialized size in bytes so benches can
// report byte counts as well as message counts.
#pragma once

#include <cstddef>
#include <string_view>

namespace mra::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Messages churn at simulator rates, so their storage goes through the
  /// thread-local recycling pool (net/message_pool.hpp) instead of the
  /// system allocator. Only the sized deallocation function is declared:
  /// the deleting destructor always knows the dynamic size, and the pool
  /// needs it to return the block to the right size class.
  static void* operator new(std::size_t bytes);
  static void operator delete(void* p, std::size_t bytes) noexcept;

  /// Stable label for stats, e.g. "ReqCnt", "Token", "NT.Request".
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Approximate serialized size in bytes (headers excluded; a fixed
  /// per-message envelope is added by the network).
  [[nodiscard]] virtual std::size_t wire_size() const { return 16; }
};

}  // namespace mra::net
