#include "net/message_pool.hpp"

#include <new>

#include "core/arena.hpp"
#include "net/message.hpp"

namespace mra::net {

void* Message::operator new(std::size_t bytes) {
  return message_allocate(bytes);
}

void Message::operator delete(void* p, std::size_t bytes) noexcept {
  message_deallocate(p, bytes);
}

#ifdef MRA_MESSAGE_POOL_DISABLED

MessagePoolStats message_pool_stats() { return MessagePoolStats{}; }

void* message_allocate(std::size_t bytes) { return ::operator new(bytes); }

void message_deallocate(void* p, std::size_t /*bytes*/) noexcept {
  ::operator delete(p);
}

#else

namespace {

struct ThreadPool {
  core::FreeListPool pool;
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
};

ThreadPool& thread_pool() {
  thread_local ThreadPool pool;
  return pool;
}

}  // namespace

MessagePoolStats message_pool_stats() {
  const ThreadPool& tp = thread_pool();
  MessagePoolStats stats;
  stats.enabled = true;
  stats.allocations = tp.allocations;
  stats.deallocations = tp.deallocations;
  stats.bytes_reserved = tp.pool.arena().bytes_reserved();
  return stats;
}

void* message_allocate(std::size_t bytes) {
  ThreadPool& tp = thread_pool();
  ++tp.allocations;
  return tp.pool.allocate(bytes);
}

void message_deallocate(void* p, std::size_t bytes) noexcept {
  ThreadPool& tp = thread_pool();
  ++tp.deallocations;
  tp.pool.deallocate(p, bytes);
}

#endif  // MRA_MESSAGE_POOL_DISABLED

}  // namespace mra::net
