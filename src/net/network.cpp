#include "net/network.hpp"

#include <cassert>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "check/event.hpp"
#include "check/mutant.hpp"

namespace mra::net {

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : sim_(simulator), latency_(std::move(latency)), rng_(seed) {
  if (!latency_) throw std::invalid_argument("Network: null latency model");
}

SiteId Network::add_node(Node& node) {
  if (started_) throw std::logic_error("Network: add_node after start()");
  const SiteId id = static_cast<SiteId>(nodes_.size());
  node.id_ = id;
  node.network_ = this;
  nodes_.push_back(&node);
  return id;
}

void Network::start() {
  started_ = true;
  const std::size_t n = nodes_.size();
  if (n <= kDenseFifoMaxSites) {
    last_delivery_dense_.assign(n * n, sim::kTimeZero);
    last_delivery_sparse_.clear();
  } else {
    last_delivery_dense_.clear();
    last_delivery_sparse_.assign(n, {});
  }
  for (Node* node : nodes_) node->on_start();
}

void Network::send(SiteId src, SiteId dst, std::unique_ptr<Message> msg) {
  deliver(src, dst, std::move(msg), latency_->sample(src, dst, rng_));
}

void Network::send_instant(SiteId src, SiteId dst,
                           std::unique_ptr<Message> msg) {
  deliver(src, dst, std::move(msg), 0);
}

void Network::deliver(SiteId src, SiteId dst, std::unique_ptr<Message> msg,
                      sim::SimDuration latency) {
  assert(msg && "Network: null message");
  assert(dst >= 0 && dst < node_count() && "Network: bad destination");
  assert(src >= 0 && src < node_count() && "Network: bad source");

  ++total_messages_;
  ++in_flight_;
  const std::uint64_t size = kEnvelopeBytes + msg->wire_size();
  total_bytes_ += size;
  const std::string_view kind = msg->kind();
  auto it = stats_.find(kind);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(kind), MessageStats{}).first;
  }
  ++it->second.count;
  it->second.bytes += size;

  // FIFO per ordered link: never deliver before a previously sent message on
  // the same (src, dst) pair. The mutant skips the clamp (delivery order then
  // follows raw latency), which the FIFO oracle must flag.
  sim::SimTime& watermark = fifo_watermark(src, dst);
  sim::SimTime at = sim_.now() + latency;
  if (!check::mutant_enabled(check::Mutant::kNetFifoViolation)) {
    if (at <= watermark) at = watermark + 1;
  }
  watermark = at;

  if (observer_ != nullptr) {
    // Checking mode: emit kSend now and kDeliver when the message fires,
    // paired by a per-network message id. The wrapper capture still fits the
    // callback's inline buffer; kind/bytes are re-derived from the owned
    // message at fire time so they need not travel.
    const std::int64_t msg_id = ++observed_msg_id_;
    check::Event ev;
    ev.type = check::EventType::kSend;
    ev.at = sim_.now();
    ev.site = src;
    ev.peer = dst;
    ev.seq = msg_id;
    ev.kind = kind;
    ev.bytes = static_cast<std::uint32_t>(size);
    observer_->on_event(ev);

    // Deliveries commute across destination sites (disjoint node state; the
    // per-link FIFO watermark was already advanced above), so tag with dst
    // for the model checker's same-instant commutation analysis.
    Node* target = nodes_[static_cast<std::size_t>(dst)];
    sim_.schedule_at(at, static_cast<int>(dst), [this, target, src, msg_id,
                          owned = std::move(msg)]() {
      --in_flight_;
      if (observer_ != nullptr) {
        check::Event dev;
        dev.type = check::EventType::kDeliver;
        dev.at = sim_.now();
        dev.site = src;
        dev.peer = target->id();
        dev.seq = msg_id;
        dev.kind = owned->kind();
        dev.bytes =
            static_cast<std::uint32_t>(kEnvelopeBytes + owned->wire_size());
        observer_->on_event(dev);
      }
      target->on_message(src, *owned);
    });
    return;
  }

  // The event owns the message outright: sim::Callback is move-aware, so
  // the unique_ptr travels through the queue with no shared_ptr control
  // block and no closure heap allocation (the capture fits the callback's
  // inline buffer). Pool recycling in ~Message closes the loop.
  Node* target = nodes_[static_cast<std::size_t>(dst)];
  sim_.schedule_at(at, static_cast<int>(dst),
                   [this, target, src, owned = std::move(msg)]() {
                     --in_flight_;
                     target->on_message(src, *owned);
                   });
}

void Network::reset_stats() {
  total_messages_ = 0;
  total_bytes_ = 0;
  stats_.clear();
}

}  // namespace mra::net
