#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace mra::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection-free-enough bounded draw with rejection to kill
  // modulo bias exactly.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // next_double() can return exactly 0; log(0) is -inf, so nudge.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace mra::sim
