// Simulated-time primitives.
//
// All simulation timestamps are integer nanoseconds (`SimTime`). Integer time
// keeps event ordering exact and reruns bit-reproducible, which the property
// tests rely on. Helpers convert from the units the paper uses (§5.1
// quotes ms: γ ≈ 0.6 ms network latency, CS durations α ∈ [5 ms, 35 ms]).
#pragma once

#include <cstdint>

namespace mra::sim {

/// Absolute simulated time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Relative simulated duration, in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;

/// Largest representable time; used as "never".
inline constexpr SimTime kTimeInfinity = INT64_MAX;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a floating-point millisecond count (the paper's unit) to SimTime.
constexpr SimDuration from_ms(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}

/// Converts a SimTime/SimDuration to floating-point milliseconds.
constexpr double to_ms(SimDuration t) { return static_cast<double>(t) / 1e6; }

/// Converts to floating-point seconds.
constexpr double to_sec(SimDuration t) { return static_cast<double>(t) / 1e9; }

}  // namespace mra::sim
