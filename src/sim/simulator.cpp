#include "sim/simulator.hpp"

#include "check/event.hpp"

namespace mra::sim {

std::uint64_t Simulator::run(SimTime until) { return run_loop(until, nullptr); }

std::uint64_t Simulator::run_until(const std::function<bool()>& pred,
                                   SimTime until) {
  return run_loop(until, &pred);
}

std::uint64_t Simulator::run_loop(SimTime until,
                                  const std::function<bool()>* pred) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  bool done = false;
  // One horizon check and one clock update per *instant*; the inner loop
  // then drains every event at that instant. Events scheduled for the
  // current instant by these callbacks have larger sequence numbers, so
  // the batch picks them up after the already-queued ones — the same
  // (time, seq) order the one-at-a-time loop produced. fire_next_at
  // reports the follow-up time (post-callback, so it is authoritative),
  // making steady state exactly one queue call per event.
  SimTime t = queue_.next_time();
  while (!done) {
    if (queue_.empty() || t > until) break;
    now_ = t;
    if (observer_ != nullptr) observer_->on_advance(t);
    SimTime next = t;
    while (next == t && queue_.fire_next_at(t, &next)) {
      ++fired;
      ++processed_;
      if (event_budget_ != 0 && fired > event_budget_) {
        throw EventBudgetExceeded(event_budget_);
      }
      if (stop_requested_ || (pred != nullptr && (*pred)())) {
        done = true;
        break;
      }
    }
    t = next;
  }
  // When stopping because the horizon was reached, advance the clock so that
  // metrics integrate exactly up to `until`.
  if (queue_.empty() || queue_.next_time() > until) {
    if (until != kTimeInfinity && until > now_) now_ = until;
  }
  return fired;
}

}  // namespace mra::sim
