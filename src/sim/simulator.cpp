#include "sim/simulator.hpp"

namespace mra::sim {

std::uint64_t Simulator::run(SimTime until) { return run_loop(until, nullptr); }

std::uint64_t Simulator::run_until(const std::function<bool()>& pred,
                                   SimTime until) {
  return run_loop(until, &pred);
}

std::uint64_t Simulator::run_loop(SimTime until,
                                  const std::function<bool()>* pred) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++fired;
    ++processed_;
    if (event_budget_ != 0 && fired > event_budget_) {
      throw EventBudgetExceeded(event_budget_);
    }
    if (pred != nullptr && (*pred)()) break;
  }
  // When stopping because the horizon was reached, advance the clock so that
  // metrics integrate exactly up to `until`.
  if (queue_.empty() || queue_.next_time() > until) {
    if (until != kTimeInfinity && until > now_) now_ = until;
  }
  return fired;
}

}  // namespace mra::sim
