#include "sim/simulator.hpp"

#include <numeric>
#include <utility>

#include "check/event.hpp"

namespace mra::sim {

std::uint64_t Simulator::run(SimTime until) {
  return hook_ == nullptr ? run_loop(until, {}) : run_loop_commuting(until, {});
}

std::uint64_t Simulator::run_until(PredicateRef pred, SimTime until) {
  return hook_ == nullptr ? run_loop(until, pred)
                          : run_loop_commuting(until, pred);
}

std::uint64_t Simulator::run_loop(SimTime until, PredicateRef pred) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  bool done = false;
  // One horizon check and one clock update per *instant*; the inner loop
  // then drains every event at that instant. Events scheduled for the
  // current instant by these callbacks have larger sequence numbers, so
  // the batch picks them up after the already-queued ones — the same
  // (time, seq) order the one-at-a-time loop produced. fire_next_at
  // reports the follow-up time (post-callback, so it is authoritative),
  // making steady state exactly one queue call per event.
  SimTime t = queue_.next_time();
  while (!done) {
    if (queue_.empty() || t > until) break;
    now_ = t;
    if (observer_ != nullptr) observer_->on_advance(t);
    SimTime next = t;
    while (next == t && queue_.fire_next_at(t, &next)) {
      ++fired;
      ++processed_;
      if (event_budget_ != 0 && fired > event_budget_) {
        throw EventBudgetExceeded(event_budget_);
      }
      if (stop_requested_ || (pred && pred())) {
        done = true;
        break;
      }
    }
    t = next;
  }
  // When stopping because the horizon was reached, advance the clock so that
  // metrics integrate exactly up to `until`.
  if (queue_.empty() || queue_.next_time() > until) {
    if (until != kTimeInfinity && until > now_) now_ = until;
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Commutation (model-checking) mode. Every scheduled event lives in the
// deferred_ slab; the queue holds wrappers that extract slots into round_.
// The run loop drains an instant in rounds: extract everything queued at t,
// let the hook pick an order, execute; callbacks scheduling at t feed the
// next round. With the identity order this reproduces the plain loop's
// (time, seq) execution order exactly (newly scheduled same-instant events
// have larger seq, so they came after the already-queued batch either way).
// ---------------------------------------------------------------------------

EventId Simulator::schedule_deferred(SimTime at, int tag,
                                     EventQueue::Callback cb) {
  std::uint32_t slot;
  if (deferred_free_ != kNoDeferredSlot) {
    slot = deferred_free_;
    deferred_free_ = deferred_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(deferred_.size());
    deferred_.emplace_back();
  }
  Deferred& d = deferred_[slot];
  d.callback = std::move(cb);
  d.tag = tag;
  d.live = true;
  d.id = queue_.schedule(at, [this, slot]() { round_.push_back(slot); });
  return d.id;
}

bool Simulator::cancel_deferred(EventId id) {
  // Linear scan: commutation mode runs tiny model-checked configurations,
  // and the checked protocols do not cancel on their hot paths.
  for (std::uint32_t slot = 0; slot < deferred_.size(); ++slot) {
    Deferred& d = deferred_[slot];
    if (!d.live || d.id != id) continue;
    // Either still queued (cancel the wrapper) or already extracted into the
    // current round (the wrapper fired; dropping liveness is enough).
    (void)queue_.cancel(id);
    release_deferred(slot);
    return true;
  }
  return false;
}

void Simulator::release_deferred(std::uint32_t slot) {
  Deferred& d = deferred_[slot];
  d.callback = {};
  d.live = false;
  d.next_free = deferred_free_;
  deferred_free_ = slot;
}

std::uint64_t Simulator::run_loop_commuting(SimTime until, PredicateRef pred) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  bool done = false;
  round_.clear();
  std::vector<int> tags;
  std::vector<std::size_t> order;
  SimTime t = queue_.next_time();
  while (!done && !queue_.empty() && t <= until) {
    now_ = t;
    if (observer_ != nullptr) observer_->on_advance(t);
    while (!done) {
      // Extract the round: every event currently queued at instant t. The
      // wrappers only append to round_, so `next` is authoritative.
      round_.clear();
      SimTime next = t;
      while (next == t && queue_.fire_next_at(t, &next)) {
      }
      if (round_.empty()) break;
      tags.clear();
      for (std::uint32_t slot : round_) tags.push_back(deferred_[slot].tag);
      order.resize(round_.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (order.size() > 1) hook_->on_round(t, tags, order);
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::uint32_t slot = round_[order[pos]];
        Deferred& d = deferred_[slot];
        if (!d.live) continue;  // cancelled earlier in this round
        EventQueue::Callback cb = std::move(d.callback);
        release_deferred(slot);
        cb();
        ++fired;
        ++processed_;
        if (event_budget_ != 0 && fired > event_budget_) {
          throw EventBudgetExceeded(event_budget_);
        }
        if (stop_requested_ || (pred && pred())) {
          done = true;
          // Re-queue the unexecuted tail of the round (in the chosen order)
          // so a later run() still sees those events, as the plain loop
          // would after an interrupted batch.
          for (std::size_t rest = pos + 1; rest < order.size(); ++rest) {
            const std::uint32_t r = round_[order[rest]];
            Deferred& rd = deferred_[r];
            if (!rd.live) continue;
            rd.id = queue_.schedule(
                t, [this, r]() { round_.push_back(r); });
          }
          break;
        }
      }
    }
    t = queue_.next_time();
  }
  if (queue_.empty() || queue_.next_time() > until) {
    if (until != kTimeInfinity && until > now_) now_ = until;
  }
  return fired;
}

}  // namespace mra::sim
