#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mra::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  if (slots_.size() >= kNoSlot) {
    throw std::length_error("EventQueue: more than 2^24 outstanding events");
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.state = SlotState::kFree;
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  if (next_seq_ >= kMaxSeq) {
    throw std::length_error("EventQueue: sequence space exhausted");
  }
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.callback = std::move(cb);
  slot.state = SlotState::kLive;
  heap_.push_back(HeapEntry{at, (next_seq_++ << kSlotBits) | index});
  sift_up(heap_.size() - 1);
  ++live_count_;
  return make_id(index, slot.generation);
}

bool EventQueue::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint64_t generation = id >> kSlotBits;
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.state != SlotState::kLive || slot.generation != generation) {
    return false;
  }
  slot.state = SlotState::kCancelled;
  ++slot.generation;  // stale ids (including this one, reused) die here
  slot.callback.reset();
  assert(live_count_ > 0);
  --live_count_;
  ++cancelled_in_heap_;
  // Keep dead heap entries from accumulating on workloads that cancel far
  // from the top: past a quarter of the live count, sweep and rebuild in
  // O(n) — amortised O(1) per cancel, and slab growth stays bounded by the
  // peak outstanding count. The live/4 ratio measured fastest on the
  // micro_engine timer workload (deeper staleness inflates sift depth,
  // tighter sweeping pays more rebuild traffic).
  if (cancelled_in_heap_ > live_count_ / 4 + kCompactSlack) compact();
  return true;
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!moving.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

std::size_t EventQueue::min_child(std::size_t pos) const {
  const std::size_t n = heap_.size();
  const std::size_t first_child = kArity * pos + 1;
  const std::size_t last_child =
      first_child + kArity <= n ? first_child + kArity : n;
  std::size_t best = first_child;
  for (std::size_t c = first_child + 1; c < last_child; ++c) {
    if (heap_[c].before(heap_[best])) best = c;
  }
  // The sift is a pointer-chase: level k+1's child group cannot be fetched
  // until `best` is known. Prefetching every candidate group overlaps the
  // next level's memory latency with this level's comparisons (3 of the 4
  // lines are wasted bandwidth, which is the cheaper currency here). The
  // per-child bound keeps even the formed address inside the array.
  for (std::size_t c = first_child; c < last_child; ++c) {
    const std::size_t grandchild = kArity * c + 1;
    if (grandchild < n) __builtin_prefetch(&heap_[grandchild]);
  }
  return best;
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  while (kArity * pos + 1 < n) {
    const std::size_t best = min_child(pos);
    if (!heap_[best].before(moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

void EventQueue::remove_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up removal: sink the root hole to a leaf along min-child links
  // (no comparison against `last` — it is a recent, usually far-future
  // event that would sink all the way anyway), then bubble `last` up from
  // the leaf, which almost always terminates immediately.
  std::size_t hole = 0;
  while (kArity * hole + 1 < n) {
    const std::size_t best = min_child(hole);
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
  sift_up(hole);
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() &&
         slots_[heap_[0].slot()].state == SlotState::kCancelled) {
    const std::uint32_t index = heap_[0].slot();
    remove_root();
    release_slot(index);
    assert(cancelled_in_heap_ > 0);
    --cancelled_in_heap_;
  }
}

void EventQueue::compact() {
  std::size_t out = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot()].state == SlotState::kLive) {
      heap_[out++] = entry;
    } else {
      release_slot(entry.slot());
    }
  }
  heap_.resize(out);
  cancelled_in_heap_ = 0;
  // Floyd heapify. The (time, seq) order is a strict total order, so the
  // rebuilt heap pops in exactly the same sequence as the lazy one would —
  // compaction is invisible to the determinism contract.
  if (out > 1) {
    for (std::size_t i = (out - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
}

SimTime EventQueue::next_time() const {
  // Dropping dead top entries does not change observable state, so the
  // const_cast cleanup is safe (same reasoning as the previous
  // tombstone-based implementation).
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled();
  if (heap_.empty()) return kTimeInfinity;
  return heap_[0].time;
}

EventQueue::Fired EventQueue::extract_root() {
  const HeapEntry top = heap_[0];
  remove_root();
  const std::uint32_t index = top.slot();
  Slot& slot = slots_[index];
  Fired fired{top.time, make_id(index, slot.generation),
              std::move(slot.callback)};
  ++slot.generation;  // cancel-after-fire becomes a stale-id no-op
  release_slot(index);
  assert(live_count_ > 0);
  --live_count_;
  return fired;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  return extract_root();
}

bool EventQueue::fire_next_at(SimTime t, SimTime* next) {
  drop_cancelled();
  if (heap_.empty() || heap_[0].time != t) {
    *next = heap_.empty() ? kTimeInfinity : heap_[0].time;
    return false;
  }
  // Overlap the slab line fill for the popped slot with the hole walk that
  // extract_root is about to do through the heap.
  __builtin_prefetch(&slots_[heap_[0].slot()]);
  Fired fired = extract_root();
  fired.callback();
  // Reported after the callback ran: newly scheduled or cancelled events
  // are reflected, so the caller can trust it without a next_time() pass.
  drop_cancelled();
  *next = heap_.empty() ? kTimeInfinity : heap_[0].time;
  return true;
}

}  // namespace mra::sim
