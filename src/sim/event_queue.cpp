#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mra::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const EventId id = next_seq_++;
  cancelled_.push_back(false);
  heap_.push(Entry{at, id, std::move(cb)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return false;
  cancelled_[id] = true;
  if (live_count_ > 0) --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_[heap_.top().seq]) {
    // Mark as "fired" so a later cancel() of this id is a no-op that does not
    // decrement live_count_ twice. (cancelled_ already true; nothing to do.)
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // const_cast-free variant: scan by copy is too slow; instead we rely on the
  // fact that drop_cancelled() is called by pop(), so the top may be stale
  // here. Walk without mutating by checking flags.
  // priority_queue gives only top(), so emulate: top is valid if not
  // cancelled; otherwise we conservatively need a mutable cleanup. We keep a
  // mutable helper via const_cast, which is safe: dropping cancelled entries
  // does not change observable state.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled();
  if (heap_.empty()) return kTimeInfinity;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  assert(live_count_ > 0);
  --live_count_;
  cancelled_[top.seq] = true;  // guard against cancel-after-fire
  return Fired{top.time, top.seq, std::move(top.callback)};
}

}  // namespace mra::sim
