// Small-buffer-optimized, move-only callable for the event hot path.
//
// std::function is the wrong vessel for scheduled events twice over: it
// requires copyable targets (which forced Network::deliver to wrap every
// message in a shared_ptr just to make the closure copyable) and it
// heap-allocates any capture beyond ~2 pointers (which made every deliver
// closure a malloc). This type owns its target inside a 40-byte inline
// buffer — enough for every engine callback in the project — and only falls
// back to the heap for oversized captures. It is move-only, so unique_ptr
// and other move-only captures travel through the event queue directly.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mra::sim {

class Callback {
 public:
  /// Inline capture budget. Holds either of the largest hot-path targets —
  /// the Network::deliver closure (node pointer + site id + unique_ptr
  /// message, 24 bytes) or a copied std::function (32 bytes on libstdc++) —
  /// and is chosen so a whole event-slab Slot (callback + ops pointer +
  /// lifecycle words) fits one 64-byte cache line. A larger capture still
  /// works; it transparently falls back to one heap allocation.
  static constexpr std::size_t kInlineBytes = 40;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function.
  Callback(F&& f) {
    using T = std::decay_t<F>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(storage_)) T(std::forward<F>(f));
      ops_ = &InlineOps<T>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) T*(new T(std::forward<F>(f)));
      ops_ = &HeapOps<T>::ops;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  /// Destroys the held target. The event queue calls this the moment an
  /// event is cancelled, so captured resources (messages, references into
  /// dying objects) are released immediately, not when the dead slot is
  /// eventually recycled.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty Callback");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineBytes && alignof(T) <= 8 &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  struct InlineOps {
    static void invoke(void* p) { (*std::launder(static_cast<T*>(p)))(); }
    static void move(void* dst, void* src) {
      T* s = std::launder(static_cast<T*>(src));
      ::new (dst) T(std::move(*s));
      s->~T();
    }
    static void destroy(void* p) { std::launder(static_cast<T*>(p))->~T(); }
    static constexpr Ops ops{&invoke, &move, &destroy};
  };

  template <typename T>
  struct HeapOps {
    static T* held(void* p) { return *std::launder(static_cast<T**>(p)); }
    static void invoke(void* p) { (*held(p))(); }
    static void move(void* dst, void* src) {
      ::new (dst) T*(held(src));  // ownership transfers with the pointer
    }
    static void destroy(void* p) { delete held(p); }
    static constexpr Ops ops{&invoke, &move, &destroy};
  };

  void move_from(Callback& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(8) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Non-owning reference to a `bool()` callable — the run-loop predicate
/// vocabulary type (two words, trivially copyable, no allocation ever).
/// std::function would heap-allocate larger captures and add a vtable-like
/// dispatch on a path executed after every event; a function_ref does not.
/// The referenced callable must outlive the call it is passed to, which
/// holds even for lambda temporaries at a call site (they live until the
/// end of the full expression). Do not store a PredicateRef.
class PredicateRef {
 public:
  /// Empty ref: evaluates as false-y via operator bool, never invoked.
  PredicateRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, PredicateRef> &&
                std::is_invocable_r_v<bool, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): call-site transparent.
  PredicateRef(F&& f)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj) -> bool {
          return static_cast<bool>(
              (*static_cast<std::remove_reference_t<F>*>(obj))());
        }) {}

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

  bool operator()() const {
    assert(call_ != nullptr && "invoking an empty PredicateRef");
    return call_(obj_);
  }

 private:
  void* obj_ = nullptr;
  bool (*call_)(void*) = nullptr;
};

}  // namespace mra::sim
