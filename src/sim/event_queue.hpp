// A deterministic pending-event set for discrete-event simulation — the
// foundation that lets the §5 evaluation be replayed bit-identically from a
// seed.
//
// Events are ordered by (time, sequence number): two events scheduled for the
// same instant fire in scheduling order. This tie-break is what makes whole
// simulations reproducible, so it is part of the contract, not an
// implementation detail.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mra::sim {

/// Identifier of a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Min-heap of scheduled callbacks keyed by (time, insertion sequence).
///
/// Cancellation is lazy: cancelled ids are remembered and skipped on pop,
/// which keeps schedule/cancel O(log n) amortised.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns an id usable with cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Total number of events ever scheduled (for stats / tests).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    SimTime time;
    EventId seq;
    // Heap entries own their callbacks via shared storage index into heap;
    // std::priority_queue cannot hold move-only lambdas in a stable way, so
    // the callback travels with the entry.
    mutable Callback callback;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<bool> cancelled_;  // indexed by seq
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace mra::sim
