// A deterministic pending-event set for discrete-event simulation — the
// foundation that lets the §5 evaluation be replayed bit-identically from a
// seed.
//
// Events are ordered by (time, sequence number): two events scheduled for the
// same instant fire in scheduling order. This tie-break is what makes whole
// simulations reproducible, so it is part of the contract, not an
// implementation detail.
//
// Implementation (see DESIGN.md §9): event records live in a slab of
// recycled slots; the priority structure is a 4-ary min-heap of 16-byte POD
// entries carrying the (time, seq) sort key plus the slot index. Sift
// operations therefore compare and move PODs in contiguous cache-aligned
// memory — no slab dereference per comparison, no std::function move
// constructor per swap — and each level's 4-child group is one cache line.
// A free list plus generation-tagged ids gives O(1) schedule/cancel with
// memory bounded by the peak number of outstanding events — not by the
// total ever scheduled, which is what the old tombstone set grew with.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace mra::sim {

/// Identifier of a scheduled event; usable to cancel it. Packs the slab slot
/// index (low 24 bits) with the slot's generation tag (high 40 bits), so a
/// stale id — already fired, already cancelled, or its slot since recycled —
/// is recognised in O(1) without remembering every id ever issued. The tag
/// cannot wrap: a slot's recycle count is bounded by total_scheduled(),
/// which schedule() caps below 2^40.
using EventId = std::uint64_t;

/// Min-ordered pending-event set keyed by (time, insertion sequence).
///
/// Cancellation is O(1): the slot is marked dead and its callback destroyed
/// immediately; the stale heap entry is dropped when it surfaces, or swept
/// out wholesale when dead entries pass a quarter of the live count
/// (amortised O(1) per cancel).
class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Schedules `cb` at absolute time `at`. Returns an id usable with cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Fires the earliest live event in place if it is scheduled exactly at
  /// `t`, then stores the time of the earliest remaining live event into
  /// `next` (kTimeInfinity when none). `next` is computed *after* the
  /// callback ran, so events the callback scheduled or cancelled are
  /// already reflected — the simulator's run loop needs exactly one queue
  /// call per event, and the same-instant batch keeps draining through the
  /// `next == t` condition. When nothing fires at `t`, returns false and
  /// still reports the earliest live time.
  bool fire_next_at(SimTime t, SimTime* next);

  /// Total number of events ever scheduled (for stats / tests).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

  /// Number of event-record slots ever allocated — the queue's memory
  /// high-water mark. Bounded by the peak number of outstanding events
  /// (live + not-yet-swept cancelled), not by total_scheduled(): the
  /// regression test schedules and cancels a million events and checks this
  /// stays small.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  enum class SlotState : std::uint8_t { kFree, kLive, kCancelled };

  /// Cold event state: the callback plus lifecycle bookkeeping. Touched
  /// once at schedule, once at pop/cancel — never during sifts. Exactly one
  /// cache line, so every slab access costs a single line fill. The
  /// generation is 64-bit so its 40 usable id bits never wrap within the
  /// sequence-space envelope.
  struct alignas(64) Slot {
    Callback callback;
    std::uint64_t generation = 0;
    std::uint32_t next_free = 0;  ///< free-list link while kFree
    SlotState state = SlotState::kFree;
  };
  static_assert(sizeof(Slot) == 64, "Slot must stay one cache line");

  /// Hot heap entry, 16 bytes: the full sort key travels with the slot
  /// index so sift comparisons stay inside the contiguous heap array, and a
  /// 4-child group spans a single cache line. `key` packs the insertion
  /// sequence (high 40 bits) over the slot index (low 24 bits); the
  /// sequence alone decides same-time ordering because it is unique, so
  /// comparing the packed word is exactly the (time, seq) contract.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
    [[nodiscard]] bool before(const HeapEntry& other) const {
      if (time != other.time) return time < other.time;
      return key < other.key;
    }
  };

  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  /// seq must fit the remaining 40 bits: ~1.1e12 events, two orders of
  /// magnitude beyond the longest sweep; schedule() enforces it.
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  /// Contiguous HeapEntry array whose element 1 sits on a 64-byte boundary,
  /// so every 4-child group (indices 4i+1 … 4i+4, 64 bytes) occupies exactly
  /// one cache line — the sift pointer-chase then costs one line per level.
  /// std::vector cannot promise that: operator new only guarantees 16-byte
  /// alignment, which leaves child groups straddling two lines.
  class HeapStorage {
   public:
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    HeapEntry& operator[](std::size_t i) { return data_[i]; }
    const HeapEntry& operator[](std::size_t i) const { return data_[i]; }
    [[nodiscard]] const HeapEntry& back() const { return data_[size_ - 1]; }
    [[nodiscard]] HeapEntry* begin() { return data_; }
    [[nodiscard]] HeapEntry* end() { return data_ + size_; }

    void push_back(const HeapEntry& entry) {
      if (size_ == capacity_) grow();
      data_[size_++] = entry;
    }
    void pop_back() { --size_; }
    /// Shrink only (compaction); never reallocates.
    void resize(std::size_t n) { size_ = n; }

   private:
    static constexpr std::size_t kLine = 64;

    void grow() {
      const std::size_t new_capacity = capacity_ == 0 ? 256 : capacity_ * 2;
      // Over-allocate one line plus the 48-byte lead-in for element 0, then
      // place element 1 on the first line boundary past the lead-in.
      auto raw = std::make_unique_for_overwrite<std::byte[]>(
          new_capacity * sizeof(HeapEntry) + kLine + sizeof(HeapEntry) * 3);
      auto base = reinterpret_cast<std::uintptr_t>(raw.get());
      const std::uintptr_t aligned = (base + kLine - 1) & ~(kLine - 1);
      auto* data =
          reinterpret_cast<HeapEntry*>(aligned + kLine - sizeof(HeapEntry));
      if (size_ != 0) std::memcpy(data, data_, size_ * sizeof(HeapEntry));
      raw_ = std::move(raw);
      data_ = data;
      capacity_ = new_capacity;
    }

    std::unique_ptr<std::byte[]> raw_;
    HeapEntry* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
  };

  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(kSlotMask);
  /// Heap arity: 4 children = one 64-byte cache line per level. Measured
  /// against 8-ary on the micro_engine timer workload: the shallower miss
  /// chain of 8-ary loses to 4-ary's one-line child groups plus speculative
  /// group prefetching in min_child().
  static constexpr std::size_t kArity = 4;
  /// Dead heap entries tolerated beyond the live count before a sweep.
  static constexpr std::size_t kCompactSlack = 64;

  static EventId make_id(std::uint32_t index, std::uint64_t generation) {
    return (generation << kSlotBits) | index;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void remove_root();
  [[nodiscard]] std::size_t min_child(std::size_t pos) const;
  void drop_cancelled();
  void compact();
  Fired extract_root();

  std::vector<Slot> slots_;  ///< the slab; grows to peak outstanding
  HeapStorage heap_;         ///< 4-ary min-heap, child groups line-aligned
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t cancelled_in_heap_ = 0;
};

}  // namespace mra::sim
