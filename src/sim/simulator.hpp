// The discrete-event simulation engine that stands in for the paper's
// physical testbed (§5.1): protocols run unmodified on top of it while
// time, latency and load are simulated.
//
// Single-threaded and deterministic: events fire in (time, scheduling order)
// and all randomness comes from seeded RNGs owned by the caller. Parallelism
// in this project happens one level up (independent simulations run on a
// thread pool, see experiment/sweep.hpp), never inside one simulation.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mra::check {
class Observer;
}  // namespace mra::check

namespace mra::sim {

/// Lets a model checker (src/check/dpor.*) reorder *commuting* same-instant
/// events. When attached, the run loop drains each instant in rounds: all
/// events already queued at the instant are extracted into a batch, the hook
/// picks an execution order, and events the batch schedules for the same
/// instant form the next round — so the identity order reproduces the plain
/// (time, seq) contract exactly.
class CommutationHook {
 public:
  virtual ~CommutationHook() = default;

  /// One round at instant `at`: `tags` lists the batch's commute tags in
  /// canonical (time, seq) order, `order` arrives as the identity
  /// permutation of [0, tags.size()) and may be permuted in place. Events
  /// with equal tags are dependent (same site); events with different tags
  /// commute. Tag kNoCommuteTag marks an event dependent with everything.
  virtual void on_round(SimTime at, const std::vector<int>& tags,
                        std::vector<std::size_t>& order) = 0;
};

/// Thrown when a simulation exceeds its event budget — in this project that
/// always means a protocol livelock (e.g. a message forwarded forever), so
/// tests convert it into a failure instead of hanging.
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("simulation exceeded event budget of " +
                           std::to_string(budget)) {}
};

/// Discrete-event simulator: a clock plus an event queue.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Events without a meaningful commute tag: dependent with everything, so
  /// an attached CommutationHook never reorders them across other events.
  static constexpr int kNoCommuteTag = -1;

  /// Schedules `cb` to run `delay` after now. Negative delays are clamped to
  /// zero (fires this instant, after already-queued same-instant events).
  EventId schedule_in(SimDuration delay, EventQueue::Callback cb) {
    return schedule_in(delay, kNoCommuteTag, std::move(cb));
  }

  /// Same, tagged for commutation analysis (see set_commutation_hook).
  EventId schedule_in(SimDuration delay, int commute_tag,
                      EventQueue::Callback cb) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, commute_tag, std::move(cb));
  }

  /// Schedules `cb` at absolute time `at` (clamped to now).
  EventId schedule_at(SimTime at, EventQueue::Callback cb) {
    return schedule_at(at, kNoCommuteTag, std::move(cb));
  }

  /// Same, tagged for commutation analysis. Without a hook the tag is
  /// ignored and this is the plain hot path (one predictable branch).
  EventId schedule_at(SimTime at, int commute_tag, EventQueue::Callback cb) {
    if (at < now_) at = now_;
    if (hook_ == nullptr) return queue_.schedule(at, std::move(cb));
    return schedule_deferred(at, commute_tag, std::move(cb));
  }

  /// Cancels a scheduled event; no-op if already fired.
  bool cancel(EventId id) {
    if (hook_ == nullptr) return queue_.cancel(id);
    return cancel_deferred(id);
  }

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Events scheduled exactly at `until` do fire. Returns the number
  /// of events processed by this call. Same-instant events are drained in
  /// one batch (one horizon check and clock update per instant) while
  /// preserving the (time, scheduling order) firing contract.
  std::uint64_t run(SimTime until = kTimeInfinity);

  /// Runs until the queue drains, `until` is reached, or `pred()` becomes
  /// true (checked after each event). The predicate is taken by non-owning
  /// reference (sim::PredicateRef) — it is evaluated once per event, and a
  /// type-erased std::function there would put an allocation-capable
  /// dispatch on the engine's hottest path.
  std::uint64_t run_until(PredicateRef pred, SimTime until = kTimeInfinity);

  /// Requests an orderly stop from inside an event callback.
  void stop() { stop_requested_ = true; }

  /// True when the pending-event set is empty.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Live (scheduled, not yet fired/cancelled) events — the obs-layer
  /// queue-depth gauge.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Slots the queue slab has ever allocated: a memory high-water mark in
  /// events (each slot is one cache line), not a live count.
  [[nodiscard]] std::size_t queue_capacity() const {
    return queue_.capacity();
  }

  /// Total events processed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Caps the total number of events one run() may process (livelock guard).
  /// 0 disables the cap.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

  /// Attaches a conformance observer (src/check/): Observer::on_advance fires
  /// once per distinct instant, before that instant's events. Null detaches.
  /// Costs one predictable branch per instant when detached.
  void set_observer(check::Observer* observer) { observer_ = observer; }
  [[nodiscard]] check::Observer* observer() const { return observer_; }

  /// Attaches a commutation hook (model-checking mode). Must be called
  /// before any event is scheduled: already-queued events would bypass the
  /// deferral wrappers that feed the hook. Null detaches (same restriction).
  /// The unhooked scheduling and run-loop paths are unchanged.
  void set_commutation_hook(CommutationHook* hook) {
    assert(queue_.empty() && "attach the commutation hook before scheduling");
    hook_ = hook;
  }
  [[nodiscard]] CommutationHook* commutation_hook() const { return hook_; }

 private:
  /// A deferred event in commutation mode: the queue holds a thin wrapper
  /// that, when fired, appends the slab slot to the current round instead of
  /// running the callback — the run loop then executes the round in the
  /// hook's order.
  struct Deferred {
    EventQueue::Callback callback;
    EventId id = 0;
    int tag = kNoCommuteTag;
    std::uint32_t next_free = 0;
    bool live = false;
  };

  std::uint64_t run_loop(SimTime until, PredicateRef pred);
  std::uint64_t run_loop_commuting(SimTime until, PredicateRef pred);
  EventId schedule_deferred(SimTime at, int tag, EventQueue::Callback cb);
  bool cancel_deferred(EventId id);
  void release_deferred(std::uint32_t slot);

  static constexpr std::uint32_t kNoDeferredSlot = 0xFFFFFFFFu;

  EventQueue queue_;
  check::Observer* observer_ = nullptr;
  CommutationHook* hook_ = nullptr;
  std::vector<Deferred> deferred_;       ///< commutation mode only
  std::vector<std::uint32_t> round_;     ///< slots of the current round
  std::uint32_t deferred_free_ = kNoDeferredSlot;
  SimTime now_ = kTimeZero;
  std::uint64_t processed_ = 0;
  std::uint64_t event_budget_ = 0;
  bool stop_requested_ = false;
};

}  // namespace mra::sim
