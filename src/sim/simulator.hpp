// The discrete-event simulation engine that stands in for the paper's
// physical testbed (§5.1): protocols run unmodified on top of it while
// time, latency and load are simulated.
//
// Single-threaded and deterministic: events fire in (time, scheduling order)
// and all randomness comes from seeded RNGs owned by the caller. Parallelism
// in this project happens one level up (independent simulations run on a
// thread pool, see experiment/sweep.hpp), never inside one simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mra::check {
class Observer;
}  // namespace mra::check

namespace mra::sim {

/// Thrown when a simulation exceeds its event budget — in this project that
/// always means a protocol livelock (e.g. a message forwarded forever), so
/// tests convert it into a failure instead of hanging.
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("simulation exceeded event budget of " +
                           std::to_string(budget)) {}
};

/// Discrete-event simulator: a clock plus an event queue.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` after now. Negative delays are clamped to
  /// zero (fires this instant, after already-queued same-instant events).
  EventId schedule_in(SimDuration delay, EventQueue::Callback cb) {
    if (delay < 0) delay = 0;
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at absolute time `at` (clamped to now).
  EventId schedule_at(SimTime at, EventQueue::Callback cb) {
    if (at < now_) at = now_;
    return queue_.schedule(at, std::move(cb));
  }

  /// Cancels a scheduled event; no-op if already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Events scheduled exactly at `until` do fire. Returns the number
  /// of events processed by this call. Same-instant events are drained in
  /// one batch (one horizon check and clock update per instant) while
  /// preserving the (time, scheduling order) firing contract.
  std::uint64_t run(SimTime until = kTimeInfinity);

  /// Runs until the queue drains, `until` is reached, or `pred()` becomes
  /// true (checked after each event).
  std::uint64_t run_until(const std::function<bool()>& pred,
                          SimTime until = kTimeInfinity);

  /// Requests an orderly stop from inside an event callback.
  void stop() { stop_requested_ = true; }

  /// True when the pending-event set is empty.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Total events processed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Caps the total number of events one run() may process (livelock guard).
  /// 0 disables the cap.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

  /// Attaches a conformance observer (src/check/): Observer::on_advance fires
  /// once per distinct instant, before that instant's events. Null detaches.
  /// Costs one predictable branch per instant when detached.
  void set_observer(check::Observer* observer) { observer_ = observer; }
  [[nodiscard]] check::Observer* observer() const { return observer_; }

 private:
  std::uint64_t run_loop(SimTime until, const std::function<bool()>* pred);

  EventQueue queue_;
  check::Observer* observer_ = nullptr;
  SimTime now_ = kTimeZero;
  std::uint64_t processed_ = 0;
  std::uint64_t event_budget_ = 0;
  bool stop_requested_ = false;
};

}  // namespace mra::sim
