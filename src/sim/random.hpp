// Deterministic random number generation, used for the §5.1 workload model
// (request sizes x ~ U(1, φ), resource picks, think times) and for latency
// jitter.
//
// We deliberately avoid std::mt19937 + std::*_distribution: libstdc++ does
// not guarantee distribution output across versions, and reproducibility is a
// hard requirement here. xoshiro256++ (public domain, Blackman & Vigna) plus
// hand-rolled distributions gives identical streams on every platform.
#pragma once

#include <array>
#include <cstdint>

namespace mra::sim {

/// splitmix64 — used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ PRNG with explicit, portable distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xBADC0FFEE0DDF00DULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Derives an independent child generator (for per-node streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace mra::sim
