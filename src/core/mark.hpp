// The paper's scheduling-policy function A : IN^M -> IR (§3.3.2).
//
// A transforms a request's counter vector into a real "mark"; requests are
// totally ordered by (mark, site id). A is a parameter of the algorithm and
// effectively selects the scheduling policy; liveness requires that every
// pending request eventually has the smallest mark (hypothesis 6). The
// paper's evaluation uses the average of the non-zero entries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mra {

/// Counter vector of one request: entry r is the counter value obtained for
/// resource r, or 0 when r was not requested (the paper's convention).
using CounterVector = std::vector<CounterValue>;

/// Signature of the paper's function A.
using MarkFunction = std::function<double(const CounterVector&)>;

/// Built-in mark functions (all starvation-free except where noted).
enum class MarkPolicy {
  kAverageNonZero,  ///< paper's choice: mean of non-zero entries
  kMaxValue,        ///< max entry: favours requests that queued early on all
  kSumNonZero,      ///< sum of entries: biases against large requests
  kMinNonZero,      ///< min non-zero entry: biases toward large requests
};

[[nodiscard]] const char* to_string(MarkPolicy policy);

/// Returns the function implementing `policy`.
[[nodiscard]] MarkFunction make_mark_function(MarkPolicy policy);

/// Applies the paper's default A (average of non-zero entries).
[[nodiscard]] double average_non_zero(const CounterVector& v);

/// The paper's total order `/` over requests: (mark, site) lexicographic.
/// Returns true when request (mark_a, site_a) precedes (mark_b, site_b).
[[nodiscard]] constexpr bool request_precedes(double mark_a, SiteId site_a,
                                              double mark_b, SiteId site_b) {
  if (mark_a != mark_b) return mark_a < mark_b;
  return site_a < site_b;
}

}  // namespace mra
