// Chunked arena + size-class free-list pool: the allocation substrate for
// hot-path objects that are born and die millions of times per simulation
// (messages, most prominently — see net/message_pool.hpp).
//
// An Arena hands out bump-allocated blocks from geometrically growing
// chunks and frees everything at once on destruction. FreeListPool layers
// size-class free lists on top: deallocate() pushes a block onto its class
// list, allocate() pops it back in LIFO order, so a steady-state workload
// recycles the same few cache-warm blocks and never touches the system
// allocator after warm-up. Neither type is thread-safe — callers own one
// instance per thread (simulations are single-threaded; the sweep pool runs
// one simulation per worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mra::core {

/// Bump allocator over malloc'd chunks. Blocks are aligned to
/// alignof(std::max_align_t) and live until the arena dies.
class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 16 * 1024)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes) {
    bytes = align_up(bytes);
    if (bytes > remaining_) grow(bytes);
    void* p = cursor_;
    cursor_ += bytes;
    remaining_ -= bytes;
    bytes_allocated_ += bytes;
    return p;
  }

  /// Total bytes handed out (aligned); monitoring/tests only.
  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_allocated_;
  }

  /// Total bytes reserved from the system allocator.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kMaxChunkBytes = 4 * 1024 * 1024;

  static std::size_t align_up(std::size_t n) {
    return (n + kAlign - 1) & ~(kAlign - 1);
  }

  void grow(std::size_t min_bytes) {
    std::size_t chunk_bytes = next_chunk_bytes_;
    while (chunk_bytes < min_bytes) chunk_bytes *= 2;
    chunks_.emplace_back(new unsigned char[chunk_bytes]);
    cursor_ = chunks_.back().get();
    remaining_ = chunk_bytes;
    bytes_reserved_ += chunk_bytes;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t next_chunk_bytes_;
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_allocated_ = 0;
};

/// Size-class free lists over an Arena. Classes are multiples of 16 bytes up
/// to `kMaxPooledBytes`; larger requests fall through to the system
/// allocator (they are not part of any hot path).
class FreeListPool {
 public:
  static constexpr std::size_t kGranularity = 16;
  static constexpr std::size_t kMaxPooledBytes = 512;

  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls == kUnpooled) return ::operator new(bytes);
    FreeBlock*& head = free_[cls];
    if (head != nullptr) {
      void* p = head;
      head = head->next;
      return p;
    }
    return arena_.allocate((cls + 1) * kGranularity);
  }

  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls == kUnpooled) {
      ::operator delete(p);
      return;
    }
    auto* block = static_cast<FreeBlock*>(p);
    block->next = free_[cls];
    free_[cls] = block;
  }

  [[nodiscard]] const Arena& arena() const { return arena_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t kNumClasses = kMaxPooledBytes / kGranularity;
  static constexpr std::size_t kUnpooled = static_cast<std::size_t>(-1);

  /// Maps a byte count to its class index, or kUnpooled. Class c serves
  /// blocks of (c + 1) * kGranularity bytes.
  static std::size_t size_class(std::size_t bytes) {
    if (bytes == 0 || bytes > kMaxPooledBytes) return kUnpooled;
    return (bytes - 1) / kGranularity;
  }

  Arena arena_;
  FreeBlock* free_[kNumClasses] = {};
};

}  // namespace mra::core
