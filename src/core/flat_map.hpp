// Sorted flat map for sparse per-site protocol state (DESIGN.md §13).
//
// The std::map instances this replaces (LASS aggregation buffers, sparse
// token id maps, Chandy-Misra fork tables) hold zero to a handful of
// entries per site but cost a red-black tree node (~48 B of overhead plus
// an allocation) per entry — and at N = 10^6 sites even the empty maps'
// header bytes add up. FlatMap keeps (key, value) pairs in a SmallVector
// sorted by key: the first InlineN entries live inline in the owning
// object, spills go through the shared container pool, lookups are binary
// searches over contiguous memory, and iteration is ascending-key order —
// exactly std::map's — which is what keeps flush/send order (and therefore
// replay) byte-identical after the migration.
//
// Intended for small-degree maps (aggregation fan-out per event is bounded
// by the visited-set fan-out, not by N). Insert/erase are O(size) moves;
// that is the right trade below a few hundred entries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "core/small_vector.hpp"

namespace mra::core {

template <typename K, typename V, std::size_t InlineN = 4>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using storage_type = SmallVector<value_type, InlineN>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  void clear() { entries_.clear(); }

  [[nodiscard]] iterator find(const K& key) {
    iterator it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    const_iterator it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != end();
  }

  /// std::map semantics: default-constructs the value on first access.
  V& operator[](const K& key) {
    iterator it = lower_bound(key);
    if (it == end() || it->first != key) {
      it = entries_.insert(it, value_type(key, V{}));
    }
    return it->second;
  }

  /// std::map::at semantics: throws when the key is absent.
  [[nodiscard]] V& at(const K& key) {
    iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const_iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }

  /// Inserts (key, value) if absent; returns {iterator, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != end() && it->first == key) return {it, false};
    it = entries_.insert(it, value_type(key, V(std::forward<Args>(args)...)));
    return {it, true};
  }

  iterator erase(iterator pos) { return entries_.erase(pos); }

  std::size_t erase(const K& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  /// True while entries live inline in the owning object (tests).
  [[nodiscard]] bool inline_storage() const {
    return entries_.inline_storage();
  }

 private:
  [[nodiscard]] iterator lower_bound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  storage_type entries_;
};

}  // namespace mra::core
