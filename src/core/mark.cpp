#include "core/mark.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mra {

double average_non_zero(const CounterVector& v) {
  double sum = 0.0;
  std::size_t n = 0;
  for (CounterValue c : v) {
    if (c != 0) {
      sum += static_cast<double>(c);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

const char* to_string(MarkPolicy policy) {
  switch (policy) {
    case MarkPolicy::kAverageNonZero: return "avg-nonzero";
    case MarkPolicy::kMaxValue: return "max";
    case MarkPolicy::kSumNonZero: return "sum";
    case MarkPolicy::kMinNonZero: return "min-nonzero";
  }
  return "?";
}

MarkFunction make_mark_function(MarkPolicy policy) {
  switch (policy) {
    case MarkPolicy::kAverageNonZero:
      return [](const CounterVector& v) { return average_non_zero(v); };
    case MarkPolicy::kMaxValue:
      return [](const CounterVector& v) {
        CounterValue m = 0;
        for (CounterValue c : v) m = std::max(m, c);
        return static_cast<double>(m);
      };
    case MarkPolicy::kSumNonZero:
      return [](const CounterVector& v) {
        double s = 0.0;
        for (CounterValue c : v) s += static_cast<double>(c);
        return s;
      };
    case MarkPolicy::kMinNonZero:
      return [](const CounterVector& v) {
        CounterValue m = std::numeric_limits<CounterValue>::max();
        bool any = false;
        for (CounterValue c : v) {
          if (c != 0) {
            m = std::min(m, c);
            any = true;
          }
        }
        return any ? static_cast<double>(m) : 0.0;
      };
  }
  throw std::invalid_argument("unknown MarkPolicy");
}

}  // namespace mra
