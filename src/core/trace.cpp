#include "core/trace.hpp"

// Trace is header-only in practice; this TU exists so the build has a home
// for future out-of-line helpers and keeps one-TU-per-header symmetry.
