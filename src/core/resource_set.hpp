// A set of resource ids over a dense universe [0, M) — the paper's request
// sets D_i ⊆ R (§3.2) and the token sets TOwned/TRequired of Annex A.
//
// Implemented as a dynamic bitset with word-level operations: subset tests
// and unions are the hot path of every allocation protocol here
// (TRequired ⊆ TOwned is evaluated on every token arrival).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mra {

class ResourceSet {
 public:
  ResourceSet() = default;

  /// Empty set over universe size `universe`.
  explicit ResourceSet(ResourceId universe)
      : universe_(universe), words_((static_cast<std::size_t>(universe) + 63) / 64, 0) {}

  /// Set containing exactly the given ids.
  ResourceSet(ResourceId universe, std::initializer_list<ResourceId> ids)
      : ResourceSet(universe) {
    for (ResourceId r : ids) insert(r);
  }

  [[nodiscard]] ResourceId universe_size() const { return universe_; }

  void insert(ResourceId r) {
    check(r);
    auto& w = words_[static_cast<std::size_t>(r) >> 6];
    const std::uint64_t bit = 1ULL << (r & 63);
    if ((w & bit) == 0) {
      w |= bit;
      ++count_;
    }
  }

  void erase(ResourceId r) {
    check(r);
    auto& w = words_[static_cast<std::size_t>(r) >> 6];
    const std::uint64_t bit = 1ULL << (r & 63);
    if ((w & bit) != 0) {
      w &= ~bit;
      --count_;
    }
  }

  [[nodiscard]] bool contains(ResourceId r) const {
    if (r < 0 || r >= universe_) return false;
    return (words_[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  void clear() {
    for (auto& w : words_) w = 0;
    count_ = 0;
  }

  /// True iff *this ⊆ other. Sets must share a universe.
  [[nodiscard]] bool subset_of(const ResourceSet& other) const;

  /// True iff the intersection is non-empty (i.e. two requests conflict).
  [[nodiscard]] bool intersects(const ResourceSet& other) const;

  /// In-place union / difference.
  ResourceSet& operator|=(const ResourceSet& other);
  ResourceSet& operator-=(const ResourceSet& other);

  [[nodiscard]] ResourceSet set_union(const ResourceSet& other) const;
  [[nodiscard]] ResourceSet set_difference(const ResourceSet& other) const;
  [[nodiscard]] ResourceSet set_intersection(const ResourceSet& other) const;

  bool operator==(const ResourceSet& other) const = default;

  /// Materialises the members in increasing order.
  [[nodiscard]] std::vector<ResourceId> to_vector() const;

  /// Human-readable "{0, 3, 7}".
  [[nodiscard]] std::string to_string() const;

  /// Iterates members in increasing id order without materialising.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<ResourceId>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

 private:
  void check(ResourceId r) const;
  void require_same_universe(const ResourceSet& other) const;

  ResourceId universe_ = 0;
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace mra
