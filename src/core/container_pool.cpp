#include "core/small_vector.hpp"

#include <new>

namespace mra::core {

#ifdef MRA_CONTAINER_POOL_DISABLED

FreeListPool& container_spill_pool() {
  thread_local FreeListPool pool;  // present for introspection, unused
  return pool;
}

void* container_spill_allocate(std::size_t bytes) {
  return ::operator new(bytes);
}

void container_spill_deallocate(void* p, std::size_t /*bytes*/) noexcept {
  ::operator delete(p);
}

#else

FreeListPool& container_spill_pool() {
  thread_local FreeListPool pool;
  return pool;
}

void* container_spill_allocate(std::size_t bytes) {
  return container_spill_pool().allocate(bytes);
}

void container_spill_deallocate(void* p, std::size_t bytes) noexcept {
  container_spill_pool().deallocate(p, bytes);
}

#endif  // MRA_CONTAINER_POOL_DISABLED

}  // namespace mra::core
