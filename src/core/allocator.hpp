// Public interface of every multi-resource allocation protocol in the
// library: the §1 problem statement (exclusive access to a set of
// resources) exposed through the paper's §4.1 per-process state machine.
// The workload driver (src/workload/driver.hpp) talks to protocols
// exclusively through this interface, so algorithms are interchangeable in
// examples, tests and benches.
#pragma once

#include <functional>

#include "core/resource_set.hpp"
#include "core/types.hpp"
#include "net/node.hpp"

namespace mra::check {
class Observer;
}  // namespace mra::check

namespace mra {

/// States of the paper's per-process state machine (§4.1).
enum class ProcessState {
  kIdle,    ///< not requesting
  kWaitS,   ///< waiting for counter values
  kWaitCS,  ///< waiting for the right to access all requested resources
  kInCS,    ///< executing the critical section
};

[[nodiscard]] constexpr const char* to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kIdle: return "Idle";
    case ProcessState::kWaitS: return "waitS";
    case ProcessState::kWaitCS: return "waitCS";
    case ProcessState::kInCS: return "inCS";
  }
  return "?";
}

/// A multi-resource allocator endpoint living on one site.
///
/// Usage protocol (one outstanding request per site, per the paper's
/// hypothesis 4):
///   1. request(D)  — asynchronously acquire exclusive access to all of D;
///   2. the allocator invokes the grant callback when every resource in D is
///      held (entry into CS);
///   3. release()   — leave the CS and hand resources to waiting sites.
class AllocatorNode : public net::Node {
 public:
  /// Invoked on CS entry. `request_seq` is the per-site request number.
  using GrantCallback = std::function<void(RequestId request_seq)>;

  /// Registers the grant callback (the workload driver does this once).
  void set_grant_callback(GrantCallback cb) { grant_cb_ = std::move(cb); }

  /// Attaches a conformance observer (src/check/): request/CS-entry/release
  /// events are emitted around the protocol calls. Null detaches; detached
  /// cost is one branch per lifecycle transition.
  void set_observer(check::Observer* observer) { observer_ = observer; }
  [[nodiscard]] check::Observer* check_observer() const { return observer_; }

  /// Begins acquiring exclusive access to `resources` (non-empty).
  /// Precondition: state() == kIdle. Template method: emits the kRequest
  /// conformance event (with the seq the implementation is about to assign —
  /// every implementation increments request_seq_ exactly once, a convention
  /// the drivers also rely on), then dispatches to do_request().
  void request(const ResourceSet& resources) {
    if (observer_ != nullptr) observe_request(resources);
    do_request(resources);
  }

  /// Releases all resources of the current request.
  /// Precondition: state() == kInCS. Emits kRelease *before* the protocol
  /// hands resources on, so a subsequent grant of the same resources at the
  /// same instant is observed in the correct order.
  void release() {
    if (observer_ != nullptr) observe_release();
    do_release();
  }

  /// Current protocol state of this site.
  [[nodiscard]] virtual ProcessState state() const = 0;

  /// Resources of the in-flight request (empty when idle).
  [[nodiscard]] const ResourceSet& current_request() const { return current_; }

  /// Sequence number of the latest request issued by this site.
  [[nodiscard]] RequestId current_request_id() const { return request_seq_; }

 protected:
  /// Protocol implementations (the paper's state machine transitions).
  virtual void do_request(const ResourceSet& resources) = 0;
  virtual void do_release() = 0;

  void notify_granted() {
    if (observer_ != nullptr) observe_acquire();
    if (grant_cb_) grant_cb_(request_seq_);
  }

  /// Emits a kHold event: this site obtained exclusive custody of `r` before
  /// the full request is granted. Only algorithms with genuinely exclusive
  /// per-resource custody during acquisition call this (Incremental's
  /// per-resource locks); it is what lets the deadlock oracle see partial
  /// hold-and-wait states.
  void observe_hold(ResourceId r);

  ResourceSet current_;
  RequestId request_seq_ = 0;

 private:
  // Out of line (core/allocator.cpp): they need the network for the clock
  // and the check event definitions.
  void observe_request(const ResourceSet& resources);
  void observe_acquire();
  void observe_release();

  GrantCallback grant_cb_;
  check::Observer* observer_ = nullptr;
};

}  // namespace mra
