#include "core/resource_set.hpp"

#include <sstream>
#include <stdexcept>

namespace mra {

void ResourceSet::check(ResourceId r) const {
  if (r < 0 || r >= universe_) {
    throw std::out_of_range("ResourceSet: id " + std::to_string(r) +
                            " outside universe [0, " +
                            std::to_string(universe_) + ")");
  }
}

void ResourceSet::require_same_universe(const ResourceSet& other) const {
  if (universe_ != other.universe_) {
    throw std::invalid_argument("ResourceSet: universe mismatch (" +
                                std::to_string(universe_) + " vs " +
                                std::to_string(other.universe_) + ")");
  }
}

bool ResourceSet::subset_of(const ResourceSet& other) const {
  require_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool ResourceSet::intersects(const ResourceSet& other) const {
  require_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

ResourceSet& ResourceSet::operator|=(const ResourceSet& other) {
  require_same_universe(other);
  count_ = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    count_ += static_cast<std::size_t>(__builtin_popcountll(words_[i]));
  }
  return *this;
}

ResourceSet& ResourceSet::operator-=(const ResourceSet& other) {
  require_same_universe(other);
  count_ = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
    count_ += static_cast<std::size_t>(__builtin_popcountll(words_[i]));
  }
  return *this;
}

ResourceSet ResourceSet::set_union(const ResourceSet& other) const {
  ResourceSet out = *this;
  out |= other;
  return out;
}

ResourceSet ResourceSet::set_difference(const ResourceSet& other) const {
  ResourceSet out = *this;
  out -= other;
  return out;
}

ResourceSet ResourceSet::set_intersection(const ResourceSet& other) const {
  require_same_universe(other);
  ResourceSet out(universe_);
  out.count_ = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
    out.count_ += static_cast<std::size_t>(__builtin_popcountll(out.words_[i]));
  }
  return out;
}

std::vector<ResourceId> ResourceSet::to_vector() const {
  std::vector<ResourceId> out;
  out.reserve(count_);
  for_each([&](ResourceId r) { out.push_back(r); });
  return out;
}

std::string ResourceSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each([&](ResourceId r) {
    if (!first) os << ", ";
    first = false;
    os << r;
  });
  os << '}';
  return os.str();
}

}  // namespace mra
