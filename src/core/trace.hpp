// Lightweight structured trace for debugging and Gantt extraction — the
// tooling behind the paper's Figure 1/4 diagrams and the Figure 3
// message-exchange walkthrough (see examples/quickstart.cpp).
//
// Tracing is off by default and costs one branch per call when disabled.
// Sinks receive fully formatted lines; the default sink writes to an
// in-memory ring that tests and examples can inspect.
#pragma once

#include <deque>
#include <functional>
#include <sstream>
#include <string>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra {

/// A simulation-wide trace collector. One instance per simulation.
class Trace {
 public:
  using Sink = std::function<void(const std::string&)>;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Sets an external sink (e.g. std::cout). In-memory ring keeps working.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Caps the in-memory ring (default 4096 lines).
  void set_capacity(std::size_t lines) { capacity_ = lines; }

  void log(sim::SimTime t, SiteId site, const std::string& event) {
    if (!enabled_) return;
    std::ostringstream os;
    os << "[" << sim::to_ms(t) << "ms] s" << site << " " << event;
    push(os.str());
  }

  [[nodiscard]] const std::deque<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  void push(std::string line) {
    if (sink_) sink_(line);
    lines_.push_back(std::move(line));
    while (lines_.size() > capacity_) lines_.pop_front();
  }

  bool enabled_ = false;
  std::size_t capacity_ = 4096;
  Sink sink_;
  std::deque<std::string> lines_;
};

}  // namespace mra
