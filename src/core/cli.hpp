// Tiny shared command-line helper for the bench and example binaries. Lives
// in the library so every front end parses flags the same way (both the
// "--name value" and "--name=value" spellings) instead of drifting copies.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace mra::cli {

/// Returns true when argv[i] is the flag `name` in either spelling, storing
/// its value in `out` and advancing `i` past a space-separated value.
/// A flag given without a value prints an error and exits 2.
inline bool flag_value(int argc, char** argv, int& i, const char* name,
                       std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << name << " needs a value\n";
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace mra::cli
