// Fundamental identifiers shared by every protocol in the library: the
// paper's system model (§3.1) of N totally-ordered sites and M resources,
// plus the request/counter identifiers its total order `/` (§3.3.2) is
// built from.
#pragma once

#include <cstdint>
#include <limits>

namespace mra {

/// Identifier of a site (= node = process; the paper uses the terms
/// interchangeably). Sites are totally ordered by id: s_i < s_j iff i < j,
/// which is the tie-break of the paper's `/` total order on requests.
using SiteId = std::int32_t;

/// Identifier of a resource, 0-based, dense in [0, M).
using ResourceId = std::int32_t;

/// Sentinel for "no site" (the paper's `nil`).
inline constexpr SiteId kNoSite = -1;

/// Sentinel for "no resource".
inline constexpr ResourceId kNoResource = -1;

/// Per-site critical-section request sequence number (the paper's `id`).
using RequestId = std::int64_t;

/// Counter value handed out by a resource token.
using CounterValue = std::int64_t;

}  // namespace mra
