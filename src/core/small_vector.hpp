// Inline-capacity vector for per-site protocol state (DESIGN.md §13).
//
// A site at N = 10^6 cannot afford a heap allocation (plus two pointers of
// bookkeeping) for every empty buffer it might one day use: the std::map /
// std::vector-of-vector state this replaces cost ~1.3 MB/site at N = 1024.
// SmallVector stores up to InlineN elements in the object itself — the
// common case for aggregation buffers, token queues and sparse id maps is
// zero to a handful of entries — and spills to the heap only beyond that.
// Spilled blocks of pooled size go through a thread-local
// core::FreeListPool (the message-pool pattern, §9), so steady-state
// grow/shrink churn recycles the same cache-warm blocks; larger blocks fall
// back to the system allocator. Not thread-safe; one simulation owns its
// containers on one thread.
//
// Deliberately minimal: the subset of the std::vector interface the
// protocol layer uses (push_back/emplace_back, insert/erase by position,
// iteration, indexing, clear). Elements may be non-trivial (ReqItem carries
// a ResourceSet); moves are member-wise element moves, not buffer steals,
// when the source is inline.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "core/arena.hpp"

namespace mra::core {

/// Thread-local spill pool shared by every SmallVector on the thread.
/// Sanitizer builds bypass it (MRA_CONTAINER_POOL_DISABLED) so ASan sees
/// true buffer lifetimes.
FreeListPool& container_spill_pool();

void* container_spill_allocate(std::size_t bytes);
void container_spill_deallocate(void* p, std::size_t bytes) noexcept;

template <typename T, std::size_t InlineN>
class SmallVector {
  static_assert(InlineN >= 1, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(const SmallVector& other) { append_from(other); }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      append_from(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy_storage();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVector() { destroy_storage(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// True while elements live in the inline buffer (tests).
  [[nodiscard]] bool inline_storage() const { return data_ == inline_data(); }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    T* p = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  /// Inserts before `pos`; returns the iterator to the inserted element.
  iterator insert(const_iterator pos, T value) {
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    assert(idx <= size_);
    if (size_ == capacity_) grow(size_ + 1);
    if (idx == size_) {
      new (data_ + size_) T(std::move(value));
    } else {
      new (data_ + size_) T(std::move(data_[size_ - 1]));
      std::move_backward(data_ + idx, data_ + size_ - 1, data_ + size_);
      data_[idx] = std::move(value);
    }
    ++size_;
    return data_ + idx;
  }

  iterator erase(const_iterator pos) {
    return erase(pos, pos + 1);
  }

  iterator erase(const_iterator first, const_iterator last) {
    const std::size_t b = static_cast<std::size_t>(first - data_);
    const std::size_t e = static_cast<std::size_t>(last - data_);
    assert(b <= e && e <= size_);
    std::move(data_ + e, data_ + size_, data_ + b);
    const std::size_t removed = e - b;
    for (std::size_t i = size_ - removed; i < size_; ++i) data_[i].~T();
    size_ -= removed;
    return data_ + b;
  }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  [[nodiscard]] T* inline_data() {
    return std::launder(reinterpret_cast<T*>(inline_buf_));
  }
  [[nodiscard]] const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_buf_));
  }

  void grow(std::size_t min_capacity) {
    std::size_t cap = capacity_ * 2;
    if (cap < min_capacity) cap = min_capacity;
    T* fresh =
        static_cast<T*>(container_spill_allocate(cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_buffer();
    data_ = fresh;
    capacity_ = cap;
  }

  void release_buffer() {
    if (data_ != inline_data()) {
      container_spill_deallocate(data_, capacity_ * sizeof(T));
    }
  }

  void destroy_storage() {
    clear();
    release_buffer();
    data_ = inline_data();
    capacity_ = InlineN;
  }

  void append_from(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  /// Precondition: *this owns no storage (freshly constructed or after
  /// destroy_storage()). Steals the heap buffer when the source spilled;
  /// element-wise moves otherwise.
  void steal_from(SmallVector& other) noexcept {
    if (other.data_ != other.inline_data()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = InlineN;
      other.size_ = 0;
      return;
    }
    data_ = inline_data();
    capacity_ = InlineN;
    for (std::size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_buf_[InlineN * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = InlineN;
};

}  // namespace mra::core
