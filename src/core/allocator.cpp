// Conformance-event emission for AllocatorNode (the template-method side of
// core/allocator.hpp). Out of line so the header needs neither the network
// definition (clock access) nor the check event types.
#include "core/allocator.hpp"

#include "check/event.hpp"
#include "net/network.hpp"

namespace mra {

namespace {

[[nodiscard]] sim::SimTime node_now(const net::Node& node) {
  // Nodes are registered before any event fires; a node used without a
  // network (unit tests driving protocols directly) reports time 0.
  net::Network* net = node.network();
  return net != nullptr ? net->simulator().now() : 0;
}

}  // namespace

void AllocatorNode::observe_request(const ResourceSet& resources) {
  check::Event ev;
  ev.type = check::EventType::kRequest;
  ev.at = node_now(*this);
  ev.site = id();
  // The seq the implementation is about to assign (see request()).
  ev.seq = request_seq_ + 1;
  ev.resources = &resources;
  check_observer()->on_event(ev);
}

void AllocatorNode::observe_acquire() {
  check::Event ev;
  ev.type = check::EventType::kAcquire;
  ev.at = node_now(*this);
  ev.site = id();
  ev.seq = request_seq_;
  ev.resources = &current_;
  check_observer()->on_event(ev);
}

void AllocatorNode::observe_release() {
  check::Event ev;
  ev.type = check::EventType::kRelease;
  ev.at = node_now(*this);
  ev.site = id();
  ev.seq = request_seq_;
  ev.resources = &current_;
  check_observer()->on_event(ev);
}

void AllocatorNode::observe_hold(ResourceId r) {
  if (check_observer() == nullptr) return;
  check::Event ev;
  ev.type = check::EventType::kHold;
  ev.at = node_now(*this);
  ev.site = id();
  ev.seq = request_seq_;
  ev.resource = r;
  check_observer()->on_event(ev);
}

}  // namespace mra
