#include "fabric/merge.hpp"

#include <atomic>
#include <iostream>
#include <memory>
#include <span>
#include <stdexcept>

#include "algo/factory.hpp"
#include "experiment/json.hpp"
#include "experiment/replicate.hpp"
#include "experiment/sweep.hpp"
#include "fabric/result.hpp"
#include "obs/heartbeat.hpp"
#include "scenario/runner.hpp"

namespace mra::fabric {

namespace {

/// kExplore rows are already self-describing JSON objects; wrap them in the
/// same envelope shape write_results_json uses.
void write_explore_json(std::ostream& os,
                        const std::vector<std::string>& rows) {
  os << "{\"tool\":\"mra_fabric\",\"results\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  " << rows[i];
  }
  os << "\n]}\n";
}

std::optional<MergeError> find_error(const std::vector<std::string>& payloads) {
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::optional<std::string> message = parse_error(payloads[i]);
    if (message) return MergeError{i, *message};
  }
  return std::nullopt;
}

std::unique_ptr<obs::Heartbeat> make_heartbeat(
    const std::string& progress_path, std::uint64_t total,
    const std::atomic<std::uint64_t>* done,
    const std::atomic<std::uint64_t>* failed) {
  if (progress_path.empty()) return nullptr;
  obs::Heartbeat::Options hopts;
  hopts.phase = "fabric-local";
  hopts.progress_path = progress_path;
  return std::make_unique<obs::Heartbeat>(hopts, [done, failed, total] {
    obs::ProgressSnapshot snap;
    snap.jobs_done = done->load(std::memory_order_relaxed);
    snap.jobs_failed = failed->load(std::memory_order_relaxed);
    snap.jobs_total = total;
    return snap;
  });
}

}  // namespace

std::optional<MergeError> write_merged_output(
    std::ostream& os, const GridSpec& grid,
    const std::vector<std::string>& payloads) {
  if (payloads.size() != grid.job_count()) {
    throw std::invalid_argument(
        "fabric merge: " + std::to_string(payloads.size()) +
        " payloads for " + std::to_string(grid.job_count()) + " jobs");
  }
  std::optional<MergeError> error = find_error(payloads);
  if (error) return error;

  switch (grid.kind) {
    case GridKind::kSweep: {
      std::vector<experiment::LabeledResult> labeled;
      labeled.reserve(payloads.size());
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        labeled.push_back(experiment::LabeledResult{
            grid.job_label(i), parse_result(payloads[i])});
      }
      experiment::write_results_json(os, "mra_fabric", labeled);
      return std::nullopt;
    }
    case GridKind::kReplicated: {
      const std::size_t reps = grid.replications;
      std::vector<experiment::ExperimentResult> flat;
      flat.reserve(payloads.size());
      for (const std::string& payload : payloads) {
        flat.push_back(parse_result(payload));
      }
      std::vector<experiment::LabeledReplicatedResult> labeled;
      labeled.reserve(flat.size() / reps);
      for (std::size_t pair = 0; pair * reps < flat.size(); ++pair) {
        // Replications are consecutive per (scenario, algorithm) pair, in
        // replication order — the exact slices run_replicated_jobs merges.
        labeled.push_back(experiment::LabeledReplicatedResult{
            grid.job_label(pair * reps),
            experiment::merge_replications(
                std::span(flat).subspan(pair * reps, reps))});
      }
      experiment::write_replicated_json(os, "mra_fabric", labeled);
      return std::nullopt;
    }
    case GridKind::kExplore: {
      write_explore_json(os, payloads);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

int run_local(const GridSpec& grid, unsigned threads, std::ostream& os,
              const std::string& progress_path) {
  grid.validate();
  const std::uint64_t total = grid.job_count();
  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};

  if (grid.kind == GridKind::kExplore) {
    const std::unique_ptr<obs::Heartbeat> heartbeat =
        make_heartbeat(progress_path, total, &jobs_done, &jobs_failed);
    std::vector<std::string> rows;
    rows.reserve(grid.job_count());
    for (std::size_t i = 0; i < grid.job_count(); ++i) {
      try {
        rows.push_back(grid.run_job(i));
      } catch (const std::exception& e) {
        jobs_failed.fetch_add(1, std::memory_order_relaxed);
        std::cerr << "fabric: explore job #" << i << " failed: " << e.what()
                  << "\n";
        return 1;
      }
      jobs_done.fetch_add(1, std::memory_order_relaxed);
    }
    write_explore_json(os, rows);
    return 0;
  }

  const std::vector<scenario::ScenarioSpec> specs = grid.resolve_scenarios();
  std::vector<algo::Algorithm> algos;
  algos.reserve(grid.algorithms.size());
  for (const std::string& name : grid.algorithms) {
    algos.push_back(algo::algorithm_from_name(name));
  }

  try {
    if (grid.kind == GridKind::kSweep) {
      std::vector<experiment::SweepJob> jobs;
      std::vector<std::string> labels;
      for (const scenario::ScenarioSpec& spec : specs) {
        for (const algo::Algorithm alg : algos) {
          jobs.emplace_back(
              [&spec, alg] { return scenario::run_scenario(spec, alg); });
          labels.push_back(spec.name);
        }
      }
      std::vector<experiment::ExperimentResult> results;
      {
        const std::unique_ptr<obs::Heartbeat> heartbeat =
            make_heartbeat(progress_path, total, &jobs_done, &jobs_failed);
        results = experiment::run_sweep(jobs, threads, &jobs_done,
                                        &jobs_failed);
      }
      std::vector<experiment::LabeledResult> labeled;
      labeled.reserve(results.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        labeled.push_back(experiment::LabeledResult{labels[i], results[i]});
      }
      experiment::write_results_json(os, "mra_fabric", labeled);
      return 0;
    }

    // kReplicated: the genuine in-process replication path — the fabric's
    // sharded merge must reproduce its bytes exactly.
    std::vector<experiment::ReplicatedJob> jobs;
    std::vector<std::string> labels;
    for (const scenario::ScenarioSpec& spec : specs) {
      for (const algo::Algorithm alg : algos) {
        experiment::ReplicatedJob job;
        job.base_seed = spec.system.seed;
        job.replications = grid.replications;
        job.make = [spec, alg](std::uint64_t rep_seed) {
          scenario::ScenarioSpec s = spec;
          s.system.seed = rep_seed;
          return scenario::run_scenario(s, alg);
        };
        jobs.push_back(std::move(job));
        labels.push_back(spec.name);
      }
    }
    std::vector<experiment::ReplicatedResult> results;
    {
      const std::unique_ptr<obs::Heartbeat> heartbeat =
          make_heartbeat(progress_path, total, &jobs_done, &jobs_failed);
      results = experiment::run_replicated_jobs(jobs, threads, &jobs_done,
                                                &jobs_failed);
    }
    std::vector<experiment::LabeledReplicatedResult> labeled;
    labeled.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      labeled.push_back(
          experiment::LabeledReplicatedResult{labels[i], results[i]});
    }
    experiment::write_replicated_json(os, "mra_fabric", labeled);
    return 0;
  } catch (const experiment::SweepError& e) {
    std::cerr << "fabric: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mra::fabric
