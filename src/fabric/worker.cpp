#include "fabric/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "fabric/result.hpp"
#include "fabric/transport.hpp"
#include "obs/heartbeat.hpp"

namespace mra::fabric {

namespace {

std::unique_ptr<Transport> make_transport(const WorkerOptions& opts,
                                          const std::string& name,
                                          const TransportTiming& timing) {
  if (opts.connect.empty()) {
    if (opts.spool.empty()) {
      throw std::invalid_argument(
          "fabric: a worker needs --spool (file backend) or --connect "
          "host:port (tcp backend)");
    }
    return make_file_worker(opts.spool, name, timing);
  }
  const std::size_t colon = opts.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == opts.connect.size()) {
    throw std::invalid_argument("fabric: --connect wants host:port, got '" +
                                opts.connect + "'");
  }
  const std::string host = opts.connect.substr(0, colon);
  const int port = static_cast<int>(
      std::strtol(opts.connect.c_str() + colon + 1, nullptr, 10));
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("fabric: bad port in '" + opts.connect + "'");
  }
  return make_tcp_worker(host, port, name, timing);
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  std::string fallback_name("w");
  fallback_name += std::to_string(::getpid());
  const std::string& name = opts.name.empty() ? fallback_name : opts.name;
  const TransportTiming timing{opts.lease_timeout_sec, opts.poll_interval_sec};

  std::unique_ptr<Transport> transport;
  try {
    transport = make_transport(opts, name, timing);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  // Wait for the coordinator to publish; manifest() sleeps a poll interval
  // internally when nothing is there yet.
  std::optional<std::string> manifest_text;
  const int max_waits = std::max(
      1, static_cast<int>(60.0 / std::max(opts.poll_interval_sec, 1e-3)));
  for (int i = 0; i < max_waits && !manifest_text; ++i) {
    if (transport->finished()) return 0;
    manifest_text = transport->manifest();
  }
  if (!manifest_text) {
    std::cerr << "fabric: worker '" << name << "' found no manifest\n";
    return 1;
  }
  const Manifest manifest = Manifest::parse(*manifest_text);
  manifest.grid.validate();

  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::unique_ptr<obs::Heartbeat> heartbeat;
  if (!opts.progress_path.empty()) {
    obs::Heartbeat::Options hopts;
    hopts.phase = "fabric-worker:" + name;
    hopts.progress_path = opts.progress_path;
    const std::uint64_t total = manifest.jobs;
    heartbeat = std::make_unique<obs::Heartbeat>(
        hopts, [&jobs_done, &jobs_failed, total] {
          obs::ProgressSnapshot snap;
          snap.jobs_done = jobs_done.load(std::memory_order_relaxed);
          snap.jobs_failed = jobs_failed.load(std::memory_order_relaxed);
          snap.jobs_total = total;
          return snap;
        });
  }

  while (!transport->finished()) {
    const std::optional<Lease> lease = transport->acquire();
    if (!lease) continue;

    LeaseResult result;
    result.lease = *lease;
    result.payloads.reserve(lease->count);
    bool lost = false;
    for (std::uint64_t j = 0; j < lease->count; ++j) {
      // Renew between jobs; a lost lease was stolen or reissued — whoever
      // holds it now reruns these indices to identical bytes, so just stop.
      if (j != 0 && !transport->keepalive(*lease)) {
        lost = true;
        break;
      }
      const std::uint64_t job = lease->first + j;
      try {
        result.payloads.push_back(
            manifest.grid.run_job(static_cast<std::size_t>(job)));
      } catch (const std::exception& e) {
        result.payloads.push_back(error_payload(e.what()));
        jobs_failed.fetch_add(1, std::memory_order_relaxed);
      }
      jobs_done.fetch_add(1, std::memory_order_relaxed);
    }
    if (!lost) transport->submit(result);
  }
  return 0;
}

}  // namespace mra::fabric
