// fabric::Transport — the lease-passing layer between coordinator and
// workers, with two interchangeable backends (DESIGN.md §15):
//
//   file-queue  a spool directory (host-shareable via NFS): the manifest,
//               per-lease claim files written by atomic tmp+rename, and
//               per-lease result files. Coordinator-less claiming: workers
//               race on rename and re-read to confirm ownership; a claim
//               whose mtime exceeds the lease timeout without a result is
//               stale and may be stolen (fence bumped).
//   tcp         a minimal length-prefixed (4-byte big-endian) JSON frame
//               protocol. The coordinator owns a lease ledger (pending /
//               issued with fence + deadline / done) and reissues leases
//               whose deadline passes — the crash story for a killed
//               worker.
//
// Leases are ranges of job indices plus a fence token. Because jobs are
// idempotent by index (grid.hpp) and payloads deterministic, duplicate
// execution after a steal or reissue is harmless: the first completed copy
// of a lease wins and every copy carries identical bytes.
//
// This transport layer is the fabric's only wall-clock boundary (lease
// staleness, poll intervals, socket timeouts); everything above it —
// coordinator, worker loop, merge — stays wall-clock-free, which
// scripts/mra_lint.py enforces via the `src/fabric/transport*` allowlist.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mra::fabric {

/// A contiguous job-index range plus the fence token it was issued under.
struct Lease {
  std::uint64_t id = 0;     ///< lease index (= first / chunk)
  std::uint64_t first = 0;  ///< first job index
  std::uint64_t count = 0;  ///< number of jobs
  std::uint64_t fence = 0;  ///< bumped on every steal / reissue
};

/// A completed lease: payloads[i] is job first + i.
struct LeaseResult {
  Lease lease;
  std::vector<std::string> payloads;
};

/// Splits `jobs` into ceil(jobs / chunk) leases in index order.
[[nodiscard]] std::vector<Lease> partition_leases(std::uint64_t jobs,
                                                  std::uint64_t chunk);

/// Backend timing knobs. poll_interval_sec bounds how long the blocking
/// calls sleep internally; lease_timeout_sec is how long a lease may go
/// without a keepalive before it is considered abandoned.
struct TransportTiming {
  double lease_timeout_sec = 30.0;
  double poll_interval_sec = 0.2;
};

/// Worker-side endpoint. All methods may block up to roughly the poll
/// interval; none blocks indefinitely.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// The published manifest text, or nullopt if not available yet.
  virtual std::optional<std::string> manifest() = 0;
  /// Tries to obtain a lease (TCP: lowest available index; file queue: a
  /// per-worker scan offset so workers don't race on the same claim).
  virtual std::optional<Lease> acquire() = 0;
  /// True while this worker still holds `lease`; refreshes the claim /
  /// deadline. False means the lease was stolen or reissued — abandon it.
  virtual bool keepalive(const Lease& lease) = 0;
  /// Ships a completed lease (atomic: a crash mid-submit leaves nothing).
  virtual void submit(const LeaseResult& result) = 0;
  /// True when every lease is complete (or the coordinator is gone) — the
  /// worker may exit.
  virtual bool finished() = 0;
};

/// Coordinator-side endpoint.
class CoordinatorEndpoint {
 public:
  virtual ~CoordinatorEndpoint() = default;
  CoordinatorEndpoint() = default;
  CoordinatorEndpoint(const CoordinatorEndpoint&) = delete;
  CoordinatorEndpoint& operator=(const CoordinatorEndpoint&) = delete;

  /// Announces the grid. `done[i]` marks leases already completed by a
  /// previous run (checkpoint resume) — they are never issued again.
  virtual void publish(const std::string& manifest,
                       const std::vector<Lease>& leases,
                       const std::vector<bool>& done) = 0;
  /// Waits up to the poll interval; returns leases newly completed since
  /// the last call (possibly none).
  virtual std::vector<LeaseResult> poll() = 0;
  /// The driver confirms it persisted + checkpointed this lease.
  virtual void mark_done(std::uint64_t lease_id) = 0;
  /// TCP: the bound listen port (for --listen 0). File backend: -1.
  [[nodiscard]] virtual int port() const { return -1; }
};

/// File-queue backend over `spool_root` (fabric/spool.hpp layout).
[[nodiscard]] std::unique_ptr<Transport> make_file_worker(
    const std::string& spool_root, const std::string& worker_name,
    const TransportTiming& timing);
[[nodiscard]] std::unique_ptr<CoordinatorEndpoint> make_file_coordinator(
    const std::string& spool_root, const TransportTiming& timing);

/// TCP backend. The coordinator factory binds and listens immediately
/// (port 0 = ephemeral, see CoordinatorEndpoint::port()); workers retry the
/// connect until the coordinator is up. Throws std::runtime_error on socket
/// setup failure.
[[nodiscard]] std::unique_ptr<Transport> make_tcp_worker(
    const std::string& host, int port, const std::string& worker_name,
    const TransportTiming& timing);
[[nodiscard]] std::unique_ptr<CoordinatorEndpoint> make_tcp_coordinator(
    int port, const TransportTiming& timing);

}  // namespace mra::fabric
