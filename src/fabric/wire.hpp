// Exact wire encoding for the distributed sweep fabric (DESIGN.md §15).
//
// Every value that crosses a process boundary must survive the round trip
// bit-identically, or the coordinator's merged output stops matching the
// single-process run_sweep reference: doubles are printed with %.17g (exact
// through any correctly-rounded parser — note the final merged output still
// goes through experiment/json.cpp's lossy %.10g, so an exact intermediate
// format keeps the end result byte-identical), non-finite values become the
// quoted tokens "inf"/"-inf"/"nan", and strings use the JSON escapes of
// experiment::json_escape. Payload lines are valid single-line JSON objects
// with a fixed key order, so parsing is a strict linear scan, not a general
// JSON parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mra::fabric::wire {

/// Appends a double as %.17g, or a quoted "inf"/"-inf"/"nan" token.
void append_double(std::string& out, double v);

/// Appends a JSON-escaped, quoted string.
void append_string(std::string& out, std::string_view s);

/// Strict scanner over a fixed-key-order serialized line. Every mismatch
/// throws std::invalid_argument — a malformed payload must fail the merge,
/// never silently produce a default-constructed field.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  /// Consumes `lit` exactly; throws on mismatch.
  void expect(std::string_view lit);
  /// True when the next character is `c` (no consumption).
  [[nodiscard]] bool peek(char c) const;
  /// Consumes `lit` if present; returns whether it did.
  bool consume(std::string_view lit);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  /// Parses a number or one of the quoted non-finite tokens.
  double read_double();
  /// Parses a quoted string, undoing append_string's escapes.
  std::string read_string();
  /// Captures a balanced {...} object verbatim, string-literal-aware (used
  /// to slice out the embedded RunningStats / QuantileSketch blobs).
  std::string read_object();

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace mra::fabric::wire
