#include "fabric/coordinator.hpp"

#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "fabric/merge.hpp"
#include "fabric/result.hpp"
#include "fabric/spool.hpp"
#include "fabric/transport.hpp"
#include "obs/heartbeat.hpp"

namespace mra::fabric {

namespace {

struct Board {
  std::vector<Lease> leases;
  std::vector<bool> done;
  std::vector<std::string> payloads;  ///< by job index
  std::size_t leases_done = 0;

  /// Files a completed lease's payloads; false if already done / invalid.
  bool record(const LeaseResult& result) {
    if (result.lease.id >= leases.size()) return false;
    const Lease& expected = leases[result.lease.id];
    if (done[result.lease.id]) return false;
    if (result.lease.first != expected.first ||
        result.lease.count != expected.count ||
        result.payloads.size() != expected.count) {
      return false;
    }
    for (std::uint64_t j = 0; j < expected.count; ++j) {
      payloads[expected.first + j] = result.payloads[j];
    }
    done[result.lease.id] = true;
    leases_done += 1;
    return true;
  }
};

std::uint64_t count_failed(const std::vector<std::string>& payloads) {
  std::uint64_t failed = 0;
  for (const std::string& p : payloads) {
    if (parse_error(p)) failed += 1;
  }
  return failed;
}

}  // namespace

int run_coordinator(const GridSpec& grid, const CoordinatorOptions& opts) {
  grid.validate();
  if (opts.spool.empty()) {
    std::cerr << "fabric: the coordinator needs --spool (checkpoint store)\n";
    return 2;
  }

  Manifest manifest;
  manifest.grid = grid;
  manifest.chunk = opts.chunk;
  manifest.jobs = grid.job_count();
  const std::string manifest_text = manifest.serialize();

  const SpoolPaths paths{opts.spool};
  ensure_spool_dirs(paths);
  const std::optional<std::string> existing = read_file(paths.manifest());
  if (existing && *existing != manifest_text) {
    std::cerr << "fabric: spool '" << opts.spool
              << "' holds a different grid; use a fresh spool\n";
    return 2;
  }
  if (!existing) {
    // Both backends keep the manifest in the spool: it is the checkpoint
    // store's identity, and the file backend's workers read it from here.
    write_file_atomic(paths.manifest(), manifest_text, "coordinator");
  }
  const std::vector<std::uint64_t> checkpointed =
      load_checkpoint(paths, opts.chunk);
  if (!checkpointed.empty() && !opts.resume) {
    std::cerr << "fabric: spool '" << opts.spool
              << "' has a checkpoint; pass --resume to continue it or use a "
                 "fresh spool\n";
    return 2;
  }

  Board board;
  board.leases = partition_leases(manifest.jobs, opts.chunk);
  board.done.assign(board.leases.size(), false);
  board.payloads.assign(manifest.jobs, std::string());

  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  for (const std::uint64_t id : checkpointed) {
    if (id >= board.leases.size() || board.done[id]) continue;
    // Trust the checkpoint only as far as the result file behind it: a
    // missing or torn file demotes the lease back to pending.
    const std::optional<LeaseResult> result = read_result_file(paths, id);
    if (result && board.record(*result)) {
      jobs_done.fetch_add(result->lease.count, std::memory_order_relaxed);
    }
  }

  const TransportTiming timing{opts.lease_timeout_sec, opts.poll_interval_sec};
  const std::unique_ptr<CoordinatorEndpoint> endpoint =
      opts.listen_port >= 0 ? make_tcp_coordinator(opts.listen_port, timing)
                            : make_file_coordinator(opts.spool, timing);
  if (opts.bound_port_out != nullptr) {
    *opts.bound_port_out = endpoint->port();
  }
  endpoint->publish(manifest_text, board.leases, board.done);

  {
    std::unique_ptr<obs::Heartbeat> heartbeat;
    if (!opts.progress_path.empty()) {
      obs::Heartbeat::Options hopts;
      hopts.phase = "fabric-coordinator";
      hopts.progress_path = opts.progress_path;
      const std::uint64_t total = manifest.jobs;
      heartbeat = std::make_unique<obs::Heartbeat>(
          hopts, [&jobs_done, &jobs_failed, total] {
            obs::ProgressSnapshot snap;
            snap.jobs_done = jobs_done.load(std::memory_order_relaxed);
            snap.jobs_failed = jobs_failed.load(std::memory_order_relaxed);
            snap.jobs_total = total;
            return snap;
          });
    }

    while (board.leases_done < board.leases.size()) {
      for (LeaseResult& result : endpoint->poll()) {
        const std::uint64_t id = result.lease.id;
        if (!board.record(result)) continue;
        // Persist payloads before checkpointing: a `done` line must always
        // have a readable result file behind it.
        if (!read_result_file(paths, id)) {
          write_result_file(paths, result, "coordinator");
        }
        append_checkpoint(paths, board.leases[id]);
        endpoint->mark_done(id);
        jobs_done.fetch_add(result.lease.count, std::memory_order_relaxed);
        jobs_failed.fetch_add(count_failed(result.payloads),
                              std::memory_order_relaxed);
      }
    }
  }

  std::optional<MergeError> error;
  if (opts.out_path.empty()) {
    error = write_merged_output(std::cout, grid, board.payloads);
  } else {
    std::ofstream os(opts.out_path, std::ios::binary);
    if (!os) {
      std::cerr << "fabric: cannot write '" << opts.out_path << "'\n";
      return 1;
    }
    error = write_merged_output(os, grid, board.payloads);
  }
  if (error) {
    std::cerr << "fabric: job #" << error->job << " ("
              << grid.job_label(error->job) << ") failed: " << error->message
              << "\n";
    return 1;
  }
  if (!opts.out_path.empty()) {
    std::cerr << "fabric: merged " << manifest.jobs << " jobs -> "
              << opts.out_path << "\n";
  }
  return 0;
}

}  // namespace mra::fabric
