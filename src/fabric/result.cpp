#include "fabric/result.hpp"

#include "fabric/wire.hpp"

namespace mra::fabric {

std::string serialize_result(const experiment::ExperimentResult& r) {
  std::string out = "{\"algorithm\":";
  wire::append_string(out, r.algorithm);
  out += ",\"phi\":" + std::to_string(r.phi);
  out += ",\"rho\":";
  wire::append_double(out, r.rho);
  out += ",\"use_rate\":";
  wire::append_double(out, r.use_rate);
  out += ",\"waiting_mean_ms\":";
  wire::append_double(out, r.waiting_mean_ms);
  out += ",\"waiting_stddev_ms\":";
  wire::append_double(out, r.waiting_stddev_ms);
  out += ",\"waiting_p50_ms\":";
  wire::append_double(out, r.waiting_p50_ms);
  out += ",\"waiting_p95_ms\":";
  wire::append_double(out, r.waiting_p95_ms);
  out += ",\"waiting_p99_ms\":";
  wire::append_double(out, r.waiting_p99_ms);
  out += ",\"requests_completed\":" + std::to_string(r.requests_completed);
  out += ",\"messages\":" + std::to_string(r.messages);
  out += ",\"bytes\":" + std::to_string(r.bytes);
  out += ",\"messages_per_cs\":";
  wire::append_double(out, r.messages_per_cs);
  out += ",\"loans_used\":" + std::to_string(r.loans_used);
  out += ",\"loans_failed\":" + std::to_string(r.loans_failed);
  out += ",\"waiting_stats\":" + r.waiting_stats.serialize();
  out += ",\"waiting_sketch\":" + r.waiting_sketch.serialize();
  out += '}';
  return out;
}

experiment::ExperimentResult parse_result(std::string_view line) {
  wire::Cursor c(line);
  experiment::ExperimentResult r;
  c.expect("{\"algorithm\":");
  r.algorithm = c.read_string();
  c.expect(",\"phi\":");
  r.phi = static_cast<int>(c.read_i64());
  c.expect(",\"rho\":");
  r.rho = c.read_double();
  c.expect(",\"use_rate\":");
  r.use_rate = c.read_double();
  c.expect(",\"waiting_mean_ms\":");
  r.waiting_mean_ms = c.read_double();
  c.expect(",\"waiting_stddev_ms\":");
  r.waiting_stddev_ms = c.read_double();
  c.expect(",\"waiting_p50_ms\":");
  r.waiting_p50_ms = c.read_double();
  c.expect(",\"waiting_p95_ms\":");
  r.waiting_p95_ms = c.read_double();
  c.expect(",\"waiting_p99_ms\":");
  r.waiting_p99_ms = c.read_double();
  c.expect(",\"requests_completed\":");
  r.requests_completed = c.read_u64();
  c.expect(",\"messages\":");
  r.messages = c.read_u64();
  c.expect(",\"bytes\":");
  r.bytes = c.read_u64();
  c.expect(",\"messages_per_cs\":");
  r.messages_per_cs = c.read_double();
  c.expect(",\"loans_used\":");
  r.loans_used = c.read_u64();
  c.expect(",\"loans_failed\":");
  r.loans_failed = c.read_u64();
  c.expect(",\"waiting_stats\":");
  r.waiting_stats = metrics::RunningStats::deserialize(c.read_object());
  c.expect(",\"waiting_sketch\":");
  r.waiting_sketch = metrics::QuantileSketch::deserialize(c.read_object());
  c.expect("}");
  return r;
}

std::string error_payload(std::string_view message) {
  std::string out = "{\"error\":";
  wire::append_string(out, message);
  out += '}';
  return out;
}

std::optional<std::string> parse_error(std::string_view line) {
  wire::Cursor c(line);
  if (!c.consume("{\"error\":")) return std::nullopt;
  return c.read_string();
}

}  // namespace mra::fabric
