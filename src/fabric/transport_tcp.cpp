// TCP transport backend (DESIGN.md §15): 4-byte big-endian length-prefixed
// JSON frames over plain sockets, no external deps. Unlike the file queue,
// the coordinator is live state here: it owns the lease ledger
// (pending / issued{fence, deadline} / done) and reissues a lease whose
// deadline lapses with the fence bumped — that is the whole crash story for
// a kill -9'd worker. Results are accepted for any fence as long as the
// lease is not already done: payloads are deterministic, so every copy is
// byte-identical and first-wins is safe.
//
// This file is on the mra_lint wall-clock allowlist: lease deadlines are
// steady_clock timestamps and idle paths wait out a real poll interval.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fabric/transport.hpp"
#include "fabric/wire.hpp"

namespace mra::fabric {
namespace {

using Clock = std::chrono::steady_clock;
using FpSeconds = std::chrono::duration<double>;

constexpr std::size_t kMaxFrame = 256U * 1024U * 1024U;

void sleep_poll(const TransportTiming& timing) {
  std::this_thread::sleep_for(FpSeconds(timing.poll_interval_sec));
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, MSG_WAITALL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, std::string_view body) {
  unsigned char header[4];
  const std::uint32_t size = static_cast<std::uint32_t>(body.size());
  header[0] = static_cast<unsigned char>(size >> 24U);
  header[1] = static_cast<unsigned char>((size >> 16U) & 0xFFU);
  header[2] = static_cast<unsigned char>((size >> 8U) & 0xFFU);
  header[3] = static_cast<unsigned char>(size & 0xFFU);
  return send_all(fd, reinterpret_cast<const char*>(header), 4) &&
         send_all(fd, body.data(), body.size());
}

std::optional<std::string> recv_frame(int fd) {
  unsigned char header[4];
  if (!recv_all(fd, reinterpret_cast<char*>(header), 4)) return std::nullopt;
  const std::size_t size = (static_cast<std::size_t>(header[0]) << 24U) |
                           (static_cast<std::size_t>(header[1]) << 16U) |
                           (static_cast<std::size_t>(header[2]) << 8U) |
                           static_cast<std::size_t>(header[3]);
  if (size > kMaxFrame) return std::nullopt;
  std::string body(size, '\0');
  if (!recv_all(fd, body.data(), size)) return std::nullopt;
  return body;
}

std::string lease_frame(const Lease& lease) {
  std::string out = "{\"type\":\"lease\",\"id\":" + std::to_string(lease.id);
  out += ",\"first\":" + std::to_string(lease.first);
  out += ",\"count\":" + std::to_string(lease.count);
  out += ",\"fence\":" + std::to_string(lease.fence);
  out += '}';
  return out;
}

Lease parse_lease_frame(wire::Cursor& c) {
  Lease lease;
  c.expect("\"id\":");
  lease.id = c.read_u64();
  c.expect(",\"first\":");
  lease.first = c.read_u64();
  c.expect(",\"count\":");
  lease.count = c.read_u64();
  c.expect(",\"fence\":");
  lease.fence = c.read_u64();
  return lease;
}

class TcpCoordinator final : public CoordinatorEndpoint {
 public:
  TcpCoordinator(int port, const TransportTiming& timing) : timing_(timing) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("fabric/tcp: socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("fabric/tcp: cannot listen on port " +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }

  ~TcpCoordinator() override {
    for (const int fd : clients_) ::close(fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  void publish(const std::string& manifest, const std::vector<Lease>& leases,
               const std::vector<bool>& done) override {
    manifest_ = manifest;
    slots_.clear();
    slots_.reserve(leases.size());
    for (std::size_t i = 0; i < leases.size(); ++i) {
      Slot slot;
      slot.lease = leases[i];
      slot.state = i < done.size() && done[i] ? Slot::kDone : Slot::kPending;
      slots_.push_back(slot);
    }
  }

  std::vector<LeaseResult> poll() override {
    ready_.clear();
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const int fd : clients_) fds.push_back({fd, POLLIN, 0});
    const int timeout_ms =
        static_cast<int>(timing_.poll_interval_sec * 1000.0);
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return {};

    std::vector<int> alive;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        alive.push_back(fd);
        continue;
      }
      if (serve_one(fd)) {
        alive.push_back(fd);
      } else {
        ::close(fd);
      }
    }
    clients_ = std::move(alive);
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) clients_.push_back(client);
    }
    return std::move(ready_);
  }

  void mark_done(std::uint64_t /*lease_id*/) override {
    // The ledger flipped to kDone when the result frame arrived.
  }

  [[nodiscard]] int port() const override { return port_; }

 private:
  struct Slot {
    enum State { kPending, kIssued, kDone };
    State state = kPending;
    Lease lease;
    Clock::time_point deadline;
  };

  /// Reads one frame from `fd`, replies; false = drop this client.
  bool serve_one(int fd) {
    const std::optional<std::string> body = recv_frame(fd);
    if (!body) return false;
    wire::Cursor c(*body);
    if (c.consume("{\"type\":\"hello\",\"worker\":")) {
      (void)c.read_string();
      std::string reply = "{\"type\":\"manifest\",\"text\":";
      wire::append_string(reply, manifest_);
      reply += '}';
      return send_frame(fd, reply);
    }
    if (c.consume("{\"type\":\"acquire\",\"worker\":")) {
      (void)c.read_string();
      return send_frame(fd, next_lease());
    }
    if (c.consume("{\"type\":\"keepalive\",")) {
      const Lease lease = parse_lease_frame(c);
      return send_frame(fd, refresh(lease) ? "{\"type\":\"ok\"}"
                                           : "{\"type\":\"lost\"}");
    }
    if (c.consume("{\"type\":\"result\",")) {
      const Lease lease = parse_lease_frame(c);
      c.expect(",\"payloads\":[");
      LeaseResult result;
      result.lease = lease;
      while (!c.peek(']')) {
        result.payloads.push_back(c.read_string());
        if (c.peek(',')) c.expect(",");
      }
      c.expect("]");
      accept_result(std::move(result));
      return send_frame(fd, "{\"type\":\"ok\"}");
    }
    return false;  // unknown frame: drop the client
  }

  std::string next_lease() {
    const Clock::time_point now = Clock::now();
    const auto timeout = std::chrono::duration_cast<Clock::duration>(
        FpSeconds(timing_.lease_timeout_sec));
    bool all_done = true;
    for (Slot& slot : slots_) {
      if (slot.state == Slot::kDone) continue;
      all_done = false;
      const bool expired =
          slot.state == Slot::kIssued && now >= slot.deadline;
      if (slot.state == Slot::kPending || expired) {
        if (expired) slot.lease.fence += 1;
        slot.state = Slot::kIssued;
        slot.deadline = now + timeout;
        return lease_frame(slot.lease);
      }
    }
    return all_done ? "{\"type\":\"finished\"}" : "{\"type\":\"idle\"}";
  }

  bool refresh(const Lease& lease) {
    for (Slot& slot : slots_) {
      if (slot.lease.id != lease.id) continue;
      if (slot.state != Slot::kIssued || slot.lease.fence != lease.fence) {
        return false;
      }
      slot.deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             FpSeconds(timing_.lease_timeout_sec));
      return true;
    }
    return false;
  }

  void accept_result(LeaseResult result) {
    for (Slot& slot : slots_) {
      if (slot.lease.id != result.lease.id) continue;
      // Any fence is fine while not done: payloads are deterministic, the
      // first complete copy wins.
      if (slot.state == Slot::kDone) return;
      if (result.payloads.size() != slot.lease.count) return;
      slot.state = Slot::kDone;
      ready_.push_back(std::move(result));
      return;
    }
  }

  TransportTiming timing_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string manifest_;
  std::vector<Slot> slots_;
  std::vector<int> clients_;
  std::vector<LeaseResult> ready_;
};

class TcpWorker final : public Transport {
 public:
  TcpWorker(std::string host, int port, std::string worker_name,
            const TransportTiming& timing)
      : host_(std::move(host)),
        port_(port),
        name_(std::move(worker_name)),
        timing_(timing) {}

  ~TcpWorker() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::optional<std::string> manifest() override {
    std::string req = "{\"type\":\"hello\",\"worker\":";
    wire::append_string(req, name_);
    req += '}';
    const std::optional<std::string> reply = request(req);
    if (!reply) return std::nullopt;
    wire::Cursor c(*reply);
    c.expect("{\"type\":\"manifest\",\"text\":");
    return c.read_string();
  }

  std::optional<Lease> acquire() override {
    std::string req = "{\"type\":\"acquire\",\"worker\":";
    wire::append_string(req, name_);
    req += '}';
    const std::optional<std::string> reply = request(req);
    if (!reply) return std::nullopt;
    wire::Cursor c(*reply);
    if (c.consume("{\"type\":\"lease\",")) return parse_lease_frame(c);
    if (c.consume("{\"type\":\"finished\"}")) {
      finished_ = true;
      return std::nullopt;
    }
    sleep_poll(timing_);  // idle: the grid is fully leased out right now
    return std::nullopt;
  }

  bool keepalive(const Lease& lease) override {
    std::string req =
        "{\"type\":\"keepalive\"," +
        lease_frame(lease).substr(std::strlen("{\"type\":\"lease\","));
    const std::optional<std::string> reply = request(req);
    return reply && *reply == "{\"type\":\"ok\"}";
  }

  void submit(const LeaseResult& result) override {
    std::string req =
        "{\"type\":\"result\",\"id\":" + std::to_string(result.lease.id);
    req += ",\"first\":" + std::to_string(result.lease.first);
    req += ",\"count\":" + std::to_string(result.lease.count);
    req += ",\"fence\":" + std::to_string(result.lease.fence);
    req += ",\"payloads\":[";
    for (std::size_t i = 0; i < result.payloads.size(); ++i) {
      if (i != 0) req += ',';
      wire::append_string(req, result.payloads[i]);
    }
    req += "]}";
    (void)request(req);
  }

  bool finished() override { return finished_; }

 private:
  /// One round trip; reconnects lazily. A broken connection after it was
  /// once established means the coordinator exited — treat as finished.
  std::optional<std::string> request(std::string_view body) {
    if (finished_) return std::nullopt;
    if (fd_ < 0 && !connect_with_retry()) return std::nullopt;
    if (send_frame(fd_, body)) {
      std::optional<std::string> reply = recv_frame(fd_);
      if (reply) return reply;
    }
    ::close(fd_);
    fd_ = -1;
    finished_ = true;  // coordinator gone: nothing left to work on
    return std::nullopt;
  }

  bool connect_with_retry() {
    const int max_attempts = std::max(
        1, static_cast<int>(60.0 / std::max(timing_.poll_interval_sec, 1e-3)));
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (connect_once()) return true;
      std::this_thread::sleep_for(FpSeconds(timing_.poll_interval_sec));
    }
    throw std::runtime_error("fabric/tcp: cannot connect to " + host_ + ":" +
                             std::to_string(port_));
  }

  bool connect_once() {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const std::string port_text = std::to_string(port_);
    if (::getaddrinfo(host_.c_str(), port_text.c_str(), &hints, &found) != 0) {
      return false;
    }
    int fd = -1;
    for (addrinfo* it = found; it != nullptr; it = it->ai_next) {
      fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(found);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    return true;
  }

  std::string host_;
  int port_;
  std::string name_;
  TransportTiming timing_;
  int fd_ = -1;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_worker(const std::string& host, int port,
                                           const std::string& worker_name,
                                           const TransportTiming& timing) {
  return std::make_unique<TcpWorker>(host, port, worker_name, timing);
}

std::unique_ptr<CoordinatorEndpoint> make_tcp_coordinator(
    int port, const TransportTiming& timing) {
  return std::make_unique<TcpCoordinator>(port, timing);
}

}  // namespace mra::fabric
