// The fabric worker loop (DESIGN.md §15): lease, run, keepalive, submit.
//
// Workers are stateless: everything they need is the manifest plus a job
// index, so any number can join, die, or rejoin at any time. A job that
// throws becomes an error payload (the lease still completes — the
// coordinator reports failures after the merge gate), and a lost keepalive
// abandons the lease without submitting, leaving it to whoever stole it.
#pragma once

#include <string>

#include "fabric/grid.hpp"

namespace mra::fabric {

struct WorkerOptions {
  std::string spool;    ///< file backend: spool root
  std::string connect;  ///< TCP backend: "host:port" (empty = file backend)
  std::string name;     ///< claim-file identity (default "w<pid>")
  double lease_timeout_sec = 30.0;
  double poll_interval_sec = 0.2;
  std::string progress_path;  ///< non-empty: obs::Heartbeat progress file
};

/// Runs jobs until the grid is finished (or the coordinator goes away).
/// Exit codes: 0 done; 1 setup failure (no manifest, bad connect string).
[[nodiscard]] int run_worker(const WorkerOptions& opts);

}  // namespace mra::fabric
