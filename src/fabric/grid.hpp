// GridSpec: the enumerable job grid the fabric distributes (DESIGN.md §15).
//
// A grid names its work declaratively — scenario names, algorithm names, and
// the per-kind fan-out knobs — so the coordinator can publish it as a
// manifest and any worker can reconstruct job i bit-identically from (grid,
// i) alone. Job indices are the fabric's unit of idempotency: running a job
// twice (duplicate lease, killed-and-retried worker) produces the same
// payload bytes, so the merge never depends on which worker ran what.
//
// Three kinds:
//   kSweep       scenarios × algorithms, one run_scenario per job, in the
//                exact order examples/mra_scenarios.cpp sweeps (scenario
//                outer, algorithm inner).
//   kReplicated  scenarios × algorithms × replications; job index
//                pair * replications + rep, replication seeds from
//                experiment::replication_seed — the same flattening
//                run_replicated_jobs uses, so grouped merges match it.
//   kExplore     `explore_jobs` independent check::explore shards, job j
//                fuzzing seeds_per_job seeds from base seed
//                grid.seed + j * seeds_per_job (a disjoint seed range per
//                job).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace mra::fabric {

enum class GridKind { kSweep, kReplicated, kExplore };

[[nodiscard]] const char* to_string(GridKind k);
/// Parses "sweep" | "replicated" | "explore"; throws std::invalid_argument.
[[nodiscard]] GridKind grid_kind_from_name(const std::string& name);

struct GridSpec {
  GridKind kind = GridKind::kSweep;
  std::vector<std::string> scenarios;   ///< registry names, already expanded
  std::vector<std::string> algorithms;  ///< factory cli names
  std::size_t replications = 4;         ///< kReplicated
  std::size_t seeds_per_job = 4;        ///< kExplore
  std::size_t explore_jobs = 8;         ///< kExplore
  bool quick = false;
  bool seed_set = false;   ///< override every scenario's base seed
  std::uint64_t seed = 1;  ///< the override (kExplore: the base seed)

  /// One JSON line; parse() inverts it. Throws on malformed input.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static GridSpec parse(std::string_view text);

  /// Validates names against the registries and the counts; throws
  /// std::invalid_argument naming the problem.
  void validate() const;

  [[nodiscard]] std::size_t job_count() const;

  /// The scenario name backing job `index` (the JSON row label; kExplore
  /// jobs are labelled "explore:<job>").
  [[nodiscard]] std::string job_label(std::size_t index) const;

  /// Runs job `index` to a payload line (fabric/result.hpp format for
  /// kSweep/kReplicated; a self-describing stats row for kExplore).
  /// Deterministic: depends only on (grid, index). Propagates the job's
  /// exception on failure — the worker loop wraps it into error_payload.
  [[nodiscard]] std::string run_job(std::size_t index) const;

  /// The scenario specs with the grid's seed/quick adjustments applied, in
  /// `scenarios` order (the same adjustment mra_scenarios applies).
  [[nodiscard]] std::vector<scenario::ScenarioSpec> resolve_scenarios() const;
};

/// The spool/TCP manifest: the grid plus the coordinator's sharding knobs.
struct Manifest {
  GridSpec grid;
  std::uint64_t chunk = 1;  ///< jobs per lease
  std::uint64_t jobs = 0;   ///< grid.job_count(), denormalized for workers

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Manifest parse(std::string_view text);
};

}  // namespace mra::fabric
