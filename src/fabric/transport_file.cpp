// File-queue transport backend (DESIGN.md §15): coordination through a spool
// directory alone, shareable across hosts over NFS. Claiming is optimistic —
// write your claim file via atomic rename, re-read to see who won. The
// re-read race (two workers both confirming within one interleaving window)
// is tolerated: jobs are idempotent by index and payloads deterministic, so
// the duplicate lease just burns CPU.
//
// This file is on the mra_lint wall-clock allowlist: claim staleness is
// judged by file mtime against the filesystem clock, and idle paths sleep a
// real poll interval.
#include <chrono>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fabric/grid.hpp"
#include "fabric/spool.hpp"
#include "fabric/transport.hpp"
#include "fabric/wire.hpp"

namespace mra::fabric {
namespace {

namespace fs = std::filesystem;

using FpSeconds = std::chrono::duration<double>;

void sleep_poll(const TransportTiming& timing) {
  std::this_thread::sleep_for(FpSeconds(timing.poll_interval_sec));
}

struct ClaimInfo {
  std::string worker;
  std::uint64_t fence = 0;
};

std::string claim_text(const ClaimInfo& claim) {
  std::string out = "{\"worker\":";
  wire::append_string(out, claim.worker);
  out += ",\"fence\":" + std::to_string(claim.fence);
  out += "}\n";
  return out;
}

std::optional<ClaimInfo> parse_claim(std::string_view text) {
  try {
    wire::Cursor c(text);
    ClaimInfo claim;
    c.expect("{\"worker\":");
    claim.worker = c.read_string();
    c.expect(",\"fence\":");
    claim.fence = c.read_u64();
    c.expect("}");
    return claim;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

/// Seconds since `path` was last written; a huge value if unreadable (a
/// vanished claim is treated as infinitely stale and retried from scratch).
double claim_age_sec(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return 1e18;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration_cast<FpSeconds>(age).count();
}

class FileWorker final : public Transport {
 public:
  FileWorker(std::string spool_root, std::string worker_name,
             const TransportTiming& timing)
      : paths_{std::move(spool_root)},
        name_(std::move(worker_name)),
        timing_(timing) {}

  std::optional<std::string> manifest() override {
    const std::optional<std::string> text = read_file(paths_.manifest());
    if (!text) {
      sleep_poll(timing_);
      return std::nullopt;
    }
    if (leases_.empty()) {
      const Manifest m = Manifest::parse(*text);
      leases_ = partition_leases(m.jobs, m.chunk);
      if (!leases_.empty()) {
        scan_start_ = std::hash<std::string>{}(name_) % leases_.size();
      }
    }
    return text;
  }

  std::optional<Lease> acquire() override {
    require_manifest();
    // Scan from a per-worker offset, not lease 0: workers that scan in
    // lockstep all race on the same claim and serialize. The offset spreads
    // them over the grid; every lease is still visited each round.
    const std::size_t n = leases_.size();
    bool all_done = true;
    for (std::size_t step = 0; step < n; ++step) {
      const Lease& lease = leases_[(scan_start_ + step) % n];
      std::error_code ec;
      if (fs::exists(paths_.result(lease.id), ec)) continue;
      all_done = false;
      std::optional<Lease> claimed = try_claim(lease);
      if (claimed) {
        scan_start_ = (lease.id + 1) % n;
        return claimed;
      }
    }
    if (!all_done) sleep_poll(timing_);
    return std::nullopt;
  }

  bool keepalive(const Lease& lease) override {
    const std::optional<std::string> text = read_file(paths_.claim(lease.id));
    if (!text) return false;
    const std::optional<ClaimInfo> claim = parse_claim(*text);
    if (!claim || claim->worker != name_ || claim->fence != lease.fence) {
      return false;
    }
    // Rewrite to refresh the mtime that stale-detection reads.
    write_file_atomic(paths_.claim(lease.id), *text, name_);
    return true;
  }

  void submit(const LeaseResult& result) override {
    write_result_file(paths_, result, name_);
  }

  bool finished() override {
    if (leases_.empty()) return false;
    for (const Lease& lease : leases_) {
      std::error_code ec;
      if (!fs::exists(paths_.result(lease.id), ec)) return false;
    }
    return true;
  }

 private:
  void require_manifest() {
    if (!leases_.empty()) return;
    if (!manifest() && leases_.empty()) {
      throw std::runtime_error("fabric: no manifest in spool '" + paths_.root +
                               "'");
    }
  }

  std::optional<Lease> try_claim(const Lease& lease) {
    ClaimInfo mine{name_, 0};
    const std::optional<std::string> existing =
        read_file(paths_.claim(lease.id));
    if (existing) {
      const std::optional<ClaimInfo> claim = parse_claim(*existing);
      const bool stale =
          !claim ||
          claim_age_sec(paths_.claim(lease.id)) > timing_.lease_timeout_sec;
      if (!stale) return std::nullopt;  // live claim held by someone
      mine.fence = claim ? claim->fence + 1 : 1;
    }
    write_file_atomic(paths_.claim(lease.id), claim_text(mine), name_);
    // Re-read: under a rename race the last writer owns the lease.
    const std::optional<std::string> now = read_file(paths_.claim(lease.id));
    if (!now) return std::nullopt;
    const std::optional<ClaimInfo> winner = parse_claim(*now);
    if (!winner || winner->worker != name_ || winner->fence != mine.fence) {
      return std::nullopt;
    }
    Lease held = lease;
    held.fence = mine.fence;
    return held;
  }

  SpoolPaths paths_;
  std::string name_;
  TransportTiming timing_;
  std::vector<Lease> leases_;
  std::size_t scan_start_ = 0;
};

class FileCoordinator final : public CoordinatorEndpoint {
 public:
  FileCoordinator(std::string spool_root, const TransportTiming& timing)
      : paths_{std::move(spool_root)}, timing_(timing) {}

  void publish(const std::string& manifest, const std::vector<Lease>& leases,
               const std::vector<bool>& done) override {
    ensure_spool_dirs(paths_);
    if (!read_file(paths_.manifest())) {
      write_file_atomic(paths_.manifest(), manifest, "coordinator");
    }
    leases_ = leases;
    consumed_ = done;
    consumed_.resize(leases_.size(), false);
  }

  std::vector<LeaseResult> poll() override {
    std::vector<LeaseResult> fresh;
    for (std::size_t i = 0; i < leases_.size(); ++i) {
      if (consumed_[i]) continue;
      std::optional<LeaseResult> result =
          read_result_file(paths_, leases_[i].id);
      if (!result) continue;
      consumed_[i] = true;
      fresh.push_back(std::move(*result));
    }
    if (fresh.empty()) sleep_poll(timing_);
    return fresh;
  }

  void mark_done(std::uint64_t /*lease_id*/) override {
    // The result file in the spool is already the durable record; delivery
    // bookkeeping happened in poll().
  }

 private:
  SpoolPaths paths_;
  TransportTiming timing_;
  std::vector<Lease> leases_;
  std::vector<bool> consumed_;
};

}  // namespace

std::unique_ptr<Transport> make_file_worker(const std::string& spool_root,
                                            const std::string& worker_name,
                                            const TransportTiming& timing) {
  return std::make_unique<FileWorker>(spool_root, worker_name, timing);
}

std::unique_ptr<CoordinatorEndpoint> make_file_coordinator(
    const std::string& spool_root, const TransportTiming& timing) {
  return std::make_unique<FileCoordinator>(spool_root, timing);
}

}  // namespace mra::fabric
