// The spool directory: the fabric's durable state (DESIGN.md §15).
//
// Layout under one root:
//   manifest.json             the Manifest (grid + sharding), written once
//   claims/lease_<id>.json    file-queue claim files ({"worker":...,"fence":N})
//   results/lease_<id>.jsonl  completed lease: header line + one payload/job
//   checkpoint.log            append-only `done <first> <count>` lines
//
// Every file that matters is written atomically (tmp + rename into place), so
// readers never observe a torn file; a crash mid-write leaves at most a stale
// *.tmp. The checkpoint log is the one append-in-place file — its reader
// accepts only complete lines, so a crash mid-append costs one re-run lease,
// never a corrupt resume.
//
// This layer is deliberately wall-clock-free: staleness decisions live in the
// transport backends (the lint allowlist covers only src/fabric/transport*).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/transport.hpp"

namespace mra::fabric {

/// Path scheme for a spool root. Pure string math — no filesystem access.
struct SpoolPaths {
  std::string root;

  [[nodiscard]] std::string manifest() const { return root + "/manifest.json"; }
  [[nodiscard]] std::string claims_dir() const { return root + "/claims"; }
  [[nodiscard]] std::string results_dir() const { return root + "/results"; }
  [[nodiscard]] std::string checkpoint() const {
    return root + "/checkpoint.log";
  }
  [[nodiscard]] std::string claim(std::uint64_t lease_id) const {
    return claims_dir() + "/lease_" + std::to_string(lease_id) + ".json";
  }
  [[nodiscard]] std::string result(std::uint64_t lease_id) const {
    return results_dir() + "/lease_" + std::to_string(lease_id) + ".jsonl";
  }
};

/// Creates root/claims/results directories (parents included). Throws
/// std::runtime_error on failure.
void ensure_spool_dirs(const SpoolPaths& paths);

/// Atomic whole-file write: <path>.tmp.<suffix> then rename over <path>.
/// rename(2) replaces any existing file, so concurrent writers race cleanly —
/// one complete copy wins. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, std::string_view content,
                       std::string_view tmp_suffix);

/// Whole-file read; nullopt if the file does not exist (other I/O errors
/// throw).
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Appends one `done <first> <count>` line (with fsync) to the checkpoint.
void append_checkpoint(const SpoolPaths& paths, const Lease& lease);

/// Replays the checkpoint log: lease ids (first / chunk) with a complete
/// `done` line. A partial trailing line (crash mid-append) is ignored;
/// malformed complete lines throw std::runtime_error. Missing file => empty.
[[nodiscard]] std::vector<std::uint64_t> load_checkpoint(
    const SpoolPaths& paths, std::uint64_t chunk);

/// Writes results/lease_<id>.jsonl atomically: a header line
/// `{"lease":id,"first":f,"count":n,"fence":k}` then one payload line per
/// job in index order.
void write_result_file(const SpoolPaths& paths, const LeaseResult& result,
                       std::string_view tmp_suffix);

/// Reads a lease result file back; nullopt if absent or torn (wrong payload
/// count — possible only for files not written by write_result_file).
[[nodiscard]] std::optional<LeaseResult> read_result_file(
    const SpoolPaths& paths, std::uint64_t lease_id);

}  // namespace mra::fabric
