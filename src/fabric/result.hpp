// Payload lines: one serialized ExperimentResult per job (DESIGN.md §15).
//
// A worker ships each finished job back as a single JSON line carrying every
// field the merge layer consumes — the scalar metrics experiment/json.cpp
// prints plus the mergeable accumulators (RunningStats, QuantileSketch) that
// experiment::merge_replications pools. Doubles round-trip exactly
// (fabric/wire.hpp), so a coordinator that parses these lines and writes the
// standard JSON reports produces bytes identical to the in-process path.
//
// Not carried: waiting_by_size, messages_by_kind, records — no consumer on
// the merge side reads them (they feed the Fig. 7 table and the Gantt
// export, which run in-process).
//
// A job that throws ships an error payload instead; the coordinator surfaces
// the lowest failed job index and produces no merged output, mirroring
// run_sweep's SweepError contract.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "experiment/experiment.hpp"

namespace mra::fabric {

/// One JSON line (no trailing newline) for a finished job.
[[nodiscard]] std::string serialize_result(
    const experiment::ExperimentResult& r);

/// Inverse of serialize_result. Throws std::invalid_argument on malformed
/// input (including error payloads — check parse_error first).
[[nodiscard]] experiment::ExperimentResult parse_result(std::string_view line);

/// One JSON line for a failed job.
[[nodiscard]] std::string error_payload(std::string_view message);

/// The error message when `line` is an error payload, nullopt otherwise.
[[nodiscard]] std::optional<std::string> parse_error(std::string_view line);

}  // namespace mra::fabric
