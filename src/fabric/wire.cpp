#include "fabric/wire.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace mra::fabric::wire {

void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "\"nan\"";
  } else if (std::isinf(v)) {
    out += v > 0.0 ? "\"inf\"" : "\"-inf\"";
  } else {
    std::array<char, 32> buf{};
    const int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
    out.append(buf.data(), static_cast<std::size_t>(n));
  }
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Cursor::fail(const std::string& what) const {
  throw std::invalid_argument("fabric wire: " + what + " at offset " +
                              std::to_string(pos_));
}

void Cursor::expect(std::string_view lit) {
  if (text_.substr(pos_, lit.size()) != lit) {
    fail("expected '" + std::string(lit) + "'");
  }
  pos_ += lit.size();
}

bool Cursor::peek(char c) const {
  return pos_ < text_.size() && text_[pos_] == c;
}

bool Cursor::consume(std::string_view lit) {
  if (text_.substr(pos_, lit.size()) != lit) return false;
  pos_ += lit.size();
  return true;
}

std::uint64_t Cursor::read_u64() {
  std::uint64_t v = 0;
  const auto [end, ec] =
      std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
  if (ec != std::errc{}) fail("expected unsigned integer");
  pos_ = static_cast<std::size_t>(end - text_.data());
  return v;
}

std::int64_t Cursor::read_i64() {
  std::int64_t v = 0;
  const auto [end, ec] =
      std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
  if (ec != std::errc{}) fail("expected integer");
  pos_ = static_cast<std::size_t>(end - text_.data());
  return v;
}

double Cursor::read_double() {
  if (peek('"')) {
    const std::string tok = read_string();
    if (tok == "inf") return std::numeric_limits<double>::infinity();
    if (tok == "-inf") return -std::numeric_limits<double>::infinity();
    if (tok == "nan") return std::numeric_limits<double>::quiet_NaN();
    fail("unknown non-finite token '" + tok + "'");
  }
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
  if (ec != std::errc{}) fail("expected number");
  pos_ = static_cast<std::size_t>(end - text_.data());
  return v;
}

std::string Cursor::read_string() {
  expect("\"");
  std::string out;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("dangling escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        const auto [end, ec] = std::from_chars(
            text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
        if (ec != std::errc{} || end != text_.data() + pos_ + 4 ||
            code > 0x7F) {
          // append_string only emits \u00XX for control bytes; anything
          // else is not ours.
          fail("unsupported \\u escape");
        }
        out += static_cast<char>(code);
        pos_ += 4;
        break;
      }
      default: fail("unknown escape");
    }
  }
}

std::string Cursor::read_object() {
  if (!peek('{')) fail("expected object");
  const std::size_t start = pos_;
  int depth = 0;
  bool in_string = false;
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (in_string) {
      if (c == '\\') {
        if (pos_ < text_.size()) ++pos_;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        return std::string(text_.substr(start, pos_ - start));
      }
    }
  }
  fail("unbalanced object");
}

}  // namespace mra::fabric::wire
