// The fabric coordinator (DESIGN.md §15): owns the grid, the spool, the
// checkpoint log, and the final merge.
//
// Crash safety: a lease's payloads are persisted to the spool BEFORE its
// `done` line is appended to the checkpoint log, so a checkpoint entry
// always has a readable result file behind it — and resume double-checks
// anyway, demoting any checkpointed lease whose result file is missing or
// torn back to pending. Killing the coordinator at any instant therefore
// costs at most the leases in flight, never correctness.
#pragma once

#include <cstdint>
#include <string>

#include "fabric/grid.hpp"

namespace mra::fabric {

struct CoordinatorOptions {
  std::string spool;          ///< spool root (required, both backends)
  std::uint64_t chunk = 1;    ///< jobs per lease
  bool resume = false;        ///< continue from the spool's checkpoint
  int listen_port = -1;       ///< >= 0: TCP backend on this port (0 = any)
  double lease_timeout_sec = 30.0;
  double poll_interval_sec = 0.2;
  std::string out_path;       ///< merged report (empty = stdout)
  std::string progress_path;  ///< non-empty: obs::Heartbeat progress file
  int* bound_port_out = nullptr;  ///< test hook: receives the TCP port
};

/// Runs the coordinator to completion. Exit codes: 0 merged output written;
/// 1 at least one job failed (lowest index reported on stderr); 2 usage /
/// spool-state error (manifest mismatch, checkpoint without --resume).
[[nodiscard]] int run_coordinator(const GridSpec& grid,
                                  const CoordinatorOptions& opts);

}  // namespace mra::fabric
