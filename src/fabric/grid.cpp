#include "fabric/grid.hpp"

#include <stdexcept>

#include "algo/factory.hpp"
#include "check/explore.hpp"
#include "experiment/replicate.hpp"
#include "fabric/result.hpp"
#include "fabric/wire.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace mra::fabric {

const char* to_string(GridKind k) {
  switch (k) {
    case GridKind::kSweep: return "sweep";
    case GridKind::kReplicated: return "replicated";
    case GridKind::kExplore: return "explore";
  }
  return "?";
}

GridKind grid_kind_from_name(const std::string& name) {
  if (name == "sweep") return GridKind::kSweep;
  if (name == "replicated") return GridKind::kReplicated;
  if (name == "explore") return GridKind::kExplore;
  throw std::invalid_argument("unknown grid kind '" + name +
                              "' (sweep | replicated | explore)");
}

namespace {

void append_name_list(std::string& out,
                      const std::vector<std::string>& names) {
  out += '[';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ',';
    wire::append_string(out, names[i]);
  }
  out += ']';
}

std::vector<std::string> read_name_list(wire::Cursor& c) {
  std::vector<std::string> names;
  c.expect("[");
  while (!c.peek(']')) {
    names.push_back(c.read_string());
    if (c.peek(',')) c.expect(",");
  }
  c.expect("]");
  return names;
}

}  // namespace

std::string GridSpec::serialize() const {
  std::string out = "{\"kind\":";
  wire::append_string(out, to_string(kind));
  out += ",\"scenarios\":";
  append_name_list(out, scenarios);
  out += ",\"algorithms\":";
  append_name_list(out, algorithms);
  out += ",\"replications\":" + std::to_string(replications);
  out += ",\"seeds_per_job\":" + std::to_string(seeds_per_job);
  out += ",\"explore_jobs\":" + std::to_string(explore_jobs);
  out += ",\"quick\":";
  out += quick ? "true" : "false";
  out += ",\"seed_set\":";
  out += seed_set ? "true" : "false";
  out += ",\"seed\":" + std::to_string(seed);
  out += '}';
  return out;
}

GridSpec GridSpec::parse(std::string_view text) {
  wire::Cursor c(text);
  GridSpec g;
  c.expect("{\"kind\":");
  g.kind = grid_kind_from_name(c.read_string());
  c.expect(",\"scenarios\":");
  g.scenarios = read_name_list(c);
  c.expect(",\"algorithms\":");
  g.algorithms = read_name_list(c);
  c.expect(",\"replications\":");
  g.replications = c.read_u64();
  c.expect(",\"seeds_per_job\":");
  g.seeds_per_job = c.read_u64();
  c.expect(",\"explore_jobs\":");
  g.explore_jobs = c.read_u64();
  c.expect(",\"quick\":");
  g.quick = c.consume("true");
  if (!g.quick) c.expect("false");
  c.expect(",\"seed_set\":");
  g.seed_set = c.consume("true");
  if (!g.seed_set) c.expect("false");
  c.expect(",\"seed\":");
  g.seed = c.read_u64();
  c.expect("}");
  return g;
}

void GridSpec::validate() const {
  if (scenarios.empty()) {
    throw std::invalid_argument("grid: no scenarios");
  }
  if (algorithms.empty()) {
    throw std::invalid_argument("grid: no algorithms");
  }
  for (const std::string& name : scenarios) {
    (void)scenario::find_scenario(name);  // throws listing valid names
  }
  for (const std::string& name : algorithms) {
    (void)algo::algorithm_from_name(name);
  }
  if (kind == GridKind::kReplicated && replications == 0) {
    throw std::invalid_argument("grid: replications must be >= 1");
  }
  if (kind == GridKind::kExplore &&
      (seeds_per_job == 0 || explore_jobs == 0)) {
    throw std::invalid_argument(
        "grid: explore needs seeds_per_job >= 1 and explore_jobs >= 1");
  }
}

std::size_t GridSpec::job_count() const {
  switch (kind) {
    case GridKind::kSweep: return scenarios.size() * algorithms.size();
    case GridKind::kReplicated:
      return scenarios.size() * algorithms.size() * replications;
    case GridKind::kExplore: return explore_jobs;
  }
  return 0;
}

std::string GridSpec::job_label(std::size_t index) const {
  if (kind == GridKind::kExplore) {
    return "explore:" + std::to_string(index);
  }
  std::size_t pair = index;
  if (kind == GridKind::kReplicated) pair = index / replications;
  return scenarios[pair / algorithms.size()];
}

std::vector<scenario::ScenarioSpec> GridSpec::resolve_scenarios() const {
  std::vector<scenario::ScenarioSpec> specs;
  specs.reserve(scenarios.size());
  for (const std::string& name : scenarios) {
    specs.push_back(scenario::find_scenario(name));
  }
  for (scenario::ScenarioSpec& s : specs) {
    if (seed_set) s.system.seed = seed;
    if (quick) {
      s.warmup = sim::from_ms(300);
      s.measure = sim::from_ms(1500);
    }
  }
  return specs;
}

std::string GridSpec::run_job(std::size_t index) const {
  if (index >= job_count()) {
    throw std::out_of_range("grid: job index " + std::to_string(index) +
                            " out of range (" + std::to_string(job_count()) +
                            " jobs)");
  }
  if (kind == GridKind::kExplore) {
    check::ExploreConfig cfg;
    cfg.scenarios = resolve_scenarios();
    for (const std::string& name : algorithms) {
      cfg.algorithms.push_back(algo::algorithm_from_name(name));
    }
    cfg.seeds_per_case = static_cast<int>(seeds_per_job);
    // Disjoint seed range per job: the report of the whole sweep is the
    // concatenation of per-job reports, independent of how jobs shard
    // across workers.
    cfg.base_seed = seed + static_cast<std::uint64_t>(index) * seeds_per_job;
    cfg.stop_on_first = false;
    cfg.threads = 1;
    cfg.minimize_budget = 0;
    const check::ExploreReport report = check::explore(cfg);
    std::string out = "{\"job\":" + std::to_string(index);
    out += ",\"base_seed\":" + std::to_string(cfg.base_seed);
    out += ",\"runs\":" + std::to_string(report.runs);
    out += ",\"violating_runs\":" + std::to_string(report.violating_runs);
    out += '}';
    return out;
  }

  const std::size_t reps =
      kind == GridKind::kReplicated ? replications : std::size_t{1};
  const std::size_t pair = index / reps;
  const std::size_t rep = index % reps;
  scenario::ScenarioSpec spec =
      resolve_scenarios()[pair / algorithms.size()];
  const algo::Algorithm alg =
      algo::algorithm_from_name(algorithms[pair % algorithms.size()]);
  if (kind == GridKind::kReplicated) {
    spec.system.seed = experiment::replication_seed(spec.system.seed, rep);
  }
  return serialize_result(scenario::run_scenario(spec, alg));
}

std::string Manifest::serialize() const {
  std::string out = "{\"fabric\":1,\"jobs\":" + std::to_string(jobs);
  out += ",\"chunk\":" + std::to_string(chunk);
  out += ",\"grid\":" + grid.serialize();
  out += "}\n";
  return out;
}

Manifest Manifest::parse(std::string_view text) {
  wire::Cursor c(text);
  Manifest m;
  c.expect("{\"fabric\":1,\"jobs\":");
  m.jobs = c.read_u64();
  c.expect(",\"chunk\":");
  m.chunk = c.read_u64();
  if (m.chunk == 0) {
    throw std::invalid_argument("manifest: chunk must be >= 1");
  }
  c.expect(",\"grid\":");
  m.grid = GridSpec::parse(c.read_object());
  c.expect("}");
  return m;
}

}  // namespace mra::fabric
