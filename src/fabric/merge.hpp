// Shard merging and the single-process reference path (DESIGN.md §15).
//
// The merge-order invariant: the coordinator hands this layer the payload
// lines of ALL jobs, indexed by job — never by worker or by arrival order —
// and the merged report is a pure function of (grid, payloads). Combined
// with exact double round-tripping on the wire, that makes the merged output
// byte-identical to run_local() on one machine, for any sharding, worker
// count, or worker death + retry. CI diffs the two with cmp.
//
// This file is intentionally NOT on the wall-clock lint allowlist; the lint
// fixture tests/lint_fixtures/src/fabric/merge.cpp pins that a wall-clock
// call here would still be flagged.
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "fabric/grid.hpp"

namespace mra::fabric {

/// The lowest-index failed job when a merge cannot proceed.
struct MergeError {
  std::size_t job = 0;
  std::string message;
};

/// Merges complete per-job payloads (payloads[i] = job i) into the standard
/// report for grid.kind — the same writers the in-process runners use. On
/// any error payload nothing is written and the lowest failed job comes
/// back. Throws std::invalid_argument on malformed payloads or a payload
/// count mismatch.
[[nodiscard]] std::optional<MergeError> write_merged_output(
    std::ostream& os, const GridSpec& grid,
    const std::vector<std::string>& payloads);

/// Runs the whole grid in this process (run_sweep / run_replicated_jobs /
/// a sequential explore loop) and writes the identical report to `os` —
/// the reference the fabric's merged output is cmp'd against. Returns an
/// exit code (0 ok, 1 job failure), reporting failures on stderr.
/// `progress_path` non-empty attaches an obs::Heartbeat.
[[nodiscard]] int run_local(const GridSpec& grid, unsigned threads,
                            std::ostream& os,
                            const std::string& progress_path);

}  // namespace mra::fabric
