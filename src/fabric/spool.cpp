#include "fabric/spool.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "fabric/wire.hpp"

namespace mra::fabric {

namespace fs = std::filesystem;

std::vector<Lease> partition_leases(std::uint64_t jobs, std::uint64_t chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("partition_leases: chunk must be >= 1");
  }
  std::vector<Lease> leases;
  leases.reserve(static_cast<std::size_t>((jobs + chunk - 1) / chunk));
  for (std::uint64_t first = 0; first < jobs; first += chunk) {
    Lease l;
    l.id = first / chunk;
    l.first = first;
    l.count = std::min(chunk, jobs - first);
    l.fence = 0;
    leases.push_back(l);
  }
  return leases;
}

void ensure_spool_dirs(const SpoolPaths& paths) {
  std::error_code ec;
  fs::create_directories(paths.claims_dir(), ec);
  if (!ec) fs::create_directories(paths.results_dir(), ec);
  if (ec) {
    throw std::runtime_error("spool: cannot create '" + paths.root +
                             "': " + ec.message());
  }
}

void write_file_atomic(const std::string& path, std::string_view content,
                       std::string_view tmp_suffix) {
  const std::string tmp = path + ".tmp." + std::string(tmp_suffix);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("spool: cannot open '" + tmp + "' for write");
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("spool: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("spool: rename '" + tmp + "' -> '" + path +
                             "' failed: " + std::strerror(err));
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return std::nullopt;
    throw std::runtime_error("spool: cannot open '" + path + "' for read");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("spool: read error on '" + path + "'");
  }
  return buf.str();
}

void append_checkpoint(const SpoolPaths& paths, const Lease& lease) {
  const std::string line = "done " + std::to_string(lease.first) + " " +
                           std::to_string(lease.count) + "\n";
  std::FILE* f = std::fopen(paths.checkpoint().c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("spool: cannot open checkpoint '" +
                             paths.checkpoint() + "' for append");
  }
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("spool: short append to checkpoint '" +
                             paths.checkpoint() + "'");
  }
}

std::vector<std::uint64_t> load_checkpoint(const SpoolPaths& paths,
                                           std::uint64_t chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("load_checkpoint: chunk must be >= 1");
  }
  const std::optional<std::string> text = read_file(paths.checkpoint());
  std::vector<std::uint64_t> done;
  if (!text) return done;
  std::size_t pos = 0;
  while (pos < text->size()) {
    const std::size_t eol = text->find('\n', pos);
    if (eol == std::string::npos) break;  // partial trailing line: ignore
    const std::string_view line(text->data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    wire::Cursor c(line);
    c.expect("done ");
    const std::uint64_t first = c.read_u64();
    c.expect(" ");
    const std::uint64_t count = c.read_u64();
    if (!c.at_end() || count == 0) {
      throw std::runtime_error("spool: malformed checkpoint line '" +
                               std::string(line) + "'");
    }
    done.push_back(first / chunk);
  }
  return done;
}

void write_result_file(const SpoolPaths& paths, const LeaseResult& result,
                       std::string_view tmp_suffix) {
  if (result.payloads.size() != result.lease.count) {
    throw std::invalid_argument("spool: lease " +
                                std::to_string(result.lease.id) + " carries " +
                                std::to_string(result.payloads.size()) +
                                " payloads for " +
                                std::to_string(result.lease.count) + " jobs");
  }
  std::string text = "{\"lease\":" + std::to_string(result.lease.id);
  text += ",\"first\":" + std::to_string(result.lease.first);
  text += ",\"count\":" + std::to_string(result.lease.count);
  text += ",\"fence\":" + std::to_string(result.lease.fence);
  text += "}\n";
  for (const std::string& payload : result.payloads) {
    text += payload;
    text += '\n';
  }
  write_file_atomic(paths.result(result.lease.id), text, tmp_suffix);
}

std::optional<LeaseResult> read_result_file(const SpoolPaths& paths,
                                            std::uint64_t lease_id) {
  const std::optional<std::string> text =
      read_file(paths.result(lease_id));
  if (!text) return std::nullopt;
  const std::size_t header_end = text->find('\n');
  if (header_end == std::string::npos) return std::nullopt;
  LeaseResult result;
  try {
    wire::Cursor c(std::string_view(text->data(), header_end));
    c.expect("{\"lease\":");
    result.lease.id = c.read_u64();
    c.expect(",\"first\":");
    result.lease.first = c.read_u64();
    c.expect(",\"count\":");
    result.lease.count = c.read_u64();
    c.expect(",\"fence\":");
    result.lease.fence = c.read_u64();
    c.expect("}");
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (result.lease.id != lease_id) return std::nullopt;
  std::size_t pos = header_end + 1;
  while (pos < text->size()) {
    const std::size_t eol = text->find('\n', pos);
    if (eol == std::string::npos) return std::nullopt;  // torn tail
    result.payloads.emplace_back(text->substr(pos, eol - pos));
    pos = eol + 1;
  }
  if (result.payloads.size() != result.lease.count) return std::nullopt;
  return result;
}

}  // namespace mra::fabric
