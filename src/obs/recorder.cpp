#include "obs/recorder.hpp"

#include <algorithm>

#include "core/resource_set.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mra::obs {

void FlightRecorder::enable_gauges(const sim::Simulator& simulator,
                                   const net::Network& network,
                                   sim::SimDuration interval) {
  sim_ = &simulator;
  net_ = &network;
  interval_ = interval > 0 ? interval : sim::milliseconds(10);
  next_sample_ = 0;
}

std::uint64_t& FlightRecorder::kind_counter(std::string_view kind) {
  for (std::size_t i = 0; i < kind_names_.size(); ++i) {
    if (kind_names_[i] == kind) return kind_sends_[i];
  }
  kind_names_.emplace_back(kind);
  kind_sends_.push_back(0);
  return kind_sends_.back();
}

void FlightRecorder::on_event(const check::Event& event) {
  last_seen_ = std::max(last_seen_, event.at);
  const auto site = static_cast<std::size_t>(event.site);
  if (event.site >= 0 && site >= open_span_.size()) {
    open_span_.resize(site + 1, -1);
  }

  switch (event.type) {
    case check::EventType::kRequest: {
      RequestSpan span;
      span.site = event.site;
      span.seq = event.seq;
      span.submit_at = event.at;
      if (event.resources != nullptr) {
        event.resources->for_each(
            [&](ResourceId id) { span.resources.push_back(id); });
      }
      open_span_[site] = static_cast<std::int32_t>(spans_.size());
      spans_.push_back(std::move(span));
      ++sites_waiting_;
      break;
    }
    case check::EventType::kHold: {
      const std::int32_t idx = open_span_[site];
      if (idx >= 0) {
        spans_[static_cast<std::size_t>(idx)].holds.push_back(
            HoldStamp{event.resource, event.at});
      }
      break;
    }
    case check::EventType::kAcquire: {
      const std::int32_t idx = open_span_[site];
      if (idx >= 0) {
        spans_[static_cast<std::size_t>(idx)].acquire_at = event.at;
        if (sites_waiting_ > 0) --sites_waiting_;
        ++sites_in_cs_;
      }
      break;
    }
    case check::EventType::kRelease: {
      const std::int32_t idx = open_span_[site];
      if (idx >= 0) {
        spans_[static_cast<std::size_t>(idx)].release_at = event.at;
        open_span_[site] = -1;
        if (sites_in_cs_ > 0) --sites_in_cs_;
      }
      break;
    }
    case check::EventType::kSend: {
      MessageRecord msg;
      msg.id = event.seq;
      msg.src = event.site;
      msg.dst = event.peer;
      msg.kind = std::string(event.kind);
      msg.bytes = event.bytes;
      msg.send_at = event.at;
      const std::int32_t idx = open_span_[site];
      if (idx >= 0) {
        RequestSpan& span = spans_[static_cast<std::size_t>(idx)];
        if (span.first_message_at == kNever) span.first_message_at = event.at;
        span.messages.push_back(messages_.size());
        msg.span = idx;
      }
      ++kind_counter(event.kind);
      ++sends_seen_;
      bytes_seen_ += event.bytes;
      messages_.push_back(std::move(msg));
      break;
    }
    case check::EventType::kDeliver: {
      // Message ids are dense and 1-based (net::Network hands them out
      // sequentially), so the pairing is a positional lookup; the id check
      // guards against a recorder attached mid-run.
      const auto pos = static_cast<std::size_t>(event.seq - 1);
      if (event.seq >= 1 && pos < messages_.size() &&
          messages_[pos].id == event.seq) {
        messages_[pos].deliver_at = event.at;
      }
      break;
    }
  }
}

void FlightRecorder::on_advance(sim::SimTime now) {
  last_seen_ = std::max(last_seen_, now);
  if (sim_ == nullptr) return;
  // on_advance fires once per distinct instant, *before* that instant's
  // events: every grid point at or before `now` therefore sees the engine
  // state as of the end of the previous instant — a well-defined snapshot.
  while (next_sample_ <= now) {
    sample(next_sample_);
    next_sample_ += interval_;
  }
}

void FlightRecorder::sample(sim::SimTime at) {
  GaugeSample s;
  s.at = at;
  s.queue_depth = sim_->queue_depth();
  s.queue_capacity = sim_->queue_capacity();
  s.in_flight = net_->in_flight_messages();
  s.messages_total = sends_seen_;
  s.bytes_total = bytes_seen_;
  s.sites_waiting = sites_waiting_;
  s.sites_in_cs = sites_in_cs_;
  s.sends_by_kind = kind_sends_;
  gauges_.push_back(std::move(s));
}

}  // namespace mra::obs
