// obs::FlightRecorder — the flight-recorder half of the observability layer.
//
// A passive check::Observer that reconstructs, online, everything a post-hoc
// investigation needs from one run: per-request lifecycle spans (submit →
// first message → acquire → release, with per-resource custody stamps), the
// full message log with send/deliver pairing for causal edges, and a
// ring-free time-series of engine gauges sampled on a fixed simulated-time
// grid. Export (Chrome trace JSON, spans CSV, gauges JSON) lives in
// obs/trace_export.hpp — the recorder only accumulates.
//
// Determinism contract: every recorded number derives from the simulation
// (simulated time, event order, engine counters). No wall clock, no
// iteration over unordered containers — two runs of the same seed produce
// byte-identical exports. Compose with a check::Monitor through a
// check::ObserverMux when oracles and recording are wanted together.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/event.hpp"
#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra::net {
class Network;
}  // namespace mra::net
namespace mra::sim {
class Simulator;
}  // namespace mra::sim

namespace mra::obs {

/// Sentinel for "this lifecycle point never happened" (e.g. a request still
/// waiting when the run ended has acquire_at == kNever).
inline constexpr sim::SimTime kNever = -1;

/// One per-resource custody stamp inside a span (Incremental's per-lock
/// grants; algorithms without observable custody emit none).
struct HoldStamp {
  ResourceId resource = kNoResource;
  sim::SimTime at = 0;
};

/// Lifecycle of one CS request, reconstructed from the event stream.
struct RequestSpan {
  SiteId site = kNoSite;
  std::int64_t seq = 0;                 ///< request id (per-site sequence)
  std::vector<ResourceId> resources;    ///< requested set, ascending
  sim::SimTime submit_at = 0;
  sim::SimTime first_message_at = kNever;  ///< first send attributed to it
  sim::SimTime acquire_at = kNever;
  sim::SimTime release_at = kNever;
  std::vector<HoldStamp> holds;
  std::vector<std::size_t> messages;    ///< indices into messages()

  [[nodiscard]] bool completed() const { return release_at != kNever; }
  /// Waiting time; for spans still waiting at end-of-run, time waited until
  /// `horizon` (callers pass the recorder's last-seen instant).
  [[nodiscard]] sim::SimDuration waiting(sim::SimTime horizon) const {
    return (acquire_at != kNever ? acquire_at : horizon) - submit_at;
  }
};

/// One network message: a causal edge between sites.
struct MessageRecord {
  std::int64_t id = 0;        ///< network message id (pairs send/deliver)
  SiteId src = kNoSite;
  SiteId dst = kNoSite;
  std::string kind;
  std::uint32_t bytes = 0;
  sim::SimTime send_at = 0;
  sim::SimTime deliver_at = kNever;
  std::int32_t span = -1;     ///< index of the sender's span, -1 detached
};

/// One point on the gauge time-series grid. `sends_by_kind` is parallel to
/// FlightRecorder::kind_names() and may be shorter than the final kind list
/// (kinds discovered after the sample was taken); missing tail entries are
/// zero.
struct GaugeSample {
  sim::SimTime at = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t messages_total = 0;   ///< lifetime sends seen by the recorder
  std::uint64_t bytes_total = 0;
  std::uint32_t sites_waiting = 0;    ///< submitted, not yet acquired
  std::uint32_t sites_in_cs = 0;
  std::vector<std::uint64_t> sends_by_kind;
};

class FlightRecorder final : public check::Observer {
 public:
  FlightRecorder() = default;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Enables the gauge sampler: one GaugeSample per `interval` of simulated
  /// time, starting at the first on_advance at or past t=0's grid point.
  /// The simulator/network are borrowed read-only for counter snapshots.
  void enable_gauges(const sim::Simulator& simulator,
                     const net::Network& network, sim::SimDuration interval);

  // Observer ------------------------------------------------------------------
  void on_event(const check::Event& event) override;
  void on_advance(sim::SimTime now) override;

  // Accumulated state ---------------------------------------------------------
  [[nodiscard]] const std::vector<RequestSpan>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::vector<MessageRecord>& messages() const {
    return messages_;
  }
  [[nodiscard]] const std::vector<GaugeSample>& gauges() const {
    return gauges_;
  }
  /// Message kinds in first-seen order (deterministic: emission order is
  /// simulation order).
  [[nodiscard]] const std::vector<std::string>& kind_names() const {
    return kind_names_;
  }
  [[nodiscard]] sim::SimDuration gauge_interval() const { return interval_; }
  /// Latest instant the recorder has seen (events or clock advances); the
  /// horizon for still-open spans.
  [[nodiscard]] sim::SimTime last_seen() const { return last_seen_; }

 private:
  void sample(sim::SimTime at);
  std::uint64_t& kind_counter(std::string_view kind);

  std::vector<RequestSpan> spans_;
  std::vector<MessageRecord> messages_;
  std::vector<std::int32_t> open_span_;   ///< per site: spans_ index, -1 none

  // Gauge state (enable_gauges).
  const sim::Simulator* sim_ = nullptr;
  const net::Network* net_ = nullptr;
  sim::SimDuration interval_ = 0;
  sim::SimTime next_sample_ = 0;
  std::vector<GaugeSample> gauges_;
  std::vector<std::string> kind_names_;
  std::vector<std::uint64_t> kind_sends_;  ///< parallel to kind_names_
  std::uint64_t sends_seen_ = 0;
  std::uint64_t bytes_seen_ = 0;
  std::uint32_t sites_waiting_ = 0;
  std::uint32_t sites_in_cs_ = 0;
  sim::SimTime last_seen_ = 0;
};

}  // namespace mra::obs
