// Export formats for obs::FlightRecorder data.
//
// - write_chrome_trace: Chrome trace-event JSON (the "JSON Array Format"
//   with a traceEvents wrapper) loadable in Perfetto / chrome://tracing.
//   One process (pid 0, "mra-sim"), one thread per site. Each request span
//   becomes a "wait" slice (submit → acquire) and a "cs" slice (acquire →
//   release); messages become instants plus s/f flow pairs (causal edges);
//   gauges become counter tracks; violations (optional) become instants.
// - write_spans_csv: one row per request for tail forensics; pairs with
//   slowest_spans() to dump only the K worst waits.
// - write_gauges_json: the time-series as a JSON object, for embedding in
//   experiment reports.
//
// Determinism: output is ordered by (simulated time, emission order) and
// every number is formatted from integers — byte-identical across runs and
// hosts. Timestamps are microseconds (the trace format's unit) printed as
// <ns/1000>.<ns%1000 zero-padded>, exact for any SimTime.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "check/violation.hpp"
#include "obs/recorder.hpp"

namespace mra::obs {

struct ChromeTraceOptions {
  /// When set, each violation is emitted as a process-scoped instant named
  /// after its oracle, with the diagnosis in args.
  const std::vector<check::Violation>* violations = nullptr;
};

void write_chrome_trace(const FlightRecorder& recorder, std::ostream& os,
                        const ChromeTraceOptions& options = {});

/// Header: site,seq,resources,submit_ms,first_message_ms,acquire_ms,
/// release_ms,waiting_ms,holding_ms,messages. Missing lifecycle points are
/// empty fields. `spans` defaults to all of the recorder's spans.
void write_spans_csv(const FlightRecorder& recorder, std::ostream& os);
void write_spans_csv(const FlightRecorder& recorder,
                     const std::vector<const RequestSpan*>& spans,
                     std::ostream& os);

/// The K spans with the longest waiting time (open spans wait until the
/// recorder's horizon), worst first; ties broken by (site, seq) so the
/// selection is deterministic.
[[nodiscard]] std::vector<const RequestSpan*> slowest_spans(
    const FlightRecorder& recorder, std::size_t k);

void write_gauges_json(const FlightRecorder& recorder, std::ostream& os,
                       int indent = 0);

}  // namespace mra::obs
