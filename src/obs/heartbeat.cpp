#include "obs/heartbeat.hpp"

#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <utility>

namespace mra::obs {
namespace {

// Stop-token-aware sleep: wakes early when the heartbeat is being torn down
// so the destructor never waits out a full interval.
void interruptible_sleep(const std::stop_token& stop, double seconds) {
  std::mutex m;
  std::condition_variable_any cv;
  std::unique_lock<std::mutex> lock(m);
  cv.wait_for(lock, stop, std::chrono::duration<double>(seconds),
              [&stop] { return stop.stop_requested(); });
}

}  // namespace

Heartbeat::Heartbeat(Options options, std::function<ProgressSnapshot()> poll)
    : options_(std::move(options)),
      poll_(std::move(poll)),
      started_(std::chrono::steady_clock::now()),
      thread_([this](const std::stop_token& stop) { run(stop); }) {}

Heartbeat::~Heartbeat() {
  thread_.request_stop();
  thread_.join();
  try {
    tick(/*done=*/true);
  } catch (...) {
    // The final tick runs the caller's poll callback; progress reporting is
    // best-effort and must never turn teardown into std::terminate.
  }
}

void Heartbeat::run(const std::stop_token& stop) {
  while (true) {
    interruptible_sleep(stop, options_.interval_sec);
    if (stop.stop_requested()) return;
    tick(/*done=*/false);
  }
}

void Heartbeat::tick(bool done) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ProgressSnapshot snap = poll_();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  double eta = -1.0;
  if (snap.jobs_total > 0 && snap.jobs_done > 0 &&
      snap.jobs_done < snap.jobs_total) {
    eta = elapsed / static_cast<double>(snap.jobs_done) *
          static_cast<double>(snap.jobs_total - snap.jobs_done);
  }
  if (done) eta = 0.0;

  if (options_.to_stderr) {
    std::fprintf(stderr, "[%s]", options_.phase.c_str());
    if (snap.jobs_total > 0) {
      std::fprintf(stderr, " %" PRIu64 "/%" PRIu64 " jobs (%.1f%%)",
                   snap.jobs_done, snap.jobs_total,
                   100.0 * static_cast<double>(snap.jobs_done) /
                       static_cast<double>(snap.jobs_total));
    } else {
      std::fprintf(stderr, " %" PRIu64 " jobs", snap.jobs_done);
    }
    if (snap.jobs_failed > 0) {
      std::fprintf(stderr, " failed=%" PRIu64, snap.jobs_failed);
    }
    if (snap.schedules_executed > 0) {
      std::fprintf(stderr, " schedules=%" PRIu64 " pruned=%" PRIu64,
                   snap.schedules_executed, snap.orderings_pruned);
    }
    if (snap.violations > 0) {
      std::fprintf(stderr, " violations=%" PRIu64, snap.violations);
    }
    std::fprintf(stderr, " elapsed=%.1fs", elapsed);
    if (eta >= 0.0 && !done) std::fprintf(stderr, " eta=%.1fs", eta);
    if (done) std::fprintf(stderr, " done");
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }

  if (!options_.progress_path.empty()) {
    write_progress_file(snap, elapsed, eta, done);
  }
}

void Heartbeat::write_progress_file(const ProgressSnapshot& snap,
                                    double elapsed_sec, double eta_sec,
                                    bool done) const {
  const std::string tmp = options_.progress_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;  // progress is best-effort, never fails the run
  std::fprintf(f, "{\n  \"phase\": \"%s\",\n", options_.phase.c_str());
  std::fprintf(f, "  \"jobs_done\": %" PRIu64 ",\n", snap.jobs_done);
  std::fprintf(f, "  \"jobs_failed\": %" PRIu64 ",\n", snap.jobs_failed);
  std::fprintf(f, "  \"jobs_total\": %" PRIu64 ",\n", snap.jobs_total);
  if (snap.jobs_total > 0) {
    std::fprintf(f, "  \"percent\": %.2f,\n",
                 100.0 * static_cast<double>(snap.jobs_done) /
                     static_cast<double>(snap.jobs_total));
  }
  std::fprintf(f, "  \"schedules_executed\": %" PRIu64 ",\n",
               snap.schedules_executed);
  std::fprintf(f, "  \"orderings_pruned\": %" PRIu64 ",\n",
               snap.orderings_pruned);
  std::fprintf(f, "  \"violations\": %" PRIu64 ",\n", snap.violations);
  std::fprintf(f, "  \"elapsed_sec\": %.2f,\n", elapsed_sec);
  if (eta_sec >= 0.0) std::fprintf(f, "  \"eta_sec\": %.2f,\n", eta_sec);
  std::fprintf(f, "  \"done\": %s\n}\n", done ? "true" : "false");
  std::fclose(f);
  std::rename(tmp.c_str(), options_.progress_path.c_str());
}

}  // namespace mra::obs
