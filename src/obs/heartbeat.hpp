// obs::Heartbeat — wall-clock run progress for long sweeps and explorer
// runs. A background thread wakes on a fixed interval, polls a caller
// snapshot function (typically reading a few atomics), prints a one-line
// status to stderr and (optionally) rewrites a machine-readable progress
// file atomically (write temp, rename), so external tooling can watch a
// multi-hour `mra_explore --exhaustive` without parsing logs.
//
// This is the one obs component allowed to touch the wall clock: heartbeat
// output never feeds a trace or a report, so the determinism contract of
// the recorder/exporter is untouched.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace mra::obs {

/// What the poll function reports. Unknown totals (jobs_total == 0)
/// suppress the percent/ETA fields.
struct ProgressSnapshot {
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;  ///< subset of jobs_done that threw
  std::uint64_t jobs_total = 0;
  std::uint64_t schedules_executed = 0;  ///< exhaustive mode only
  std::uint64_t orderings_pruned = 0;    ///< exhaustive mode only
  std::uint64_t violations = 0;
};

class Heartbeat {
 public:
  struct Options {
    std::string phase;          ///< label printed on every line
    std::string progress_path;  ///< empty = stderr only
    double interval_sec = 2.0;
    bool to_stderr = true;
  };

  /// Starts ticking immediately. `poll` is called from the heartbeat thread
  /// and must be safe to invoke concurrently with the work it observes.
  Heartbeat(Options options, std::function<ProgressSnapshot()> poll);

  /// Emits one final tick (marked done in the progress file), then joins.
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  void run(const std::stop_token& stop);
  void tick(bool done);
  void write_progress_file(const ProgressSnapshot& snap, double elapsed_sec,
                           double eta_sec, bool done) const;

  Options options_;
  std::function<ProgressSnapshot()> poll_;
  std::chrono::steady_clock::time_point started_;
  std::mutex mutex_;  ///< serialises destructor's final tick vs the thread
  std::jthread thread_;
};

}  // namespace mra::obs
