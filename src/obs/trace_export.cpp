#include "obs/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>

#include "experiment/json.hpp"

namespace mra::obs {
namespace {

using experiment::json_escape;

/// Nanoseconds → the trace format's microseconds, printed exactly:
/// integer µs part, '.', three digits of sub-µs. No floating point.
std::string us(sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

/// Nanoseconds → milliseconds, printed exactly (six fractional digits).
std::string ms(sim::SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, ns / 1'000'000,
                ns % 1'000'000);
  return buf;
}

std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string i64(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string resources_label(const std::vector<ResourceId>& resources) {
  std::string out = "{";
  for (std::size_t i = 0; i < resources.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(resources[i]);
  }
  out += "}";
  return out;
}

/// One trace event pending time-ordering. Generation order is deterministic,
/// so a stable sort by timestamp fixes the byte order completely.
struct Entry {
  sim::SimTime at;
  std::string json;
};

void add(std::vector<Entry>& out, sim::SimTime at, std::string json) {
  out.push_back(Entry{at, std::move(json)});
}

}  // namespace

void write_chrome_trace(const FlightRecorder& recorder, std::ostream& os,
                        const ChromeTraceOptions& options) {
  const sim::SimTime horizon = recorder.last_seen();
  std::vector<Entry> entries;

  for (const RequestSpan& span : recorder.spans()) {
    const std::string res = resources_label(span.resources);
    const std::string tid = std::to_string(span.site);
    const std::string seq = i64(span.seq);
    const bool acquired = span.acquire_at != kNever;
    const sim::SimTime wait_end = acquired ? span.acquire_at : horizon;
    std::string wait = "{\"name\":\"wait " + res + " #" + seq +
                       "\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":" +
                       us(span.submit_at) +
                       ",\"dur\":" + us(wait_end - span.submit_at) +
                       ",\"pid\":0,\"tid\":" + tid + ",\"args\":{\"seq\":" +
                       seq + ",\"resources\":\"" + res + "\"";
    if (span.first_message_at != kNever) {
      wait += ",\"first_message_ms\":" + ms(span.first_message_at);
    }
    if (!acquired) wait += ",\"incomplete\":true";
    wait += "}}";
    add(entries, span.submit_at, std::move(wait));

    if (acquired) {
      const bool released = span.release_at != kNever;
      const sim::SimTime cs_end = released ? span.release_at : horizon;
      std::string cs = "{\"name\":\"cs " + res + " #" + seq +
                       "\",\"cat\":\"cs\",\"ph\":\"X\",\"ts\":" +
                       us(span.acquire_at) +
                       ",\"dur\":" + us(cs_end - span.acquire_at) +
                       ",\"pid\":0,\"tid\":" + tid + ",\"args\":{\"seq\":" +
                       seq + ",\"resources\":\"" + res + "\"" +
                       (released ? "" : ",\"incomplete\":true") + "}}";
      add(entries, span.acquire_at, std::move(cs));
    }
    for (const HoldStamp& hold : span.holds) {
      add(entries, hold.at,
          "{\"name\":\"hold r" + std::to_string(hold.resource) +
              "\",\"cat\":\"hold\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
              us(hold.at) + ",\"pid\":0,\"tid\":" + tid +
              ",\"args\":{\"seq\":" + seq + "}}");
    }
  }

  for (const MessageRecord& msg : recorder.messages()) {
    const std::string kind = json_escape(msg.kind);
    const std::string id = i64(msg.id);
    add(entries, msg.send_at,
        "{\"name\":\"" + kind + "\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":" +
            id + ",\"ts\":" + us(msg.send_at) + ",\"pid\":0,\"tid\":" +
            std::to_string(msg.src) + ",\"args\":{\"dst\":" +
            std::to_string(msg.dst) + ",\"bytes\":" +
            std::to_string(msg.bytes) + "}}");
    if (msg.deliver_at != kNever) {
      add(entries, msg.deliver_at,
          "{\"name\":\"" + kind +
              "\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" + id +
              ",\"ts\":" + us(msg.deliver_at) + ",\"pid\":0,\"tid\":" +
              std::to_string(msg.dst) + ",\"args\":{\"src\":" +
              std::to_string(msg.src) + "}}");
    }
  }

  const auto& kinds = recorder.kind_names();
  for (const GaugeSample& g : recorder.gauges()) {
    const std::string ts = us(g.at);
    add(entries, g.at,
        "{\"name\":\"events.queue\",\"ph\":\"C\",\"ts\":" + ts +
            ",\"pid\":0,\"args\":{\"depth\":" + u64(g.queue_depth) +
            ",\"capacity\":" + u64(g.queue_capacity) + "}}");
    add(entries, g.at,
        "{\"name\":\"net.in_flight\",\"ph\":\"C\",\"ts\":" + ts +
            ",\"pid\":0,\"args\":{\"messages\":" + u64(g.in_flight) + "}}");
    add(entries, g.at,
        "{\"name\":\"net.cumulative\",\"ph\":\"C\",\"ts\":" + ts +
            ",\"pid\":0,\"args\":{\"messages\":" + u64(g.messages_total) +
            ",\"bytes\":" + u64(g.bytes_total) + "}}");
    add(entries, g.at,
        "{\"name\":\"sites\",\"ph\":\"C\",\"ts\":" + ts +
            ",\"pid\":0,\"args\":{\"waiting\":" +
            std::to_string(g.sites_waiting) + ",\"in_cs\":" +
            std::to_string(g.sites_in_cs) + "}}");
    for (std::size_t k = 0; k < g.sends_by_kind.size(); ++k) {
      add(entries, g.at,
          "{\"name\":\"sends." + json_escape(kinds[k]) +
              "\",\"ph\":\"C\",\"ts\":" + ts + ",\"pid\":0,\"args\":{" +
              "\"count\":" + u64(g.sends_by_kind[k]) + "}}");
    }
  }

  if (options.violations != nullptr) {
    for (const check::Violation& v : *options.violations) {
      std::string sites;
      for (std::size_t i = 0; i < v.sites.size(); ++i) {
        if (i != 0) sites += ",";
        sites += std::to_string(v.sites[i]);
      }
      add(entries, v.at,
          "{\"name\":\"violation: " + json_escape(v.oracle) +
              "\",\"cat\":\"violation\",\"ph\":\"i\",\"s\":\"p\",\"ts\":" +
              us(v.at) + ",\"pid\":0,\"tid\":" +
              std::to_string(v.sites.empty() ? 0 : v.sites.front()) +
              ",\"args\":{\"detail\":\"" + json_escape(v.detail) +
              "\",\"sites\":\"" + sites + "\"}}");
    }
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.at < b.at; });

  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{"
        "\"name\":\"mra-sim\"}}";
  std::size_t num_sites = 0;
  for (const RequestSpan& s : recorder.spans()) {
    num_sites = std::max(num_sites, static_cast<std::size_t>(s.site) + 1);
  }
  for (const MessageRecord& m : recorder.messages()) {
    num_sites = std::max(num_sites, static_cast<std::size_t>(m.src) + 1);
    num_sites = std::max(num_sites, static_cast<std::size_t>(m.dst) + 1);
  }
  for (std::size_t s = 0; s < num_sites; ++s) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
       << ",\"args\":{\"name\":\"site " << s << "\"}}";
  }
  for (const Entry& e : entries) os << ",\n" << e.json;
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<const RequestSpan*> slowest_spans(const FlightRecorder& recorder,
                                              std::size_t k) {
  const sim::SimTime horizon = recorder.last_seen();
  std::vector<const RequestSpan*> out;
  out.reserve(recorder.spans().size());
  for (const RequestSpan& span : recorder.spans()) out.push_back(&span);
  std::sort(out.begin(), out.end(),
            [horizon](const RequestSpan* a, const RequestSpan* b) {
              const auto wa = a->waiting(horizon);
              const auto wb = b->waiting(horizon);
              if (wa != wb) return wa > wb;
              if (a->site != b->site) return a->site < b->site;
              return a->seq < b->seq;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

void write_spans_csv(const FlightRecorder& recorder, std::ostream& os) {
  std::vector<const RequestSpan*> all;
  all.reserve(recorder.spans().size());
  for (const RequestSpan& span : recorder.spans()) all.push_back(&span);
  write_spans_csv(recorder, all, os);
}

void write_spans_csv(const FlightRecorder& recorder,
                     const std::vector<const RequestSpan*>& spans,
                     std::ostream& os) {
  const sim::SimTime horizon = recorder.last_seen();
  os << "site,seq,resources,submit_ms,first_message_ms,acquire_ms,"
        "release_ms,waiting_ms,holding_ms,messages\n";
  for (const RequestSpan* span : spans) {
    os << span->site << "," << span->seq << ",";
    for (std::size_t i = 0; i < span->resources.size(); ++i) {
      if (i != 0) os << "+";
      os << span->resources[i];
    }
    os << "," << ms(span->submit_at) << ",";
    if (span->first_message_at != kNever) os << ms(span->first_message_at);
    os << ",";
    if (span->acquire_at != kNever) os << ms(span->acquire_at);
    os << ",";
    if (span->release_at != kNever) os << ms(span->release_at);
    os << "," << ms(span->waiting(horizon)) << ",";
    if (span->completed() && span->acquire_at != kNever) {
      os << ms(span->release_at - span->acquire_at);
    }
    os << "," << span->messages.size() << "\n";
  }
}

void write_gauges_json(const FlightRecorder& recorder, std::ostream& os,
                       int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const auto& kinds = recorder.kind_names();
  os << "{\n" << pad2 << "\"interval_ms\": " << ms(recorder.gauge_interval())
     << ",\n" << pad2 << "\"kinds\": [";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << json_escape(kinds[i]) << "\"";
  }
  os << "],\n" << pad2 << "\"samples\": [";
  const auto& gauges = recorder.gauges();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const GaugeSample& g = gauges[i];
    os << (i == 0 ? "\n" : ",\n") << pad2 << " {\"t_ms\": " << ms(g.at)
       << ", \"queue_depth\": " << g.queue_depth
       << ", \"queue_capacity\": " << g.queue_capacity
       << ", \"in_flight\": " << g.in_flight
       << ", \"messages\": " << g.messages_total
       << ", \"bytes\": " << g.bytes_total
       << ", \"sites_waiting\": " << g.sites_waiting
       << ", \"sites_in_cs\": " << g.sites_in_cs << ", \"sends_by_kind\": [";
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      if (k != 0) os << ", ";
      os << (k < g.sends_by_kind.size() ? g.sends_by_kind[k] : 0);
    }
    os << "]}";
  }
  os << "\n" << pad2 << "]\n" << pad << "}";
}

}  // namespace mra::obs
