// Suzuki-Kasami broadcast token-based mutual exclusion (TOCS 1985).
//
// Every request is broadcast (N-1 messages); the token carries LN, the
// sequence number of the last satisfied request per site, plus a FIFO queue.
// Used as the per-resource building block of the Maddi baseline (§2 of the
// paper: "multiple instances of Suzuki-Kasami") and as a reference algorithm
// in tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "net/message.hpp"

namespace mra::mutex {

struct SkRequestMsg final : net::Message {
  int instance = 0;
  SiteId requester = kNoSite;
  std::int64_t seq = 0;

  [[nodiscard]] std::string_view kind() const override { return "SK.Request"; }
  [[nodiscard]] std::size_t wire_size() const override { return 20; }
};

struct SkTokenMsg final : net::Message {
  int instance = 0;
  std::vector<std::int64_t> last_granted;  // LN
  std::deque<SiteId> queue;

  [[nodiscard]] std::string_view kind() const override { return "SK.Token"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + last_granted.size() * 8 + queue.size() * 4;
  }
};

/// One Suzuki-Kasami instance (multiplexed on a host node via `instance`).
class SuzukiKasamiEngine {
 public:
  using SendFn = std::function<void(SiteId dst, std::unique_ptr<net::Message>)>;
  using GrantFn = std::function<void()>;

  /// `n`: number of sites; `elected` initially holds the token.
  SuzukiKasamiEngine(SiteId self, SiteId elected, int n, int instance,
                     SendFn send, GrantFn on_granted);

  /// Requests the CS; returns the list of destinations that must receive a
  /// broadcast request (empty when the token is already local). The caller
  /// sends because only it knows how to batch broadcasts.
  void request();

  void release();

  void on_request(const SkRequestMsg& msg);
  void on_token(const SkTokenMsg& msg);

  [[nodiscard]] bool has_token() const { return has_token_; }
  [[nodiscard]] bool in_cs() const { return in_cs_; }
  [[nodiscard]] bool requesting() const { return requesting_; }
  [[nodiscard]] int instance() const { return instance_; }

 private:
  void send_token_to(SiteId dst);
  void broadcast_request();

  SiteId self_;
  int n_;
  int instance_;
  SendFn send_;
  GrantFn on_granted_;

  std::vector<std::int64_t> rn_;            // highest request seq seen per site
  std::vector<std::int64_t> token_ln_;      // valid while holding token
  std::deque<SiteId> token_queue_;          // valid while holding token
  bool has_token_ = false;
  bool requesting_ = false;
  bool in_cs_ = false;
};

}  // namespace mra::mutex
