#include "mutex/suzuki_kasami.hpp"

#include <algorithm>

namespace mra::mutex {

SuzukiKasamiEngine::SuzukiKasamiEngine(SiteId self, SiteId elected, int n,
                                       int instance, SendFn send,
                                       GrantFn on_granted)
    : self_(self),
      n_(n),
      instance_(instance),
      send_(std::move(send)),
      on_granted_(std::move(on_granted)),
      rn_(static_cast<std::size_t>(n), 0) {
  if (self == elected) {
    has_token_ = true;
    token_ln_.assign(static_cast<std::size_t>(n), 0);
  }
}

void SuzukiKasamiEngine::request() {
  assert(!requesting_ && "SK: nested request");
  requesting_ = true;
  ++rn_[static_cast<std::size_t>(self_)];
  if (has_token_) {
    in_cs_ = true;
    on_granted_();
    return;
  }
  broadcast_request();
}

void SuzukiKasamiEngine::broadcast_request() {
  for (SiteId j = 0; j < n_; ++j) {
    if (j == self_) continue;
    auto msg = std::make_unique<SkRequestMsg>();
    msg->instance = instance_;
    msg->requester = self_;
    msg->seq = rn_[static_cast<std::size_t>(self_)];
    send_(j, std::move(msg));
  }
}

void SuzukiKasamiEngine::release() {
  assert(in_cs_ && "SK: release outside CS");
  in_cs_ = false;
  requesting_ = false;
  token_ln_[static_cast<std::size_t>(self_)] =
      rn_[static_cast<std::size_t>(self_)];
  // Append every site with an outstanding (RN == LN + 1) request that is not
  // already queued.
  for (SiteId j = 0; j < n_; ++j) {
    if (j == self_) continue;
    const auto ji = static_cast<std::size_t>(j);
    if (rn_[ji] == token_ln_[ji] + 1 &&
        std::find(token_queue_.begin(), token_queue_.end(), j) ==
            token_queue_.end()) {
      token_queue_.push_back(j);
    }
  }
  if (!token_queue_.empty()) {
    const SiteId head = token_queue_.front();
    token_queue_.pop_front();
    send_token_to(head);
  }
}

void SuzukiKasamiEngine::on_request(const SkRequestMsg& msg) {
  const auto ji = static_cast<std::size_t>(msg.requester);
  rn_[ji] = std::max(rn_[ji], msg.seq);
  if (has_token_ && !in_cs_ && !requesting_ &&
      rn_[ji] == token_ln_[ji] + 1) {
    send_token_to(msg.requester);
  }
}

void SuzukiKasamiEngine::on_token(const SkTokenMsg& msg) {
  assert(!has_token_);
  has_token_ = true;
  token_ln_ = msg.last_granted;
  token_queue_ = msg.queue;
  assert(requesting_ && "SK: unsolicited token");
  in_cs_ = true;
  on_granted_();
}

void SuzukiKasamiEngine::send_token_to(SiteId dst) {
  assert(has_token_);
  auto msg = std::make_unique<SkTokenMsg>();
  msg->instance = instance_;
  msg->last_granted = std::move(token_ln_);
  msg->queue = std::move(token_queue_);
  token_ln_.clear();
  token_queue_.clear();
  has_token_ = false;
  send_(dst, std::move(msg));
}

}  // namespace mra::mutex
