#include "mutex/naimi_trehel.hpp"

namespace mra::mutex {

// The engine is a header-only template; this TU pins one explicit
// instantiation so template errors surface when the library builds, not
// first in a downstream target.
template class NaimiTrehelEngine<NoPayload>;

}  // namespace mra::mutex
