// Ricart-Agrawala permission-based mutual exclusion (CACM 1981).
//
// 2(N-1) messages per CS: broadcast a timestamped request, enter after
// collecting N-1 replies; defer replies to lower-priority concurrent
// requests. Included as a reference/single-resource baseline exercised by the
// test suite (it provides an algorithm-independent oracle for the mutual
// exclusion invariant checks).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "net/message.hpp"

namespace mra::mutex {

struct RaRequestMsg final : net::Message {
  int instance = 0;
  SiteId requester = kNoSite;
  std::int64_t clock = 0;

  [[nodiscard]] std::string_view kind() const override { return "RA.Request"; }
  [[nodiscard]] std::size_t wire_size() const override { return 20; }
};

struct RaReplyMsg final : net::Message {
  int instance = 0;

  [[nodiscard]] std::string_view kind() const override { return "RA.Reply"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

/// One Ricart-Agrawala instance (multiplexed via `instance`).
class RicartAgrawalaEngine {
 public:
  using SendFn = std::function<void(SiteId dst, std::unique_ptr<net::Message>)>;
  using GrantFn = std::function<void()>;

  RicartAgrawalaEngine(SiteId self, int n, int instance, SendFn send,
                       GrantFn on_granted);

  void request();
  void release();

  void on_request(SiteId from, const RaRequestMsg& msg);
  void on_reply(const RaReplyMsg& msg);

  [[nodiscard]] bool in_cs() const { return in_cs_; }
  [[nodiscard]] bool requesting() const { return requesting_; }

 private:
  void send_reply(SiteId dst);

  SiteId self_;
  int n_;
  int instance_;
  SendFn send_;
  GrantFn on_granted_;

  std::int64_t clock_ = 0;
  std::int64_t my_request_clock_ = 0;
  int replies_pending_ = 0;
  bool requesting_ = false;
  bool in_cs_ = false;
  std::vector<bool> deferred_;
};

}  // namespace mra::mutex
