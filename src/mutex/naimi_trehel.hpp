// Naimi-Tréhel token-based mutual exclusion (ICDCS 1987).
//
// The classic O(log N)-message algorithm: sites form a dynamic logical tree
// of `father` pointers whose root is the last requester; a distributed queue
// of `next` pointers strings pending requests together. Used here as:
//   * the per-resource lock of the Incremental baseline (M instances/site),
//   * the control-token transport of Bouabdallah-Laforest (payload-carrying).
//
// The engine is deliberately *not* a net::Node: a site may host many
// instances (one per resource), so the host node multiplexes messages to
// engines via the `instance` tag carried by every engine message.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "check/mutant.hpp"
#include "core/types.hpp"
#include "net/message.hpp"

namespace mra::mutex {

/// Payload for plain mutual exclusion (token carries nothing).
struct NoPayload {
  [[nodiscard]] static std::size_t wire_size() { return 0; }
};

/// Request message: carries the original requester through forwarding hops.
struct NtRequestMsg final : net::Message {
  int instance = 0;
  SiteId requester = kNoSite;

  [[nodiscard]] std::string_view kind() const override { return "NT.Request"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

/// Token message; carries the instance tag and the payload.
template <typename Payload>
struct NtTokenMsg final : net::Message {
  int instance = 0;
  Payload payload{};

  [[nodiscard]] std::string_view kind() const override { return "NT.Token"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + payload.wire_size();
  }
};

/// One Naimi-Tréhel instance.
///
/// The host provides a `send` hook and a grant callback. All message
/// callbacks must be invoked by the host from its on_message().
template <typename Payload = NoPayload>
class NaimiTrehelEngine {
 public:
  using SendFn = std::function<void(SiteId dst, std::unique_ptr<net::Message>)>;
  using GrantFn = std::function<void()>;

  /// `self`: this site; `elected`: initial token holder; `instance`: tag used
  /// to multiplex several engines on one host node.
  NaimiTrehelEngine(SiteId self, SiteId elected, int instance, SendFn send,
                    GrantFn on_granted)
      : self_(self),
        instance_(instance),
        send_(std::move(send)),
        on_granted_(std::move(on_granted)) {
    if (self == elected) {
      father_ = kNoSite;
      has_token_ = true;
    } else {
      father_ = elected;
    }
  }

  /// Requests the critical section. Precondition: not already requesting.
  /// May invoke the grant callback synchronously (token already here).
  void request() {
    assert(!requesting_ && "NT: nested request");
    requesting_ = true;
    if (father_ == kNoSite) {
      assert(has_token_);
      in_cs_ = true;
      on_granted_();
    } else {
      auto msg = std::make_unique<NtRequestMsg>();
      msg->instance = instance_;
      msg->requester = self_;
      const SiteId dst = father_;
      father_ = kNoSite;  // we will be the new root
      send_(dst, std::move(msg));
    }
  }

  /// Releases the critical section; forwards the token to `next` if queued.
  void release() {
    assert(in_cs_ && "NT: release outside CS");
    in_cs_ = false;
    requesting_ = false;
    if (next_ != kNoSite) {
      if (!check::mutant_enabled(check::Mutant::kMutexNtDropToken)) {
        // Seeded bug (when skipped): the token is never forwarded and the
        // queued requester waits forever (deadlock oracle, explorer mutex
        // mode).
        send_token(next_);
      }
      next_ = kNoSite;
    }
  }

  /// Host dispatch: a request (original requester `msg.requester`) arrived.
  void on_request(const NtRequestMsg& msg) {
    const SiteId requester = msg.requester;
    if (father_ == kNoSite) {
      if (requesting_) {
        next_ = requester;
      } else {
        assert(has_token_);
        send_token(requester);
      }
    } else {
      auto fwd = std::make_unique<NtRequestMsg>();
      fwd->instance = instance_;
      fwd->requester = requester;
      send_(father_, std::move(fwd));
    }
    father_ = requester;
  }

  /// Host dispatch: the token arrived.
  void on_token(const NtTokenMsg<Payload>& msg) {
    assert(!has_token_);
    has_token_ = true;
    payload_ = msg.payload;
    assert(requesting_ && "NT: unsolicited token");
    in_cs_ = true;
    on_granted_();
  }

  [[nodiscard]] bool has_token() const { return has_token_; }
  [[nodiscard]] bool requesting() const { return requesting_; }
  [[nodiscard]] bool in_cs() const { return in_cs_; }
  [[nodiscard]] SiteId father() const { return father_; }
  [[nodiscard]] SiteId next() const { return next_; }
  [[nodiscard]] int instance() const { return instance_; }

  /// Token payload; mutate only while holding the token.
  [[nodiscard]] Payload& payload() {
    assert(has_token_);
    return payload_;
  }
  [[nodiscard]] const Payload& payload() const {
    assert(has_token_);
    return payload_;
  }

 private:
  void send_token(SiteId dst) {
    assert(has_token_);
    auto msg = std::make_unique<NtTokenMsg<Payload>>();
    msg->instance = instance_;
    msg->payload = std::move(payload_);
    payload_ = Payload{};
    has_token_ = false;
    send_(dst, std::move(msg));
  }

  SiteId self_;
  int instance_;
  SendFn send_;
  GrantFn on_granted_;

  SiteId father_ = kNoSite;  ///< probable owner; kNoSite = (future) root
  SiteId next_ = kNoSite;    ///< next site in the distributed queue
  bool requesting_ = false;
  bool has_token_ = false;
  bool in_cs_ = false;
  Payload payload_{};
};

}  // namespace mra::mutex
