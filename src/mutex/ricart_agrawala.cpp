#include "mutex/ricart_agrawala.hpp"

#include <algorithm>

namespace mra::mutex {

RicartAgrawalaEngine::RicartAgrawalaEngine(SiteId self, int n, int instance,
                                           SendFn send, GrantFn on_granted)
    : self_(self),
      n_(n),
      instance_(instance),
      send_(std::move(send)),
      on_granted_(std::move(on_granted)),
      deferred_(static_cast<std::size_t>(n), false) {}

void RicartAgrawalaEngine::request() {
  assert(!requesting_ && "RA: nested request");
  requesting_ = true;
  ++clock_;
  my_request_clock_ = clock_;
  replies_pending_ = n_ - 1;
  if (replies_pending_ == 0) {
    in_cs_ = true;
    on_granted_();
    return;
  }
  for (SiteId j = 0; j < n_; ++j) {
    if (j == self_) continue;
    auto msg = std::make_unique<RaRequestMsg>();
    msg->instance = instance_;
    msg->requester = self_;
    msg->clock = my_request_clock_;
    send_(j, std::move(msg));
  }
}

void RicartAgrawalaEngine::release() {
  assert(in_cs_ && "RA: release outside CS");
  in_cs_ = false;
  requesting_ = false;
  for (SiteId j = 0; j < n_; ++j) {
    const auto ji = static_cast<std::size_t>(j);
    if (deferred_[ji]) {
      deferred_[ji] = false;
      send_reply(j);
    }
  }
}

void RicartAgrawalaEngine::on_request(SiteId from, const RaRequestMsg& msg) {
  clock_ = std::max(clock_, msg.clock) + 1;
  // Defer iff we are in CS, or we are requesting with higher priority
  // (smaller (clock, id) wins).
  const bool we_win =
      requesting_ && (my_request_clock_ < msg.clock ||
                      (my_request_clock_ == msg.clock && self_ < msg.requester));
  if (in_cs_ || we_win) {
    deferred_[static_cast<std::size_t>(from)] = true;
  } else {
    send_reply(from);
  }
}

void RicartAgrawalaEngine::on_reply(const RaReplyMsg& /*msg*/) {
  assert(requesting_ && replies_pending_ > 0);
  if (--replies_pending_ == 0) {
    in_cs_ = true;
    on_granted_();
  }
}

void RicartAgrawalaEngine::send_reply(SiteId dst) {
  auto msg = std::make_unique<RaReplyMsg>();
  msg->instance = instance_;
  send_(dst, std::move(msg));
}

}  // namespace mra::mutex
