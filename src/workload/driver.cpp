#include "workload/driver.hpp"

#include <cassert>

namespace mra::workload {

NodeDriver::NodeDriver(AllocatorNode& node, sim::Simulator& simulator,
                       const WorkloadConfig& config, sim::Rng rng,
                       metrics::Collector& collector)
    : node_(node), sim_(simulator), gen_(config, rng), collector_(collector) {
  node_.set_grant_callback([this](RequestId /*seq*/) { on_granted(); });
}

void NodeDriver::start() {
  sim_.schedule_in(gen_.draw_think_time(), [this]() { issue_request(); });
}

void NodeDriver::issue_request() {
  if (stopped_) return;
  assert(node_.state() == ProcessState::kIdle);
  const int size = gen_.draw_size();
  const ResourceSet rs = gen_.draw_resources(size);
  current_cs_time_ = gen_.draw_cs_duration(size);
  collector_.on_issue(sim_.now(), node_.id(), node_.current_request_id() + 1, rs);
  node_.request(rs);
}

void NodeDriver::on_granted() {
  collector_.on_grant(sim_.now(), node_.id(), node_.current_request_id(),
                      node_.current_request());
  // The CS body: hold everything for the drawn duration. release() must not
  // run inside the grant callback (protocols may still be mid-handler), so
  // even a zero-length CS goes through the event queue.
  sim_.schedule_in(current_cs_time_, [this]() { on_cs_done(); });
}

void NodeDriver::on_cs_done() {
  const ResourceSet held = node_.current_request();
  collector_.on_release(sim_.now(), node_.id(), node_.current_request_id(),
                        held);
  node_.release();
  ++cycles_;
  sim_.schedule_in(gen_.draw_think_time(), [this]() { issue_request(); });
}

WorkloadRunner::WorkloadRunner(algo::AllocationSystem& system,
                               const WorkloadConfig& config, std::uint64_t seed,
                               std::size_t size_buckets)
    : system_(system),
      cfg_(config),
      collector_(system.num_resources(), size_buckets) {
  collector_.set_max_size(static_cast<std::size_t>(config.phi));
  sim::Rng master(seed);
  for (int i = 0; i < system.num_sites(); ++i) {
    drivers_.push_back(std::make_unique<NodeDriver>(
        system.node(i), system.simulator(), cfg_, master.split(), collector_));
  }
}

void WorkloadRunner::start() {
  for (auto& d : drivers_) d->start();
}

void WorkloadRunner::stop_issuing() {
  for (auto& d : drivers_) d->stop();
}

}  // namespace mra::workload
