#include "workload/workload.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace mra::workload {

const char* to_string(CsDurationPolicy p) {
  switch (p) {
    case CsDurationPolicy::kSizeProportional: return "size-proportional";
    case CsDurationPolicy::kUniformIid: return "uniform-iid";
    case CsDurationPolicy::kFixed: return "fixed";
  }
  return "?";
}

void WorkloadConfig::validate() const {
  // Every message names the offending field and its value, so a bad sweep
  // config is diagnosable from the exception alone.
  if (num_resources <= 0) {
    throw std::invalid_argument("workload.num_resources: must be > 0, got " +
                                std::to_string(num_resources));
  }
  if (phi < 1 || phi > num_resources) {
    throw std::invalid_argument(
        "workload.phi: must be in [1, num_resources=" +
        std::to_string(num_resources) + "], got " + std::to_string(phi));
  }
  if (alpha_min <= 0 || alpha_max < alpha_min) {
    throw std::invalid_argument(
        "workload.alpha_min/alpha_max: need 0 < alpha_min <= alpha_max, got "
        "alpha_min=" +
        std::to_string(alpha_min) + " alpha_max=" + std::to_string(alpha_max));
  }
  if (rho <= 0.0) {
    throw std::invalid_argument("workload.rho: must be > 0, got " +
                                std::to_string(rho));
  }
  if (cs_jitter < 0.0 || cs_jitter >= 1.0) {
    throw std::invalid_argument("workload.cs_jitter: must be in [0, 1), got " +
                                std::to_string(cs_jitter));
  }
}

sim::SimDuration WorkloadConfig::mean_cs() const {
  switch (cs_policy) {
    case CsDurationPolicy::kFixed:
      return alpha_min;
    case CsDurationPolicy::kUniformIid:
      return (alpha_min + alpha_max) / 2;
    case CsDurationPolicy::kSizeProportional: {
      // E[x] = (1 + φ)/2; the duration is linear in (x-1)/(φ-1), so the CS
      // time spans the full [alpha_min, alpha_max] range in every experiment
      // (the paper varies α from 5 ms to 35 ms regardless of φ).
      const double f = 0.5;  // E[(x-1)/(φ-1)] = 1/2 (φ = 1: middle of range)
      return alpha_min + static_cast<sim::SimDuration>(
                             f * static_cast<double>(alpha_max - alpha_min));
    }
  }
  return alpha_min;
}

sim::SimDuration WorkloadConfig::beta() const {
  return static_cast<sim::SimDuration>(
      rho * static_cast<double>(mean_cs() + gamma));
}

WorkloadConfig medium_load(int phi, int num_resources) {
  WorkloadConfig cfg;
  cfg.num_resources = num_resources;
  cfg.phi = phi;
  cfg.rho = 5.0;
  return cfg;
}

WorkloadConfig high_load(int phi, int num_resources) {
  WorkloadConfig cfg;
  cfg.num_resources = num_resources;
  cfg.phi = phi;
  cfg.rho = 0.5;
  return cfg;
}

RequestGenerator::RequestGenerator(const WorkloadConfig& config, sim::Rng rng)
    : cfg_(config), rng_(rng) {
  cfg_.validate();
}

int RequestGenerator::draw_size() {
  return static_cast<int>(rng_.uniform_int(1, cfg_.phi));
}

ResourceSet draw_uniform_resources(int size, int num_resources,
                                   sim::Rng& rng) {
  // Partial Fisher-Yates over the resource universe: O(size) draws.
  ResourceSet out(num_resources);
  std::vector<ResourceId> pool(static_cast<std::size_t>(num_resources));
  for (ResourceId r = 0; r < num_resources; ++r) {
    pool[static_cast<std::size_t>(r)] = r;
  }
  for (int i = 0; i < size; ++i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(i, num_resources - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    out.insert(pool[static_cast<std::size_t>(i)]);
  }
  return out;
}

ResourceSet RequestGenerator::draw_resources(int size) {
  return draw_uniform_resources(size, cfg_.num_resources, rng_);
}

sim::SimDuration RequestGenerator::draw_cs_duration(int size) {
  double base;
  switch (cfg_.cs_policy) {
    case CsDurationPolicy::kFixed:
      base = static_cast<double>(cfg_.alpha_min);
      break;
    case CsDurationPolicy::kUniformIid:
      base = rng_.uniform_real(static_cast<double>(cfg_.alpha_min),
                               static_cast<double>(cfg_.alpha_max));
      break;
    case CsDurationPolicy::kSizeProportional: {
      // Scale by the request's position in [1, φ]: the α range is a property
      // of the experiment, not of M, so every φ sees CS times in
      // [alpha_min, alpha_max]. φ = 1 degenerates to the middle of the range.
      const double f = cfg_.phi > 1
                           ? (static_cast<double>(size) - 1.0) /
                                 static_cast<double>(cfg_.phi - 1)
                           : 0.5;
      base = static_cast<double>(cfg_.alpha_min) +
             f * static_cast<double>(cfg_.alpha_max - cfg_.alpha_min);
      break;
    }
    default:
      base = static_cast<double>(cfg_.alpha_min);
  }
  if (cfg_.cs_jitter > 0.0) {
    base *= rng_.uniform_real(1.0 - cfg_.cs_jitter, 1.0 + cfg_.cs_jitter);
  }
  return std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(base));
}

sim::SimDuration RequestGenerator::draw_think_time() {
  return std::max<sim::SimDuration>(
      1, static_cast<sim::SimDuration>(
             rng_.exponential(static_cast<double>(cfg_.beta()))));
}

}  // namespace mra::workload
