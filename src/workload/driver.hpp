// Drives one site through think -> request -> CS -> release cycles and feeds
// the metrics collector. Algorithm-agnostic: it only talks to AllocatorNode.
#pragma once

#include <memory>
#include <vector>

#include "algo/factory.hpp"
#include "core/allocator.hpp"
#include "metrics/collector.hpp"
#include "workload/workload.hpp"

namespace mra::workload {

class NodeDriver {
 public:
  NodeDriver(AllocatorNode& node, sim::Simulator& simulator,
             const WorkloadConfig& config, sim::Rng rng,
             metrics::Collector& collector);

  /// Schedules the first request (after one think time).
  void start();

  /// Stops issuing new requests (in-flight ones complete).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_; }

 private:
  void issue_request();
  void on_granted();
  void on_cs_done();

  AllocatorNode& node_;
  sim::Simulator& sim_;
  RequestGenerator gen_;
  metrics::Collector& collector_;
  bool stopped_ = false;
  std::uint64_t cycles_ = 0;
  sim::SimDuration current_cs_time_ = 0;
};

/// Convenience bundle: drivers for every node of a system plus the shared
/// collector; the standard way experiments and examples run a workload.
class WorkloadRunner {
 public:
  WorkloadRunner(algo::AllocationSystem& system, const WorkloadConfig& config,
                 std::uint64_t seed, std::size_t size_buckets = 6);

  /// Starts all drivers (system must already be started).
  void start();

  void stop_issuing();

  [[nodiscard]] metrics::Collector& collector() { return collector_; }
  [[nodiscard]] const metrics::Collector& collector() const { return collector_; }
  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }

 private:
  algo::AllocationSystem& system_;
  WorkloadConfig cfg_;
  metrics::Collector collector_;
  std::vector<std::unique_ptr<NodeDriver>> drivers_;
};

}  // namespace mra::workload
