// The paper's workload model (§5.1).
//
// Each site cycles: think for β (mean inter-request time), pick a request
// size x ~ U(1, φ), pick x distinct resources uniformly, run the CS for a
// duration that grows with x (α ∈ [5 ms, 35 ms]). Load is expressed through
// ρ = β / (ᾱ + γ): low ρ = high load.
#pragma once

#include <string>

#include "core/resource_set.hpp"
#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mra::workload {

/// How the CS duration depends on the request size x. The paper states only
/// that larger requests tend to have longer critical sections.
enum class CsDurationPolicy {
  kSizeProportional,  ///< default: linear in x over [alpha_min, alpha_max]
  kUniformIid,        ///< U(alpha_min, alpha_max), size-independent
  kFixed,             ///< always alpha_min
};

[[nodiscard]] const char* to_string(CsDurationPolicy p);

struct WorkloadConfig {
  int num_resources = 80;  ///< M
  int phi = 4;             ///< φ: maximum request size (1..M)

  sim::SimDuration alpha_min = sim::from_ms(5.0);   ///< shortest CS
  sim::SimDuration alpha_max = sim::from_ms(35.0);  ///< longest CS
  CsDurationPolicy cs_policy = CsDurationPolicy::kSizeProportional;
  double cs_jitter = 0.2;  ///< multiplicative U(1-j, 1+j) on the CS time

  /// ρ = β/(ᾱ+γ): the paper's load knob, inversely proportional to load.
  double rho = 5.0;
  sim::SimDuration gamma = sim::from_ms(0.6);  ///< network latency, for β

  /// Validates ranges; throws std::invalid_argument.
  void validate() const;

  /// Mean CS duration ᾱ implied by the config (over the size distribution).
  [[nodiscard]] sim::SimDuration mean_cs() const;

  /// β = ρ · (ᾱ + γ).
  [[nodiscard]] sim::SimDuration beta() const;
};

/// Canonical "medium load" (ρ = 5) and "high load" (ρ = 0.5) factory
/// functions used by the figure benches.
[[nodiscard]] WorkloadConfig medium_load(int phi, int num_resources = 80);
[[nodiscard]] WorkloadConfig high_load(int phi, int num_resources = 80);

/// `size` distinct resources uniform over [0, num_resources), via partial
/// Fisher-Yates (O(size) RNG draws). The single implementation behind both
/// RequestGenerator and the scenario subsystem's uniform picker.
[[nodiscard]] ResourceSet draw_uniform_resources(int size, int num_resources,
                                                 sim::Rng& rng);

/// Per-site request generator; deterministic given its RNG.
class RequestGenerator {
 public:
  RequestGenerator(const WorkloadConfig& config, sim::Rng rng);

  /// Request size x ~ U(1, φ).
  [[nodiscard]] int draw_size();

  /// x distinct resources, uniform over [0, M).
  [[nodiscard]] ResourceSet draw_resources(int size);

  /// CS duration for a request of the given size.
  [[nodiscard]] sim::SimDuration draw_cs_duration(int size);

  /// Think time ~ Exp(β).
  [[nodiscard]] sim::SimDuration draw_think_time();

 private:
  WorkloadConfig cfg_;
  sim::Rng rng_;
};

}  // namespace mra::workload
