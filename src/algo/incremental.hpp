// The Incremental baseline (§5): M independent Naimi-Tréhel locks, acquired
// one by one in increasing resource-id order.
//
// The global total order on resources prevents deadlock (the classic ordered
// locking argument), but the strategy suffers the domino effect the paper
// describes (§2.1): a process holds already-acquired resources idle while it
// waits for the next one in order.
#pragma once

#include <memory>
#include <vector>

#include "core/allocator.hpp"
#include "core/trace.hpp"
#include "mutex/naimi_trehel.hpp"

namespace mra::algo {

struct IncrementalConfig {
  int num_sites = 0;
  int num_resources = 0;
  /// Initial holder of every lock's token.
  SiteId elected_node = 0;
};

class IncrementalNode final : public AllocatorNode {
 public:
  explicit IncrementalNode(const IncrementalConfig& config,
                           Trace* trace = nullptr);

  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_start() override;
  void on_message(SiteId from, const net::Message& msg) override;

  /// Resources whose lock this site currently holds in CS-acquisition order.
  [[nodiscard]] const std::vector<ResourceId>& acquired() const {
    return acquired_;
  }

 private:
  void acquire_next();
  void on_lock_granted(ResourceId r);

  IncrementalConfig cfg_;
  Trace* trace_;
  std::vector<std::unique_ptr<mutex::NaimiTrehelEngine<>>> locks_;
  ProcessState state_ = ProcessState::kIdle;
  std::vector<ResourceId> plan_;      // resources to acquire, ascending
  std::size_t next_index_ = 0;        // next entry of plan_ to acquire
  std::vector<ResourceId> acquired_;  // locks currently held
};

}  // namespace mra::algo
