// The "in shared memory" reference of the paper's evaluation (§5.2): a
// scheduling algorithm with a global waiting queue and *no* communication
// cost. It upper-bounds every distributed algorithm and is used to read off
// their pure synchronization overhead.
//
// Requests join a global queue in arrival order; whenever resources free up,
// the scheduler scans the queue in order and grants every request whose
// resources are all available (in-order backfill). `strict_fifo` restricts
// grants to the queue prefix instead, which serializes behind the head —
// useful as an ablation of the scheduling policy itself.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/allocator.hpp"
#include "core/trace.hpp"
#include "sim/simulator.hpp"

namespace mra::algo {

class CentralNode;

struct CentralConfig {
  int num_sites = 0;
  int num_resources = 0;
  /// Grant only from the head of the queue (no backfill).
  bool strict_fifo = false;
};

/// The shared-memory scheduler state. Not a network node: nodes call it
/// directly (zero latency, zero messages), mirroring the paper's "no
/// synchronization" curve.
class CentralCoordinator {
 public:
  CentralCoordinator(const CentralConfig& config, sim::Simulator& simulator);

  void submit(CentralNode& node, const ResourceSet& resources);
  void release(CentralNode& node, const ResourceSet& resources);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] const ResourceSet& busy() const { return busy_; }

 private:
  void try_grant();

  CentralConfig cfg_;
  sim::Simulator& sim_;
  ResourceSet busy_;
  struct Waiting {
    CentralNode* node;
    ResourceSet resources;
  };
  std::deque<Waiting> queue_;
};

/// Per-site facade over the coordinator.
class CentralNode final : public AllocatorNode {
 public:
  CentralNode(const CentralConfig& config, CentralCoordinator& coordinator);

  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_message(SiteId from, const net::Message& msg) override;

 private:
  friend class CentralCoordinator;
  void granted();

  CentralCoordinator& coordinator_;
  ProcessState state_ = ProcessState::kIdle;
};

}  // namespace mra::algo
