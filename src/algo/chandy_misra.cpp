#include "algo/chandy_misra.hpp"

#include <cassert>
#include <stdexcept>

#include "check/mutant.hpp"
#include "net/network.hpp"

namespace mra::algo {

using cm_detail::BottleMsg;
using cm_detail::BottleReqMsg;
using cm_detail::ForkMsg;
using cm_detail::ForkTokenMsg;

ChandyMisraNode::ChandyMisraNode(const ChandyMisraConfig& config, Trace* trace)
    : cfg_(config), trace_(trace) {
  if (config.num_sites <= 0) {
    throw std::invalid_argument("ChandyMisraConfig: num_sites must be positive");
  }
  for (const auto& [a, b] : config.sharers) {
    if (a == b || a < 0 || b < 0 || a >= config.num_sites ||
        b >= config.num_sites) {
      throw std::invalid_argument("ChandyMisraConfig: bad sharer pair");
    }
  }
  current_ = ResourceSet(static_cast<ResourceId>(config.sharers.size()));
}

void ChandyMisraNode::on_start() {
  bottles_.assign(cfg_.sharers.size(), BottleState{});
  forks_.clear();
  for (std::size_t i = 0; i < cfg_.sharers.size(); ++i) {
    const auto [a, b] = cfg_.sharers[i];
    if (a != id() && b != id()) continue;
    const SiteId peer = (a == id()) ? b : a;
    bottles_[i].peer = peer;
    // Initial placement: the lower-id sharer holds bottle and (dirty) fork;
    // the other holds the edge's request token. Orientation by id is acyclic,
    // which the hygienic-dining argument requires.
    bottles_[i].held = id() < peer;
    auto [it, inserted] = forks_.try_emplace(peer);
    if (inserted) {
      it->second.held = id() < peer;
      it->second.dirty = true;
      it->second.token_here = id() > peer;
    }
  }
}

bool ChandyMisraNode::holds_bottle(ResourceId r) const {
  return bottles_[static_cast<std::size_t>(r)].held;
}

bool ChandyMisraNode::all_forks_held() const {
  for (const auto& [peer, f] : forks_) {
    if (!f.held) return false;
  }
  return true;
}

bool ChandyMisraNode::all_bottles_held() const {
  bool all = true;
  current_.for_each([&](ResourceId r) {
    if (!bottles_[static_cast<std::size_t>(r)].held) all = false;
  });
  return all;
}

void ChandyMisraNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty());
  resources.for_each([&](ResourceId r) {
    if (bottles_[static_cast<std::size_t>(r)].peer == kNoSite) {
      throw std::invalid_argument(
          "ChandyMisra: requested resource not incident to this site");
    }
  });
  ++request_seq_;
  current_ = resources;
  state_ = ProcessState::kWaitCS;
  phase_ = Phase::kForks;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->log(network_->simulator().now(), id(),
                "Request_CS " + resources.to_string());
  }
  if (all_forks_held()) {
    enter_bottle_phase();
  } else {
    request_missing_forks();
  }
}

void ChandyMisraNode::request_missing_forks() {
  for (auto& [peer, f] : forks_) {
    if (!f.held && f.token_here) {
      f.token_here = false;
      network_->send(id(), peer, std::make_unique<ForkTokenMsg>());
    }
  }
}

void ChandyMisraNode::enter_bottle_phase() {
  assert(phase_ == Phase::kForks && all_forks_held());
  phase_ = Phase::kBottles;
  if (check::mutant_enabled(check::Mutant::kCmForkBottleConfusion)) {
    // Seeded bug: treat the won forks as if they were the bottles and drink
    // immediately — two neighbours can then drink the shared edge at once.
    complete_bottle_phase();
    return;
  }
  if (all_bottles_held()) {
    complete_bottle_phase();
    return;
  }
  current_.for_each([&](ResourceId r) {
    auto& b = bottles_[static_cast<std::size_t>(r)];
    if (!b.held) {
      auto msg = std::make_unique<BottleReqMsg>();
      msg->r = r;
      network_->send(id(), b.peer, std::move(msg));
    }
  });
}

void ChandyMisraNode::complete_bottle_phase() {
  // All needed bottles held: dirty the forks, serve deferred fork requests,
  // then drink. Forks are released *before* the CS (the paper: "forks ...
  // are released when the process has acquired all the requesting bottles").
  phase_ = Phase::kDrinking;
  state_ = ProcessState::kInCS;
  for (auto& [peer, f] : forks_) {
    f.dirty = true;
    if (f.request_deferred) {
      f.request_deferred = false;
      send_fork(peer);
    }
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->log(network_->simulator().now(), id(),
                "enter CS " + current_.to_string());
  }
  notify_granted();
}

void ChandyMisraNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  state_ = ProcessState::kIdle;
  phase_ = Phase::kIdle;
  const ResourceSet done = current_;
  current_.clear();
  done.for_each([&](ResourceId r) {
    auto& b = bottles_[static_cast<std::size_t>(r)];
    if (b.request_deferred) {
      b.request_deferred = false;
      send_bottle(r);
    }
  });
}

void ChandyMisraNode::send_fork(SiteId to) {
  auto& f = forks_.at(to);
  assert(f.held);
  f.held = false;
  f.dirty = false;  // forks travel clean
  network_->send(id(), to, std::make_unique<ForkMsg>());
}

void ChandyMisraNode::send_bottle(ResourceId r) {
  auto& b = bottles_[static_cast<std::size_t>(r)];
  assert(b.held);
  b.held = false;
  auto msg = std::make_unique<BottleMsg>();
  msg->r = r;
  network_->send(id(), b.peer, std::move(msg));
}

void ChandyMisraNode::on_fork_token(SiteId from) {
  auto& f = forks_.at(from);
  assert(f.held && "CM: fork request while fork not here");
  f.token_here = true;
  const bool hungry = phase_ == Phase::kForks;
  if (phase_ == Phase::kBottles) {
    // We are between "all forks" and "all bottles": this is exactly the
    // window the dining layer protects — defer.
    f.request_deferred = true;
  } else if (f.dirty) {
    // Dirty forks must be yielded; if we are hungry, re-request immediately.
    send_fork(from);
    if (hungry) {
      f.token_here = false;
      network_->send(id(), from, std::make_unique<ForkTokenMsg>());
    }
  } else {
    // Clean fork: we acquired it for the current attempt and keep it.
    assert(hungry && "CM: clean fork held while not hungry");
    f.request_deferred = true;
  }
}

void ChandyMisraNode::on_message(SiteId from, const net::Message& msg) {
  if (dynamic_cast<const ForkTokenMsg*>(&msg) != nullptr) {
    on_fork_token(from);
    return;
  }
  if (dynamic_cast<const ForkMsg*>(&msg) != nullptr) {
    auto& f = forks_.at(from);
    assert(!f.held);
    f.held = true;
    f.dirty = false;
    if (phase_ == Phase::kForks && all_forks_held()) enter_bottle_phase();
    return;
  }
  if (const auto* breq = dynamic_cast<const BottleReqMsg*>(&msg)) {
    auto& b = bottles_[static_cast<std::size_t>(breq->r)];
    if (!b.held) return;  // bottle already in flight to the requester
    const bool drinking_with_it =
        phase_ == Phase::kDrinking && current_.contains(breq->r);
    const bool acquiring_it =
        phase_ == Phase::kBottles && current_.contains(breq->r);
    if (drinking_with_it || acquiring_it) {
      b.request_deferred = true;
    } else {
      send_bottle(breq->r);
    }
    return;
  }
  if (const auto* bot = dynamic_cast<const BottleMsg*>(&msg)) {
    auto& b = bottles_[static_cast<std::size_t>(bot->r)];
    assert(!b.held);
    b.held = true;
    if (phase_ == Phase::kBottles && all_bottles_held()) {
      complete_bottle_phase();
    }
    return;
  }
  assert(false && "ChandyMisraNode: unknown message type");
}

}  // namespace mra::algo
