#include "algo/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "check/mutant.hpp"
#include "net/network.hpp"

namespace mra::algo {

IncrementalNode::IncrementalNode(const IncrementalConfig& config, Trace* trace)
    : cfg_(config), trace_(trace) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument(
        "IncrementalConfig: num_sites and num_resources must be positive");
  }
  current_ = ResourceSet(config.num_resources);
}

void IncrementalNode::on_start() {
  locks_.clear();
  locks_.reserve(static_cast<std::size_t>(cfg_.num_resources));
  for (ResourceId r = 0; r < cfg_.num_resources; ++r) {
    locks_.push_back(std::make_unique<mutex::NaimiTrehelEngine<>>(
        id(), cfg_.elected_node, r,
        [this](SiteId dst, std::unique_ptr<net::Message> msg) {
          network_->send(id(), dst, std::move(msg));
        },
        [this, r]() { on_lock_granted(r); }));
  }
}

void IncrementalNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty());
  ++request_seq_;
  current_ = resources;
  state_ = ProcessState::kWaitCS;
  plan_ = resources.to_vector();  // ascending ids = the global total order
  if (check::mutant_enabled(check::Mutant::kIncrementalReversedAcquire) &&
      (id() & 1) != 0) {
    // Seeded bug: odd sites acquire in descending order, breaking the global
    // total order -> a genuine AB/BA wait-for cycle the deadlock oracle must
    // detect online.
    std::reverse(plan_.begin(), plan_.end());
  }
  next_index_ = 0;
  acquired_.clear();
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->log(network_->simulator().now(), id(),
                "Request_CS " + resources.to_string());
  }
  acquire_next();
}

void IncrementalNode::acquire_next() {
  // Engine grants can be synchronous (token already local), so this is a
  // loop rather than recursion through the callback.
  assert(next_index_ < plan_.size());
  const ResourceId r = plan_[next_index_];
  locks_[static_cast<std::size_t>(r)]->request();
}

void IncrementalNode::on_lock_granted(ResourceId r) {
  assert(state_ == ProcessState::kWaitCS);
  assert(next_index_ < plan_.size() && plan_[next_index_] == r);
  // Per-resource custody is exclusive from here until do_release(): surface
  // it to the conformance observer so hold-and-wait states are checkable.
  observe_hold(r);
  acquired_.push_back(r);
  ++next_index_;
  if (next_index_ < plan_.size()) {
    acquire_next();
  } else {
    state_ = ProcessState::kInCS;
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->log(network_->simulator().now(), id(),
                  "enter CS " + current_.to_string());
    }
    notify_granted();
  }
}

void IncrementalNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  state_ = ProcessState::kIdle;
  for (ResourceId r : acquired_) {
    locks_[static_cast<std::size_t>(r)]->release();
  }
  acquired_.clear();
  plan_.clear();
  current_.clear();
}

void IncrementalNode::on_message(SiteId /*from*/, const net::Message& msg) {
  if (const auto* req = dynamic_cast<const mutex::NtRequestMsg*>(&msg)) {
    locks_[static_cast<std::size_t>(req->instance)]->on_request(*req);
    return;
  }
  if (const auto* tok =
          dynamic_cast<const mutex::NtTokenMsg<mutex::NoPayload>*>(&msg)) {
    locks_[static_cast<std::size_t>(tok->instance)]->on_token(*tok);
    return;
  }
  assert(false && "IncrementalNode: unknown message type");
}

}  // namespace mra::algo
