// Chandy-Misra drinking philosophers (TOPLAS 1984; §2.2 of the paper).
//
// The classic conflict-graph-based algorithm, included as an extension: it
// is the representative of the family the paper contrasts itself against —
// it *requires the conflict graph a priori* (each resource/bottle is shared
// by exactly two sites; each edge additionally carries one fork).
//
// Protocol, as summarised by the paper: a thirsty process first acquires all
// forks shared with its neighbours (hygienic dining layer: clean/dirty forks
// and request tokens, initial orientation by site id = acyclic); holding all
// forks it requests its missing bottles, which neighbours must hand over
// since they cannot be in their own fork-complete phase; once every needed
// bottle is held the forks are released (dirtied) and the drink (CS) starts.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "core/flat_map.hpp"
#include "core/trace.hpp"

namespace mra::algo {

namespace cm_detail {

struct ForkTokenMsg final : net::Message {  // "please send me our fork"
  [[nodiscard]] std::string_view kind() const override { return "CM.ForkReq"; }
  [[nodiscard]] std::size_t wire_size() const override { return 4; }
};

struct ForkMsg final : net::Message {  // the fork itself (arrives clean)
  [[nodiscard]] std::string_view kind() const override { return "CM.Fork"; }
  [[nodiscard]] std::size_t wire_size() const override { return 4; }
};

struct BottleReqMsg final : net::Message {
  ResourceId r = kNoResource;
  [[nodiscard]] std::string_view kind() const override { return "CM.BottleReq"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

struct BottleMsg final : net::Message {
  ResourceId r = kNoResource;
  [[nodiscard]] std::string_view kind() const override { return "CM.Bottle"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

}  // namespace cm_detail

struct ChandyMisraConfig {
  int num_sites = 0;
  /// resource r is shared by exactly the pair sharers[r] (the conflict
  /// graph, known a priori — the assumption the paper's algorithm removes).
  std::vector<std::pair<SiteId, SiteId>> sharers;
};

class ChandyMisraNode final : public AllocatorNode {
 public:
  explicit ChandyMisraNode(const ChandyMisraConfig& config,
                           Trace* trace = nullptr);

  /// `resources` must all be incident to this site.
  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_start() override;
  void on_message(SiteId from, const net::Message& msg) override;

  [[nodiscard]] bool holds_bottle(ResourceId r) const;

 private:
  enum class Phase { kIdle, kForks, kBottles, kDrinking };

  struct ForkState {
    bool held = false;
    bool dirty = true;
    bool token_here = false;     ///< request token currently at this site
    bool request_deferred = false;
  };

  struct BottleState {
    SiteId peer = kNoSite;  ///< the other sharer (kNoSite: not incident)
    bool held = false;
    bool request_deferred = false;
  };

  void request_missing_forks();
  void enter_bottle_phase();
  void complete_bottle_phase();
  void on_fork_token(SiteId from);
  void send_fork(SiteId to);
  void send_bottle(ResourceId r);

  [[nodiscard]] bool all_forks_held() const;
  [[nodiscard]] bool all_bottles_held() const;

  ChandyMisraConfig cfg_;
  Trace* trace_;
  ProcessState state_ = ProcessState::kIdle;
  Phase phase_ = Phase::kIdle;

  /// One per neighbour; sorted flat storage (iteration order matches the
  /// std::map it replaced — DESIGN.md §13). Degree is the site's conflict
  /// fan-out, not N.
  core::FlatMap<SiteId, ForkState, 4> forks_;
  std::vector<BottleState> bottles_;      ///< per resource
};

}  // namespace mra::algo
