#include "algo/factory.hpp"

#include <stdexcept>

#include "algo/bouabdallah_laforest.hpp"
#include "algo/incremental.hpp"
#include "algo/lass/node.hpp"
#include "algo/maddi.hpp"

namespace mra::algo {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kIncremental: return "Incremental";
    case Algorithm::kBouabdallahLaforest: return "Bouabdallah-Laforest";
    case Algorithm::kLassWithoutLoan: return "Without loan";
    case Algorithm::kLassWithLoan: return "With loan";
    case Algorithm::kCentralSharedMemory: return "in shared memory";
    case Algorithm::kMaddi: return "Maddi";
  }
  return "?";
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kIncremental,       Algorithm::kBouabdallahLaforest,
          Algorithm::kLassWithoutLoan,   Algorithm::kLassWithLoan,
          Algorithm::kCentralSharedMemory, Algorithm::kMaddi};
}

const char* cli_name(Algorithm a) {
  switch (a) {
    case Algorithm::kIncremental: return "incremental";
    case Algorithm::kBouabdallahLaforest: return "bl";
    case Algorithm::kLassWithoutLoan: return "lass";
    case Algorithm::kLassWithLoan: return "lass-loan";
    case Algorithm::kCentralSharedMemory: return "central";
    case Algorithm::kMaddi: return "maddi";
  }
  return "?";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (Algorithm a : all_algorithms()) {
    if (name == cli_name(a) || name == to_string(a)) return a;
  }
  std::string valid;
  for (Algorithm a : all_algorithms()) {
    if (!valid.empty()) valid += " | ";
    valid += cli_name(a);
  }
  throw std::invalid_argument("unknown algorithm \"" + name +
                              "\" (valid: " + valid + ")");
}

AllocationSystem::AllocationSystem(const SystemConfig& config) : cfg_(config) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument(
        "SystemConfig: num_sites and num_resources must be positive");
  }
  sim_ = std::make_unique<sim::Simulator>();
  std::unique_ptr<net::LatencyModel> latency;
  if (config.hierarchical_clusters > 1) {
    const int cluster_size =
        (config.num_sites + config.hierarchical_clusters - 1) /
        config.hierarchical_clusters;
    latency = net::make_hierarchical_latency(
        cluster_size, config.network_latency,
        config.hierarchical_remote_latency);
  } else if (config.latency_delay_bound > 0) {
    latency = net::make_bounded_delay_latency(config.network_latency,
                                              config.latency_delay_bound);
  } else if (config.latency_jitter > 0.0) {
    latency = net::make_uniform_jitter_latency(config.network_latency,
                                               config.latency_jitter);
  } else {
    latency = net::make_fixed_latency(config.network_latency);
  }
  if (config.latency_quantum > 0) {
    latency =
        net::make_quantized_latency(std::move(latency), config.latency_quantum);
  }
  net_ = std::make_unique<net::Network>(*sim_, std::move(latency), config.seed);

  switch (config.algorithm) {
    case Algorithm::kIncremental: {
      IncrementalConfig c;
      c.num_sites = config.num_sites;
      c.num_resources = config.num_resources;
      for (int i = 0; i < config.num_sites; ++i) {
        nodes_.push_back(std::make_unique<IncrementalNode>(c, &trace_));
      }
      break;
    }
    case Algorithm::kBouabdallahLaforest: {
      BouabdallahLaforestConfig c;
      c.num_sites = config.num_sites;
      c.num_resources = config.num_resources;
      c.release_control_token_early = config.bl_release_control_token_early;
      for (int i = 0; i < config.num_sites; ++i) {
        nodes_.push_back(std::make_unique<BouabdallahLaforestNode>(c, &trace_));
      }
      break;
    }
    case Algorithm::kLassWithoutLoan:
    case Algorithm::kLassWithLoan: {
      lass::LassConfig c;
      c.num_sites = config.num_sites;
      c.num_resources = config.num_resources;
      c.mark_policy = config.mark_policy;
      c.enable_loan = config.algorithm == Algorithm::kLassWithLoan;
      c.loan_threshold = config.loan_threshold;
      c.opt_single_resource = config.opt_single_resource;
      c.opt_stop_forwarding = config.opt_stop_forwarding;
      for (int i = 0; i < config.num_sites; ++i) {
        nodes_.push_back(std::make_unique<lass::LassNode>(c, &trace_));
      }
      break;
    }
    case Algorithm::kCentralSharedMemory: {
      CentralConfig c;
      c.num_sites = config.num_sites;
      c.num_resources = config.num_resources;
      c.strict_fifo = config.central_strict_fifo;
      coordinator_ = std::make_unique<CentralCoordinator>(c, *sim_);
      for (int i = 0; i < config.num_sites; ++i) {
        nodes_.push_back(std::make_unique<CentralNode>(c, *coordinator_));
      }
      break;
    }
    case Algorithm::kMaddi: {
      MaddiConfig c;
      c.num_sites = config.num_sites;
      c.num_resources = config.num_resources;
      for (int i = 0; i < config.num_sites; ++i) {
        nodes_.push_back(std::make_unique<MaddiNode>(c, &trace_));
      }
      break;
    }
  }
}

std::unique_ptr<AllocationSystem> AllocationSystem::create(
    const SystemConfig& config) {
  return std::unique_ptr<AllocationSystem>(new AllocationSystem(config));
}

void AllocationSystem::start() {
  if (started_) throw std::logic_error("AllocationSystem: started twice");
  started_ = true;
  for (auto& node : nodes_) net_->add_node(*node);
  net_->start();
}

}  // namespace mra::algo
