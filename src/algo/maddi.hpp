// The Maddi broadcast algorithm (SAC 1997; §2.2 of the paper).
//
// Every resource is represented by a single token; every request is stamped
// with a Lamport clock and broadcast to all sites, which keep per-resource
// queues ordered by (timestamp, site id). The paper characterises it as
// "multiple instances of Suzuki-Kasami" with the correspondingly high O(N)
// message complexity — implemented here as an extension baseline so the
// message-complexity bench can contrast broadcast vs tree routing.
//
// Deadlock freedom: the (timestamp, site) order is total and identical at
// every queue, so the union of the waiting queues is acyclic (same argument
// as the paper's lemma 5). A token holder that is still waiting for other
// tokens yields to an earlier request; a holder in CS finishes first.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/trace.hpp"

namespace mra::algo {

namespace maddi_detail {

struct ReqMsg final : net::Message {
  std::int64_t timestamp = 0;
  RequestId seq = 0;  ///< per-site request number (for pruning)
  ResourceSet resources;

  [[nodiscard]] std::string_view kind() const override { return "Maddi.Req"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 16 + (static_cast<std::size_t>(resources.universe_size()) + 7) / 8;
  }
};

struct TokenMsg final : net::Message {
  ResourceId r = kNoResource;
  std::vector<RequestId> last_done;  ///< per site: last satisfied request

  [[nodiscard]] std::string_view kind() const override { return "Maddi.Token"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 4 + last_done.size() * 8;
  }
};

/// A pending request as seen by a queue.
struct Pending {
  std::int64_t timestamp = 0;
  SiteId site = kNoSite;
  RequestId seq = 0;

  [[nodiscard]] bool precedes(const Pending& o) const {
    if (timestamp != o.timestamp) return timestamp < o.timestamp;
    return site < o.site;
  }
};

}  // namespace maddi_detail

struct MaddiConfig {
  int num_sites = 0;
  int num_resources = 0;
  SiteId elected_node = 0;  ///< initially holds every token
};

class MaddiNode final : public AllocatorNode {
 public:
  explicit MaddiNode(const MaddiConfig& config, Trace* trace = nullptr);

  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_start() override;
  void on_message(SiteId from, const net::Message& msg) override;

  [[nodiscard]] const ResourceSet& owned_tokens() const { return owned_; }

 private:
  struct TokenState {
    bool held = false;
    std::vector<RequestId> last_done;
    std::vector<maddi_detail::Pending> pending;  // kept sorted
  };

  void consider_grant(ResourceId r);
  void maybe_enter_cs();
  void insert_pending(ResourceId r, maddi_detail::Pending p);

  MaddiConfig cfg_;
  Trace* trace_;
  ProcessState state_ = ProcessState::kIdle;
  std::int64_t clock_ = 0;
  std::int64_t my_timestamp_ = 0;
  ResourceSet owned_;
  std::vector<TokenState> tokens_;
};

}  // namespace mra::algo
