// The Bouabdallah-Laforest algorithm (Operating Systems Review 2000; §2.2 of
// the paper) — the closest competitor, used as the main baseline.
//
// One *control token*, managed by a Naimi-Tréhel instance, serializes the
// registration of requests. The control token stores, for every resource,
// either the resource token itself (resource idle) or the identity of its
// latest requester. A requester holding the control token grabs the inlined
// tokens and sends an INQUIRE to the latest requester of each missing one;
// that site forwards the resource token once it has finished with it.
// Scheduling is static (control-token acquisition order) — exactly the
// limitation the paper's algorithm removes.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/allocator.hpp"
#include "core/trace.hpp"
#include "mutex/naimi_trehel.hpp"

namespace mra::algo {

namespace bl_detail {

/// Per-resource entry of the control token.
struct ControlEntry {
  bool holds_token = true;          ///< resource token inlined in the CT
  SiteId last_requester = kNoSite;  ///< valid when !holds_token
};

/// Payload carried by the Naimi-Tréhel-managed control token.
struct ControlToken {
  std::vector<ControlEntry> entries;

  [[nodiscard]] std::size_t wire_size() const { return entries.size() * 5; }
};

/// INQUIRE: "send me the token of resource r once you are done with it".
struct InquireMsg final : net::Message {
  ResourceId r = kNoResource;
  SiteId requester = kNoSite;

  [[nodiscard]] std::string_view kind() const override { return "BL.Inquire"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

/// A resource token in flight.
struct ResourceTokenMsg final : net::Message {
  ResourceId r = kNoResource;

  [[nodiscard]] std::string_view kind() const override { return "BL.ResToken"; }
  [[nodiscard]] std::size_t wire_size() const override { return 4; }
};

}  // namespace bl_detail

struct BouabdallahLaforestConfig {
  int num_sites = 0;
  int num_resources = 0;
  SiteId elected_node = 0;  ///< initially holds the control token + all tokens

  /// When false (default), the control token is held until the requester has
  /// gathered *all* its resource tokens (released on CS entry). This matches
  /// the global-lock behaviour the paper measures (Fig. 1(a), Fig. 5: BL use
  /// rate ≈ 5% at small φ under high load — acquisition fully serialized).
  /// When true, the control token is released right after registration
  /// (the literal reading of Bouabdallah-Laforest 2000), which overlaps
  /// acquisitions and makes BL markedly faster than the paper reports.
  /// bench/ablation_bl_variant quantifies the difference.
  bool release_control_token_early = false;
};

class BouabdallahLaforestNode final : public AllocatorNode {
 public:
  explicit BouabdallahLaforestNode(const BouabdallahLaforestConfig& config,
                                   Trace* trace = nullptr);

  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_start() override;
  void on_message(SiteId from, const net::Message& msg) override;

  // Introspection for tests.
  [[nodiscard]] const ResourceSet& owned_tokens() const { return owned_; }
  [[nodiscard]] bool holds_control_token() const {
    return control_ && control_->has_token();
  }

 private:
  void on_control_token_granted();
  void maybe_enter_cs();
  void send_resource_token(SiteId dst, ResourceId r);

  BouabdallahLaforestConfig cfg_;
  Trace* trace_;
  std::unique_ptr<mutex::NaimiTrehelEngine<bl_detail::ControlToken>> control_;

  ProcessState state_ = ProcessState::kIdle;
  /// True between control-token registration and release: only then does our
  /// claim on `using_` exist in the distributed queues. Before registration
  /// every INQUIRE must be honoured — the inquirer registered first.
  bool registered_ = false;
  ResourceSet owned_;              ///< resource tokens held by this site
  ResourceSet using_;              ///< resources of the active CS request
  std::vector<SiteId> inquired_;   ///< per resource: site whose INQUIRE we owe
};

}  // namespace mra::algo
