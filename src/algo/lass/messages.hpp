// Message types of the paper's algorithm (Annex A, Figure 8).
//
// The five logical message types (ReqCnt, ReqRes, ReqLoan, Counter, Token)
// are carried inside three aggregated bundles, implementing the paper's
// aggregation mechanism (§4.2.2): same-type messages to the same destination
// produced while handling one event are combined into a single network
// message. Request bundles additionally carry the set of already-visited
// sites (§4.2.1, cycle suppression).
#pragma once

#include <string_view>
#include <vector>

#include "algo/lass/token.hpp"
#include "core/types.hpp"
#include "net/message.hpp"

namespace mra::algo::lass {

/// Request messages: forwarded hop-by-hop along the resource tree.
struct RequestBundleMsg final : net::Message {
  std::vector<SiteId> visited;  ///< sites already traversed by this bundle
  std::vector<ReqItem> items;

  [[nodiscard]] std::string_view kind() const override { return "Lass.Req"; }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t s = 4 + visited.size() * 4;
    for (const auto& it : items) s += it.wire_size();
    return s;
  }
};

/// One counter value (reply to a ReqCnt).
struct CounterItem {
  ResourceId r = kNoResource;
  CounterValue value = 0;
};

/// Counter replies: sent directly to the requester.
struct CounterBundleMsg final : net::Message {
  std::vector<CounterItem> items;

  [[nodiscard]] std::string_view kind() const override { return "Lass.Counter"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 4 + items.size() * 12;
  }
};

/// Tokens: sent directly to their next holder.
struct TokenBundleMsg final : net::Message {
  std::vector<LassToken> items;

  [[nodiscard]] std::string_view kind() const override { return "Lass.Token"; }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t s = 4;
    for (const auto& t : items) s += t.wire_size();
    return s;
  }
};

}  // namespace mra::algo::lass
