// The paper's algorithm: decentralized multi-resource allocation with
// per-resource counter tokens, the `/` total order, dynamic re-scheduling and
// the loan mechanism (§3, §4, Annex A).
//
// This class is a line-faithful translation of the Annex A pseudo-code; the
// few deviations (all defensive) are marked `// [deviation N]` in node.cpp
// and listed in DESIGN.md §5.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "algo/lass/messages.hpp"
#include "algo/lass/token.hpp"
#include "core/allocator.hpp"
#include "core/flat_map.hpp"
#include "core/mark.hpp"
#include "core/small_vector.hpp"
#include "core/trace.hpp"

namespace mra::algo::lass {

/// Tuning knobs of the algorithm.
struct LassConfig {
  int num_sites = 0;
  int num_resources = 0;

  /// Scheduling policy A (§3.3.2). Paper's evaluation: average of non-zero.
  MarkPolicy mark_policy = MarkPolicy::kAverageNonZero;

  /// Loan mechanism (§3.4, §4.5). The paper's "with loan" variant uses
  /// threshold 1: ask a loan when exactly one resource is missing. We
  /// generalise to "at most loan_threshold missing" for the §6 ablation.
  bool enable_loan = false;
  int loan_threshold = 1;

  /// §4.6.1: single-resource requests skip the counter round-trip.
  bool opt_single_resource = true;

  /// §4.6.2: stop forwarding a ReqRes at a site that is certain to obtain
  /// the token before the requester.
  bool opt_stop_forwarding = true;

  /// Site initially holding every token (the paper's elected_node).
  SiteId elected_node = 0;
};

/// One site running the algorithm.
class LassNode final : public AllocatorNode {
 public:
  LassNode(const LassConfig& config, Trace* trace = nullptr);

  // AllocatorNode interface -------------------------------------------------
  void do_request(const ResourceSet& resources) override;
  void do_release() override;
  [[nodiscard]] ProcessState state() const override { return state_; }

  void on_start() override;
  void on_message(SiteId from, const net::Message& msg) override;

  // Introspection for tests / invariant checks ------------------------------
  [[nodiscard]] const ResourceSet& owned_tokens() const { return t_owned_; }
  [[nodiscard]] const ResourceSet& lent_resources() const { return t_lent_; }
  /// The site's view of r's token. Tokens materialize lazily (§13); a
  /// never-seen token reads as the initial state, so a copy is returned.
  [[nodiscard]] LassToken token_snapshot(ResourceId r) const {
    const LassToken* t = find_tok(r);
    return t != nullptr ? *t : LassToken(r, cfg_.num_sites);
  }
  [[nodiscard]] bool loan_asked() const { return loan_asked_; }
  [[nodiscard]] const CounterVector& counter_vector() const { return my_vector_; }
  /// Counter values this site's current request obtained (0 = not requested).
  [[nodiscard]] double current_mark() const { return mark_fn_(my_vector_); }
  /// Number of CS entries that completed via a loan.
  [[nodiscard]] std::uint64_t loans_used() const { return loans_used_; }
  [[nodiscard]] std::uint64_t loans_failed() const { return loans_failed_; }

 private:
  // -- helpers mirroring the pseudo-code procedures --------------------------
  [[nodiscard]] bool owns(ResourceId r) const { return t_owned_.contains(r); }
  /// Materializes r's token snapshot on first touch. A fresh
  /// LassToken(r, N) is exactly the pre-refactor eagerly-initialized state
  /// (counter 1, all ids 0, empty queues, no lender), so lazy creation is
  /// behavior-identical while an untouched site pays 0 bytes for r.
  [[nodiscard]] LassToken& tok(ResourceId r) {
    return last_tok_.try_emplace(r, r, cfg_.num_sites).first->second;
  }
  /// Read-only lookup; nullptr means "still in the initial state".
  [[nodiscard]] const LassToken* find_tok(ResourceId r) const {
    auto it = last_tok_.find(r);
    return it == last_tok_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] SiteId& tok_dir(ResourceId r) {
    return tok_dir_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] ReqItem my_res_request(ResourceId r) const;
  [[nodiscard]] bool is_obsolete(const ReqItem& req) const;

  void process_request_item(const ReqItem& req, const std::vector<SiteId>& visited);
  void handle_res_request_as_owner(const ReqItem& req);
  CounterValue assign_counter(const ReqItem& req);
  void reply_counter(const ReqItem& req);
  void process_req_loan(const ReqItem& req);
  [[nodiscard]] bool can_lend(const ReqItem& req) const;
  void process_update(const LassToken& t);
  void process_cnt_needed_empty();
  void serve_queues_after_token();
  void maybe_initiate_loan();
  void enter_cs();
  void send_token(SiteId dst, ResourceId r);

  // -- buffered sends (aggregation mechanism, §4.2.2) ------------------------
  void buffer_request(SiteId dst, ReqItem item);
  void buffer_counter(SiteId dst, ResourceId r, CounterValue value);
  void flush_requests(const std::vector<SiteId>& visited);
  void flush_responses();

  void trace(const std::string& what);

  // -- configuration ----------------------------------------------------------
  LassConfig cfg_;
  MarkFunction mark_fn_;
  Trace* trace_ = nullptr;

  // -- local variables (Annex A, Figure 9) ------------------------------------
  // Per-site memory budget (DESIGN.md §13): tok_dir_ and my_vector_ stay
  // dense O(M) — M is the paper-fixed resource count (80), independent of
  // N. Everything that used to be O(N) or O(M x heavy) is sparse: token
  // snapshots materialize on first touch, the request history and the
  // aggregation buffers only hold live entries.
  ProcessState state_ = ProcessState::kIdle;
  std::vector<SiteId> tok_dir_;        // father per resource; kNoSite = root
  CounterVector my_vector_;            // counters of the current request
  core::FlatMap<ResourceId, LassToken, 1> last_tok_;  // lazy token snapshots
  ResourceSet t_required_;             // current request (== current_)
  ResourceSet t_owned_;                // owned tokens
  ResourceSet cnt_needed_;             // counters not yet received
  core::FlatMap<ResourceId, core::SmallVector<ReqItem, 1>, 1>
      pending_req_;                    // local request history, sparse
  ResourceSet t_lent_;                 // resources lent out
  bool loan_asked_ = false;
  bool single_res_registered_ = false;  // §4.6.1 bookkeeping

  // -- aggregation buffers (sorted by destination = std::map send order) ------
  core::FlatMap<SiteId, core::SmallVector<ReqItem, 2>, 2> req_buf_;
  core::FlatMap<SiteId, core::SmallVector<CounterItem, 2>, 2> cnt_buf_;
  core::FlatMap<SiteId, core::SmallVector<LassToken, 1>, 1> tok_buf_;

  // -- stats -------------------------------------------------------------------
  std::uint64_t loans_used_ = 0;
  std::uint64_t loans_failed_ = 0;
};

}  // namespace mra::algo::lass
