#include "algo/lass/node.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "check/mutant.hpp"
#include "net/network.hpp"

namespace mra::algo::lass {

LassNode::LassNode(const LassConfig& config, Trace* trace)
    : cfg_(config),
      mark_fn_(make_mark_function(config.mark_policy)),
      trace_(trace),
      my_vector_(static_cast<std::size_t>(config.num_resources), 0),
      t_required_(config.num_resources),
      t_owned_(config.num_resources),
      cnt_needed_(config.num_resources),
      t_lent_(config.num_resources) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument("LassConfig: num_sites and num_resources must be positive");
  }
  current_ = ResourceSet(config.num_resources);
}

void LassNode::on_start() {
  // Initialization (Annex A, lines 45-67): the elected node owns every
  // token; everyone else points its father at the elected node. Only the
  // elected node materializes token state up front (its copies are the
  // authoritative ones); every other site starts with zero token snapshots
  // and materializes them lazily via tok() — a fresh LassToken(r, N) equals
  // the initial state, so the lazy path is behavior-identical (§13).
  tok_dir_.assign(static_cast<std::size_t>(cfg_.num_resources),
                  id() == cfg_.elected_node ? kNoSite : cfg_.elected_node);
  last_tok_.clear();
  if (id() == cfg_.elected_node) {
    for (ResourceId r = 0; r < cfg_.num_resources; ++r) {
      (void)tok(r);
      t_owned_.insert(r);
    }
  }
}

void LassNode::trace(const std::string& what) {
  if (trace_ != nullptr && trace_->enabled() && network_ != nullptr) {
    trace_->log(network_->simulator().now(), id(), what);
  }
}

ReqItem LassNode::my_res_request(ResourceId r) const {
  ReqItem item;
  item.type = ReqType::kRes;
  item.r = r;
  item.sinit = id();
  item.id = request_seq_;
  item.mark = mark_fn_(my_vector_);
  return item;
}

bool LassNode::is_obsolete(const ReqItem& req) const {
  // §4.2.1: a request is obsolete when the (locally known) token state shows
  // it has already been served. last_cs / last_req_cnt only grow, so a stale
  // local snapshot can only under-approximate obsolescence — safe. An
  // unmaterialized token reads all-zero and ids start at 1: never obsolete.
  const LassToken* t = find_tok(req.r);
  if (t == nullptr) return false;
  if (req.id <= t->last_cs(req.sinit)) return true;
  if (req.type == ReqType::kCnt && req.id <= t->last_req_cnt(req.sinit)) {
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Request_CS (Annex A, lines 68-84)
// ---------------------------------------------------------------------------
void LassNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty() && "empty resource request");
  ++request_seq_;
  t_required_ = resources;
  current_ = resources;
  state_ = ProcessState::kWaitS;
  cnt_needed_.clear();
  single_res_registered_ = false;
  trace("Request_CS " + resources.to_string());

  const bool single_res_opt =
      cfg_.opt_single_resource && resources.size() == 1;

  resources.for_each([&](ResourceId r) {
    if (owns(r)) {
      // We hold the token: reserve and increment the counter locally.
      my_vector_[static_cast<std::size_t>(r)] = tok(r).counter;
      ++tok(r).counter;
    } else {
      cnt_needed_.insert(r);
      ReqItem item;
      item.type = ReqType::kCnt;
      item.r = r;
      item.sinit = id();
      item.id = request_seq_;
      if (single_res_opt) {
        // §4.6.1: the holder will treat this ReqCnt as a ReqRes as well, so
        // we must not send a separate ReqRes when the counter arrives.
        item.single_resource = true;
        single_res_registered_ = true;
      }
      buffer_request(tok_dir(r), item);
    }
  });
  flush_requests({id()});

  if (t_required_.subset_of(t_owned_)) {
    enter_cs();
  }
}

// ---------------------------------------------------------------------------
// Release_CS (Annex A, lines 85-101)
// ---------------------------------------------------------------------------
void LassNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  trace("Release_CS " + t_required_.to_string());
  state_ = ProcessState::kIdle;
  loan_asked_ = false;

  t_required_.for_each([&](ResourceId r) {
    assert(owns(r));
    LassToken& t = tok(r);
    t.set_last_cs(id(), request_seq_);
    const SiteId lender = t.lender;
    if (lender != kNoSite && lender != id()) {
      // Borrowed token: return it straight to the lender (line 95-98). Any
      // queued request from the lender is dropped — it gets the token itself.
      t.wqueue.remove_site(lender);
      t.lender = kNoSite;
      send_token(lender, r);
    } else if (!t.wqueue.empty()) {
      if (check::mutant_enabled(check::Mutant::kLassDropRelease)) {
        // Seeded bug: keep the token instead of serving the queue — the
        // queued requester starves (deadlock/starvation oracles).
        return;
      }
      t.lender = kNoSite;
      const ReqItem head = t.wqueue.pop_head();
      send_token(head.sinit, r);
    }
    // else: keep the token (we stay root of r's tree).
  });

  t_required_.clear();
  current_.clear();
  std::fill(my_vector_.begin(), my_vector_.end(), 0);
  flush_responses();
}

void LassNode::enter_cs() {
  assert(t_required_.subset_of(t_owned_) ||
         check::mutant_enabled(check::Mutant::kLassPrematureEntry));
  state_ = ProcessState::kInCS;
  bool via_loan = false;
  t_required_.for_each([&](ResourceId r) {
    if (tok(r).lender != kNoSite && tok(r).lender != id()) via_loan = true;
  });
  if (via_loan) ++loans_used_;
  trace("enter CS " + t_required_.to_string() + (via_loan ? " (loan)" : ""));
  notify_granted();
}

// ---------------------------------------------------------------------------
// SendToken (Annex A, lines 102-107)
// ---------------------------------------------------------------------------
void LassNode::send_token(SiteId dst, ResourceId r) {
  assert(owns(r));
  assert(dst != id() && "token sent to self");
  tok_buf_[dst].push_back(tok(r));  // authoritative copy travels
  tok_dir(r) = dst;
  t_owned_.erase(r);
}

// ---------------------------------------------------------------------------
// processCntNeededEmpty (Annex A, lines 108-116)
// ---------------------------------------------------------------------------
void LassNode::process_cnt_needed_empty() {
  assert(state_ == ProcessState::kWaitS && cnt_needed_.empty());
  state_ = ProcessState::kWaitCS;
  trace("waitCS mark=" + std::to_string(mark_fn_(my_vector_)));
  t_required_.for_each([&](ResourceId r) {
    if (!owns(r)) {
      if (single_res_registered_) return;  // §4.6.1: already registered
      buffer_request(tok_dir(r), my_res_request(r));
    }
  });
  flush_requests({id()});
}

// ---------------------------------------------------------------------------
// canLend (Annex A, lines 117-132)
// ---------------------------------------------------------------------------
bool LassNode::can_lend(const ReqItem& req) const {
  if (!req.missing.subset_of(t_owned_)) return false;
  // None of our owned tokens may itself be borrowed. Owned tokens are
  // always materialized (ownership is only gained in on_start/process_update,
  // both of which materialize), so a missing snapshot means not borrowed.
  bool borrowed = false;
  t_owned_.for_each([&](ResourceId r) {
    const LassToken* t = find_tok(r);
    if (t != nullptr && t->lender != kNoSite && t->lender != id()) {
      borrowed = true;
    }
  });
  if (borrowed) return false;
  if (!t_lent_.empty()) return false;          // one borrower at a time
  if (state_ == ProcessState::kInCS) return false;
  if (state_ == ProcessState::kWaitCS) {
    if (loan_asked_) {
      // Both want a loan: priority decides.
      ReqItem mine = my_res_request(req.r);
      return req.precedes(mine);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// processReqLoan (Annex A, lines 190-207)
// ---------------------------------------------------------------------------
void LassNode::process_req_loan(const ReqItem& req) {
  assert(owns(req.r));
  if (is_obsolete(req)) return;
  if (req.sinit == id()) return;  // our own loan request came home
  if (can_lend(req)) {
    trace("lend " + req.missing.to_string() + " to s" + std::to_string(req.sinit));
    t_lent_ = req.missing;
    req.missing.for_each([&](ResourceId rp) {
      tok(rp).lender = id();
      tok(rp).wqueue.remove_site(req.sinit);  // it gets the token directly
      send_token(req.sinit, rp);
    });
  } else {
    if (!t_required_.contains(req.r) || state_ == ProcessState::kWaitS) {
      send_token(req.sinit, req.r);
    } else {
      tok(req.r).wloan.insert(req);
    }
  }
}

// ---------------------------------------------------------------------------
// processUpdate (Annex A, lines 133-158)
// ---------------------------------------------------------------------------
void LassNode::process_update(const LassToken& t) {
  const ResourceId r = t.r;
  LassToken& mine = tok(r);
  mine = t;
  t_owned_.insert(r);
  tok_dir(r) = kNoSite;

  if (cnt_needed_.contains(r)) {
    my_vector_[static_cast<std::size_t>(r)] = mine.counter;
    ++mine.counter;
    cnt_needed_.erase(r);
  }
  if (t_lent_.contains(r)) {
    t_lent_.erase(r);
  }
  if (mine.lender == id()) {
    // Our own lent token came home; it is ordinary property again.
    mine.lender = kNoSite;
  }

  // Drop queue entries that were satisfied in the meantime, including our
  // own: receiving the token satisfies whatever claim we had queued in it
  // (a stale self-entry would otherwise be "served" by sending to self).
  mine.wqueue.prune_obsolete(mine.cs_ids);
  mine.wloan.prune_obsolete(mine.cs_ids);
  mine.wqueue.remove_site(id());
  mine.wloan.remove_site(id());

  // Fold the local request history into the token (lines 145-158).
  core::SmallVector<ReqItem, 1> pending;
  if (auto it = pending_req_.find(r); it != pending_req_.end()) {
    pending = std::move(it->second);
    pending_req_.erase(it);
  }
  for (const ReqItem& req : pending) {
    if (is_obsolete(req)) continue;
    if (req.sinit == id()) continue;  // [deviation 2] self-request, satisfied
    switch (req.type) {
      case ReqType::kCnt:
        reply_counter(req);
        break;
      case ReqType::kRes:
        mine.wqueue.insert(req);
        break;
      case ReqType::kLoan:
        mine.wloan.insert(req);
        break;
    }
  }
}

CounterValue LassNode::assign_counter(const ReqItem& req) {
  LassToken& t = tok(req.r);
  t.set_last_req_cnt(req.sinit, req.id);
  if (!check::mutant_enabled(check::Mutant::kLassSkipCounterReply)) {
    // Seeded bug (when skipped): the counter-update reply never leaves, so
    // the requester waits in waitS forever (deadlock/starvation oracles).
    buffer_counter(req.sinit, req.r, t.counter);
  }
  return t.counter++;
}

void LassNode::reply_counter(const ReqItem& req) {
  const CounterValue value = assign_counter(req);
  if (req.single_resource) {
    // §4.6.1: this ReqCnt also acts as the ReqRes; the mark of a
    // single-resource request is A([v]) = v, known right here. The request
    // joins the queue; the caller's serve loop applies the waitS yield rule.
    ReqItem res = req;
    res.type = ReqType::kRes;
    res.mark = static_cast<double>(value);
    tok(req.r).wqueue.insert(res);
  }
}

// ---------------------------------------------------------------------------
// Receive Request (Annex A, lines 159-189)
// ---------------------------------------------------------------------------
void LassNode::process_request_item(const ReqItem& req,
                                    const std::vector<SiteId>& visited) {
  const ResourceId r = req.r;
  if (is_obsolete(req)) return;

  if (owns(r)) {
    if (req.sinit == id()) return;  // [deviation 2] our own echo; we own r
    if (req.type == ReqType::kLoan) {
      process_req_loan(req);
    } else if (!t_required_.contains(r) ||
               (state_ == ProcessState::kWaitS && req.type != ReqType::kCnt)) {
      // No conflict (or our own mark is not fixed yet): hand the token over.
      send_token(req.sinit, r);
    } else if (req.type == ReqType::kCnt) {
      const CounterValue value = assign_counter(req);
      if (req.single_resource) {
        // §4.6.1: double as ReqRes. Apply the same rules a plain ReqRes
        // would meet here: in waitS yield the token (our own mark is not
        // fixed yet — queueing instead could create a wait cycle); in
        // waitCS/inCS run the usual priority arbitration.
        ReqItem res = req;
        res.type = ReqType::kRes;
        res.mark = static_cast<double>(value);
        if (state_ == ProcessState::kWaitS) {
          send_token(req.sinit, r);
        } else {
          handle_res_request_as_owner(res);
        }
      }
    } else {  // ReqRes, conflicting
      handle_res_request_as_owner(req);
    }
    return;
  }

  // Not the holder: forward along the tree unless the father was already
  // visited (cycle) — the token is then in transit towards a site that has
  // this request in its history.
  const SiteId father = tok_dir(r);

  // §4.6.2 second bullet: stop forwarding when we are certain to obtain the
  // token before the requester.
  if (cfg_.opt_stop_forwarding && req.type == ReqType::kRes) {
    const bool we_precede =
        state_ == ProcessState::kWaitCS && t_required_.contains(r) &&
        my_res_request(r).precedes(req);
    if (we_precede || t_lent_.contains(r)) {
      pending_req_[r].push_back(req);
      return;
    }
  }

  if (std::find(visited.begin(), visited.end(), father) == visited.end()) {
    pending_req_[r].push_back(req);
    buffer_request(father, req);
  } else {
    // [deviation 1] Forwarding stops here; keep the request in the local
    // history so a future token visit serves it (lemma 6's argument).
    pending_req_[r].push_back(req);
  }
}

void LassNode::handle_res_request_as_owner(const ReqItem& req) {
  // Lines 176-184: we own the token, we require r, and our mark is fixed
  // (state is waitCS or inCS — waitS was handled by the caller).
  LassToken& t = tok(req.r);
  if (t.wqueue.contains_site(req.sinit)) {
    t.wqueue.insert(req);  // refresh (newer id wins); no further action
    return;
  }
  ReqItem mine = my_res_request(req.r);
  if (state_ == ProcessState::kWaitCS && req.precedes(mine)) {
    t.wqueue.insert(mine);
    send_token(req.sinit, req.r);
  } else {
    t.wqueue.insert(req);
  }
}

// ---------------------------------------------------------------------------
// Receive Token (Annex A, lines 208-254)
// ---------------------------------------------------------------------------
void LassNode::serve_queues_after_token() {
  // Lines 226-240: yield owned tokens according to the `/` order.
  for (ResourceId r : t_owned_.to_vector()) {
    if (!owns(r)) continue;  // may have been sent in an earlier iteration
    LassToken& t = tok(r);
    if (t.wqueue.empty()) continue;
    if (state_ == ProcessState::kWaitS || state_ == ProcessState::kIdle ||
        !t_required_.contains(r)) {
      // waitS: our mark is not fixed, always yield (lines 230-232).
      // Idle / not required: we have no claim on r (e.g. a lent token came
      // home carrying queued requests) — serve the head unconditionally.
      const ReqItem head = t.wqueue.pop_head();
      send_token(head.sinit, r);
    } else if (state_ == ProcessState::kWaitCS) {
      ReqItem mine = my_res_request(r);
      if (t.wqueue.head().precedes(mine)) {
        const ReqItem head = t.wqueue.pop_head();
        t.wqueue.insert(mine);
        send_token(head.sinit, r);
      }
    }
  }

  // Lines 241-247: retry pending loan requests on every owned token.
  for (ResourceId r : t_owned_.to_vector()) {
    if (!owns(r)) continue;
    LassToken& t = tok(r);
    if (t.wloan.empty()) continue;
    SortedRequestQueue::Items copy = t.wloan.items();
    t.wloan.clear();
    for (const ReqItem& req : copy) {
      // Serving one loan request can ship this very token (grant or
      // fallback); later entries then find it gone. Dropping them is safe:
      // loans are opportunistic, the requester's ReqRes guarantees progress.
      if (!owns(req.r)) break;
      process_req_loan(req);
    }
  }
}

void LassNode::maybe_initiate_loan() {
  // Lines 248-252. The paper tests |missing| == threshold with threshold 1;
  // we use 1 <= |missing| <= threshold so the ablation can widen it.
  if (!cfg_.enable_loan || state_ != ProcessState::kWaitCS || loan_asked_) {
    return;
  }
  const ResourceSet missing = t_required_.set_difference(t_owned_);
  if (missing.empty() ||
      missing.size() > static_cast<std::size_t>(cfg_.loan_threshold)) {
    return;
  }
  loan_asked_ = true;
  trace("ask loan for " + missing.to_string());
  missing.for_each([&](ResourceId r) {
    ReqItem item;
    item.type = ReqType::kLoan;
    item.r = r;
    item.sinit = id();
    item.id = request_seq_;
    item.mark = mark_fn_(my_vector_);
    item.missing = missing;
    buffer_request(tok_dir(r), item);
  });
  flush_requests({id()});
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------
void LassNode::on_message(SiteId from, const net::Message& msg) {
  if (const auto* reqs = dynamic_cast<const RequestBundleMsg*>(&msg)) {
    for (const ReqItem& item : reqs->items) {
      process_request_item(item, reqs->visited);
    }
    std::vector<SiteId> visited = reqs->visited;
    if (std::find(visited.begin(), visited.end(), id()) == visited.end()) {
      visited.push_back(id());
    }
    flush_requests(visited);
    flush_responses();
    return;
  }

  if (const auto* cnts = dynamic_cast<const CounterBundleMsg*>(&msg)) {
    // Receive Counter (lines 255-262).
    for (const CounterItem& c : cnts->items) {
      if (!cnt_needed_.contains(c.r)) continue;  // duplicate/stale reply
      my_vector_[static_cast<std::size_t>(c.r)] = c.value;
      cnt_needed_.erase(c.r);
      tok_dir(c.r) = from;  // line 260: the replier held the token
    }
    if (state_ == ProcessState::kWaitS && cnt_needed_.empty()) {
      process_cnt_needed_empty();
    }
    flush_responses();
    return;
  }

  if (const auto* toks = dynamic_cast<const TokenBundleMsg*>(&msg)) {
    for (const LassToken& t : toks->items) process_update(t);

    if (state_ == ProcessState::kWaitS || state_ == ProcessState::kWaitCS) {
      const bool premature =
          check::mutant_enabled(check::Mutant::kLassPrematureEntry) &&
          t_owned_.intersects(t_required_);
      if (t_required_.subset_of(t_owned_) || premature) {
        // Seeded bug (`premature`): enter the CS as soon as one required
        // token arrived — the mutual-exclusion oracle must flag the overlap.
        enter_cs();
      } else {
        // Failed loan: give borrowed tokens back immediately (lines 216-223).
        for (ResourceId r : t_owned_.to_vector()) {
          LassToken& t = tok(r);
          if (t.lender != kNoSite && t.lender != id()) {
            const SiteId lender = t.lender;
            t.lender = kNoSite;
            // [deviation 3] keep our regular claim on r alive: the lender
            // removed our ReqRes from the queue when granting the loan.
            if (t_required_.contains(r) && state_ == ProcessState::kWaitCS) {
              t.wqueue.insert(my_res_request(r));
            }
            send_token(lender, r);
            loan_asked_ = false;
            ++loans_failed_;
            trace("loan failed, return r" + std::to_string(r));
          }
        }
        if (state_ == ProcessState::kWaitS && cnt_needed_.empty()) {
          process_cnt_needed_empty();
        }
        serve_queues_after_token();
        maybe_initiate_loan();
      }
    } else {
      // Idle lender receiving returned tokens: serve whatever queued up.
      serve_queues_after_token();
    }
    flush_requests({id()});
    flush_responses();
    return;
  }

  assert(false && "LassNode: unknown message type");
}

// ---------------------------------------------------------------------------
// Aggregation buffers (§4.2.2)
// ---------------------------------------------------------------------------
void LassNode::buffer_request(SiteId dst, ReqItem item) {
  assert(dst != kNoSite);
  req_buf_[dst].push_back(std::move(item));
}

void LassNode::buffer_counter(SiteId dst, ResourceId r, CounterValue value) {
  cnt_buf_[dst].push_back(CounterItem{r, value});
}

void LassNode::flush_requests(const std::vector<SiteId>& visited) {
  // Local processing (dst == self) can buffer further requests; drain until
  // a fixed point. Termination: each pass either sends on the network or
  // shortens a forwarding path, and paths are bounded by |visited| <= N.
  while (!req_buf_.empty()) {
    auto bufs = std::move(req_buf_);
    req_buf_.clear();
    for (auto& [dst, items] : bufs) {
      if (dst == id()) {
        // A father pointer may legitimately point at ourselves transiently;
        // process locally instead of looping through the network.
        for (const ReqItem& item : items) process_request_item(item, visited);
        continue;
      }
      auto msg = std::make_unique<RequestBundleMsg>();
      msg->visited = visited;
      msg->items.assign(std::make_move_iterator(items.begin()),
                        std::make_move_iterator(items.end()));
      network_->send(id(), dst, std::move(msg));
    }
  }
}

void LassNode::flush_responses() {
  if (!cnt_buf_.empty()) {
    auto bufs = std::move(cnt_buf_);
    cnt_buf_.clear();
    for (auto& [dst, items] : bufs) {
      auto msg = std::make_unique<CounterBundleMsg>();
      msg->items.assign(items.begin(), items.end());
      network_->send(id(), dst, std::move(msg));
    }
  }
  if (!tok_buf_.empty()) {
    auto bufs = std::move(tok_buf_);
    tok_buf_.clear();
    for (auto& [dst, items] : bufs) {
      auto msg = std::make_unique<TokenBundleMsg>();
      msg->items.assign(std::make_move_iterator(items.begin()),
                        std::make_move_iterator(items.end()));
      network_->send(id(), dst, std::move(msg));
    }
  }
}

}  // namespace mra::algo::lass
