// The per-resource token of the paper's algorithm (Annex A, Figure 8, Token)
// and the request records stored in its queues.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mark.hpp"
#include "core/resource_set.hpp"
#include "core/types.hpp"

namespace mra::algo::lass {

/// The three request message types (§4.2).
enum class ReqType : std::uint8_t {
  kCnt,   ///< ReqCnt: ask the current counter value
  kRes,   ///< ReqRes: ask the right to access the resource
  kLoan,  ///< ReqLoan: ask to borrow the missing resources
};

[[nodiscard]] constexpr const char* to_string(ReqType t) {
  switch (t) {
    case ReqType::kCnt: return "ReqCnt";
    case ReqType::kRes: return "ReqRes";
    case ReqType::kLoan: return "ReqLoan";
  }
  return "?";
}

/// One request record; doubles as the entry type of wQueue/wLoan.
struct ReqItem {
  ReqType type = ReqType::kCnt;
  ResourceId r = kNoResource;
  SiteId sinit = kNoSite;   ///< original requester
  RequestId id = 0;         ///< requester's CS request number
  double mark = 0.0;        ///< A(counter vector); meaningful for Res/Loan
  ResourceSet missing;      ///< ReqLoan only: resources the requester misses
  bool single_resource = false;  ///< §4.6.1: ReqCnt doubling as ReqRes

  /// Total order `/` (§3.3.2): (mark, site id) lexicographic.
  [[nodiscard]] bool precedes(const ReqItem& other) const {
    return request_precedes(mark, sinit, other.mark, other.sinit);
  }

  [[nodiscard]] std::size_t wire_size() const {
    return 26 + (type == ReqType::kLoan ? (missing.universe_size() + 7) / 8 : 0);
  }
};

/// Queue of requests kept sorted by the `/` total order.
///
/// At most one live entry per site (hypothesis 4: one outstanding request per
/// process); insertion replaces an older entry from the same site.
class SortedRequestQueue {
 public:
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const ReqItem& head() const { return items_.front(); }
  [[nodiscard]] const std::vector<ReqItem>& items() const { return items_; }

  /// Inserts keeping `/` order. If an entry from the same site exists:
  /// a newer id replaces it, an older or equal id is ignored.
  /// Returns true when the queue changed.
  bool insert(const ReqItem& item);

  /// Removes and returns the head. Precondition: !empty().
  ReqItem pop_head();

  /// Removes any entry from `site`; returns true if one was removed.
  bool remove_site(SiteId site);

  /// Drops entries already satisfied according to `last_cs` (id <= last_cs
  /// of their site). Used to prune stale records when a token is received.
  void prune_obsolete(const std::vector<RequestId>& last_cs);

  [[nodiscard]] bool contains_site(SiteId site) const;

  void clear() { items_.clear(); }

  [[nodiscard]] std::size_t wire_size() const {
    std::size_t s = 4;
    for (const auto& it : items_) s += it.wire_size();
    return s;
  }

 private:
  std::vector<ReqItem> items_;  // sorted by (mark, sinit)
};

/// The token associated with one resource (unique system-wide).
struct LassToken {
  ResourceId r = kNoResource;
  CounterValue counter = 1;             ///< next value to hand out
  std::vector<RequestId> last_req_cnt;  ///< per site: last ReqCnt id served
  std::vector<RequestId> last_cs;       ///< per site: last satisfied CS id
  SortedRequestQueue wqueue;            ///< pending ReqRes, `/`-ordered
  SortedRequestQueue wloan;             ///< pending ReqLoan, `/`-ordered
  SiteId lender = kNoSite;              ///< set while the token is lent

  LassToken() = default;
  LassToken(ResourceId resource, int num_sites)
      : r(resource),
        last_req_cnt(static_cast<std::size_t>(num_sites), 0),
        last_cs(static_cast<std::size_t>(num_sites), 0) {}

  [[nodiscard]] std::size_t wire_size() const {
    return 16 + last_req_cnt.size() * 8 + last_cs.size() * 8 +
           wqueue.wire_size() + wloan.wire_size();
  }
};

}  // namespace mra::algo::lass
