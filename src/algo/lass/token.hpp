// The per-resource token of the paper's algorithm (Annex A, Figure 8, Token)
// and the request records stored in its queues.
//
// Memory layout (DESIGN.md §13): the paper's token carries two per-site id
// vectors (last ReqCnt served, last CS satisfied). Stored densely that is
// 16 bytes x N sites x M resources per site — the ~1.3 MB/site blocker at
// N = 1024. Both vectors start all-zero and only the handful of sites that
// ever touched this token get non-zero entries, so they are stored as
// sparse sorted maps: an absent site reads as 0, exactly the dense initial
// value (request ids start at 1, so obsolescence tests on absent sites are
// always false). `wire_size()` still charges the dense encoding — the
// simulated message-byte accounting must not depend on the in-memory
// representation.
#pragma once

#include <cstdint>

#include "core/flat_map.hpp"
#include "core/mark.hpp"
#include "core/resource_set.hpp"
#include "core/small_vector.hpp"
#include "core/types.hpp"

namespace mra::algo::lass {

/// Sparse per-site request-id map; sites never recorded read as id 0,
/// matching the dense vector's initial state.
using SiteRequestIds = core::FlatMap<SiteId, RequestId, 2>;

[[nodiscard]] inline RequestId id_of(const SiteRequestIds& ids, SiteId site) {
  auto it = ids.find(site);
  return it == ids.end() ? 0 : it->second;
}

/// The three request message types (§4.2).
enum class ReqType : std::uint8_t {
  kCnt,   ///< ReqCnt: ask the current counter value
  kRes,   ///< ReqRes: ask the right to access the resource
  kLoan,  ///< ReqLoan: ask to borrow the missing resources
};

[[nodiscard]] constexpr const char* to_string(ReqType t) {
  switch (t) {
    case ReqType::kCnt: return "ReqCnt";
    case ReqType::kRes: return "ReqRes";
    case ReqType::kLoan: return "ReqLoan";
  }
  return "?";
}

/// One request record; doubles as the entry type of wQueue/wLoan.
struct ReqItem {
  ReqType type = ReqType::kCnt;
  ResourceId r = kNoResource;
  SiteId sinit = kNoSite;   ///< original requester
  RequestId id = 0;         ///< requester's CS request number
  double mark = 0.0;        ///< A(counter vector); meaningful for Res/Loan
  ResourceSet missing;      ///< ReqLoan only: resources the requester misses
  bool single_resource = false;  ///< §4.6.1: ReqCnt doubling as ReqRes

  /// Total order `/` (§3.3.2): (mark, site id) lexicographic.
  [[nodiscard]] bool precedes(const ReqItem& other) const {
    return request_precedes(mark, sinit, other.mark, other.sinit);
  }

  [[nodiscard]] std::size_t wire_size() const {
    return 26 + (type == ReqType::kLoan ? (missing.universe_size() + 7) / 8 : 0);
  }
};

/// Queue of requests kept sorted by the `/` total order.
///
/// At most one live entry per site (hypothesis 4: one outstanding request per
/// process); insertion replaces an older entry from the same site.
class SortedRequestQueue {
 public:
  using Items = core::SmallVector<ReqItem, 1>;

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const ReqItem& head() const { return items_.front(); }
  [[nodiscard]] const Items& items() const { return items_; }

  /// Inserts keeping `/` order. If an entry from the same site exists:
  /// a newer id replaces it, an older or equal id is ignored.
  /// Returns true when the queue changed.
  bool insert(const ReqItem& item);

  /// Removes and returns the head. Precondition: !empty().
  ReqItem pop_head();

  /// Removes any entry from `site`; returns true if one was removed.
  bool remove_site(SiteId site);

  /// Drops entries already satisfied according to `last_cs` (id <= last_cs
  /// of their site). Used to prune stale records when a token is received.
  void prune_obsolete(const SiteRequestIds& last_cs);

  [[nodiscard]] bool contains_site(SiteId site) const;

  void clear() { items_.clear(); }

  [[nodiscard]] std::size_t wire_size() const {
    std::size_t s = 4;
    for (const auto& it : items_) s += it.wire_size();
    return s;
  }

 private:
  Items items_;  // sorted by (mark, sinit)
};

/// The token associated with one resource (unique system-wide).
struct LassToken {
  ResourceId r = kNoResource;
  int num_sites = 0;             ///< dense extent, kept for wire accounting
  CounterValue counter = 1;      ///< next value to hand out
  SiteRequestIds req_cnt_ids;    ///< sparse: last ReqCnt id served per site
  SiteRequestIds cs_ids;         ///< sparse: last satisfied CS id per site
  SortedRequestQueue wqueue;     ///< pending ReqRes, `/`-ordered
  SortedRequestQueue wloan;      ///< pending ReqLoan, `/`-ordered
  SiteId lender = kNoSite;       ///< set while the token is lent

  LassToken() = default;
  LassToken(ResourceId resource, int sites) : r(resource), num_sites(sites) {}

  [[nodiscard]] RequestId last_req_cnt(SiteId site) const {
    return id_of(req_cnt_ids, site);
  }
  [[nodiscard]] RequestId last_cs(SiteId site) const {
    return id_of(cs_ids, site);
  }
  void set_last_req_cnt(SiteId site, RequestId id) { req_cnt_ids[site] = id; }
  void set_last_cs(SiteId site, RequestId id) { cs_ids[site] = id; }

  /// Wire bytes of the dense encoding (header + two full per-site id
  /// vectors + both queues) — identical to the pre-sparse layout.
  [[nodiscard]] std::size_t wire_size() const {
    return 16 + static_cast<std::size_t>(num_sites) * 16 +
           wqueue.wire_size() + wloan.wire_size();
  }
};

}  // namespace mra::algo::lass
