#include "algo/lass/token.hpp"

#include <algorithm>

namespace mra::algo::lass {

bool SortedRequestQueue::insert(const ReqItem& item) {
  // One live request per site: reconcile with any existing entry first.
  auto same_site = std::find_if(
      items_.begin(), items_.end(),
      [&](const ReqItem& it) { return it.sinit == item.sinit; });
  if (same_site != items_.end()) {
    if (same_site->id >= item.id) return false;  // existing is same or newer
    items_.erase(same_site);
  }
  auto pos = std::find_if(items_.begin(), items_.end(),
                          [&](const ReqItem& it) { return item.precedes(it); });
  items_.insert(pos, item);
  return true;
}

ReqItem SortedRequestQueue::pop_head() {
  ReqItem out = items_.front();
  items_.erase(items_.begin());
  return out;
}

bool SortedRequestQueue::remove_site(SiteId site) {
  auto it = std::remove_if(items_.begin(), items_.end(),
                           [&](const ReqItem& i) { return i.sinit == site; });
  const bool removed = it != items_.end();
  items_.erase(it, items_.end());
  return removed;
}

void SortedRequestQueue::prune_obsolete(const SiteRequestIds& last_cs) {
  auto it = std::remove_if(items_.begin(), items_.end(), [&](const ReqItem& i) {
    return i.id <= id_of(last_cs, i.sinit);
  });
  items_.erase(it, items_.end());
}

bool SortedRequestQueue::contains_site(SiteId site) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const ReqItem& i) { return i.sinit == site; });
}

}  // namespace mra::algo::lass
