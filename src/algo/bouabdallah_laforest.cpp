#include "algo/bouabdallah_laforest.hpp"

#include <cassert>
#include <stdexcept>

#include "check/mutant.hpp"
#include "net/network.hpp"

namespace mra::algo {

using bl_detail::ControlToken;
using bl_detail::InquireMsg;
using bl_detail::ResourceTokenMsg;

BouabdallahLaforestNode::BouabdallahLaforestNode(
    const BouabdallahLaforestConfig& config, Trace* trace)
    : cfg_(config), trace_(trace) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument(
        "BouabdallahLaforestConfig: num_sites and num_resources must be positive");
  }
  current_ = ResourceSet(config.num_resources);
  owned_ = ResourceSet(config.num_resources);
  using_ = ResourceSet(config.num_resources);
  inquired_.assign(static_cast<std::size_t>(config.num_resources), kNoSite);
}

void BouabdallahLaforestNode::on_start() {
  control_ = std::make_unique<mutex::NaimiTrehelEngine<ControlToken>>(
      id(), cfg_.elected_node, /*instance=*/0,
      [this](SiteId dst, std::unique_ptr<net::Message> msg) {
        if (check::mutant_enabled(check::Mutant::kBlControlTokenLoss) &&
            dynamic_cast<mutex::NtTokenMsg<ControlToken>*>(msg.get()) !=
                nullptr) {
          return;  // seeded bug: the control token vanishes in transit
        }
        network_->send(id(), dst, std::move(msg));
      },
      [this]() { on_control_token_granted(); });
  if (id() == cfg_.elected_node) {
    // All resource tokens start inlined in the control token.
    control_->payload().entries.assign(
        static_cast<std::size_t>(cfg_.num_resources), bl_detail::ControlEntry{});
  }
}

void BouabdallahLaforestNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty());
  ++request_seq_;
  current_ = resources;
  using_ = resources;
  state_ = ProcessState::kWaitCS;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->log(network_->simulator().now(), id(),
                "Request_CS " + resources.to_string());
  }
  // Phase 1: acquire the (global) control token.
  control_->request();
}

void BouabdallahLaforestNode::on_control_token_granted() {
  // Phase 2: register atomically in every per-resource distributed queue.
  registered_ = true;
  auto& entries = control_->payload().entries;
  using_.for_each([&](ResourceId r) {
    auto& e = entries[static_cast<std::size_t>(r)];
    if (e.holds_token) {
      // Resource idle: take its token straight out of the control token.
      e.holds_token = false;
      e.last_requester = id();
      owned_.insert(r);
    } else if (e.last_requester == id()) {
      // We were the last user and nobody inquired: the token stayed home.
      assert(owned_.contains(r));
    } else {
      const SiteId prev = e.last_requester;
      e.last_requester = id();
      auto inquire = std::make_unique<InquireMsg>();
      inquire->r = r;
      inquire->requester = id();
      network_->send(id(), prev, std::move(inquire));
    }
  });
  // Phase 3: either release the control token immediately (registration
  // only) or keep it until every resource token arrived (global-lock
  // behaviour; see BouabdallahLaforestConfig::release_control_token_early).
  if (cfg_.release_control_token_early) control_->release();
  maybe_enter_cs();
}

void BouabdallahLaforestNode::maybe_enter_cs() {
  if (state_ == ProcessState::kWaitCS && using_.subset_of(owned_)) {
    if (!cfg_.release_control_token_early) control_->release();
    state_ = ProcessState::kInCS;
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->log(network_->simulator().now(), id(),
                  "enter CS " + using_.to_string());
    }
    notify_granted();
  }
}

void BouabdallahLaforestNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  state_ = ProcessState::kIdle;
  registered_ = false;
  // Serve deferred INQUIREs; tokens without a waiter stay with us.
  using_.for_each([&](ResourceId r) {
    const SiteId waiter = inquired_[static_cast<std::size_t>(r)];
    if (waiter != kNoSite) {
      inquired_[static_cast<std::size_t>(r)] = kNoSite;
      send_resource_token(waiter, r);
    }
  });
  using_.clear();
  current_.clear();
}

void BouabdallahLaforestNode::send_resource_token(SiteId dst, ResourceId r) {
  assert(owned_.contains(r));
  owned_.erase(r);
  auto msg = std::make_unique<ResourceTokenMsg>();
  msg->r = r;
  network_->send(id(), dst, std::move(msg));
}

void BouabdallahLaforestNode::on_message(SiteId from, const net::Message& msg) {
  if (const auto* req = dynamic_cast<const mutex::NtRequestMsg*>(&msg)) {
    control_->on_request(*req);
    return;
  }
  if (const auto* tok =
          dynamic_cast<const mutex::NtTokenMsg<ControlToken>*>(&msg)) {
    control_->on_token(*tok);
    return;
  }
  if (const auto* inquire = dynamic_cast<const InquireMsg*>(&msg)) {
    const ResourceId r = inquire->r;
    // The control token guarantees at most one outstanding INQUIRE per
    // resource per site (each new requester inquires its predecessor).
    assert(inquired_[static_cast<std::size_t>(r)] == kNoSite &&
           "BL: second INQUIRE for the same resource");
    // Our claim on r exists only once registered; an INQUIRE arriving before
    // that comes from a site that registered *before* us and must win now
    // (deferring it would deadlock the per-resource chain).
    const bool in_use = registered_ && using_.contains(r);
    if (owned_.contains(r) && !in_use) {
      send_resource_token(inquire->requester, r);
    } else {
      // Either still using r, or the token has not reached us yet
      // (we inquired our own predecessor): defer.
      inquired_[static_cast<std::size_t>(r)] = inquire->requester;
    }
    return;
  }
  if (const auto* token = dynamic_cast<const ResourceTokenMsg*>(&msg)) {
    (void)from;
    const ResourceId r = token->r;
    assert(!owned_.contains(r));
    owned_.insert(r);
    // A deferred INQUIRE may already be waiting for a token that was still
    // in flight — but only forward it after our own CS completes; if we are
    // waiting for it, we use it first.
    maybe_enter_cs();
    if (state_ == ProcessState::kIdle) {
      const SiteId waiter = inquired_[static_cast<std::size_t>(r)];
      if (waiter != kNoSite) {
        inquired_[static_cast<std::size_t>(r)] = kNoSite;
        send_resource_token(waiter, r);
      }
    }
    return;
  }
  assert(false && "BouabdallahLaforestNode: unknown message type");
}

}  // namespace mra::algo
