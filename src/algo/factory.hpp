// One-stop construction of a complete simulated system: simulator, network,
// and N allocator nodes running the chosen algorithm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algo/central.hpp"
#include "core/allocator.hpp"
#include "core/mark.hpp"
#include "core/trace.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mra::algo {

/// The algorithms of the paper's evaluation plus the extensions.
enum class Algorithm {
  kIncremental,           ///< M Naimi-Tréhel locks, ordered acquisition (§5)
  kBouabdallahLaforest,   ///< control-token baseline (§2.2, §5)
  kLassWithoutLoan,       ///< the paper's algorithm, loan disabled
  kLassWithLoan,          ///< the paper's algorithm, loan enabled (thr. 1)
  kCentralSharedMemory,   ///< idealised zero-cost scheduler ("in shared memory")
  kMaddi,                 ///< broadcast baseline (extension)
};

[[nodiscard]] const char* to_string(Algorithm a);
[[nodiscard]] std::vector<Algorithm> all_algorithms();

/// Short command-line name ("incremental", "bl", "lass", "lass-loan",
/// "central", "maddi") — the inverse of algorithm_from_name.
[[nodiscard]] const char* cli_name(Algorithm a);

/// Parses a CLI algorithm name; accepts both cli_name() and to_string()
/// spellings. Throws std::invalid_argument listing the valid names.
[[nodiscard]] Algorithm algorithm_from_name(const std::string& name);

struct SystemConfig {
  Algorithm algorithm = Algorithm::kLassWithLoan;
  int num_sites = 32;       ///< the paper's N
  int num_resources = 80;   ///< the paper's M
  std::uint64_t seed = 1;

  /// Network latency (the paper's γ ≈ 0.6 ms on 10 GbE) and optional jitter.
  sim::SimDuration network_latency = sim::from_ms(0.6);
  double latency_jitter = 0.0;  ///< fraction, e.g. 0.1 = ±10%

  /// Adversarial perturbation (src/check/explore.*): when > 0, every message
  /// gets an extra uniform delay in [0, bound] on top of network_latency —
  /// delay-bounded cross-link reordering within the FIFO-per-link contract.
  /// Takes precedence over latency_jitter; ignored on hierarchical
  /// topologies.
  sim::SimDuration latency_delay_bound = 0;

  /// Model-checking aid (src/check/dpor.*): when > 0, latency samples are
  /// rounded *up* to a multiple of this quantum, aligning deliveries onto a
  /// shared grid so independent messages collide at the same instant and the
  /// exhaustive explorer can enumerate their commutations. Applied on top of
  /// whichever model the knobs above selected.
  sim::SimDuration latency_quantum = 0;

  /// Two-level topology (the paper's §6 future-work target). When
  /// hierarchical_clusters > 1, sites are split into equal clusters;
  /// intra-cluster messages cost network_latency, inter-cluster messages
  /// cost hierarchical_remote_latency (jitter is ignored in this mode).
  int hierarchical_clusters = 1;
  sim::SimDuration hierarchical_remote_latency = sim::from_ms(10.0);

  // LASS knobs ---------------------------------------------------------------
  MarkPolicy mark_policy = MarkPolicy::kAverageNonZero;
  int loan_threshold = 1;
  bool opt_single_resource = true;
  bool opt_stop_forwarding = true;

  // Central scheduler knob ----------------------------------------------------
  bool central_strict_fifo = false;

  // Bouabdallah-Laforest variant (see BouabdallahLaforestConfig) --------------
  bool bl_release_control_token_early = false;
};

/// Owns every moving part of one simulation.
class AllocationSystem {
 public:
  /// Builds (but does not start) a system. Throws on invalid config.
  static std::unique_ptr<AllocationSystem> create(const SystemConfig& config);

  /// Registers nodes with the network and runs every on_start().
  void start();

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] AllocatorNode& node(SiteId i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int num_sites() const { return cfg_.num_sites; }
  [[nodiscard]] int num_resources() const { return cfg_.num_resources; }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }

 private:
  explicit AllocationSystem(const SystemConfig& config);

  SystemConfig cfg_;
  Trace trace_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<CentralCoordinator> coordinator_;  // central only
  std::vector<std::unique_ptr<AllocatorNode>> nodes_;
  bool started_ = false;
};

}  // namespace mra::algo
