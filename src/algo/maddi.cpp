#include "algo/maddi.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "check/mutant.hpp"
#include "net/network.hpp"

namespace mra::algo {

using maddi_detail::Pending;
using maddi_detail::ReqMsg;
using maddi_detail::TokenMsg;

MaddiNode::MaddiNode(const MaddiConfig& config, Trace* trace)
    : cfg_(config), trace_(trace) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument(
        "MaddiConfig: num_sites and num_resources must be positive");
  }
  current_ = ResourceSet(config.num_resources);
  owned_ = ResourceSet(config.num_resources);
}

void MaddiNode::on_start() {
  tokens_.assign(static_cast<std::size_t>(cfg_.num_resources), TokenState{});
  for (auto& t : tokens_) {
    t.last_done.assign(static_cast<std::size_t>(cfg_.num_sites), 0);
  }
  if (id() == cfg_.elected_node) {
    for (ResourceId r = 0; r < cfg_.num_resources; ++r) {
      tokens_[static_cast<std::size_t>(r)].held = true;
      owned_.insert(r);
    }
  }
}

void MaddiNode::insert_pending(ResourceId r, Pending p) {
  auto& pend = tokens_[static_cast<std::size_t>(r)].pending;
  // One live request per site: drop an older entry from the same site.
  auto same = std::find_if(pend.begin(), pend.end(),
                           [&](const Pending& q) { return q.site == p.site; });
  if (same != pend.end()) {
    if (same->seq >= p.seq) return;
    pend.erase(same);
  }
  pend.insert(std::find_if(pend.begin(), pend.end(),
                           [&](const Pending& q) { return p.precedes(q); }),
              p);
}

void MaddiNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty());
  ++request_seq_;
  current_ = resources;
  state_ = ProcessState::kWaitCS;
  ++clock_;
  // Seeded bug: a constant timestamp degenerates the (ts, site) total order
  // into plain site-id priority, starving high-id sites under contention.
  my_timestamp_ =
      check::mutant_enabled(check::Mutant::kMaddiTimestampRegression) ? 1
                                                                      : clock_;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->log(network_->simulator().now(), id(),
                "Request_CS ts=" + std::to_string(my_timestamp_) + " " +
                    resources.to_string());
  }

  // Record ourselves in our own queues, then broadcast.
  resources.for_each([&](ResourceId r) {
    insert_pending(r, Pending{my_timestamp_, id(), request_seq_});
  });
  for (SiteId j = 0; j < cfg_.num_sites; ++j) {
    if (j == id()) continue;
    auto msg = std::make_unique<ReqMsg>();
    msg->timestamp = my_timestamp_;
    msg->seq = request_seq_;
    msg->resources = resources;
    network_->send(id(), j, std::move(msg));
  }
  maybe_enter_cs();
}

void MaddiNode::maybe_enter_cs() {
  if (state_ == ProcessState::kWaitCS && current_.subset_of(owned_)) {
    state_ = ProcessState::kInCS;
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->log(network_->simulator().now(), id(),
                  "enter CS " + current_.to_string());
    }
    notify_granted();
  }
}

void MaddiNode::consider_grant(ResourceId r) {
  auto& tok = tokens_[static_cast<std::size_t>(r)];
  if (!tok.held) return;
  if (state_ == ProcessState::kInCS && current_.contains(r)) return;

  // Prune satisfied requests, then look at the earliest one.
  auto& pend = tok.pending;
  pend.erase(std::remove_if(pend.begin(), pend.end(),
                            [&](const Pending& p) {
                              return p.seq <=
                                     tok.last_done[static_cast<std::size_t>(p.site)];
                            }),
             pend.end());
  if (pend.empty()) return;
  const Pending head = pend.front();
  if (head.site == id()) return;  // our own turn: keep the token

  // Either we do not want r, or the head precedes our own request: yield.
  tok.held = false;
  owned_.erase(r);
  auto msg = std::make_unique<TokenMsg>();
  msg->r = r;
  msg->last_done = tok.last_done;
  network_->send(id(), head.site, std::move(msg));
}

void MaddiNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  state_ = ProcessState::kIdle;
  current_.for_each([&](ResourceId r) {
    auto& tok = tokens_[static_cast<std::size_t>(r)];
    assert(tok.held);
    tok.last_done[static_cast<std::size_t>(id())] = request_seq_;
  });
  const ResourceSet done = current_;
  current_.clear();
  done.for_each([&](ResourceId r) { consider_grant(r); });
}

void MaddiNode::on_message(SiteId from, const net::Message& msg) {
  if (const auto* req = dynamic_cast<const ReqMsg*>(&msg)) {
    clock_ = std::max(clock_, req->timestamp) + 1;
    req->resources.for_each([&](ResourceId r) {
      insert_pending(r, Pending{req->timestamp, from, req->seq});
      consider_grant(r);
    });
    return;
  }
  if (const auto* tok = dynamic_cast<const TokenMsg*>(&msg)) {
    auto& t = tokens_[static_cast<std::size_t>(tok->r)];
    assert(!t.held);
    t.held = true;
    // Merge satisfaction knowledge (element-wise max keeps both histories).
    for (std::size_t i = 0; i < t.last_done.size(); ++i) {
      t.last_done[i] = std::max(t.last_done[i], tok->last_done[i]);
    }
    owned_.insert(tok->r);
    maybe_enter_cs();
    // A later-arriving broadcast may already have queued someone earlier
    // than us; re-evaluate (no-op if we entered CS with r).
    consider_grant(tok->r);
    return;
  }
  assert(false && "MaddiNode: unknown message type");
}

}  // namespace mra::algo
