#include "algo/central.hpp"

#include <cassert>
#include <stdexcept>

namespace mra::algo {

CentralCoordinator::CentralCoordinator(const CentralConfig& config,
                                       sim::Simulator& simulator)
    : cfg_(config), sim_(simulator), busy_(config.num_resources) {
  if (config.num_sites <= 0 || config.num_resources <= 0) {
    throw std::invalid_argument(
        "CentralConfig: num_sites and num_resources must be positive");
  }
}

void CentralCoordinator::submit(CentralNode& node,
                                const ResourceSet& resources) {
  queue_.push_back(Waiting{&node, resources});
  try_grant();
}

void CentralCoordinator::release(CentralNode& node,
                                 const ResourceSet& resources) {
  (void)node;
  busy_ -= resources;
  try_grant();
}

void CentralCoordinator::try_grant() {
  // Scan in arrival order; grant whatever fits. Grants are delivered as
  // zero-delay events so a grant callback never runs inside submit()/
  // release() of another node (same-instant, deterministic order).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->resources.intersects(busy_)) {
      if (cfg_.strict_fifo) break;  // head blocks everyone behind it
      ++it;
      continue;
    }
    busy_ |= it->resources;
    CentralNode* node = it->node;
    it = queue_.erase(it);
    sim_.schedule_in(0, [node]() { node->granted(); });
  }
}

CentralNode::CentralNode(const CentralConfig& config,
                         CentralCoordinator& coordinator)
    : coordinator_(coordinator) {
  current_ = ResourceSet(config.num_resources);
}

void CentralNode::do_request(const ResourceSet& resources) {
  assert(state_ == ProcessState::kIdle && "request while not idle");
  assert(!resources.empty());
  ++request_seq_;
  current_ = resources;
  state_ = ProcessState::kWaitCS;
  coordinator_.submit(*this, resources);
}

void CentralNode::granted() {
  assert(state_ == ProcessState::kWaitCS);
  state_ = ProcessState::kInCS;
  notify_granted();
}

void CentralNode::do_release() {
  assert(state_ == ProcessState::kInCS && "release outside CS");
  state_ = ProcessState::kIdle;
  coordinator_.release(*this, current_);
  current_.clear();
}

void CentralNode::on_message(SiteId /*from*/, const net::Message& /*msg*/) {
  assert(false && "CentralNode communicates via the coordinator, not messages");
}

}  // namespace mra::algo
