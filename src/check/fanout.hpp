// Observer fan-out: the simulator, network and allocator hooks each carry
// exactly *one* check::Observer pointer (a deliberate hot-path decision —
// one branch, one indirect call). When two consumers want the stream at the
// same time — a check::Monitor running oracles plus an obs::FlightRecorder
// building spans — an ObserverMux sits in the single slot and forwards to
// any number of added observers, none of which knows about the others.
//
// Attachment ownership: attach() refuses to displace a foreign observer.
// The pre-mux behaviour (Monitor silently stealing the hooks from whatever
// was attached before it) hid real composition bugs; now every attacher —
// Monitor and ObserverMux alike — throws AlreadyAttachedError instead, and
// the fix is always "attach one ObserverMux, add both consumers to it".
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "check/event.hpp"

namespace mra::algo {
class AllocationSystem;
}  // namespace mra::algo
namespace mra::net {
class Network;
}  // namespace mra::net
namespace mra::sim {
class Simulator;
}  // namespace mra::sim

namespace mra::check {

/// Thrown when attach() would silently replace an observer someone else
/// registered — the composition bug the mux exists to prevent.
class AlreadyAttachedError : public std::logic_error {
 public:
  explicit AlreadyAttachedError(const std::string& hook)
      : std::logic_error("an observer is already attached to the " + hook +
                         " — compose through a check::ObserverMux instead "
                         "of attaching twice") {}
};

/// Forwards every event to the observers added to it, in add() order.
/// Borrowed-field lifetime (event.hpp) is preserved: forwarding happens
/// inside the original on_event call. Observers are borrowed and must
/// outlive the mux's attachment.
class ObserverMux final : public Observer {
 public:
  ObserverMux() = default;
  ~ObserverMux() override;

  ObserverMux(const ObserverMux&) = delete;
  ObserverMux& operator=(const ObserverMux&) = delete;

  /// Adds a consumer. Order matters: oracles that may stop the simulation
  /// (Monitor with stop_on_first) should be added before passive recorders
  /// only if they must see the event first — both always see every event.
  void add(Observer& observer) { observers_.push_back(&observer); }

  /// Wires this mux into simulator + network + every allocator node, like
  /// Monitor::attach. Throws AlreadyAttachedError if any hook already has a
  /// different observer.
  void attach(algo::AllocationSystem& system);

  /// Substrate-only wiring (simulator + network).
  void attach(sim::Simulator& simulator, net::Network& network);

  /// Undoes attach(); called automatically on destruction.
  void detach();

  // Observer ------------------------------------------------------------------
  void on_event(const Event& event) override {
    for (Observer* o : observers_) o->on_event(event);
  }
  void on_advance(sim::SimTime now) override {
    for (Observer* o : observers_) o->on_advance(now);
  }

 private:
  std::vector<Observer*> observers_;

  // Attachment bookkeeping for detach().
  sim::Simulator* sim_ = nullptr;
  net::Network* net_ = nullptr;
  algo::AllocationSystem* system_ = nullptr;
};

/// Shared attach guard: throws unless the slot is empty or already `self`.
void require_free_observer_slot(const Observer* current, const Observer* self,
                                const char* hook);

}  // namespace mra::check
