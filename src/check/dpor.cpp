#include "check/dpor.hpp"

#include <algorithm>

namespace mra::check {

namespace {

constexpr std::uint64_t kSaturated = 0xFFFFFFFFFFFFFFFFULL;

/// n! saturating at 2^64-1 (n >= 21 overflows; exploration never needs the
/// exact value there, only "more than any cap").
std::uint64_t saturating_factorial(std::size_t n) {
  std::uint64_t f = 1;
  for (std::size_t i = 2; i <= n; ++i) {
    if (f > kSaturated / i) return kSaturated;
    f *= i;
  }
  return f;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (b != 0 && a > kSaturated / b) return kSaturated;
  return a * b;
}

}  // namespace

DporScheduler::DporScheduler(DporConfig config) : cfg_(std::move(config)) {
  for (std::uint64_t c : cfg_.forced_prefix) {
    Node node;
    node.chosen = c;
    node.alternatives = c + 1;  // never incrementable: the prefix is pinned
    node.pinned = true;
    trail_.push_back(node);
  }
}

void DporScheduler::begin_run() {
  depth_ = 0;
  ++stats_.schedules_executed;
}

bool DporScheduler::advance() {
  if (stats_.schedules_executed >= cfg_.max_schedules) {
    stats_.truncated = true;
    return false;
  }
  // DFS backtrack: deepest node with an untried alternative; everything
  // below it belongs to abandoned subtrees and is discarded.
  while (!trail_.empty()) {
    Node& node = trail_.back();
    if (!node.pinned && node.chosen + 1 < node.alternatives) {
      ++node.chosen;
      return true;
    }
    if (node.pinned) break;
    trail_.pop_back();
  }
  stats_.complete = !stats_.truncated;
  return false;
}

std::vector<std::uint64_t> DporScheduler::choices() const {
  std::vector<std::uint64_t> out;
  out.reserve(trail_.size());
  for (const Node& node : trail_) out.push_back(node.chosen);
  return out;
}

void DporScheduler::on_round(sim::SimTime /*at*/,
                             const std::vector<int>& tags,
                             std::vector<std::size_t>& order) {
  // Group the batch by commute tag, in order of first occurrence. Events
  // tagged kNoCommuteTag are dependent with everything: they stay at their
  // canonical position and never join a permutation group.
  struct Group {
    int tag;
    std::vector<std::size_t> positions;  // ascending = canonical order
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] == sim::Simulator::kNoCommuteTag) continue;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const Group& g) { return g.tag == tags[i]; });
    if (it == groups.end()) {
      groups.push_back(Group{tags[i], {}});
      it = groups.end() - 1;
    }
    it->positions.push_back(i);
  }

  // One mixed-radix choice per batch: the product over same-tag groups of
  // min(k!, max_branch) orderings. Different-tag events commute, so their
  // relative order is never enumerated — that is the whole reduction.
  std::uint64_t radix = 1;
  std::uint64_t unreduced = 1;
  for (const Group& g : groups) {
    const std::uint64_t full = saturating_factorial(g.positions.size());
    if (full > cfg_.max_branch) stats_.truncated = true;
    radix = saturating_mul(radix, std::min(full, cfg_.max_branch));
  }
  if (radix > cfg_.max_branch) {
    radix = cfg_.max_branch;
    stats_.truncated = true;
  }
  unreduced = saturating_factorial(tags.size());

  std::uint64_t choice = 0;
  if (radix > 1) {
    if (depth_ < trail_.size()) {
      choice = trail_[depth_].chosen;  // forced prefix / replayed DFS path
    } else {
      Node node;
      node.alternatives = radix;
      trail_.push_back(node);
      ++stats_.choice_points;
      // Count the reduction once, when the batch is first discovered: a
      // reduction-free enumerator would have tried n! orderings here.
      stats_.orderings_pruned +=
          unreduced == kSaturated ? kSaturated - radix : unreduced - radix;
    }
    ++depth_;
  }

  if (choice == 0) return;  // identity = the canonical (time, seq) order

  // Decompose the mixed-radix choice into one permutation index per group
  // (first group = least significant digit) and apply each as the idx-th
  // lexicographic permutation of that group's own canonical positions.
  // Cross-group interleaving is untouched: order[] slots outside the group
  // keep their identity assignment.
  for (const Group& g : groups) {
    const std::uint64_t full = saturating_factorial(g.positions.size());
    const std::uint64_t digits = std::min(full, cfg_.max_branch);
    if (digits <= 1) continue;
    std::uint64_t idx = choice % digits;
    choice /= digits;
    std::vector<std::size_t> pool = g.positions;
    for (std::size_t slot = 0; slot < g.positions.size(); ++slot) {
      const std::uint64_t f = saturating_factorial(pool.size() - 1);
      const std::size_t pick = f == 0 ? 0 : static_cast<std::size_t>(idx / f);
      idx %= f == 0 ? 1 : f;
      order[g.positions[slot]] = pool[std::min(pick, pool.size() - 1)];
      pool.erase(pool.begin() +
                 static_cast<std::ptrdiff_t>(std::min(pick, pool.size() - 1)));
    }
  }
}

DporStats explore_schedules(
    const DporConfig& config,
    const std::function<bool(DporScheduler& scheduler)>& body) {
  DporScheduler scheduler(config);
  bool stop = false;
  do {
    scheduler.begin_run();
    stop = body(scheduler);
    // On stop, advance() is skipped so the trail still holds the stopping
    // run's choices — the body typically saved scheduler.choices() already.
  } while (!stop && scheduler.advance());
  return scheduler.stats();
}

}  // namespace mra::check
