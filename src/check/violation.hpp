// Structured violation reports: what an oracle emits instead of a bare
// assert. A Violation carries enough context to debug a schedule-dependent
// bug after the fact — simulated time, the sites and resources involved, a
// one-line diagnosis and the window of events that led up to it — and
// round-trips through JSON so CI can archive reports next to the repro
// trace (see tests/test_conformance.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra::check {

struct Violation {
  std::string oracle;                       ///< reporting oracle's name
  sim::SimTime at = 0;                      ///< when it was detected
  std::vector<SiteId> sites;                ///< sites involved, ascending
  std::vector<ResourceId> resources;        ///< resources involved, ascending
  std::string detail;                       ///< one-line diagnosis
  std::vector<std::string> recent_events;   ///< formatted trailing window

  bool operator==(const Violation&) const = default;
};

/// Writes a JSON array of violation objects. Keys: oracle, at_ns, at_ms
/// (redundant, human convenience), sites, resources, detail, recent_events.
void write_violations_json(std::ostream& os,
                           const std::vector<Violation>& violations,
                           int indent = 0);

/// Parses what write_violations_json wrote (a strict-subset JSON reader:
/// objects, arrays, strings with escapes, integer/real numbers). Throws
/// std::runtime_error on malformed input. `at` is read from at_ns, so the
/// round trip is exact.
[[nodiscard]] std::vector<Violation> read_violations_json(std::istream& is);
[[nodiscard]] std::vector<Violation> read_violations_json(
    const std::string& text);

}  // namespace mra::check
