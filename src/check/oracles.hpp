// Online conformance oracles: each one watches the typed event stream of a
// running simulation and reports structured Violation records the moment a
// property breaks — not only after quiescence, so transient violations that
// self-heal are caught too. The properties are the paper's §1 guarantees
// (per-resource mutual exclusion, deadlock freedom, starvation freedom)
// plus the §3.1 system-model contract (reliable FIFO channels) and the
// message-complexity accounting of §5.
//
// Oracles are pluggable: check::Monitor owns a set of them (built from
// MonitorConfig, extendable via Monitor::add_oracle) and fans the event
// stream out. Oracles never assert or throw on a protocol bug — they report
// to a ViolationSink and keep observing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/event.hpp"
#include "check/violation.hpp"
#include "core/resource_set.hpp"

namespace mra::check {

/// Where oracles deliver their findings (implemented by Monitor, which
/// attaches the recent-event window and handles stop-on-first-violation).
class ViolationSink {
 public:
  virtual ~ViolationSink() = default;
  virtual void report(Violation violation) = 0;
};

/// One pluggable property checker.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Stable name, also used as Violation::oracle.
  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void on_event(const Event& event, ViolationSink& sink) = 0;

  /// Clock advanced to a new instant (before its events fire).
  virtual void on_advance(sim::SimTime now, ViolationSink& sink) {
    (void)now;
    (void)sink;
  }

  /// End of run. `quiescent` is true when the event queue drained with no
  /// more work outstanding — the state in which "still waiting" means
  /// "waiting forever".
  virtual void finalize(sim::SimTime now, bool quiescent,
                        ViolationSink& sink) {
    (void)now;
    (void)quiescent;
    (void)sink;
  }
};

/// Per-resource mutual exclusion (§1 safety): at any instant each resource
/// is held by at most one site. Custody comes from kAcquire/kHold events and
/// ends at kRelease.
class MutualExclusionOracle final : public Oracle {
 public:
  explicit MutualExclusionOracle(int num_resources);

  [[nodiscard]] std::string_view name() const override {
    return "mutual-exclusion";
  }
  void on_event(const Event& event, ViolationSink& sink) override;

 private:
  void claim(const Event& event, ResourceId r, ViolationSink& sink);

  std::vector<SiteId> owner_;  ///< per resource; kNoSite = free
};

/// Deadlock freedom (§1 liveness): maintains the site wait-for graph —
/// edge u -> v iff u waits for a resource v currently holds — and runs an
/// incremental cycle check from every site whose wants or holds changed.
/// kHold events (per-resource custody during acquisition, e.g. the
/// Incremental baseline's ordered locking) make genuine hold-and-wait
/// cycles visible online; finalize() additionally flags sites still waiting
/// at quiescence, which catches deadlocks with no observable cycle (a
/// dropped token leaves the waiter with an edge to nobody).
class DeadlockOracle final : public Oracle {
 public:
  DeadlockOracle(int num_sites, int num_resources);

  [[nodiscard]] std::string_view name() const override { return "deadlock"; }
  void on_event(const Event& event, ViolationSink& sink) override;
  void finalize(sim::SimTime now, bool quiescent,
                ViolationSink& sink) override;

 private:
  void check_cycle_from(SiteId start, sim::SimTime at, ViolationSink& sink);

  std::vector<ResourceSet> held_;    ///< per site: resources in custody
  std::vector<ResourceSet> wanted_;  ///< per site: outstanding request
  std::vector<bool> waiting_;        ///< per site: requested, not granted
  std::vector<std::string> reported_cycles_;  ///< dedup signatures
};

/// Starvation freedom / bounded waiting: no request may wait longer than a
/// configurable horizon. Deadlines are checked online as the clock passes
/// them (on_advance) and once more at finalize, so a starving site is
/// reported even when the run ends first. The horizon is a *budget*, not a
/// bound proven by the paper — pick it well above the workload's worst
/// honest waiting time (see DESIGN.md §11).
class StarvationOracle final : public Oracle {
 public:
  StarvationOracle(int num_sites, sim::SimDuration horizon);

  [[nodiscard]] std::string_view name() const override {
    return "starvation";
  }
  void on_event(const Event& event, ViolationSink& sink) override;
  void on_advance(sim::SimTime now, ViolationSink& sink) override;
  void finalize(sim::SimTime now, bool quiescent,
                ViolationSink& sink) override;

 private:
  struct Deadline {
    sim::SimTime at;
    SiteId site;
    std::int64_t seq;
  };

  void expire(sim::SimTime now, ViolationSink& sink);
  void report(SiteId site, sim::SimTime now, ViolationSink& sink);

  sim::SimDuration horizon_;
  std::vector<std::int64_t> waiting_seq_;  ///< per site; -1 = not waiting
  std::vector<sim::SimTime> waiting_since_;
  std::deque<Deadline> deadlines_;  ///< FIFO: deadlines are pushed in
                                    ///< nondecreasing event-time order
};

/// Reliable-FIFO channel contract (§3.1) plus causal sanity: on every link,
/// messages deliver in send order — the sender's logical send clock (its own
/// vector-clock component, the only one the FIFO-per-link model constrains)
/// must strictly increase along delivered messages — and never before they
/// were sent. Full cross-link causal-delivery checking is deliberately out
/// of scope: with FIFO-only channels a multi-hop message can legitimately
/// outrun a direct one, so flagging it would reject schedules the paper's
/// model allows (see ROADMAP "Causal-delivery oracle").
class FifoOracle final : public Oracle {
 public:
  explicit FifoOracle(int num_sites);

  [[nodiscard]] std::string_view name() const override { return "fifo"; }
  void on_event(const Event& event, ViolationSink& sink) override;

 private:
  struct InFlight {
    std::int64_t msg_id;
    sim::SimTime sent_at;
    std::uint64_t sender_tick;  ///< sender's send clock at send time
  };

  int n_;
  std::vector<std::deque<InFlight>> links_;         ///< [src * n + dst]
  std::vector<std::uint64_t> send_clock_;           ///< per site
  std::vector<std::uint64_t> last_delivered_tick_;  ///< per link
};

/// Message-complexity accounting (§5's msgs/CS metric as an oracle): counts
/// sends globally and per kind, and — when a bound is configured — reports a
/// violation if the run's average messages per CS entry exceeds it. With
/// bound 0 it is pure accounting, exposed for reports and tests.
class ComplexityOracle final : public Oracle {
 public:
  explicit ComplexityOracle(double max_messages_per_cs);

  [[nodiscard]] std::string_view name() const override {
    return "message-complexity";
  }
  void on_event(const Event& event, ViolationSink& sink) override;
  void finalize(sim::SimTime now, bool quiescent,
                ViolationSink& sink) override;

  [[nodiscard]] std::uint64_t messages() const { return sends_; }
  [[nodiscard]] std::uint64_t cs_entries() const { return acquires_; }
  [[nodiscard]] double messages_per_cs() const {
    return acquires_ == 0 ? 0.0
                          : static_cast<double>(sends_) /
                                static_cast<double>(acquires_);
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& by_kind() const {
    return by_kind_;
  }

 private:
  double bound_;
  std::uint64_t sends_ = 0;
  std::uint64_t acquires_ = 0;
  std::map<std::string, std::uint64_t> by_kind_;
};

}  // namespace mra::check
