// Systematic same-instant interleaving exploration (stateless model
// checking in the style of Flanagan & Godefroid's dynamic partial-order
// reduction).
//
// The simulator's (time, seq) firing contract makes every scheduling
// decision explicit: events at *different* instants are causally ordered,
// so the only reorderings a real network could produce beyond the canonical
// schedule are permutations of same-instant batches. The per-link FIFO
// watermark already keeps same-link deliveries at distinct instants, so
// same-instant events at one site always came over different links and may
// arrive in any order.
//
// DporScheduler is a sim::CommutationHook that enumerates those orderings
// depth-first with a persistent-set-style reduction: within a batch, events
// with different commute tags (different sites) touch disjoint state and
// commute — their relative order is never explored. Only the permutations
// *within* each same-tag group are enumerated, as one mixed-radix choice
// per batch. Each fully-executed schedule is one "run"; the driver replays
// the simulation from scratch per run, forcing the recorded choice prefix
// and advancing the deepest choice point like a DFS over the schedule tree.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mra::check {

struct DporConfig {
  /// Hard cap on executed schedules; hitting it sets stats.truncated.
  std::uint64_t max_schedules = 20'000;
  /// Cap on alternatives per choice point (a same-tag group of size k
  /// contributes min(k!, max_branch) orderings). Exceeding it sets
  /// stats.truncated — coverage is then best-effort, not exhaustive.
  std::uint64_t max_branch = 720;
  /// Forced choice prefix: replays a specific schedule (repro mode). The
  /// prefix choice points are pinned; exploration continues below them.
  std::vector<std::uint64_t> forced_prefix;
};

struct DporStats {
  std::uint64_t schedules_executed = 0;
  std::uint64_t choice_points = 0;     ///< distinct choice nodes discovered
  /// Orderings a reduction-free enumerator would also have tried: for every
  /// discovered batch, (batch size)! minus the alternatives actually kept
  /// (saturating) — the measure of the partial-order reduction.
  std::uint64_t orderings_pruned = 0;
  bool complete = false;   ///< the whole reduced schedule space was executed
  bool truncated = false;  ///< a cap clipped enumeration somewhere
};

/// The DFS scheduler. Usage:
///
///   DporScheduler sched(cfg);
///   do {
///     sched.begin_run();
///     // build a fresh Simulator, sim.set_commutation_hook(&sched),
///     // schedule the workload, sim.run(), check oracles...
///   } while (keep_going && sched.advance());
///
/// Determinism: given the same simulation body, the sequence of schedules
/// (and therefore stats and the first violation found) is a pure function
/// of the config — independent of wall clock, platform, or thread count
/// (exploration is strictly sequential).
class DporScheduler final : public sim::CommutationHook {
 public:
  explicit DporScheduler(DporConfig config = {});

  /// Rewinds to the start of the (re)play: the existing trail becomes the
  /// forced prefix; new batches append new choice points.
  void begin_run();

  /// Backtracks to the deepest choice point with an untried alternative.
  /// Returns false when the space is exhausted (stats().complete) or the
  /// schedule budget is spent (stats().truncated).
  [[nodiscard]] bool advance();

  [[nodiscard]] const DporStats& stats() const { return stats_; }

  /// The choice made at every choice point of the current run — a
  /// self-contained schedule id for repro (DporConfig::forced_prefix).
  [[nodiscard]] std::vector<std::uint64_t> choices() const;

  void on_round(sim::SimTime at, const std::vector<int>& tags,
                std::vector<std::size_t>& order) override;

 private:
  struct Node {
    std::uint64_t chosen = 0;
    std::uint64_t alternatives = 1;
    bool pinned = false;  ///< forced_prefix entry: never backtracked
  };

  DporConfig cfg_;
  DporStats stats_;
  std::vector<Node> trail_;
  std::size_t depth_ = 0;  ///< choice points consumed this run
};

/// Convenience driver: runs `body` once per schedule until it returns true
/// (stop requested, e.g. violation found with stop-on-first) or the space /
/// budget is exhausted. `body` must build a *fresh* simulator each call and
/// attach the passed hook before scheduling anything.
DporStats explore_schedules(
    const DporConfig& config,
    const std::function<bool(DporScheduler& scheduler)>& body);

}  // namespace mra::check
