#include "check/mutant.hpp"

#include <cstring>
#include <initializer_list>

namespace mra::check {

const char* to_string(Mutant m) {
  switch (m) {
    case Mutant::kNone: return "none";
    case Mutant::kLassPrematureEntry: return "lass-premature-entry";
    case Mutant::kLassDropRelease: return "lass-drop-release";
    case Mutant::kLassSkipCounterReply: return "lass-skip-counter-reply";
    case Mutant::kIncrementalReversedAcquire:
      return "incremental-reversed-acquire";
    case Mutant::kNetFifoViolation: return "net-fifo-violation";
    case Mutant::kMutexNtDropToken: return "mutex-nt-drop-token";
    case Mutant::kBlControlTokenLoss: return "bl-control-token-loss";
    case Mutant::kMaddiTimestampRegression:
      return "maddi-timestamp-regression";
    case Mutant::kCmForkBottleConfusion: return "cm-fork-bottle-confusion";
  }
  return "?";
}

Mutant mutant_from_name(const char* name) {
  for (Mutant m : {Mutant::kLassPrematureEntry, Mutant::kLassDropRelease,
                   Mutant::kLassSkipCounterReply,
                   Mutant::kIncrementalReversedAcquire,
                   Mutant::kNetFifoViolation, Mutant::kMutexNtDropToken,
                   Mutant::kBlControlTokenLoss,
                   Mutant::kMaddiTimestampRegression,
                   Mutant::kCmForkBottleConfusion}) {
    if (std::strcmp(name, to_string(m)) == 0) return m;
  }
  return Mutant::kNone;
}

#ifdef MRA_CHECK_MUTANTS
namespace {
Mutant g_active = Mutant::kNone;
}  // namespace

Mutant active_mutant() { return g_active; }
void set_active_mutant(Mutant m) { g_active = m; }
#endif

}  // namespace mra::check
