// The conformance-event vocabulary: the typed events every instrumented
// layer (sim, net, core/allocator, algo) emits towards an attached
// check::Observer, and the Observer interface itself.
//
// This header is deliberately a *leaf*: it depends only on core identifier
// types and sim time, so the low layers (sim::Simulator, net::Network,
// AllocatorNode) can reference the observer through a forward declaration in
// their headers and include this file from their .cpp only. When no observer
// is attached every hook is a single null-pointer branch — the hot paths the
// perf gate tracks (bench/micro_engine) stay unchanged.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra {
class ResourceSet;
}  // namespace mra

namespace mra::check {

/// What happened. CS-lifecycle events come from the AllocatorNode template
/// methods (core/allocator.hpp); kHold additionally from algorithms with
/// observable per-resource custody (Incremental's per-lock grants); message
/// events from net::Network.
enum class EventType : std::uint8_t {
  kRequest,  ///< site issued request(D); resources = D, seq = request id
  kHold,     ///< site obtained exclusive custody of one resource (`resource`)
  kAcquire,  ///< CS entry: site holds every resource of its request
  kRelease,  ///< CS exit: site frees every resource of its request
  kSend,     ///< message handed to the network; site = src, peer = dst
  kDeliver,  ///< message delivered to peer; seq pairs it with its kSend
};

[[nodiscard]] constexpr const char* to_string(EventType t) {
  switch (t) {
    case EventType::kRequest: return "request";
    case EventType::kHold: return "hold";
    case EventType::kAcquire: return "acquire";
    case EventType::kRelease: return "release";
    case EventType::kSend: return "send";
    case EventType::kDeliver: return "deliver";
  }
  return "?";
}

/// One observed event. Borrowed fields (`resources`, `kind`) are only valid
/// for the duration of the Observer::on_event call — observers copy what
/// they need (check::Monitor keeps a bounded ring of compact copies).
struct Event {
  EventType type = EventType::kRequest;
  sim::SimTime at = 0;
  SiteId site = kNoSite;  ///< requester / holder / sender
  SiteId peer = kNoSite;  ///< destination site (kSend / kDeliver only)
  /// Request sequence number (CS events) or network message id (message
  /// events; a kDeliver carries the id its kSend was emitted with).
  std::int64_t seq = 0;
  ResourceId resource = kNoResource;        ///< kHold only
  const ResourceSet* resources = nullptr;   ///< kRequest/kAcquire/kRelease
  std::string_view kind = {};               ///< message kind (message events)
  std::uint32_t bytes = 0;                  ///< wire size incl. envelope
};

/// Hook interface the instrumented layers call into. One observer per
/// simulation (fan-out to oracles happens inside check::Monitor).
class Observer {
 public:
  virtual ~Observer() = default;

  /// Every typed event, in emission order (which is simulation order).
  virtual void on_event(const Event& event) = 0;

  /// The simulator's clock advanced to a new instant (called once per
  /// distinct time, before that instant's events fire). Lets time-based
  /// oracles (bounded waiting) detect a passed deadline online instead of
  /// only at the next CS event.
  virtual void on_advance(sim::SimTime now) { (void)now; }
};

}  // namespace mra::check
