// check::Monitor — the one Observer a simulation carries. It keeps a bounded
// ring of recent events, fans the stream out to the configured oracles,
// decorates every Violation with the trailing event window, and can stop the
// simulation at the first violation (the explorer's stop-at-first-bug mode).
//
// Attachment: Monitor::attach(AllocationSystem&) wires the simulator clock
// hook, the network message hooks and every AllocatorNode's lifecycle hooks
// in one call; the mutex explorer attaches sim + network only and feeds CS
// events in by hand (the engines are not AllocatorNodes). The monitor
// detaches itself on destruction, so it may safely die before the system.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/event.hpp"
#include "check/oracles.hpp"
#include "check/violation.hpp"

namespace mra::algo {
class AllocationSystem;
}  // namespace mra::algo
namespace mra::net {
class Network;
}  // namespace mra::net
namespace mra::sim {
class Simulator;
}  // namespace mra::sim

namespace mra::check {

struct MonitorConfig {
  int num_sites = 0;
  int num_resources = 0;

  // Which oracles to build (all on by default).
  bool mutual_exclusion = true;
  bool deadlock = true;
  bool starvation = true;
  bool fifo = true;
  bool complexity = true;

  /// Bounded-waiting budget: a request waiting longer is a violation. Must
  /// sit well above the workload's worst honest waiting time — the heaviest
  /// registry scenario (paper-phi80 under Incremental's domino effect, with
  /// explorer latency perturbation on top) honestly reaches ~10 s waits in a
  /// 12 s window, hence the generous default.
  sim::SimDuration starvation_horizon = sim::from_ms(60'000);

  /// Message-complexity bound (avg msgs per CS entry); 0 = accounting only.
  double max_messages_per_cs = 0.0;

  std::size_t event_window = 32;    ///< recent events kept for reports
  std::size_t max_violations = 64;  ///< stop collecting beyond this
  bool stop_on_first = false;       ///< sim::Simulator::stop() on violation
};

class Monitor final : public Observer, public ViolationSink {
 public:
  explicit Monitor(const MonitorConfig& config);
  ~Monitor() override;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Registers a custom oracle next to the built-in ones.
  void add_oracle(std::unique_ptr<Oracle> oracle);

  /// Wires this monitor into simulator + network + every allocator node.
  /// Throws AlreadyAttachedError (check/fanout.hpp) if any hook already has
  /// a different observer — compose through an ObserverMux in that case.
  void attach(algo::AllocationSystem& system);

  /// Substrate-only wiring (mutex explorer mode): message and clock events
  /// flow automatically, CS-lifecycle events are fed via on_event().
  void attach(sim::Simulator& simulator, net::Network& network);

  /// Mux composition: when this monitor is *not* the registered observer
  /// (an ObserverMux is), report() still needs the simulator to honor
  /// stop_on_first. attach() records it implicitly; muxed monitors call
  /// this instead. The binding is stop-only and non-owning: it is used
  /// while events flow and never dereferenced by detach(), so a simulator
  /// that dies with the run (scenario::run_scenario owns it) must not be
  /// touched by a Monitor destroyed later.
  void bind_simulator(sim::Simulator& simulator) { stop_sim_ = &simulator; }

  /// Undoes attach(); called automatically on destruction.
  void detach();

  // Observer ------------------------------------------------------------------
  void on_event(const Event& event) override;
  void on_advance(sim::SimTime now) override;

  // ViolationSink -------------------------------------------------------------
  /// Decorates with the recent-event window, stores, and (stop_on_first)
  /// requests a simulator stop.
  void report(Violation violation) override;

  /// End-of-run checks (stuck waiters, expired deadlines, complexity
  /// bounds). `quiescent`: the event queue drained — nothing can still move.
  void finalize(sim::SimTime now, bool quiescent);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t events_seen() const { return events_seen_; }

  /// The trailing event window, oldest first, human-formatted.
  [[nodiscard]] std::vector<std::string> recent_events() const;

  /// The complexity oracle's accounting (null when disabled).
  [[nodiscard]] const ComplexityOracle* complexity() const {
    return complexity_;
  }

 private:
  /// Compact copy of an Event: safe to keep after the callback returns
  /// (resource sets are truncated to a small inline list; message kinds are
  /// string literals with static storage).
  struct RecordedEvent {
    EventType type = EventType::kRequest;
    sim::SimTime at = 0;
    SiteId site = kNoSite;
    SiteId peer = kNoSite;
    std::int64_t seq = 0;
    ResourceId resource = kNoResource;
    std::uint32_t bytes = 0;
    std::string_view kind = {};
    std::uint8_t res_count = 0;
    bool res_truncated = false;
    ResourceId res[8] = {};
  };

  void record(const Event& event);
  [[nodiscard]] static std::string format(const RecordedEvent& e);

  MonitorConfig cfg_;
  std::vector<std::unique_ptr<Oracle>> oracles_;
  ComplexityOracle* complexity_ = nullptr;  ///< borrowed from oracles_

  std::vector<RecordedEvent> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t events_seen_ = 0;

  std::vector<Violation> violations_;
  bool checking_ = true;  ///< false once max_violations is reached

  // Attachment bookkeeping for detach().
  sim::Simulator* sim_ = nullptr;
  net::Network* net_ = nullptr;
  algo::AllocationSystem* system_ = nullptr;

  /// Stop-only binding from bind_simulator(). Unlike sim_, detach() never
  /// dereferences it — the bound simulator may be long gone by then.
  sim::Simulator* stop_sim_ = nullptr;
};

}  // namespace mra::check
