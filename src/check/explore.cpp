#include "check/explore.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "mutex/naimi_trehel.hpp"
#include "mutex/ricart_agrawala.hpp"
#include "mutex/suzuki_kasami.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "scenario/runner.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mra::check {

namespace {

Violation livelock_violation(sim::SimTime at, std::uint64_t budget) {
  Violation v;
  v.oracle = "livelock";
  v.at = at;
  v.detail = "simulation exceeded its event budget of " +
             std::to_string(budget) + " events without quiescing";
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// run_checked_scenario
// ---------------------------------------------------------------------------

CheckedRun run_checked_scenario(const scenario::ScenarioSpec& spec,
                                algo::Algorithm algorithm,
                                const CheckOptions& options) {
  scenario::ScenarioSpec s = spec;
  s.system.algorithm = algorithm;
  s.validate();

  CheckedRun out;
  auto system = algo::AllocationSystem::create(s.system);
  system->start();

  MonitorConfig mc = options.monitor;
  mc.num_sites = s.system.num_sites;
  mc.num_resources = s.system.num_resources;
  Monitor monitor(mc);
  monitor.attach(*system);

  scenario::ScenarioRunner runner(*system, s,
                                  s.system.seed ^ 0x9E3779B97F4A7C15ULL,
                                  /*size_buckets=*/6,
                                  options.record_trace ? &out.trace : nullptr);

  auto& sim = system->simulator();
  sim.set_event_budget(options.event_budget);

  bool budget_hit = false;
  runner.start();
  try {
    sim.run(s.warmup + s.measure);
    if (monitor.ok()) {
      // Drain to quiescence so liveness is observable: no new requests, and
      // anything still waiting at the end is waiting forever.
      runner.stop_issuing();
      sim.run();
    }
  } catch (const sim::EventBudgetExceeded&) {
    budget_hit = true;
  }

  out.quiescent = !budget_hit && sim.idle();
  // A stop-on-first interruption leaves legitimate in-flight requests, so
  // end-of-run liveness checks only run when the drain completed cleanly.
  monitor.finalize(sim.now(), out.quiescent && monitor.ok());
  out.violations = monitor.violations();
  if (budget_hit) {
    out.violations.push_back(livelock_violation(sim.now(),
                                                options.event_budget));
  }
  out.events = sim.events_processed();
  out.messages = system->network().total_messages();
  return out;
}

std::vector<Violation> check_replay(const scenario::RequestTrace& trace,
                                    algo::Algorithm algorithm,
                                    const MonitorConfig& monitor_cfg,
                                    std::uint64_t seed,
                                    sim::SimDuration delay_bound) {
  MonitorConfig mc = monitor_cfg;
  mc.num_sites = trace.num_sites;
  mc.num_resources = trace.num_resources;
  mc.stop_on_first = false;  // replays run to the end; they are short
  Monitor monitor(mc);

  scenario::ReplayOptions ropts;
  ropts.seed = seed;
  ropts.latency_delay_bound = delay_bound;
  ropts.observer = &monitor;

  try {
    const scenario::ReplayResult r =
        scenario::replay_trace(trace, algorithm, ropts);
    monitor.finalize(r.end_time, /*quiescent=*/true);
  } catch (const sim::EventBudgetExceeded&) {
    // replay_trace's internal budget tripped; the exception does not carry
    // the end time, so the violation reports detection at an unknown (0)
    // instant.
    std::vector<Violation> out = monitor.violations();
    Violation v;
    v.oracle = "livelock";
    v.detail = "checked replay exceeded the replayed system's event budget "
               "without quiescing";
    out.push_back(std::move(v));
    return out;
  }
  return monitor.violations();
}

// ---------------------------------------------------------------------------
// Trace minimization: greedy delta debugging over the event list. A
// candidate counts as "still violating" when its checked replay reports any
// violation from the same oracle as the original finding.
// ---------------------------------------------------------------------------

namespace {

bool still_violates(const scenario::RequestTrace& candidate,
                    algo::Algorithm algorithm, const MonitorConfig& mc,
                    std::uint64_t seed, sim::SimDuration delay_bound,
                    const std::string& oracle) {
  if (candidate.events.empty()) return false;
  const std::vector<Violation> violations =
      check_replay(candidate, algorithm, mc, seed, delay_bound);
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.oracle == oracle; });
}

scenario::RequestTrace with_events(const scenario::RequestTrace& base,
                                   std::vector<scenario::TraceEvent> events) {
  scenario::RequestTrace t = base;
  t.events = std::move(events);
  return t;
}

/// ddmin-lite: repeatedly try dropping contiguous chunks (n/2, n/4, ... 1)
/// while the violation reproduces, bounded by `budget` replay attempts.
scenario::RequestTrace minimize_trace(const scenario::RequestTrace& full,
                                      algo::Algorithm algorithm,
                                      const MonitorConfig& mc,
                                      std::uint64_t seed,
                                      sim::SimDuration delay_bound,
                                      const std::string& oracle, int budget) {
  std::vector<scenario::TraceEvent> events = full.events;
  std::size_t chunk = events.size() / 2;
  int attempts = 0;
  while (chunk >= 1 && attempts < budget) {
    bool removed_any = false;
    for (std::size_t start = 0; start < events.size() && attempts < budget;) {
      std::vector<scenario::TraceEvent> candidate;
      candidate.reserve(events.size());
      const std::size_t end = std::min(events.size(), start + chunk);
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       events.begin() + static_cast<std::ptrdiff_t>(end),
                       events.end());
      ++attempts;
      if (!candidate.empty() &&
          still_violates(with_events(full, std::move(candidate)), algorithm,
                         mc, seed, delay_bound, oracle)) {
        // Rebuild the surviving list and rescan from the same offset.
        std::vector<scenario::TraceEvent> kept;
        kept.reserve(events.size() - (end - start));
        kept.insert(kept.end(), events.begin(),
                    events.begin() + static_cast<std::ptrdiff_t>(start));
        kept.insert(kept.end(),
                    events.begin() + static_cast<std::ptrdiff_t>(end),
                    events.end());
        events = std::move(kept);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    // ddmin's retry rule: a successful removal can enable earlier removals,
    // so only refine the granularity after a pass that removed nothing.
    if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return with_events(full, std::move(events));
}

std::string trace_file_name(const std::string& dir, const std::string& label,
                            std::uint64_t seed) {
  std::string safe = label;
  for (char& c : safe) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-') {
      c = '_';
    }
  }
  return dir + "/repro_" + safe + "_s" + std::to_string(seed) + ".mra";
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario explorer
// ---------------------------------------------------------------------------

ExploreReport explore(const ExploreConfig& config) {
  ExploreReport report;
  for (const scenario::ScenarioSpec& spec : config.scenarios) {
    for (algo::Algorithm alg : config.algorithms) {
      const std::uint64_t case_hash =
          std::hash<std::string>{}(spec.name + ":" + algo::cli_name(alg));
      for (int i = 0; i < config.seeds_per_case; ++i) {
        const std::uint64_t run_seed = config.base_seed +
                                       static_cast<std::uint64_t>(i);
        // The perturbation draw depends only on (run seed, case, bound), so
        // re-running with --base-seed <run_seed> --seeds 1 and the same
        // --delay-bound-ms reproduces this exact run.
        sim::Rng run_meta(run_seed ^ case_hash);
        const sim::SimDuration delay =
            config.delay_bound > 0
                ? run_meta.uniform_int(0, config.delay_bound)
                : 0;
        scenario::ScenarioSpec s = spec;
        s.system.seed = run_seed;
        s.system.latency_delay_bound = delay;

        CheckOptions copt;
        copt.monitor = config.monitor;
        // Mirrors the sweep-level flag (and explore_mutex): stop-on-first
        // also aborts the violating run early; keep-going collects every
        // violation a run produces.
        copt.monitor.stop_on_first = config.stop_on_first;
        const CheckedRun run = run_checked_scenario(s, alg, copt);
        ++report.runs;
        if (run.violations.empty()) continue;

        ++report.violating_runs;
        FoundViolation found;
        found.scenario = spec.name;
        found.algorithm = algo::cli_name(alg);
        found.seed = run_seed;
        found.delay_bound = delay;
        found.violations = run.violations;
        found.trace_events = run.trace.events.size();
        found.minimized_events = run.trace.events.size();

        // Repro trace: minimize when the recorded trace reproduces the
        // violation under checked replay, otherwise keep it whole (the run
        // itself is already reproducible from scenario + seed + delay).
        const std::string oracle = run.violations.front().oracle;
        scenario::RequestTrace repro = run.trace;
        if (!run.trace.events.empty()) {
          found.replay_reproduces =
              still_violates(run.trace, alg, config.monitor, run_seed, delay,
                             oracle);
          if (found.replay_reproduces && config.minimize_budget > 0) {
            repro = minimize_trace(run.trace, alg, config.monitor, run_seed,
                                   delay, oracle, config.minimize_budget);
            found.minimized_events = repro.events.size();
          }
        }
        if (!config.trace_dir.empty() && !repro.events.empty()) {
          found.trace_path = trace_file_name(
              config.trace_dir, found.scenario + "_" + found.algorithm,
              run_seed);
          scenario::save_trace(found.trace_path, repro);
        }
        report.found.push_back(std::move(found));
        if (config.stop_on_first) return report;
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Mutex-substrate explorer
// ---------------------------------------------------------------------------

const char* to_string(MutexProtocol p) {
  switch (p) {
    case MutexProtocol::kNaimiTrehel: return "nt";
    case MutexProtocol::kSuzukiKasami: return "sk";
    case MutexProtocol::kRicartAgrawala: return "ra";
  }
  return "?";
}

std::vector<MutexProtocol> all_mutex_protocols() {
  return {MutexProtocol::kNaimiTrehel, MutexProtocol::kSuzukiKasami,
          MutexProtocol::kRicartAgrawala};
}

MutexProtocol mutex_protocol_from_name(const std::string& name) {
  for (MutexProtocol p : all_mutex_protocols()) {
    if (name == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown mutex protocol \"" + name +
                              "\" (valid: nt | sk | ra)");
}

namespace {

/// Adapts one engine instance to a net::Node (the test_mutex pattern) while
/// feeding CS-lifecycle events to the monitor.
template <typename Engine>
class MutexHost final : public net::Node {
 public:
  std::function<void()> on_granted;
  std::unique_ptr<Engine> engine;

  void on_message(SiteId from, const net::Message& msg) override {
    (void)from;
    if constexpr (std::is_same_v<Engine, mutex::NaimiTrehelEngine<>>) {
      if (const auto* req = dynamic_cast<const mutex::NtRequestMsg*>(&msg)) {
        engine->on_request(*req);
        return;
      }
      if (const auto* tok =
              dynamic_cast<const mutex::NtTokenMsg<mutex::NoPayload>*>(&msg)) {
        engine->on_token(*tok);
        return;
      }
    } else if constexpr (std::is_same_v<Engine, mutex::SuzukiKasamiEngine>) {
      if (const auto* req = dynamic_cast<const mutex::SkRequestMsg*>(&msg)) {
        engine->on_request(*req);
        return;
      }
      if (const auto* tok = dynamic_cast<const mutex::SkTokenMsg*>(&msg)) {
        engine->on_token(*tok);
        return;
      }
    } else {
      if (const auto* req = dynamic_cast<const mutex::RaRequestMsg*>(&msg)) {
        engine->on_request(from, *req);
        return;
      }
      if (const auto* rep = dynamic_cast<const mutex::RaReplyMsg*>(&msg)) {
        engine->on_reply(*rep);
        return;
      }
    }
  }
};

template <typename Engine>
std::vector<Violation> run_mutex_case(const MutexExploreConfig& config,
                                      std::uint64_t seed,
                                      sim::SimDuration delay) {
  const int n = config.num_sites;
  sim::Simulator sim;
  net::Network net(sim,
                   net::make_bounded_delay_latency(sim::from_ms(0.6), delay),
                   seed);

  MonitorConfig mc = config.monitor;
  mc.num_sites = n;
  mc.num_resources = 1;
  mc.stop_on_first = config.stop_on_first;
  Monitor monitor(mc);
  monitor.attach(sim, net);

  std::vector<std::unique_ptr<MutexHost<Engine>>> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<MutexHost<Engine>>());
    net.add_node(*hosts.back());
  }
  for (int i = 0; i < n; ++i) {
    auto* host = hosts[static_cast<std::size_t>(i)].get();
    auto send = [host](SiteId dst, std::unique_ptr<net::Message> m) {
      host->network()->send(host->id(), dst, std::move(m));
    };
    auto granted = [host]() {
      if (host->on_granted) host->on_granted();
    };
    if constexpr (std::is_same_v<Engine, mutex::NaimiTrehelEngine<>>) {
      host->engine = std::make_unique<Engine>(i, /*elected=*/0,
                                              /*instance=*/0, send, granted);
    } else if constexpr (std::is_same_v<Engine, mutex::SuzukiKasamiEngine>) {
      host->engine = std::make_unique<Engine>(i, /*elected=*/0, n,
                                              /*instance=*/0, send, granted);
    } else {
      host->engine =
          std::make_unique<Engine>(i, n, /*instance=*/0, send, granted);
    }
  }
  net.start();

  // Harness-fed CS-lifecycle events over the single shared resource.
  const ResourceSet the_resource(1, {0});
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n), 0);
  auto emit = [&](EventType type, SiteId s) {
    Event ev;
    ev.type = type;
    ev.at = sim.now();
    ev.site = s;
    ev.seq = seq[static_cast<std::size_t>(s)];
    ev.resources = &the_resource;
    monitor.on_event(ev);
  };

  sim::Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  std::vector<int> remaining(static_cast<std::size_t>(n),
                             config.requests_per_site);

  std::function<void(SiteId)> issue = [&](SiteId s) {
    if (remaining[static_cast<std::size_t>(s)]-- <= 0) return;
    ++seq[static_cast<std::size_t>(s)];
    emit(EventType::kRequest, s);
    hosts[static_cast<std::size_t>(s)]->engine->request();
  };

  for (SiteId s = 0; s < n; ++s) {
    hosts[static_cast<std::size_t>(s)]->on_granted = [&, s]() {
      emit(EventType::kAcquire, s);
      sim.schedule_in(sim::from_ms(1), [&, s]() {
        emit(EventType::kRelease, s);
        hosts[static_cast<std::size_t>(s)]->engine->release();
        sim.schedule_in(
            static_cast<sim::SimDuration>(rng.uniform_int(0, 2'000'000)),
            [&, s]() { issue(s); });
      });
    };
    sim.schedule_in(
        static_cast<sim::SimDuration>(rng.uniform_int(0, 2'000'000)),
        [&, s]() { issue(s); });
  }

  sim.set_event_budget(50'000'000ULL);
  bool budget_hit = false;
  try {
    sim.run();
  } catch (const sim::EventBudgetExceeded&) {
    budget_hit = true;
  }
  const bool quiescent = !budget_hit && sim.idle();
  monitor.finalize(sim.now(), quiescent && monitor.ok());
  std::vector<Violation> out = monitor.violations();
  if (budget_hit) out.push_back(livelock_violation(sim.now(), 50'000'000ULL));
  return out;
}

std::vector<Violation> run_mutex_protocol(MutexProtocol protocol,
                                          const MutexExploreConfig& config,
                                          std::uint64_t seed,
                                          sim::SimDuration delay) {
  switch (protocol) {
    case MutexProtocol::kNaimiTrehel:
      return run_mutex_case<mutex::NaimiTrehelEngine<>>(config, seed, delay);
    case MutexProtocol::kSuzukiKasami:
      return run_mutex_case<mutex::SuzukiKasamiEngine>(config, seed, delay);
    case MutexProtocol::kRicartAgrawala:
      return run_mutex_case<mutex::RicartAgrawalaEngine>(config, seed, delay);
  }
  return {};
}

}  // namespace

ExploreReport explore_mutex(const MutexExploreConfig& config) {
  ExploreReport report;
  for (MutexProtocol protocol : config.protocols) {
    const std::uint64_t case_hash =
        0x6D75746578ULL + static_cast<std::uint64_t>(protocol);
    for (int i = 0; i < config.seeds_per_case; ++i) {
      const std::uint64_t run_seed =
          config.base_seed + static_cast<std::uint64_t>(i);
      // Same exact-repro property as explore(): the draw is a function of
      // (run seed, protocol, bound) only.
      sim::Rng run_meta(run_seed ^ case_hash);
      const sim::SimDuration delay =
          config.delay_bound > 0 ? run_meta.uniform_int(0, config.delay_bound)
                                 : 0;
      const std::vector<Violation> violations =
          run_mutex_protocol(protocol, config, run_seed, delay);
      ++report.runs;
      if (violations.empty()) continue;
      ++report.violating_runs;
      FoundViolation found;
      found.scenario = std::string("mutex:") + to_string(protocol);
      found.algorithm = to_string(protocol);
      found.seed = run_seed;
      found.delay_bound = delay;
      found.violations = violations;
      report.found.push_back(std::move(found));
      if (config.stop_on_first) return report;
    }
  }
  return report;
}

}  // namespace mra::check
