#include "check/explore.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "algo/chandy_misra.hpp"
#include "check/mutant.hpp"
#include "experiment/sweep.hpp"
#include "mutex/naimi_trehel.hpp"
#include "mutex/ricart_agrawala.hpp"
#include "mutex/suzuki_kasami.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "scenario/runner.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mra::check {

namespace {

/// Fixed fuzz-sweep wave size: waves are dispatched through
/// experiment::run_sweep and scanned in case order, so reports (runs,
/// violating_runs, first find) are identical for every --threads value.
constexpr std::size_t kWave = 8;

Violation livelock_violation(sim::SimTime at, std::uint64_t budget) {
  Violation v;
  v.oracle = "livelock";
  v.at = at;
  v.detail = "simulation exceeded its event budget of " +
             std::to_string(budget) + " events without quiescing";
  return v;
}

/// Activates a trace's recorded mutant for the scope of a replay (no-op
/// when the name is empty or mutants are compiled out).
class ScopedMutant {
 public:
  explicit ScopedMutant(const std::string& name) {
    if (!name.empty() && mutants_compiled_in()) {
      previous_ = active_mutant();
      set_active_mutant(mutant_from_name(name.c_str()));
      active_ = true;
    }
  }
  ~ScopedMutant() {
    if (active_) set_active_mutant(previous_);
  }
  ScopedMutant(const ScopedMutant&) = delete;
  ScopedMutant& operator=(const ScopedMutant&) = delete;

 private:
  Mutant previous_ = Mutant::kNone;
  bool active_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// run_checked_scenario
// ---------------------------------------------------------------------------

CheckedRun run_checked_scenario(const scenario::ScenarioSpec& spec,
                                algo::Algorithm algorithm,
                                const CheckOptions& options) {
  scenario::ScenarioSpec s = spec;
  s.system.algorithm = algorithm;
  s.validate();

  CheckedRun out;
  auto system = algo::AllocationSystem::create(s.system);
  if (options.commutation != nullptr) {
    // Before start(): the hook must see every event ever scheduled.
    system->simulator().set_commutation_hook(options.commutation);
  }
  system->start();

  MonitorConfig mc = options.monitor;
  mc.num_sites = s.system.num_sites;
  mc.num_resources = s.system.num_resources;
  Monitor monitor(mc);
  monitor.attach(*system);

  scenario::ScenarioRunner runner(*system, s,
                                  s.system.seed ^ 0x9E3779B97F4A7C15ULL,
                                  /*size_buckets=*/6,
                                  options.record_trace ? &out.trace : nullptr);

  auto& sim = system->simulator();
  sim.set_event_budget(options.event_budget);

  bool budget_hit = false;
  runner.start();
  try {
    sim.run(s.warmup + s.measure);
    if (monitor.ok()) {
      // Drain to quiescence so liveness is observable: no new requests, and
      // anything still waiting at the end is waiting forever.
      runner.stop_issuing();
      sim.run();
    }
  } catch (const sim::EventBudgetExceeded&) {
    budget_hit = true;
  }

  out.quiescent = !budget_hit && sim.idle();
  // A stop-on-first interruption leaves legitimate in-flight requests, so
  // end-of-run liveness checks only run when the drain completed cleanly.
  monitor.finalize(sim.now(), out.quiescent && monitor.ok());
  out.violations = monitor.violations();
  if (budget_hit) {
    out.violations.push_back(livelock_violation(sim.now(),
                                                options.event_budget));
  }
  out.events = sim.events_processed();
  out.messages = system->network().total_messages();
  return out;
}

std::vector<Violation> check_replay(const scenario::RequestTrace& trace,
                                    algo::Algorithm algorithm,
                                    const MonitorConfig& monitor_cfg,
                                    std::uint64_t seed,
                                    sim::SimDuration delay_bound) {
  MonitorConfig mc = monitor_cfg;
  mc.num_sites = trace.num_sites;
  mc.num_resources = trace.num_resources;
  mc.stop_on_first = false;  // replays run to the end; they are short
  Monitor monitor(mc);

  scenario::ReplayOptions ropts;
  ropts.seed = seed;
  ropts.latency_delay_bound = delay_bound;
  ropts.observer = &monitor;

  try {
    const scenario::ReplayResult r =
        scenario::replay_trace(trace, algorithm, ropts);
    monitor.finalize(r.end_time, /*quiescent=*/true);
  } catch (const sim::EventBudgetExceeded&) {
    // replay_trace's internal budget tripped; the exception does not carry
    // the end time, so the violation reports detection at an unknown (0)
    // instant.
    std::vector<Violation> out = monitor.violations();
    Violation v;
    v.oracle = "livelock";
    v.detail = "checked replay exceeded the replayed system's event budget "
               "without quiescing";
    out.push_back(std::move(v));
    return out;
  }
  return monitor.violations();
}

// ---------------------------------------------------------------------------
// Trace minimization: greedy delta debugging over the event list. A
// candidate counts as "still violating" when its checked replay reports any
// violation from the same oracle as the original finding.
// ---------------------------------------------------------------------------

namespace {

scenario::RequestTrace with_events(const scenario::RequestTrace& base,
                                   std::vector<scenario::TraceEvent> events) {
  scenario::RequestTrace t = base;
  t.events = std::move(events);
  return t;
}

bool still_violates(const scenario::RequestTrace& candidate,
                    algo::Algorithm algorithm, const MonitorConfig& mc,
                    std::uint64_t seed, sim::SimDuration delay_bound,
                    const std::string& oracle) {
  if (candidate.events.empty()) return false;
  const std::vector<Violation> violations =
      check_replay(candidate, algorithm, mc, seed, delay_bound);
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.oracle == oracle; });
}

/// ddmin-lite over any replay predicate: repeatedly try dropping contiguous
/// chunks (n/2, n/4, ... 1) while `still(candidate)` holds, bounded by
/// `budget` replay attempts. Works for scenario and substrate traces alike.
scenario::RequestTrace minimize_trace_events(
    const scenario::RequestTrace& full,
    const std::function<bool(const scenario::RequestTrace&)>& still,
    int budget) {
  std::vector<scenario::TraceEvent> events = full.events;
  std::size_t chunk = events.size() / 2;
  int attempts = 0;
  while (chunk >= 1 && attempts < budget) {
    bool removed_any = false;
    for (std::size_t start = 0; start < events.size() && attempts < budget;) {
      std::vector<scenario::TraceEvent> candidate;
      candidate.reserve(events.size());
      const std::size_t end = std::min(events.size(), start + chunk);
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       events.begin() + static_cast<std::ptrdiff_t>(end),
                       events.end());
      ++attempts;
      if (!candidate.empty() &&
          still(with_events(full, std::move(candidate)))) {
        // Rebuild the surviving list and rescan from the same offset.
        std::vector<scenario::TraceEvent> kept;
        kept.reserve(events.size() - (end - start));
        kept.insert(kept.end(), events.begin(),
                    events.begin() + static_cast<std::ptrdiff_t>(start));
        kept.insert(kept.end(),
                    events.begin() + static_cast<std::ptrdiff_t>(end),
                    events.end());
        events = std::move(kept);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    // ddmin's retry rule: a successful removal can enable earlier removals,
    // so only refine the granularity after a pass that removed nothing.
    if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return with_events(full, std::move(events));
}

scenario::RequestTrace minimize_trace(const scenario::RequestTrace& full,
                                      algo::Algorithm algorithm,
                                      const MonitorConfig& mc,
                                      std::uint64_t seed,
                                      sim::SimDuration delay_bound,
                                      const std::string& oracle, int budget) {
  return minimize_trace_events(
      full,
      [&](const scenario::RequestTrace& candidate) {
        return still_violates(candidate, algorithm, mc, seed, delay_bound,
                              oracle);
      },
      budget);
}

std::string trace_file_name(const std::string& dir, const std::string& label,
                            std::uint64_t seed) {
  std::string safe = label;
  for (char& c : safe) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-') {
      c = '_';
    }
  }
  return dir + "/repro_" + safe + "_s" + std::to_string(seed) + ".mra";
}

/// Stamps the v2 provenance of a substrate trace (the scenario path gets
/// its provenance from ScenarioRunner).
void stamp_substrate_trace(scenario::RequestTrace& trace,
                           const std::string& scenario_label,
                           const std::string& algorithm, int sites,
                           int resources, std::uint64_t seed,
                           sim::SimDuration base_latency,
                           sim::SimDuration delay_bound,
                           sim::SimDuration quantum) {
  trace.scenario = scenario_label;
  trace.algorithm = algorithm;
  trace.num_sites = sites;
  trace.num_resources = resources;
  trace.seed = seed;
  trace.network_latency = base_latency;
  trace.latency_delay_bound = delay_bound;
  trace.latency_quantum = quantum;
  if (active_mutant() != Mutant::kNone) {
    trace.mutant = to_string(active_mutant());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario explorer (fuzz mode)
// ---------------------------------------------------------------------------

namespace {

struct FuzzCase {
  const scenario::ScenarioSpec* spec = nullptr;
  algo::Algorithm algorithm = algo::Algorithm::kLassWithLoan;
  std::uint64_t seed = 0;
  sim::SimDuration delay = 0;
};

/// Neighborhood search: perturbation variants (remixed seed, scaled bound)
/// around a reproducing violation, run through the sweep pool; the first
/// violating variant is minimized too and the smaller repro wins. The
/// adopted repro's v2 header is updated so it stays self-contained.
void neighborhood_search(FoundViolation& found,
                         const scenario::RequestTrace& full,
                         scenario::RequestTrace& repro, algo::Algorithm alg,
                         const ExploreConfig& config,
                         const std::string& oracle) {
  if (config.neighborhood_variants <= 0 || !found.replay_reproduces) return;
  const sim::SimDuration base_bound =
      found.delay_bound > 0 ? found.delay_bound : sim::from_ms(1.0);
  static constexpr double kScale[4] = {1.0, 0.5, 1.5, 2.0};

  struct Variant {
    std::uint64_t seed = 0;
    sim::SimDuration bound = 0;
  };
  std::vector<Variant> variants;
  for (int j = 0; j < config.neighborhood_variants; ++j) {
    Variant v;
    v.seed = found.seed ^
             (static_cast<std::uint64_t>(j + 1) * 0x9E3779B97F4A7C15ULL);
    v.bound = static_cast<sim::SimDuration>(
        static_cast<double>(base_bound) * kScale[j % 4]);
    variants.push_back(v);
  }

  std::vector<char> hits(variants.size(), 0);
  std::vector<experiment::SweepJob> jobs;
  for (std::size_t j = 0; j < variants.size(); ++j) {
    jobs.push_back([&, j]() {
      hits[j] = still_violates(full, alg, config.monitor, variants[j].seed,
                               variants[j].bound, oracle)
                    ? 1
                    : 0;
      return experiment::ExperimentResult{};
    });
  }
  (void)experiment::run_sweep(jobs,
                              static_cast<unsigned>(std::max(0, config.threads)));

  found.neighborhood_tried = variants.size();
  for (char h : hits) found.neighborhood_violating += h != 0 ? 1 : 0;

  for (std::size_t j = 0; j < variants.size(); ++j) {
    if (hits[j] == 0) continue;
    scenario::RequestTrace alt =
        minimize_trace(full, alg, config.monitor, variants[j].seed,
                       variants[j].bound, oracle, config.minimize_budget);
    if (alt.events.size() < repro.events.size()) {
      repro = std::move(alt);
      repro.seed = variants[j].seed;
      repro.latency_delay_bound = variants[j].bound;
      found.minimized_events = repro.events.size();
    }
    break;  // one extra minimization keeps the budget predictable
  }
}

}  // namespace

ExploreReport explore(const ExploreConfig& config) {
  ExploreReport report;

  // Deterministic flat case list; the perturbation draw depends only on
  // (run seed, case, bound), so re-running with --base-seed <run_seed>
  // --seeds 1 and the same --delay-bound-ms reproduces any single run.
  std::vector<FuzzCase> cases;
  for (const scenario::ScenarioSpec& spec : config.scenarios) {
    for (algo::Algorithm alg : config.algorithms) {
      const std::uint64_t case_hash =
          std::hash<std::string>{}(spec.name + ":" + algo::cli_name(alg));
      for (int i = 0; i < config.seeds_per_case; ++i) {
        FuzzCase c;
        c.spec = &spec;
        c.algorithm = alg;
        c.seed = config.base_seed + static_cast<std::uint64_t>(i);
        sim::Rng run_meta(c.seed ^ case_hash);
        c.delay = config.delay_bound > 0
                      ? run_meta.uniform_int(0, config.delay_bound)
                      : 0;
        cases.push_back(c);
      }
    }
  }

  if (config.progress != nullptr) {
    // Accumulate, not overwrite: a multi-phase run (scenario + mutex +
    // cm-ring fuzz sharing one ExploreProgress) keeps a coherent total.
    config.progress->runs_total.fetch_add(cases.size(),
                                          std::memory_order_relaxed);
  }
  for (std::size_t wave = 0; wave < cases.size(); wave += kWave) {
    const std::size_t end = std::min(cases.size(), wave + kWave);
    std::vector<CheckedRun> slots(end - wave);
    std::vector<experiment::SweepJob> jobs;
    for (std::size_t k = wave; k < end; ++k) {
      jobs.push_back([&, k, slot = k - wave]() {
        const FuzzCase& c = cases[k];
        scenario::ScenarioSpec s = *c.spec;
        s.system.seed = c.seed;
        s.system.latency_delay_bound = c.delay;
        CheckOptions copt;
        copt.monitor = config.monitor;
        // Mirrors the sweep-level flag: stop-on-first also aborts the
        // violating run early; keep-going collects every violation.
        copt.monitor.stop_on_first = config.stop_on_first;
        slots[slot] = run_checked_scenario(s, c.algorithm, copt);
        if (config.progress != nullptr) {
          config.progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        return experiment::ExperimentResult{};
      });
    }
    (void)experiment::run_sweep(
        jobs, static_cast<unsigned>(std::max(0, config.threads)));
    report.runs += end - wave;

    // Scan the wave in case order: the first violating slot is the first
    // violating run, independent of how the pool interleaved the jobs.
    for (std::size_t k = wave; k < end; ++k) {
      const CheckedRun& run = slots[k - wave];
      if (run.violations.empty()) continue;

      ++report.violating_runs;
      if (config.progress != nullptr) {
        config.progress->violations.fetch_add(1, std::memory_order_relaxed);
      }
      const FuzzCase& c = cases[k];
      FoundViolation found;
      found.scenario = c.spec->name;
      found.algorithm = algo::cli_name(c.algorithm);
      found.seed = c.seed;
      found.delay_bound = c.delay;
      found.violations = run.violations;
      found.trace_events = run.trace.events.size();
      found.minimized_events = run.trace.events.size();

      // Repro trace: minimize when the recorded trace reproduces the
      // violation under checked replay, otherwise keep it whole (the run
      // itself is already reproducible from scenario + seed + delay).
      const std::string oracle = run.violations.front().oracle;
      scenario::RequestTrace repro = run.trace;
      if (!run.trace.events.empty()) {
        found.replay_reproduces = still_violates(
            run.trace, c.algorithm, config.monitor, c.seed, c.delay, oracle);
        if (found.replay_reproduces && config.minimize_budget > 0) {
          repro = minimize_trace(run.trace, c.algorithm, config.monitor,
                                 c.seed, c.delay, oracle,
                                 config.minimize_budget);
          found.minimized_events = repro.events.size();
        }
        neighborhood_search(found, run.trace, repro, c.algorithm, config,
                            oracle);
      }
      if (!config.trace_dir.empty() && !repro.events.empty()) {
        found.trace_path = trace_file_name(
            config.trace_dir, found.scenario + "_" + found.algorithm,
            c.seed);
        scenario::save_trace(found.trace_path, repro);
      }
      report.found.push_back(std::move(found));
      if (config.stop_on_first) return report;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Mutex-substrate explorer
// ---------------------------------------------------------------------------

const char* to_string(MutexProtocol p) {
  switch (p) {
    case MutexProtocol::kNaimiTrehel: return "nt";
    case MutexProtocol::kSuzukiKasami: return "sk";
    case MutexProtocol::kRicartAgrawala: return "ra";
  }
  return "?";
}

std::vector<MutexProtocol> all_mutex_protocols() {
  return {MutexProtocol::kNaimiTrehel, MutexProtocol::kSuzukiKasami,
          MutexProtocol::kRicartAgrawala};
}

MutexProtocol mutex_protocol_from_name(const std::string& name) {
  for (MutexProtocol p : all_mutex_protocols()) {
    if (name == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown mutex protocol \"" + name +
                              "\" (valid: nt | sk | ra)");
}

namespace {

/// Adapts one engine instance to a net::Node (the test_mutex pattern) while
/// feeding CS-lifecycle events to the monitor.
template <typename Engine>
class MutexHost final : public net::Node {
 public:
  std::function<void()> on_granted;
  std::unique_ptr<Engine> engine;

  void on_message(SiteId from, const net::Message& msg) override {
    (void)from;
    if constexpr (std::is_same_v<Engine, mutex::NaimiTrehelEngine<>>) {
      if (const auto* req = dynamic_cast<const mutex::NtRequestMsg*>(&msg)) {
        engine->on_request(*req);
        return;
      }
      if (const auto* tok =
              dynamic_cast<const mutex::NtTokenMsg<mutex::NoPayload>*>(&msg)) {
        engine->on_token(*tok);
        return;
      }
    } else if constexpr (std::is_same_v<Engine, mutex::SuzukiKasamiEngine>) {
      if (const auto* req = dynamic_cast<const mutex::SkRequestMsg*>(&msg)) {
        engine->on_request(*req);
        return;
      }
      if (const auto* tok = dynamic_cast<const mutex::SkTokenMsg*>(&msg)) {
        engine->on_token(*tok);
        return;
      }
    } else {
      if (const auto* req = dynamic_cast<const mutex::RaRequestMsg*>(&msg)) {
        engine->on_request(from, *req);
        return;
      }
      if (const auto* rep = dynamic_cast<const mutex::RaReplyMsg*>(&msg)) {
        engine->on_reply(*rep);
        return;
      }
    }
  }
};

/// One substrate run, shared by every mode: fuzz (rng-gap closed loop),
/// exhaustive (deterministic t=0 issues on the latency grid, commutation
/// hook attached) and trace replay (issue the recorded births).
struct MutexRunPlan {
  int num_sites = 8;
  int requests_per_site = 25;
  std::uint64_t seed = 1;
  sim::SimDuration base_latency = sim::from_ms(0.6);
  sim::SimDuration delay = 0;           ///< BoundedDelayLatency bound
  sim::SimDuration cs = sim::from_ms(1.0);
  bool deterministic = false;           ///< t=0 issues, no rng draws
  sim::CommutationHook* hook = nullptr;
  const scenario::RequestTrace* replay = nullptr;  ///< births from a trace
  scenario::RequestTrace* record = nullptr;        ///< capture births
  MonitorConfig monitor;  ///< fully sized by the caller
};

template <typename Engine>
std::vector<Violation> run_mutex_engine(const MutexRunPlan& plan) {
  const int n = plan.num_sites;
  sim::Simulator sim;
  if (plan.hook != nullptr) sim.set_commutation_hook(plan.hook);
  net::Network net(
      sim, net::make_bounded_delay_latency(plan.base_latency, plan.delay),
      plan.seed);

  Monitor monitor(plan.monitor);
  monitor.attach(sim, net);

  std::vector<std::unique_ptr<MutexHost<Engine>>> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<MutexHost<Engine>>());
    net.add_node(*hosts.back());
  }
  for (int i = 0; i < n; ++i) {
    auto* host = hosts[static_cast<std::size_t>(i)].get();
    auto send = [host](SiteId dst, std::unique_ptr<net::Message> m) {
      host->network()->send(host->id(), dst, std::move(m));
    };
    auto granted = [host]() {
      if (host->on_granted) host->on_granted();
    };
    if constexpr (std::is_same_v<Engine, mutex::NaimiTrehelEngine<>>) {
      host->engine = std::make_unique<Engine>(i, /*elected=*/0,
                                              /*instance=*/0, send, granted);
    } else if constexpr (std::is_same_v<Engine, mutex::SuzukiKasamiEngine>) {
      host->engine = std::make_unique<Engine>(i, /*elected=*/0, n,
                                              /*instance=*/0, send, granted);
    } else {
      host->engine =
          std::make_unique<Engine>(i, n, /*instance=*/0, send, granted);
    }
  }
  net.start();

  // Harness-fed CS-lifecycle events over the single shared resource.
  const ResourceSet the_resource(1, {0});
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n), 0);
  auto emit = [&](EventType type, SiteId s) {
    Event ev;
    ev.type = type;
    ev.at = sim.now();
    ev.site = s;
    ev.seq = seq[static_cast<std::size_t>(s)];
    ev.resources = &the_resource;
    monitor.on_event(ev);
  };

  struct SiteState {
    std::deque<sim::SimDuration> pending;  ///< arrived, not yet issued (cs)
    bool busy = false;
    sim::SimDuration cs = 0;
    int remaining = 0;  ///< arrivals left to generate (non-replay modes)
  };
  std::vector<SiteState> st(static_cast<std::size_t>(n));
  for (auto& s : st) s.remaining = plan.requests_per_site;

  sim::Rng rng(plan.seed ^ 0xA5A5A5A5A5A5A5A5ULL);

  std::function<void(SiteId)> try_issue = [&](SiteId s) {
    auto& ss = st[static_cast<std::size_t>(s)];
    if (ss.busy || ss.pending.empty()) return;
    ss.busy = true;
    ss.cs = ss.pending.front();
    ss.pending.pop_front();
    ++seq[static_cast<std::size_t>(s)];
    if (plan.record != nullptr) {
      plan.record->events.push_back(
          scenario::TraceEvent{sim.now(), s, ss.cs, {0}});
    }
    emit(EventType::kRequest, s);
    hosts[static_cast<std::size_t>(s)]->engine->request();
  };

  std::function<void(SiteId)> arrive = [&](SiteId s) {
    auto& ss = st[static_cast<std::size_t>(s)];
    if (ss.remaining <= 0) return;
    --ss.remaining;
    const sim::SimDuration gap =
        plan.deterministic
            ? 0
            : static_cast<sim::SimDuration>(rng.uniform_int(0, 2'000'000));
    sim.schedule_in(gap, static_cast<int>(s), [&, s]() {
      st[static_cast<std::size_t>(s)].pending.push_back(plan.cs);
      try_issue(s);
    });
  };

  for (SiteId s = 0; s < n; ++s) {
    hosts[static_cast<std::size_t>(s)]->on_granted = [&, s]() {
      emit(EventType::kAcquire, s);
      sim.schedule_in(st[static_cast<std::size_t>(s)].cs,
                      static_cast<int>(s), [&, s]() {
        emit(EventType::kRelease, s);
        hosts[static_cast<std::size_t>(s)]->engine->release();
        st[static_cast<std::size_t>(s)].busy = false;
        try_issue(s);  // replay mode: next pending birth, if any
        if (plan.replay == nullptr) arrive(s);
      });
    };
  }

  if (plan.replay != nullptr) {
    for (const scenario::TraceEvent& ev : plan.replay->events) {
      sim.schedule_at(ev.at, static_cast<int>(ev.site), [&, e = &ev]() {
        st[static_cast<std::size_t>(e->site)].pending.push_back(e->cs);
        try_issue(e->site);
      });
    }
  } else {
    for (SiteId s = 0; s < n; ++s) arrive(s);
  }

  sim.set_event_budget(50'000'000ULL);
  bool budget_hit = false;
  try {
    sim.run();
  } catch (const sim::EventBudgetExceeded&) {
    budget_hit = true;
  }
  const bool quiescent = !budget_hit && sim.idle();
  monitor.finalize(sim.now(), quiescent && monitor.ok());
  std::vector<Violation> out = monitor.violations();
  if (budget_hit) out.push_back(livelock_violation(sim.now(), 50'000'000ULL));
  return out;
}

std::vector<Violation> run_mutex_plan(MutexProtocol protocol,
                                      const MutexRunPlan& plan) {
  switch (protocol) {
    case MutexProtocol::kNaimiTrehel:
      return run_mutex_engine<mutex::NaimiTrehelEngine<>>(plan);
    case MutexProtocol::kSuzukiKasami:
      return run_mutex_engine<mutex::SuzukiKasamiEngine>(plan);
    case MutexProtocol::kRicartAgrawala:
      return run_mutex_engine<mutex::RicartAgrawalaEngine>(plan);
  }
  return {};
}

}  // namespace

ExploreReport explore_mutex(const MutexExploreConfig& config) {
  ExploreReport report;

  struct Case {
    MutexProtocol protocol = MutexProtocol::kNaimiTrehel;
    std::uint64_t seed = 0;
    sim::SimDuration delay = 0;
  };
  std::vector<Case> cases;
  for (MutexProtocol protocol : config.protocols) {
    const std::uint64_t case_hash =
        0x6D75746578ULL + static_cast<std::uint64_t>(protocol);
    for (int i = 0; i < config.seeds_per_case; ++i) {
      Case c;
      c.protocol = protocol;
      c.seed = config.base_seed + static_cast<std::uint64_t>(i);
      // Same exact-repro property as explore(): the draw is a function of
      // (run seed, protocol, bound) only.
      sim::Rng run_meta(c.seed ^ case_hash);
      c.delay = config.delay_bound > 0
                    ? run_meta.uniform_int(0, config.delay_bound)
                    : 0;
      cases.push_back(c);
    }
  }

  MonitorConfig mc = config.monitor;
  mc.num_sites = config.num_sites;
  mc.num_resources = 1;
  mc.stop_on_first = config.stop_on_first;

  if (config.progress != nullptr) {
    // Accumulate, not overwrite: a multi-phase run (scenario + mutex +
    // cm-ring fuzz sharing one ExploreProgress) keeps a coherent total.
    config.progress->runs_total.fetch_add(cases.size(),
                                          std::memory_order_relaxed);
  }
  for (std::size_t wave = 0; wave < cases.size(); wave += kWave) {
    const std::size_t end = std::min(cases.size(), wave + kWave);
    struct Slot {
      std::vector<Violation> violations;
      scenario::RequestTrace trace;
    };
    std::vector<Slot> slots(end - wave);
    std::vector<experiment::SweepJob> jobs;
    for (std::size_t k = wave; k < end; ++k) {
      jobs.push_back([&, k, slot = k - wave]() {
        const Case& c = cases[k];
        MutexRunPlan plan;
        plan.num_sites = config.num_sites;
        plan.requests_per_site = config.requests_per_site;
        plan.seed = c.seed;
        plan.delay = c.delay;
        plan.monitor = mc;
        plan.record = &slots[slot].trace;
        slots[slot].violations = run_mutex_plan(c.protocol, plan);
        if (config.progress != nullptr) {
          config.progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        return experiment::ExperimentResult{};
      });
    }
    (void)experiment::run_sweep(
        jobs, static_cast<unsigned>(std::max(0, config.threads)));
    report.runs += end - wave;

    for (std::size_t k = wave; k < end; ++k) {
      Slot& slot = slots[k - wave];
      if (slot.violations.empty()) continue;

      ++report.violating_runs;
      if (config.progress != nullptr) {
        config.progress->violations.fetch_add(1, std::memory_order_relaxed);
      }
      const Case& c = cases[k];
      FoundViolation found;
      found.scenario = std::string("mutex:") + to_string(c.protocol);
      found.algorithm = to_string(c.protocol);
      found.seed = c.seed;
      found.delay_bound = c.delay;
      found.violations = slot.violations;
      found.trace_events = slot.trace.events.size();
      found.minimized_events = slot.trace.events.size();

      stamp_substrate_trace(slot.trace, found.scenario, found.algorithm,
                            config.num_sites, 1, c.seed, sim::from_ms(0.6),
                            c.delay, 0);
      const std::string oracle = slot.violations.front().oracle;
      auto still = [&](const scenario::RequestTrace& candidate) {
        if (candidate.events.empty()) return false;
        const std::vector<Violation> vs =
            check_replay(candidate, config.monitor);
        return std::any_of(
            vs.begin(), vs.end(),
            [&](const Violation& v) { return v.oracle == oracle; });
      };
      scenario::RequestTrace repro = slot.trace;
      if (!slot.trace.events.empty()) {
        found.replay_reproduces = still(slot.trace);
        if (found.replay_reproduces) {
          repro = minimize_trace_events(slot.trace, still, 48);
          found.minimized_events = repro.events.size();
        }
      }
      if (!config.trace_dir.empty() && !repro.events.empty()) {
        found.trace_path =
            trace_file_name(config.trace_dir, found.scenario, c.seed);
        scenario::save_trace(found.trace_path, repro);
      }
      report.found.push_back(std::move(found));
      if (config.stop_on_first) return report;
    }
  }
  return report;
}

ExploreReport explore_mutex_exhaustive(const MutexExploreConfig& config,
                                       const DporConfig& dpor) {
  if (config.protocols.empty()) {
    throw std::invalid_argument("explore_mutex_exhaustive: no protocol");
  }
  const MutexProtocol protocol = config.protocols.front();

  MonitorConfig mc = config.monitor;
  mc.num_sites = config.num_sites;
  mc.num_resources = 1;
  mc.stop_on_first = true;  // end the violating schedule early

  ExploreReport report;
  scenario::RequestTrace violating_trace;
  std::vector<Violation> violations;
  std::vector<std::uint64_t> choices;
  const DporStats stats =
      explore_schedules(dpor, [&](DporScheduler& scheduler) {
        scenario::RequestTrace trace;
        MutexRunPlan plan;
        plan.num_sites = config.num_sites;
        plan.requests_per_site = config.requests_per_site;
        plan.seed = config.base_seed;
        plan.delay = 0;
        plan.cs = plan.base_latency;  // grid-aligned: maximal collisions
        plan.deterministic = true;
        plan.hook = &scheduler;
        plan.monitor = mc;
        plan.record = &trace;
        std::vector<Violation> v = run_mutex_plan(protocol, plan);
        if (config.progress != nullptr) {
          config.progress->schedules_executed.fetch_add(
              1, std::memory_order_relaxed);
          config.progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        if (v.empty()) return false;
        if (config.progress != nullptr) {
          config.progress->violations.fetch_add(1, std::memory_order_relaxed);
        }
        violations = std::move(v);
        violating_trace = std::move(trace);
        choices = scheduler.choices();
        return true;
      });
  if (config.progress != nullptr) {
    config.progress->orderings_pruned.store(stats.orderings_pruned,
                                            std::memory_order_relaxed);
  }

  report.runs = stats.schedules_executed;
  report.schedules_executed = stats.schedules_executed;
  report.choice_points = stats.choice_points;
  report.orderings_pruned = stats.orderings_pruned;
  report.exhaustive_complete = stats.complete;
  report.exhaustive_truncated = stats.truncated;

  if (!violations.empty()) {
    report.violating_runs = 1;
    FoundViolation found;
    found.scenario = std::string("mutex:") + to_string(protocol);
    found.algorithm = to_string(protocol);
    found.seed = config.base_seed;
    found.violations = violations;
    found.commutation = choices;
    found.trace_events = violating_trace.events.size();
    found.minimized_events = violating_trace.events.size();
    stamp_substrate_trace(violating_trace, found.scenario, found.algorithm,
                          config.num_sites, 1, config.base_seed,
                          sim::from_ms(0.6), 0, 0);
    if (!violating_trace.events.empty()) {
      // Canonical-order replay of the recorded births; for bugs that need
      // a non-canonical schedule, the choice stack is the repro instead.
      const std::string oracle = violations.front().oracle;
      const std::vector<Violation> vs =
          check_replay(violating_trace, config.monitor);
      found.replay_reproduces = std::any_of(
          vs.begin(), vs.end(),
          [&](const Violation& v) { return v.oracle == oracle; });
    }
    if (!config.trace_dir.empty() && !violating_trace.events.empty()) {
      found.trace_path = trace_file_name(
          config.trace_dir, found.scenario + "-exhaustive", config.base_seed);
      scenario::save_trace(found.trace_path, violating_trace);
    }
    report.found.push_back(std::move(found));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Scenario exhaustive mode
// ---------------------------------------------------------------------------

scenario::ScenarioSpec tiny_exhaustive_spec(int sites, int resources) {
  scenario::ScenarioSpec s;
  s.name = "tiny-exhaustive";
  s.summary = "model-checking config: tiny windows, quantized latency grid";
  s.system.num_sites = sites;
  s.system.num_resources = resources;
  s.system.seed = 1;
  s.system.network_latency = sim::from_ms(0.6);
  // Round every latency up onto the network grid so independent deliveries
  // collide at shared instants — the commutations the explorer enumerates.
  s.system.latency_quantum = sim::from_ms(0.6);
  s.workload.num_resources = resources;
  s.workload.phi = std::min(2, resources);
  s.workload.alpha_min = sim::from_ms(0.6);
  s.workload.alpha_max = sim::from_ms(1.2);
  s.workload.cs_jitter = 0.0;
  s.workload.rho = 1.0;  // high load: requests overlap, grants contend
  s.warmup = sim::from_ms(5);
  s.measure = sim::from_ms(30);
  return s;
}

ExploreReport explore_scenario_exhaustive(const scenario::ScenarioSpec& spec,
                                          algo::Algorithm algorithm,
                                          const MonitorConfig& monitor,
                                          const DporConfig& dpor,
                                          const std::string& trace_dir,
                                          ExploreProgress* progress) {
  MonitorConfig mc = monitor;
  mc.stop_on_first = true;

  ExploreReport report;
  CheckedRun violating;
  std::vector<std::uint64_t> choices;
  bool found_violation = false;
  const DporStats stats =
      explore_schedules(dpor, [&](DporScheduler& scheduler) {
        CheckOptions copt;
        copt.monitor = mc;
        copt.commutation = &scheduler;
        CheckedRun run = run_checked_scenario(spec, algorithm, copt);
        if (progress != nullptr) {
          progress->schedules_executed.fetch_add(1,
                                                 std::memory_order_relaxed);
          progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        if (run.violations.empty()) return false;
        if (progress != nullptr) {
          progress->violations.fetch_add(1, std::memory_order_relaxed);
        }
        violating = std::move(run);
        choices = scheduler.choices();
        found_violation = true;
        return true;
      });
  if (progress != nullptr) {
    progress->orderings_pruned.store(stats.orderings_pruned,
                                     std::memory_order_relaxed);
  }

  report.runs = stats.schedules_executed;
  report.schedules_executed = stats.schedules_executed;
  report.choice_points = stats.choice_points;
  report.orderings_pruned = stats.orderings_pruned;
  report.exhaustive_complete = stats.complete;
  report.exhaustive_truncated = stats.truncated;

  if (found_violation) {
    report.violating_runs = 1;
    FoundViolation found;
    found.scenario = spec.name;
    found.algorithm = algo::cli_name(algorithm);
    found.seed = spec.system.seed;
    found.delay_bound = spec.system.latency_delay_bound;
    found.violations = violating.violations;
    found.commutation = choices;
    found.trace_events = violating.trace.events.size();
    found.minimized_events = violating.trace.events.size();
    if (!violating.trace.events.empty()) {
      const std::string oracle = violating.violations.front().oracle;
      found.replay_reproduces =
          still_violates(violating.trace, algorithm, monitor,
                         violating.trace.seed,
                         violating.trace.latency_delay_bound, oracle);
    }
    if (!trace_dir.empty() && !violating.trace.events.empty()) {
      found.trace_path = trace_file_name(
          trace_dir, found.scenario + "_" + found.algorithm + "-exhaustive",
          found.seed);
      scenario::save_trace(found.trace_path, violating.trace);
    }
    report.found.push_back(std::move(found));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Chandy-Misra ring explorer
// ---------------------------------------------------------------------------

namespace {

/// One Chandy-Misra ring run: resource i is the edge (i, i+1 mod N); each
/// request drinks one incident edge. Modes mirror MutexRunPlan.
struct CmRunPlan {
  int num_sites = 4;
  int requests_per_site = 6;
  std::uint64_t seed = 1;
  sim::SimDuration base_latency = sim::from_ms(0.6);
  sim::SimDuration delay = 0;
  sim::SimDuration cs = sim::from_ms(2.0);
  bool deterministic = false;
  sim::CommutationHook* hook = nullptr;
  const scenario::RequestTrace* replay = nullptr;
  scenario::RequestTrace* record = nullptr;
  MonitorConfig monitor;  ///< fully sized by the caller
};

std::vector<Violation> run_cm_case(const CmRunPlan& plan) {
  const int n = plan.num_sites;
  sim::Simulator sim;
  if (plan.hook != nullptr) sim.set_commutation_hook(plan.hook);
  net::Network net(
      sim, net::make_bounded_delay_latency(plan.base_latency, plan.delay),
      plan.seed);

  Monitor monitor(plan.monitor);
  monitor.attach(sim, net);

  algo::ChandyMisraConfig cmc;
  cmc.num_sites = n;
  for (int i = 0; i < n; ++i) {
    cmc.sharers.emplace_back(i, (i + 1) % n);
  }
  std::vector<std::unique_ptr<algo::ChandyMisraNode>> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<algo::ChandyMisraNode>(cmc));
    net.add_node(*nodes.back());
    nodes.back()->set_observer(&monitor);
  }
  net.start();

  struct SiteState {
    std::deque<std::pair<sim::SimDuration, ResourceId>> pending;
    bool busy = false;
    sim::SimDuration cs = 0;
    int remaining = 0;
    int issued = 0;
  };
  std::vector<SiteState> st(static_cast<std::size_t>(n));
  for (auto& s : st) s.remaining = plan.requests_per_site;

  sim::Rng rng(plan.seed ^ 0x5C5C5C5C5C5C5C5CULL);

  std::function<void(SiteId)> try_issue = [&](SiteId s) {
    auto& ss = st[static_cast<std::size_t>(s)];
    if (ss.busy || ss.pending.empty()) return;
    ss.busy = true;
    const auto [cs, edge] = ss.pending.front();
    ss.pending.pop_front();
    ss.cs = cs;
    ++ss.issued;
    if (plan.record != nullptr) {
      plan.record->events.push_back(
          scenario::TraceEvent{sim.now(), s, cs, {edge}});
    }
    ResourceSet rs(n);
    rs.insert(edge);
    nodes[static_cast<std::size_t>(s)]->request(rs);
  };

  // Edge plan — fuzz: alternate the site's own edge and its left edge so
  // neighbours contend; deterministic: pairs (2k, 2k+1) share edge 2k.
  auto pick_edge = [&](SiteId s, int count) -> ResourceId {
    if (plan.deterministic) return s - (s % 2);
    return count % 2 == 0 ? s : (s - 1 + n) % n;
  };

  std::function<void(SiteId)> arrive = [&](SiteId s) {
    auto& ss = st[static_cast<std::size_t>(s)];
    if (ss.remaining <= 0) return;
    --ss.remaining;
    const sim::SimDuration gap =
        plan.deterministic
            ? 0
            : static_cast<sim::SimDuration>(rng.uniform_int(0, 2'000'000));
    const ResourceId edge =
        pick_edge(s, plan.requests_per_site - ss.remaining - 1);
    sim.schedule_in(gap, static_cast<int>(s), [&, s, edge]() {
      st[static_cast<std::size_t>(s)].pending.emplace_back(plan.cs, edge);
      try_issue(s);
    });
  };

  for (SiteId s = 0; s < n; ++s) {
    nodes[static_cast<std::size_t>(s)]->set_grant_callback([&, s](RequestId) {
      sim.schedule_in(st[static_cast<std::size_t>(s)].cs,
                      static_cast<int>(s), [&, s]() {
        nodes[static_cast<std::size_t>(s)]->release();
        st[static_cast<std::size_t>(s)].busy = false;
        try_issue(s);
        if (plan.replay == nullptr) arrive(s);
      });
    });
  }

  if (plan.replay != nullptr) {
    for (const scenario::TraceEvent& ev : plan.replay->events) {
      sim.schedule_at(ev.at, static_cast<int>(ev.site), [&, e = &ev]() {
        st[static_cast<std::size_t>(e->site)].pending.emplace_back(
            e->cs, e->resources.front());
        try_issue(e->site);
      });
    }
  } else {
    for (SiteId s = 0; s < n; ++s) arrive(s);
  }

  sim.set_event_budget(50'000'000ULL);
  bool budget_hit = false;
  try {
    sim.run();
  } catch (const sim::EventBudgetExceeded&) {
    budget_hit = true;
  }
  const bool quiescent = !budget_hit && sim.idle();
  monitor.finalize(sim.now(), quiescent && monitor.ok());
  std::vector<Violation> out = monitor.violations();
  if (budget_hit) out.push_back(livelock_violation(sim.now(), 50'000'000ULL));
  return out;
}

MonitorConfig cm_monitor_config(const CmRingExploreConfig& config) {
  MonitorConfig mc = config.monitor;
  mc.num_sites = config.num_sites;
  mc.num_resources = config.num_sites;  // one edge resource per ring link
  mc.stop_on_first = config.stop_on_first;
  return mc;
}

}  // namespace

ExploreReport explore_cm_ring(const CmRingExploreConfig& config) {
  ExploreReport report;
  const MonitorConfig mc = cm_monitor_config(config);

  struct Case {
    std::uint64_t seed = 0;
    sim::SimDuration delay = 0;
  };
  std::vector<Case> cases;
  for (int i = 0; i < config.seeds_per_case; ++i) {
    Case c;
    c.seed = config.base_seed + static_cast<std::uint64_t>(i);
    sim::Rng run_meta(c.seed ^ 0x636D2D72696E67ULL);  // "cm-ring"
    c.delay = config.delay_bound > 0
                  ? run_meta.uniform_int(0, config.delay_bound)
                  : 0;
    cases.push_back(c);
  }

  if (config.progress != nullptr) {
    // Accumulate, not overwrite: a multi-phase run (scenario + mutex +
    // cm-ring fuzz sharing one ExploreProgress) keeps a coherent total.
    config.progress->runs_total.fetch_add(cases.size(),
                                          std::memory_order_relaxed);
  }
  for (std::size_t wave = 0; wave < cases.size(); wave += kWave) {
    const std::size_t end = std::min(cases.size(), wave + kWave);
    struct Slot {
      std::vector<Violation> violations;
      scenario::RequestTrace trace;
    };
    std::vector<Slot> slots(end - wave);
    std::vector<experiment::SweepJob> jobs;
    for (std::size_t k = wave; k < end; ++k) {
      jobs.push_back([&, k, slot = k - wave]() {
        const Case& c = cases[k];
        CmRunPlan plan;
        plan.num_sites = config.num_sites;
        plan.requests_per_site = config.requests_per_site;
        plan.seed = c.seed;
        plan.delay = c.delay;
        plan.cs = config.cs;
        plan.monitor = mc;
        plan.record = &slots[slot].trace;
        slots[slot].violations = run_cm_case(plan);
        if (config.progress != nullptr) {
          config.progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        return experiment::ExperimentResult{};
      });
    }
    (void)experiment::run_sweep(
        jobs, static_cast<unsigned>(std::max(0, config.threads)));
    report.runs += end - wave;

    for (std::size_t k = wave; k < end; ++k) {
      Slot& slot = slots[k - wave];
      if (slot.violations.empty()) continue;

      ++report.violating_runs;
      if (config.progress != nullptr) {
        config.progress->violations.fetch_add(1, std::memory_order_relaxed);
      }
      const Case& c = cases[k];
      FoundViolation found;
      found.scenario = "cm-ring";
      found.algorithm = "cm-ring";
      found.seed = c.seed;
      found.delay_bound = c.delay;
      found.violations = slot.violations;
      found.trace_events = slot.trace.events.size();
      found.minimized_events = slot.trace.events.size();

      stamp_substrate_trace(slot.trace, "cm-ring", "cm-ring",
                            config.num_sites, config.num_sites, c.seed,
                            sim::from_ms(0.6), c.delay, 0);
      const std::string oracle = slot.violations.front().oracle;
      auto still = [&](const scenario::RequestTrace& candidate) {
        if (candidate.events.empty()) return false;
        const std::vector<Violation> vs =
            check_replay(candidate, config.monitor);
        return std::any_of(
            vs.begin(), vs.end(),
            [&](const Violation& v) { return v.oracle == oracle; });
      };
      scenario::RequestTrace repro = slot.trace;
      if (!slot.trace.events.empty()) {
        found.replay_reproduces = still(slot.trace);
        if (found.replay_reproduces) {
          repro = minimize_trace_events(slot.trace, still, 48);
          found.minimized_events = repro.events.size();
        }
      }
      if (!config.trace_dir.empty() && !repro.events.empty()) {
        found.trace_path = trace_file_name(config.trace_dir, "cm-ring",
                                           c.seed);
        scenario::save_trace(found.trace_path, repro);
      }
      report.found.push_back(std::move(found));
      if (config.stop_on_first) return report;
    }
  }
  return report;
}

ExploreReport explore_cm_ring_exhaustive(const CmRingExploreConfig& config,
                                         const DporConfig& dpor) {
  MonitorConfig mc = cm_monitor_config(config);
  mc.stop_on_first = true;

  ExploreReport report;
  scenario::RequestTrace violating_trace;
  std::vector<Violation> violations;
  std::vector<std::uint64_t> choices;
  const DporStats stats =
      explore_schedules(dpor, [&](DporScheduler& scheduler) {
        scenario::RequestTrace trace;
        CmRunPlan plan;
        plan.num_sites = config.num_sites;
        plan.requests_per_site = config.requests_per_site;
        plan.seed = config.base_seed;
        plan.delay = 0;
        plan.cs = config.cs;
        plan.deterministic = true;
        plan.hook = &scheduler;
        plan.monitor = mc;
        plan.record = &trace;
        std::vector<Violation> v = run_cm_case(plan);
        if (config.progress != nullptr) {
          config.progress->schedules_executed.fetch_add(
              1, std::memory_order_relaxed);
          config.progress->runs_done.fetch_add(1, std::memory_order_relaxed);
        }
        if (v.empty()) return false;
        if (config.progress != nullptr) {
          config.progress->violations.fetch_add(1, std::memory_order_relaxed);
        }
        violations = std::move(v);
        violating_trace = std::move(trace);
        choices = scheduler.choices();
        return true;
      });
  if (config.progress != nullptr) {
    config.progress->orderings_pruned.store(stats.orderings_pruned,
                                            std::memory_order_relaxed);
  }

  report.runs = stats.schedules_executed;
  report.schedules_executed = stats.schedules_executed;
  report.choice_points = stats.choice_points;
  report.orderings_pruned = stats.orderings_pruned;
  report.exhaustive_complete = stats.complete;
  report.exhaustive_truncated = stats.truncated;

  if (!violations.empty()) {
    report.violating_runs = 1;
    FoundViolation found;
    found.scenario = "cm-ring";
    found.algorithm = "cm-ring";
    found.seed = config.base_seed;
    found.violations = violations;
    found.commutation = choices;
    found.trace_events = violating_trace.events.size();
    found.minimized_events = violating_trace.events.size();
    stamp_substrate_trace(violating_trace, "cm-ring", "cm-ring",
                          config.num_sites, config.num_sites,
                          config.base_seed, sim::from_ms(0.6), 0, 0);
    if (!violating_trace.events.empty()) {
      const std::string oracle = violations.front().oracle;
      const std::vector<Violation> vs =
          check_replay(violating_trace, config.monitor);
      found.replay_reproduces = std::any_of(
          vs.begin(), vs.end(),
          [&](const Violation& v) { return v.oracle == oracle; });
    }
    if (!config.trace_dir.empty() && !violating_trace.events.empty()) {
      found.trace_path = trace_file_name(
          config.trace_dir, "cm-ring-exhaustive", config.base_seed);
      scenario::save_trace(found.trace_path, violating_trace);
    }
    report.found.push_back(std::move(found));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Self-contained v2 replay
// ---------------------------------------------------------------------------

std::vector<Violation> check_replay(const scenario::RequestTrace& trace,
                                    const MonitorConfig& monitor) {
  if (trace.algorithm.empty()) {
    throw std::invalid_argument(
        "check_replay: trace has no algorithm header (v1 trace) — use the "
        "overload that names the algorithm explicitly");
  }
  ScopedMutant scoped(trace.mutant);

  if (trace.algorithm == "nt" || trace.algorithm == "sk" ||
      trace.algorithm == "ra") {
    MutexRunPlan plan;
    plan.num_sites = trace.num_sites;
    plan.seed = trace.seed;
    plan.base_latency = trace.network_latency;
    plan.delay = trace.latency_delay_bound;
    plan.replay = &trace;
    plan.monitor = monitor;
    plan.monitor.num_sites = trace.num_sites;
    plan.monitor.num_resources = 1;
    plan.monitor.stop_on_first = false;
    return run_mutex_plan(mutex_protocol_from_name(trace.algorithm), plan);
  }
  if (trace.algorithm == "cm-ring") {
    CmRunPlan plan;
    plan.num_sites = trace.num_sites;
    plan.seed = trace.seed;
    plan.base_latency = trace.network_latency;
    plan.delay = trace.latency_delay_bound;
    plan.replay = &trace;
    plan.monitor = monitor;
    plan.monitor.num_sites = trace.num_sites;
    plan.monitor.num_resources = trace.num_resources;
    plan.monitor.stop_on_first = false;
    return run_cm_case(plan);
  }
  // Factory algorithms: the scenario replay path (which also picks up the
  // trace's latency quantum through replay_trace).
  return check_replay(trace, algo::algorithm_from_name(trace.algorithm),
                      monitor, trace.seed, trace.latency_delay_bound);
}

}  // namespace mra::check
