#include "check/monitor.hpp"

#include <sstream>

#include "algo/factory.hpp"
#include "check/fanout.hpp"
#include "core/allocator.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mra::check {

Monitor::Monitor(const MonitorConfig& config) : cfg_(config) {
  if (cfg_.event_window == 0) cfg_.event_window = 1;
  ring_.resize(cfg_.event_window);
  if (cfg_.mutual_exclusion && cfg_.num_resources > 0) {
    oracles_.push_back(
        std::make_unique<MutualExclusionOracle>(cfg_.num_resources));
  }
  if (cfg_.deadlock && cfg_.num_sites > 0 && cfg_.num_resources > 0) {
    oracles_.push_back(
        std::make_unique<DeadlockOracle>(cfg_.num_sites, cfg_.num_resources));
  }
  if (cfg_.starvation && cfg_.num_sites > 0) {
    oracles_.push_back(std::make_unique<StarvationOracle>(
        cfg_.num_sites, cfg_.starvation_horizon));
  }
  if (cfg_.fifo && cfg_.num_sites > 0) {
    oracles_.push_back(std::make_unique<FifoOracle>(cfg_.num_sites));
  }
  if (cfg_.complexity) {
    auto complexity =
        std::make_unique<ComplexityOracle>(cfg_.max_messages_per_cs);
    complexity_ = complexity.get();
    oracles_.push_back(std::move(complexity));
  }
}

Monitor::~Monitor() { detach(); }

void Monitor::add_oracle(std::unique_ptr<Oracle> oracle) {
  oracles_.push_back(std::move(oracle));
}

void Monitor::attach(algo::AllocationSystem& system) {
  for (SiteId i = 0; i < system.num_sites(); ++i) {
    require_free_observer_slot(system.node(i).check_observer(), this,
                               "allocator nodes");
  }
  attach(system.simulator(), system.network());
  system_ = &system;
  for (SiteId i = 0; i < system.num_sites(); ++i) {
    system.node(i).set_observer(this);
  }
}

void Monitor::attach(sim::Simulator& simulator, net::Network& network) {
  // Double-attach used to silently displace the previous observer; that hid
  // every Monitor-plus-recorder composition bug, so it is a named error now.
  require_free_observer_slot(simulator.observer(), this, "simulator");
  require_free_observer_slot(network.observer(), this, "network");
  sim_ = &simulator;
  net_ = &network;
  simulator.set_observer(this);
  network.set_observer(this);
}

void Monitor::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->set_observer(nullptr);
  if (net_ != nullptr && net_->observer() == this) net_->set_observer(nullptr);
  if (system_ != nullptr) {
    for (SiteId i = 0; i < system_->num_sites(); ++i) {
      if (system_->node(i).check_observer() == this) {
        system_->node(i).set_observer(nullptr);
      }
    }
  }
  sim_ = nullptr;
  net_ = nullptr;
  system_ = nullptr;
  stop_sim_ = nullptr;
}

void Monitor::record(const Event& event) {
  RecordedEvent& r = ring_[ring_next_];
  ring_next_ = (ring_next_ + 1) % ring_.size();
  r = RecordedEvent{};
  r.type = event.type;
  r.at = event.at;
  r.site = event.site;
  r.peer = event.peer;
  r.seq = event.seq;
  r.resource = event.resource;
  r.bytes = event.bytes;
  r.kind = event.kind;
  if (event.resources != nullptr) {
    event.resources->for_each([&](ResourceId id) {
      if (r.res_count < 8) {
        r.res[r.res_count++] = id;
      } else {
        r.res_truncated = true;
      }
    });
  }
}

std::string Monitor::format(const RecordedEvent& e) {
  std::ostringstream os;
  os << "[" << sim::to_ms(e.at) << "ms] s" << e.site << " "
     << to_string(e.type);
  switch (e.type) {
    case EventType::kRequest:
    case EventType::kAcquire:
    case EventType::kRelease: {
      os << " {";
      for (std::uint8_t i = 0; i < e.res_count; ++i) {
        if (i != 0) os << ",";
        os << e.res[i];
      }
      if (e.res_truncated) os << ",...";
      os << "} seq=" << e.seq;
      break;
    }
    case EventType::kHold:
      os << " r" << e.resource << " seq=" << e.seq;
      break;
    case EventType::kSend:
    case EventType::kDeliver:
      os << " -> s" << e.peer << " " << e.kind << " #" << e.seq << " ("
         << e.bytes << "B)";
      break;
  }
  return os.str();
}

std::vector<std::string> Monitor::recent_events() const {
  std::vector<std::string> out;
  const std::size_t cap = ring_.size();
  const std::size_t count =
      events_seen_ < cap ? static_cast<std::size_t>(events_seen_) : cap;
  // Oldest first: the ring's next slot is also its oldest entry once full.
  std::size_t idx = events_seen_ < cap ? 0 : ring_next_;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(format(ring_[idx]));
    idx = (idx + 1) % cap;
  }
  return out;
}

void Monitor::on_event(const Event& event) {
  ++events_seen_;
  record(event);
  if (!checking_) return;
  for (auto& oracle : oracles_) oracle->on_event(event, *this);
}

void Monitor::on_advance(sim::SimTime now) {
  if (!checking_) return;
  for (auto& oracle : oracles_) oracle->on_advance(now, *this);
}

void Monitor::report(Violation violation) {
  if (violation.recent_events.empty()) {
    violation.recent_events = recent_events();
  }
  violations_.push_back(std::move(violation));
  if (violations_.size() >= cfg_.max_violations) checking_ = false;
  if (cfg_.stop_on_first) {
    // Prefer the attach()-owned simulator; fall back to the stop-only
    // binding (mux composition). report() only fires from in-run callbacks,
    // so whichever pointer is set is still alive here.
    sim::Simulator* s = sim_ != nullptr ? sim_ : stop_sim_;
    if (s != nullptr) s->stop();
  }
}

void Monitor::finalize(sim::SimTime now, bool quiescent) {
  if (!checking_) return;
  for (auto& oracle : oracles_) oracle->finalize(now, quiescent, *this);
}

}  // namespace mra::check
