// The adversarial schedule explorer: hunts schedule-dependent protocol bugs
// in three modes, every run carrying a full check::Monitor.
//
//  * Fuzz (the original mode): registry scenarios and the raw substrates
//    across a seed sweep under randomized latency perturbation — every
//    message gets an extra uniform delay in [0, bound], i.e. delay-bounded
//    cross-link reordering while the network keeps each ordered link FIFO
//    (the paper's §3.1 contract). Sweeps shard over experiment::run_sweep
//    in fixed-size waves, so reports are independent of --threads.
//  * Exhaustive (src/check/dpor.*): systematic enumeration of same-instant
//    commutations on tiny configurations — model checking with a
//    persistent-set-style reduction and explored/pruned coverage stats.
//  * Neighborhood: mutate the perturbation (seed, bound) around a found
//    violation before ddmin minimization, covering nearby schedules and
//    often shrinking the repro further.
//
// Violating runs emit a self-contained `# mra-trace v2` repro: the trace
// embeds algorithm, perturbation seed, delay bound, latency quantum and any
// active mutant, so check_replay(trace) — and `mra_explore --replay` with
// no other flags — reproduces the run bit-identically.
//
// CLI: examples/mra_explore.cpp. CI runs a fixed-budget smoke sweep plus the
// exhaustive mutant smoke and archives repro traces and coverage stats as
// artifacts (see .github/workflows/ci.yml).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "check/dpor.hpp"
#include "check/monitor.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"

namespace mra::check {

// ---------------------------------------------------------------------------
// One fully checked scenario run
// ---------------------------------------------------------------------------

struct CheckOptions {
  /// Oracle configuration; num_sites/num_resources are filled from the spec.
  MonitorConfig monitor;
  bool record_trace = true;  ///< capture the request trace for repro/minimize
  std::uint64_t event_budget = 200'000'000;  ///< livelock guard
  /// Model-checking mode: attached to the fresh simulator before any event
  /// is scheduled. Borrowed; must outlive the call.
  sim::CommutationHook* commutation = nullptr;
};

struct CheckedRun {
  std::vector<Violation> violations;
  bool quiescent = false;  ///< drained cleanly after the measured window
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  scenario::RequestTrace trace;  ///< empty unless record_trace
};

/// Runs `spec` under `algorithm` with the full oracle set attached: measured
/// window, then stop issuing and drain to quiescence, then end-of-run checks
/// (stuck waiters, expired wait deadlines, complexity bound). A tripped
/// event budget is reported as a "livelock" violation, not an exception.
[[nodiscard]] CheckedRun run_checked_scenario(
    const scenario::ScenarioSpec& spec, algo::Algorithm algorithm,
    const CheckOptions& options = {});

/// Replays `trace` with a fresh Monitor attached; returns its violations
/// (budget trips again become a "livelock" violation). `delay_bound` and
/// `seed` re-create the perturbed network of the exploring run.
[[nodiscard]] std::vector<Violation> check_replay(
    const scenario::RequestTrace& trace, algo::Algorithm algorithm,
    const MonitorConfig& monitor, std::uint64_t seed,
    sim::SimDuration delay_bound);

/// Self-contained v2 replay: every knob (algorithm — a factory cli_name,
/// "nt" | "sk" | "ra", or "cm-ring" —, perturbation seed, delay bound,
/// quantum, seeded mutant) comes from the trace header. Activates the
/// trace's mutant for the duration of the replay when mutants are compiled
/// in. Throws std::invalid_argument when the trace has no algorithm header
/// (v1 traces: use the explicit overload above).
[[nodiscard]] std::vector<Violation> check_replay(
    const scenario::RequestTrace& trace, const MonitorConfig& monitor = {});

// ---------------------------------------------------------------------------
// Live progress (obs::Heartbeat integration)
// ---------------------------------------------------------------------------

/// Shared counters an explorer updates as it goes, so a heartbeat thread can
/// report live progress on multi-hour runs. All relaxed atomics: the values
/// feed monitoring only, never the report (which stays deterministic).
/// Borrowed via the configs below; must outlive the explore call.
struct ExploreProgress {
  std::atomic<std::uint64_t> runs_total{0};  ///< set once the sweep is sized
  std::atomic<std::uint64_t> runs_done{0};
  std::atomic<std::uint64_t> schedules_executed{0};  ///< exhaustive mode
  std::atomic<std::uint64_t> orderings_pruned{0};    ///< exhaustive mode
  std::atomic<std::uint64_t> violations{0};
};

// ---------------------------------------------------------------------------
// Scenario explorer (fuzz mode)
// ---------------------------------------------------------------------------

struct ExploreConfig {
  std::vector<scenario::ScenarioSpec> scenarios;  ///< already quick-adjusted
  std::vector<algo::Algorithm> algorithms;
  int seeds_per_case = 10;     ///< seed budget per (scenario, algorithm)
  std::uint64_t base_seed = 1;
  /// Maximum extra per-message delay; each run draws its own bound in
  /// [0, this] from a deterministic meta-stream.
  sim::SimDuration delay_bound = sim::from_ms(2.0);
  bool stop_on_first = true;   ///< stop the whole sweep at the first bug
  MonitorConfig monitor;       ///< oracle template (sizes filled per spec)
  std::string trace_dir;       ///< where repro traces land ("" = don't save)
  int minimize_budget = 48;    ///< replay attempts the minimizer may spend
  /// Sweep parallelism (0 = hardware concurrency). Runs are sharded in
  /// fixed-size waves scanned in deterministic order, so the report — runs,
  /// violating_runs, and the first violation — is identical for any value.
  int threads = 1;
  /// > 0: after a reproducing violation, try this many perturbation
  /// variants (remixed seed, scaled delay bound) around it; the smallest
  /// minimized repro across the violating variants wins.
  int neighborhood_variants = 0;
  ExploreProgress* progress = nullptr;  ///< live counters (null = none)
};

struct FoundViolation {
  std::string scenario;          ///< scenario name or "mutex:<protocol>"
  std::string algorithm;         ///< cli_name, mutex protocol, or "cm-ring"
  std::uint64_t seed = 0;
  sim::SimDuration delay_bound = 0;  ///< this run's drawn perturbation
  std::vector<Violation> violations;
  std::string trace_path;        ///< saved repro trace ("" when disabled)
  std::size_t trace_events = 0;
  std::size_t minimized_events = 0;  ///< == trace_events if not minimizable
  bool replay_reproduces = false;    ///< full-trace replay shows the bug too
  /// Exhaustive mode: the DPOR choice stack of the violating schedule
  /// (replayable via DporConfig::forced_prefix / --choices).
  std::vector<std::uint64_t> commutation;
  std::uint64_t neighborhood_tried = 0;      ///< perturbation variants run
  std::uint64_t neighborhood_violating = 0;  ///< ... that still violated
};

struct ExploreReport {
  std::uint64_t runs = 0;
  std::uint64_t violating_runs = 0;
  // Exhaustive-mode coverage (zero in fuzz mode): schedules actually
  // executed vs. orderings the partial-order reduction pruned.
  std::uint64_t schedules_executed = 0;
  std::uint64_t choice_points = 0;
  std::uint64_t orderings_pruned = 0;
  bool exhaustive_complete = false;
  bool exhaustive_truncated = false;
  std::vector<FoundViolation> found;
};

[[nodiscard]] ExploreReport explore(const ExploreConfig& config);

/// Exhaustive interleaving enumeration of one (scenario, algorithm) pair.
/// The spec should be tiny (see tiny_exhaustive_spec) with
/// system.latency_quantum set so independent deliveries collide at shared
/// instants. Stops at the first violating schedule.
[[nodiscard]] ExploreReport explore_scenario_exhaustive(
    const scenario::ScenarioSpec& spec, algo::Algorithm algorithm,
    const MonitorConfig& monitor, const DporConfig& dpor,
    const std::string& trace_dir = "", ExploreProgress* progress = nullptr);

/// The golden tiny configuration for exhaustive scenario exploration:
/// 3 sites, 2 resources, deterministic-friendly load, latencies quantized
/// onto the network grid. `sites` / `resources` override the defaults.
[[nodiscard]] scenario::ScenarioSpec tiny_exhaustive_spec(int sites = 3,
                                                          int resources = 2);

// ---------------------------------------------------------------------------
// Mutex-substrate explorer (single resource, raw engines)
// ---------------------------------------------------------------------------

enum class MutexProtocol { kNaimiTrehel, kSuzukiKasami, kRicartAgrawala };

[[nodiscard]] const char* to_string(MutexProtocol p);
[[nodiscard]] std::vector<MutexProtocol> all_mutex_protocols();
/// Parses "nt" | "sk" | "ra"; throws std::invalid_argument otherwise.
[[nodiscard]] MutexProtocol mutex_protocol_from_name(const std::string& name);

struct MutexExploreConfig {
  std::vector<MutexProtocol> protocols;
  int num_sites = 8;
  int requests_per_site = 25;
  int seeds_per_case = 10;
  std::uint64_t base_seed = 1;
  sim::SimDuration delay_bound = sim::from_ms(2.0);
  bool stop_on_first = true;
  MonitorConfig monitor;  ///< sizes are overridden (num_resources = 1)
  int threads = 1;        ///< wave-sharded like ExploreConfig::threads
  std::string trace_dir;  ///< where v2 repro traces land ("" = don't save)
  ExploreProgress* progress = nullptr;  ///< live counters (null = none)
};

/// Same sweep over the three single-resource mutual-exclusion substrates;
/// CS-lifecycle events are fed by the harness (engines are not
/// AllocatorNodes), message/clock events flow through the normal hooks.
/// Violating runs record a self-contained v2 trace (algorithm "nt" | "sk" |
/// "ra") that check_replay(trace) re-triggers.
[[nodiscard]] ExploreReport explore_mutex(const MutexExploreConfig& config);

/// Exhaustive enumeration on the mutex substrate: all sites issue at t = 0
/// on a fixed-latency grid, every same-instant commutation is explored.
/// Deterministic: the schedule count, coverage stats and first violation
/// are a pure function of (config, dpor). Uses config.protocols.front().
[[nodiscard]] ExploreReport explore_mutex_exhaustive(
    const MutexExploreConfig& config, const DporConfig& dpor);

// ---------------------------------------------------------------------------
// Chandy-Misra ring explorer (conflict-graph substrate)
// ---------------------------------------------------------------------------

struct CmRingExploreConfig {
  int num_sites = 4;          ///< ring size; resource i = edge (i, i+1 mod N)
  int requests_per_site = 6;
  int seeds_per_case = 10;
  std::uint64_t base_seed = 1;
  sim::SimDuration delay_bound = sim::from_ms(2.0);
  sim::SimDuration cs = sim::from_ms(2.0);  ///< drink duration
  bool stop_on_first = true;
  MonitorConfig monitor;  ///< sizes overridden (resources = num_sites)
  int threads = 1;
  std::string trace_dir;
  ExploreProgress* progress = nullptr;  ///< live counters (null = none)
};

/// Fuzz sweep over a Chandy-Misra ring: each request picks one incident
/// edge (alternating own / left), so neighbours contend for shared bottles.
/// Violating runs record a v2 trace (algorithm "cm-ring") that
/// check_replay(trace) re-triggers.
[[nodiscard]] ExploreReport explore_cm_ring(const CmRingExploreConfig& config);

/// Exhaustive mode on the ring: site pairs (2k, 2k+1) request their shared
/// edge 2k at t = 0; every same-instant commutation is enumerated.
[[nodiscard]] ExploreReport explore_cm_ring_exhaustive(
    const CmRingExploreConfig& config, const DporConfig& dpor);

}  // namespace mra::check
