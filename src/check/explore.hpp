// The adversarial schedule explorer: hunts schedule-dependent protocol bugs
// by running registry scenarios (and the raw mutex substrates) across a seed
// sweep under randomized latency perturbation — every message gets an extra
// uniform delay in [0, bound], i.e. delay-bounded cross-link reordering
// while the network keeps each ordered link FIFO (the paper's §3.1
// contract). Every run carries a full check::Monitor; the sweep stops at the
// first violation and emits a minimized, replayable `# mra-trace v1` repro.
//
// CLI: examples/mra_explore.cpp. CI runs a fixed-budget smoke sweep and
// archives any repro trace as an artifact (see .github/workflows/ci.yml).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "check/monitor.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"

namespace mra::check {

// ---------------------------------------------------------------------------
// One fully checked scenario run
// ---------------------------------------------------------------------------

struct CheckOptions {
  /// Oracle configuration; num_sites/num_resources are filled from the spec.
  MonitorConfig monitor;
  bool record_trace = true;  ///< capture the request trace for repro/minimize
  std::uint64_t event_budget = 200'000'000;  ///< livelock guard
};

struct CheckedRun {
  std::vector<Violation> violations;
  bool quiescent = false;  ///< drained cleanly after the measured window
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  scenario::RequestTrace trace;  ///< empty unless record_trace
};

/// Runs `spec` under `algorithm` with the full oracle set attached: measured
/// window, then stop issuing and drain to quiescence, then end-of-run checks
/// (stuck waiters, expired wait deadlines, complexity bound). A tripped
/// event budget is reported as a "livelock" violation, not an exception.
[[nodiscard]] CheckedRun run_checked_scenario(
    const scenario::ScenarioSpec& spec, algo::Algorithm algorithm,
    const CheckOptions& options = {});

/// Replays `trace` with a fresh Monitor attached; returns its violations
/// (budget trips again become a "livelock" violation). `delay_bound` and
/// `seed` re-create the perturbed network of the exploring run.
[[nodiscard]] std::vector<Violation> check_replay(
    const scenario::RequestTrace& trace, algo::Algorithm algorithm,
    const MonitorConfig& monitor, std::uint64_t seed,
    sim::SimDuration delay_bound);

// ---------------------------------------------------------------------------
// Scenario explorer
// ---------------------------------------------------------------------------

struct ExploreConfig {
  std::vector<scenario::ScenarioSpec> scenarios;  ///< already quick-adjusted
  std::vector<algo::Algorithm> algorithms;
  int seeds_per_case = 10;     ///< seed budget per (scenario, algorithm)
  std::uint64_t base_seed = 1;
  /// Maximum extra per-message delay; each run draws its own bound in
  /// [0, this] from a deterministic meta-stream.
  sim::SimDuration delay_bound = sim::from_ms(2.0);
  bool stop_on_first = true;   ///< stop the whole sweep at the first bug
  MonitorConfig monitor;       ///< oracle template (sizes filled per spec)
  std::string trace_dir;       ///< where repro traces land ("" = don't save)
  int minimize_budget = 48;    ///< replay attempts the minimizer may spend
};

struct FoundViolation {
  std::string scenario;          ///< scenario name or "mutex:<protocol>"
  std::string algorithm;         ///< cli_name or mutex protocol name
  std::uint64_t seed = 0;
  sim::SimDuration delay_bound = 0;  ///< this run's drawn perturbation
  std::vector<Violation> violations;
  std::string trace_path;        ///< saved repro trace ("" when disabled)
  std::size_t trace_events = 0;
  std::size_t minimized_events = 0;  ///< == trace_events if not minimizable
  bool replay_reproduces = false;    ///< full-trace replay shows the bug too
};

struct ExploreReport {
  std::uint64_t runs = 0;
  std::uint64_t violating_runs = 0;
  std::vector<FoundViolation> found;
};

[[nodiscard]] ExploreReport explore(const ExploreConfig& config);

// ---------------------------------------------------------------------------
// Mutex-substrate explorer (single resource, raw engines)
// ---------------------------------------------------------------------------

enum class MutexProtocol { kNaimiTrehel, kSuzukiKasami, kRicartAgrawala };

[[nodiscard]] const char* to_string(MutexProtocol p);
[[nodiscard]] std::vector<MutexProtocol> all_mutex_protocols();
/// Parses "nt" | "sk" | "ra"; throws std::invalid_argument otherwise.
[[nodiscard]] MutexProtocol mutex_protocol_from_name(const std::string& name);

struct MutexExploreConfig {
  std::vector<MutexProtocol> protocols;
  int num_sites = 8;
  int requests_per_site = 25;
  int seeds_per_case = 10;
  std::uint64_t base_seed = 1;
  sim::SimDuration delay_bound = sim::from_ms(2.0);
  bool stop_on_first = true;
  MonitorConfig monitor;  ///< sizes are overridden (num_resources = 1)
};

/// Same sweep over the three single-resource mutual-exclusion substrates;
/// CS-lifecycle events are fed by the harness (engines are not
/// AllocatorNodes), message/clock events flow through the normal hooks.
/// Mutex runs have no request trace — the repro is (protocol, seed, delay).
[[nodiscard]] ExploreReport explore_mutex(const MutexExploreConfig& config);

}  // namespace mra::check
