// Compile-time-gated mutant hooks: seeded protocol bugs used to prove the
// conformance oracles actually detect what they claim to detect
// (tests/test_mutants.cpp). Production builds compile the gate to `false`
// and every hook folds away; a build configured with -DMRA_CHECK_MUTANTS=ON
// (CMake option MRA_CHECK_MUTANTS) makes exactly one mutant activatable at
// runtime via set_active_mutant().
//
// This header is a leaf (no project includes) so instrumentation sites in
// net/, algo/ and mutex/ can include it without layering concerns.
#pragma once

namespace mra::check {

/// Every seeded bug, each mapped to the oracle that must catch it.
enum class Mutant {
  kNone = 0,
  /// LASS enters the CS as soon as *one* required token is owned instead of
  /// all of them -> per-resource mutual-exclusion oracle.
  kLassPrematureEntry,
  /// LASS release() keeps its tokens instead of serving the waiting queue
  /// -> deadlock (stuck-at-quiescence) / starvation oracle.
  kLassDropRelease,
  /// LASS token holder drops the counter-update reply, leaving the
  /// requester in waitS forever -> deadlock / starvation oracle.
  kLassSkipCounterReply,
  /// Incremental acquires its per-resource locks in *descending* id order
  /// on odd sites, breaking the global total order -> wait-for-graph
  /// deadlock oracle (genuine AB/BA cycle).
  kIncrementalReversedAcquire,
  /// Network skips the per-link FIFO watermark clamp, so a low-latency
  /// message overtakes an earlier one on the same link -> FIFO/causality
  /// oracle.
  kNetFifoViolation,
  /// Naimi-Tréhel release() drops the token instead of forwarding it to the
  /// queued next requester -> deadlock oracle (mutex explorer mode).
  kMutexNtDropToken,
  /// Bouabdallah-Laforest loses the control token in transit (the inner
  /// Naimi-Tréhel send drops NtTokenMsg<ControlToken>) -> deadlock
  /// (stuck-at-quiescence) oracle.
  kBlControlTokenLoss,
  /// Maddi stamps every request with timestamp 1 instead of the Lamport
  /// clock, so ties always break by site id -> starvation oracle (high-id
  /// sites wait forever under contention).
  kMaddiTimestampRegression,
  /// Chandy-Misra skips the bottle phase: on winning all forks the site
  /// drinks immediately as if the bottles were already held -> per-resource
  /// mutual-exclusion oracle.
  kCmForkBottleConfusion,
};

[[nodiscard]] const char* to_string(Mutant m);

/// Parses the kebab-case name used by `mra_explore --mutant` and the tests
/// ("lass-premature-entry", ...). Returns kNone for unknown names.
[[nodiscard]] Mutant mutant_from_name(const char* name);

#ifdef MRA_CHECK_MUTANTS
/// The active mutant (kNone by default). Not thread-safe: set it before
/// building/running a system, never concurrently with a sweep.
[[nodiscard]] Mutant active_mutant();
void set_active_mutant(Mutant m);
[[nodiscard]] inline bool mutants_compiled_in() { return true; }
inline bool mutant_enabled(Mutant m) { return m == active_mutant(); }
#else
[[nodiscard]] constexpr Mutant active_mutant() { return Mutant::kNone; }
constexpr void set_active_mutant(Mutant) {}
[[nodiscard]] constexpr bool mutants_compiled_in() { return false; }
constexpr bool mutant_enabled(Mutant) { return false; }
#endif

}  // namespace mra::check
