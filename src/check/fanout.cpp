#include "check/fanout.hpp"

#include "algo/factory.hpp"
#include "core/allocator.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mra::check {

void require_free_observer_slot(const Observer* current, const Observer* self,
                                const char* hook) {
  if (current != nullptr && current != self) {
    throw AlreadyAttachedError(hook);
  }
}

ObserverMux::~ObserverMux() { detach(); }

void ObserverMux::attach(algo::AllocationSystem& system) {
  for (SiteId i = 0; i < system.num_sites(); ++i) {
    require_free_observer_slot(system.node(i).check_observer(), this,
                               "allocator nodes");
  }
  attach(system.simulator(), system.network());
  system_ = &system;
  for (SiteId i = 0; i < system.num_sites(); ++i) {
    system.node(i).set_observer(this);
  }
}

void ObserverMux::attach(sim::Simulator& simulator, net::Network& network) {
  require_free_observer_slot(simulator.observer(), this, "simulator");
  require_free_observer_slot(network.observer(), this, "network");
  sim_ = &simulator;
  net_ = &network;
  simulator.set_observer(this);
  network.set_observer(this);
}

void ObserverMux::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->set_observer(nullptr);
  if (net_ != nullptr && net_->observer() == this) net_->set_observer(nullptr);
  if (system_ != nullptr) {
    for (SiteId i = 0; i < system_->num_sites(); ++i) {
      if (system_->node(i).check_observer() == this) {
        system_->node(i).set_observer(nullptr);
      }
    }
  }
  sim_ = nullptr;
  net_ = nullptr;
  system_ = nullptr;
}

}  // namespace mra::check
