#include "check/oracles.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace mra::check {

namespace {

std::string site_list(const std::vector<SiteId>& sites) {
  std::string out;
  for (SiteId s : sites) {
    if (!out.empty()) out += ", ";
    out += 's';
    out += std::to_string(s);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// MutualExclusionOracle
// ---------------------------------------------------------------------------

MutualExclusionOracle::MutualExclusionOracle(int num_resources)
    : owner_(static_cast<std::size_t>(num_resources), kNoSite) {}

void MutualExclusionOracle::claim(const Event& event, ResourceId r,
                                  ViolationSink& sink) {
  SiteId& owner = owner_[static_cast<std::size_t>(r)];
  if (owner != kNoSite && owner != event.site) {
    Violation v;
    v.oracle = std::string(name());
    v.at = event.at;
    v.sites = {std::min(owner, event.site), std::max(owner, event.site)};
    v.resources = {r};
    v.detail = "resource r" + std::to_string(r) + " granted to s" +
               std::to_string(event.site) + " while held by s" +
               std::to_string(owner);
    sink.report(std::move(v));
    // The later claimant becomes the tracked owner so a matching release
    // keeps the books consistent.
  }
  owner = event.site;
}

void MutualExclusionOracle::on_event(const Event& event, ViolationSink& sink) {
  switch (event.type) {
    case EventType::kHold:
      claim(event, event.resource, sink);
      break;
    case EventType::kAcquire:
      if (event.resources != nullptr) {
        event.resources->for_each(
            [&](ResourceId r) { claim(event, r, sink); });
      }
      break;
    case EventType::kRelease:
      if (event.resources != nullptr) {
        event.resources->for_each([&](ResourceId r) {
          SiteId& owner = owner_[static_cast<std::size_t>(r)];
          if (owner == event.site) owner = kNoSite;
        });
      }
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// DeadlockOracle
// ---------------------------------------------------------------------------

DeadlockOracle::DeadlockOracle(int num_sites, int num_resources)
    : waiting_(static_cast<std::size_t>(num_sites), false) {
  held_.reserve(static_cast<std::size_t>(num_sites));
  wanted_.reserve(static_cast<std::size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    held_.emplace_back(num_resources);
    wanted_.emplace_back(num_resources);
  }
}

void DeadlockOracle::on_event(const Event& event, ViolationSink& sink) {
  const auto s = static_cast<std::size_t>(event.site);
  switch (event.type) {
    case EventType::kRequest:
      if (event.resources != nullptr) wanted_[s] = *event.resources;
      waiting_[s] = true;
      check_cycle_from(event.site, event.at, sink);
      break;
    case EventType::kHold:
      held_[s].insert(event.resource);
      // A new hold can close a cycle through any waiter that wants it.
      check_cycle_from(event.site, event.at, sink);
      break;
    case EventType::kAcquire:
      if (event.resources != nullptr) held_[s] |= *event.resources;
      waiting_[s] = false;
      // No cycle check: a site in CS wants nothing, so it has no outgoing
      // wait-for edge and cannot be part of a cycle.
      break;
    case EventType::kRelease:
      held_[s].clear();
      wanted_[s].clear();
      waiting_[s] = false;
      break;
    default:
      break;
  }
}

void DeadlockOracle::check_cycle_from(SiteId start, sim::SimTime at,
                                      ViolationSink& sink) {
  // DFS over wait-for edges u -> v (u waiting, wanted(u) \ held(u) meets
  // held(v)). N is small (tests <= 64 sites), edges are bitset intersects.
  const int n = static_cast<int>(held_.size());
  std::vector<SiteId> path;
  std::vector<std::uint8_t> state(static_cast<std::size_t>(n), 0);

  // Iterative DFS with an explicit path to recover the cycle.
  std::vector<std::pair<SiteId, int>> frames;  // (site, next candidate)
  frames.emplace_back(start, 0);
  while (!frames.empty()) {
    auto& [u, next] = frames.back();
    const auto ui = static_cast<std::size_t>(u);
    if (next == 0) {
      state[ui] = 1;  // on path
      path.push_back(u);
    }
    bool descended = false;
    if (waiting_[ui]) {
      const ResourceSet missing = wanted_[ui].set_difference(held_[ui]);
      for (int v = next; v < n; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (vi == ui || held_[vi].empty()) continue;
        if (!missing.intersects(held_[vi])) continue;
        if (state[vi] == 1) {
          // Cycle: the path suffix from v to u, closed by u -> v.
          auto it = std::find(path.begin(), path.end(), static_cast<SiteId>(v));
          std::vector<SiteId> cycle(it, path.end());
          std::vector<SiteId> sorted = cycle;
          std::sort(sorted.begin(), sorted.end());
          std::string signature;
          for (SiteId cs : sorted) signature += std::to_string(cs) + ",";
          if (std::find(reported_cycles_.begin(), reported_cycles_.end(),
                        signature) == reported_cycles_.end()) {
            reported_cycles_.push_back(signature);
            Violation viol;
            viol.oracle = std::string(name());
            viol.at = at;
            viol.sites = sorted;
            ResourceSet involved(wanted_[ui].universe_size());
            for (SiteId cs : cycle) {
              const auto ci = static_cast<std::size_t>(cs);
              involved |= wanted_[ci];
              involved |= held_[ci];
            }
            for (ResourceId r : involved.to_vector()) {
              viol.resources.push_back(r);
            }
            viol.detail =
                "wait-for cycle: " + site_list(cycle) + " -> s" +
                std::to_string(cycle.front()) +
                " (each holds a resource the next one waits for)";
            sink.report(std::move(viol));
          }
          continue;
        }
        if (state[vi] == 0) {
          next = v + 1;
          frames.emplace_back(static_cast<SiteId>(v), 0);
          descended = true;
          break;
        }
      }
    }
    if (!descended) {
      state[ui] = 2;  // done
      path.pop_back();
      frames.pop_back();
    }
  }
}

void DeadlockOracle::finalize(sim::SimTime now, bool quiescent,
                              ViolationSink& sink) {
  if (!quiescent) return;
  std::vector<SiteId> stuck;
  ResourceSet involved(held_.empty() ? 0 : held_[0].universe_size());
  for (std::size_t s = 0; s < waiting_.size(); ++s) {
    if (waiting_[s]) {
      stuck.push_back(static_cast<SiteId>(s));
      involved |= wanted_[s];
    }
  }
  if (stuck.empty()) return;
  Violation v;
  v.oracle = std::string(name());
  v.at = now;
  v.sites = stuck;
  for (ResourceId r : involved.to_vector()) v.resources.push_back(r);
  v.detail = "event queue drained with " + std::to_string(stuck.size()) +
             " site(s) still waiting: " + site_list(stuck);
  sink.report(std::move(v));
}

// ---------------------------------------------------------------------------
// StarvationOracle
// ---------------------------------------------------------------------------

StarvationOracle::StarvationOracle(int num_sites, sim::SimDuration horizon)
    : horizon_(horizon),
      waiting_seq_(static_cast<std::size_t>(num_sites), -1),
      waiting_since_(static_cast<std::size_t>(num_sites), 0) {}

void StarvationOracle::report(SiteId site, sim::SimTime now,
                              ViolationSink& sink) {
  const auto s = static_cast<std::size_t>(site);
  Violation v;
  v.oracle = std::string(name());
  v.at = now;
  v.sites = {site};
  v.detail = 's';
  v.detail += std::to_string(site) + " request #" +
              std::to_string(waiting_seq_[s]) + " waiting since " +
              std::to_string(sim::to_ms(waiting_since_[s])) +
              "ms, longer than the horizon of " +
              std::to_string(sim::to_ms(horizon_)) + "ms";
  // Report once per request: forget the wait so later deadlines skip it.
  waiting_seq_[s] = -1;
  sink.report(std::move(v));
}

void StarvationOracle::expire(sim::SimTime now, ViolationSink& sink) {
  // Strictly before `now`: on_advance fires before the instant's events, so
  // a grant happening exactly at the deadline (wait == horizon, not longer)
  // must not be flagged.
  while (!deadlines_.empty() && deadlines_.front().at < now) {
    const Deadline d = deadlines_.front();
    deadlines_.pop_front();
    const auto s = static_cast<std::size_t>(d.site);
    if (waiting_seq_[s] == d.seq) report(d.site, now, sink);
  }
}

void StarvationOracle::on_event(const Event& event, ViolationSink& sink) {
  const auto s = static_cast<std::size_t>(event.site);
  switch (event.type) {
    case EventType::kRequest:
      waiting_seq_[s] = event.seq;
      waiting_since_[s] = event.at;
      // Event times are nondecreasing, so the deque stays sorted.
      deadlines_.push_back(Deadline{event.at + horizon_, event.site,
                                    event.seq});
      (void)sink;
      break;
    case EventType::kAcquire:
      waiting_seq_[s] = -1;
      break;
    default:
      break;
  }
}

void StarvationOracle::on_advance(sim::SimTime now, ViolationSink& sink) {
  expire(now, sink);
}

void StarvationOracle::finalize(sim::SimTime now, bool quiescent,
                                ViolationSink& sink) {
  (void)quiescent;
  // Catch deadlines between the last instant and the end of the window —
  // and, at quiescence, waits that will now never be served.
  expire(now, sink);
}

// ---------------------------------------------------------------------------
// FifoOracle
// ---------------------------------------------------------------------------

FifoOracle::FifoOracle(int num_sites)
    : n_(num_sites),
      links_(static_cast<std::size_t>(num_sites) *
             static_cast<std::size_t>(num_sites)),
      send_clock_(static_cast<std::size_t>(num_sites), 0),
      last_delivered_tick_(static_cast<std::size_t>(num_sites) *
                               static_cast<std::size_t>(num_sites),
                           0) {}

void FifoOracle::on_event(const Event& event, ViolationSink& sink) {
  if (event.type != EventType::kSend && event.type != EventType::kDeliver) {
    return;
  }
  if (event.site < 0 || event.site >= n_ || event.peer < 0 ||
      event.peer >= n_) {
    return;  // foreign site ids (harness-level events), nothing to check
  }
  const std::size_t link =
      static_cast<std::size_t>(event.site) * static_cast<std::size_t>(n_) +
      static_cast<std::size_t>(event.peer);

  if (event.type == EventType::kSend) {
    const std::uint64_t tick =
        ++send_clock_[static_cast<std::size_t>(event.site)];
    links_[link].push_back(InFlight{event.seq, event.at, tick});
    return;
  }

  // kDeliver: must match the oldest in-flight message on this link.
  auto& q = links_[link];
  auto it = std::find_if(q.begin(), q.end(), [&](const InFlight& f) {
    return f.msg_id == event.seq;
  });
  if (it == q.end()) return;  // observer attached mid-flight; skip
  const InFlight flight = *it;
  const bool overtook = it != q.begin();
  q.erase(it);

  if (overtook || flight.sender_tick <= last_delivered_tick_[link]) {
    Violation v;
    v.oracle = std::string(name());
    v.at = event.at;
    v.sites = {std::min(event.site, event.peer),
               std::max(event.site, event.peer)};
    v.detail = "FIFO violated on link s" + std::to_string(event.site) +
               " -> s" + std::to_string(event.peer) + ": message #" +
               std::to_string(event.seq) + " (sent " +
               std::to_string(sim::to_ms(flight.sent_at)) +
               "ms) overtook an earlier message on the same link";
    sink.report(std::move(v));
  }
  last_delivered_tick_[link] =
      std::max(last_delivered_tick_[link], flight.sender_tick);

  if (event.at < flight.sent_at) {
    Violation v;
    v.oracle = std::string(name());
    v.at = event.at;
    v.sites = {std::min(event.site, event.peer),
               std::max(event.site, event.peer)};
    v.detail = "message #" + std::to_string(event.seq) +
               " delivered before it was sent (causality broken)";
    sink.report(std::move(v));
  }
}

// ---------------------------------------------------------------------------
// ComplexityOracle
// ---------------------------------------------------------------------------

ComplexityOracle::ComplexityOracle(double max_messages_per_cs)
    : bound_(max_messages_per_cs) {}

void ComplexityOracle::on_event(const Event& event, ViolationSink& sink) {
  (void)sink;
  switch (event.type) {
    case EventType::kSend:
      ++sends_;
      if (!event.kind.empty()) ++by_kind_[std::string(event.kind)];
      break;
    case EventType::kAcquire:
      ++acquires_;
      break;
    default:
      break;
  }
}

void ComplexityOracle::finalize(sim::SimTime now, bool quiescent,
                                ViolationSink& sink) {
  (void)quiescent;
  if (bound_ <= 0.0 || acquires_ == 0) return;
  const double per_cs = messages_per_cs();
  if (per_cs > bound_) {
    Violation v;
    v.oracle = std::string(name());
    v.at = now;
    v.detail = "average " + std::to_string(per_cs) +
               " messages per CS entry exceeds the configured bound of " +
               std::to_string(bound_) + " (" + std::to_string(sends_) +
               " msgs / " + std::to_string(acquires_) + " CS)";
    sink.report(std::move(v));
  }
}

}  // namespace mra::check
