#include "check/violation.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "experiment/json.hpp"

namespace mra::check {

namespace {

void write_string_array(std::ostream& os, const std::vector<std::string>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << experiment::json_escape(v[i]) << '"';
  }
  os << "]";
}

template <typename Int>
void write_int_array(std::ostream& os, const std::vector<Int>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i];
  }
  os << "]";
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — exactly the subset write_violations_json produces.
// ---------------------------------------------------------------------------
class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text) {}

  std::vector<Violation> parse() {
    skip_ws();
    expect('[');
    std::vector<Violation> out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_violation());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' after violation object");
    }
    return out;
  }

 private:
  Violation parse_violation() {
    Violation v;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "oracle") {
        v.oracle = parse_string();
      } else if (key == "at_ns") {
        v.at = parse_integer();  // not via double: SimTime can exceed 2^53
      } else if (key == "sites") {
        for (double d : parse_number_array()) {
          v.sites.push_back(static_cast<SiteId>(d));
        }
      } else if (key == "resources") {
        for (double d : parse_number_array()) {
          v.resources.push_back(static_cast<ResourceId>(d));
        }
      } else if (key == "detail") {
        v.detail = parse_string();
      } else if (key == "recent_events") {
        v.recent_events = parse_string_array();
      } else {
        skip_value();  // unknown / redundant key (at_ms)
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in violation object");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // json_escape only emits \u00XX for control characters.
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            int code = 0;
            try {
              code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
            } catch (const std::exception&) {
              fail("bad \\u escape");
            }
            pos_ += 4;
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  std::int64_t parse_integer() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    try {
      return std::stoll(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed integer");
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  std::vector<double> parse_number_array() {
    std::vector<double> out;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      out.push_back(parse_number());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in number array");
    }
    return out;
  }

  std::vector<std::string> parse_string_array() {
    std::vector<std::string> out;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      out.push_back(parse_string());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in string array");
    }
    return out;
  }

  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '[') {
      ++pos_;
      int depth = 1;
      bool in_string = false;
      while (pos_ < s_.size() && depth > 0) {
        const char k = s_[pos_++];
        if (in_string) {
          if (k == '\\') {
            ++pos_;
          } else if (k == '"') {
            in_string = false;
          }
        } else if (k == '"') {
          in_string = true;
        } else if (k == '[') {
          ++depth;
        } else if (k == ']') {
          --depth;
        }
      }
    } else {
      (void)parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  char next() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_++];
  }
  void expect(char c) {
    if (next() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("violation JSON: " + what + " at offset " +
                             std::to_string(pos_));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_violations_json(std::ostream& os,
                           const std::vector<Violation>& violations,
                           int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  os << "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << (i == 0 ? "\n" : ",\n") << pad2 << "{";
    os << "\"oracle\": \"" << experiment::json_escape(v.oracle) << "\", ";
    os << "\"at_ns\": " << v.at << ", ";
    os << "\"at_ms\": " << sim::to_ms(v.at) << ", ";
    os << "\"sites\": ";
    write_int_array(os, v.sites);
    os << ", \"resources\": ";
    write_int_array(os, v.resources);
    os << ", \"detail\": \"" << experiment::json_escape(v.detail) << "\", ";
    os << "\"recent_events\": ";
    write_string_array(os, v.recent_events);
    os << "}";
  }
  if (!violations.empty()) os << "\n" << pad;
  os << "]";
}

std::vector<Violation> read_violations_json(const std::string& text) {
  Reader reader(text);
  return reader.parse();
}

std::vector<Violation> read_violations_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  return read_violations_json(text);
}

}  // namespace mra::check
