#include "scenario/registry.hpp"

#include <stdexcept>

namespace mra::scenario {

namespace {

/// The paper's §5.1 baseline: N=32, M=80, γ=0.6 ms, uniform resources,
/// closed-loop exponential think times.
ScenarioSpec paper_base(int phi, double rho) {
  ScenarioSpec s;
  s.system.num_sites = 32;
  s.system.num_resources = 80;
  s.system.network_latency = sim::from_ms(0.6);
  s.workload = workload::medium_load(phi, 80);
  s.workload.rho = rho;
  return s;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> all;

  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/5.0);
    s.name = "paper-phi4";
    s.summary = "the paper's Fig. 6 setup: phi=4, medium load (rho=5)";
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/80, /*rho=*/5.0);
    s.name = "paper-phi80";
    s.summary = "the paper's Fig. 7 setup: phi=80, medium load (rho=5)";
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/0.5);
    s.name = "high-load-phi4";
    s.summary = "phi=4 under the paper's high load (rho=0.5)";
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/8, /*rho=*/2.0);
    s.name = "zipf-hot";
    s.summary = "Zipf resource popularity (s=1.2): few very hot resources";
    s.popularity.kind = Popularity::kZipf;
    s.popularity.zipf_exponent = 1.2;
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/2.0);
    s.name = "hotspot-k4";
    s.summary = "4 hot resources carry 80% of all picks";
    s.popularity.kind = Popularity::kHotspot;
    s.popularity.hot_k = 4;
    s.popularity.hot_mass = 0.8;
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/5.0);
    s.name = "bursty";
    s.summary = "ON/OFF bursty arrivals: 10x think rate during ON phases";
    s.arrival.kind = Arrival::kOnOffBursty;
    s.arrival.on_mean = sim::from_ms(200);
    s.arrival.off_mean = sim::from_ms(800);
    s.arrival.burst_think_scale = 0.1;
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/5.0);
    s.name = "open-loop";
    s.summary = "open-loop Poisson arrivals with per-site FIFO queues";
    s.arrival.kind = Arrival::kOpenPoisson;
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/5.0);
    s.name = "heterogeneous";
    s.summary = "25% heavy sites: 4x larger requests, 2x longer CS";
    s.heterogeneity.heavy_fraction = 0.25;
    s.heterogeneity.heavy_phi_scale = 4.0;
    s.heterogeneity.heavy_cs_scale = 2.0;
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s = paper_base(/*phi=*/4, /*rho=*/5.0);
    s.name = "clouds-hierarchical";
    s.summary = "the paper's §6 Clouds target: 4 clusters, 10 ms WAN links";
    s.system.hierarchical_clusters = 4;
    s.system.hierarchical_remote_latency = sim::from_ms(10.0);
    all.push_back(std::move(s));
  }

  for (const ScenarioSpec& s : all) s.validate();
  return all;
}

}  // namespace

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> all = build_registry();
  return all;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : registry()) names.push_back(s.name);
  return names;
}

const ScenarioSpec& find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : registry()) {
    if (s.name == name) return s;
  }
  std::string valid;
  for (const std::string& n : scenario_names()) {
    if (!valid.empty()) valid += " | ";
    valid += n;
  }
  throw std::invalid_argument("unknown scenario \"" + name +
                              "\" (valid: " + valid + ")");
}

}  // namespace mra::scenario
