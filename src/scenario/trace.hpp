// Request-trace record/replay.
//
// A RequestTrace is the full request sequence of one run — for every
// request: birth time, site, CS duration, and the exact resource set. Traces
// make algorithm comparisons exact: replayed against any AllocatorNode
// implementation, every algorithm sees bit-identical input (same sites, same
// times, same resource sets), not merely identically-distributed input.
//
// On-disk format (`# mra-trace v1`), line-oriented and diff-friendly:
//
//   # mra-trace v1
//   scenario zipf-hot          (optional provenance)
//   sites 32
//   resources 80
//   seed 1
//   latency_ns 600000
//   clusters 4                 (optional: two-level topology)
//   wan_ns 10000000            (optional: inter-cluster latency)
//   <at_ns> <site> <cs_ns> <r1,r2,...>
//   ...
//
// Header keys come before events; `#` lines are comments; event lines start
// with a digit. Events are stored in birth-time order. The network keys let
// replay rebuild the topology the trace was recorded under — replaying a
// WAN-recorded trace on a flat 0.6 ms network would silently change what is
// being measured.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra::scenario {

/// One request birth. `resources` is sorted ascending and non-empty.
struct TraceEvent {
  sim::SimTime at = 0;         ///< birth (issue) time
  SiteId site = 0;
  sim::SimDuration cs = 0;     ///< critical-section duration
  std::vector<ResourceId> resources;

  bool operator==(const TraceEvent&) const = default;
};

struct RequestTrace {
  std::string scenario;  ///< provenance label, may be empty
  int num_sites = 0;
  int num_resources = 0;
  std::uint64_t seed = 0;

  /// Network the trace was recorded under, so replay reproduces it.
  sim::SimDuration network_latency = sim::from_ms(0.6);
  int hierarchical_clusters = 1;  ///< > 1: two-level topology
  sim::SimDuration hierarchical_remote_latency = 0;

  std::vector<TraceEvent> events;

  /// Structural checks: positive dimensions, sites/resources in range,
  /// non-empty sorted resource lists, non-negative times. Throws
  /// std::invalid_argument naming the first offending event.
  void validate() const;

  /// Largest request size in the trace (1 when empty).
  [[nodiscard]] int max_request_size() const;
};

/// Serializes in the v1 line format above.
void write_trace(std::ostream& os, const RequestTrace& trace);
void save_trace(const std::string& path, const RequestTrace& trace);

/// Parses the v1 format. Throws std::runtime_error on malformed input and
/// std::invalid_argument when the parsed trace fails validate().
[[nodiscard]] RequestTrace read_trace(std::istream& is);
[[nodiscard]] RequestTrace load_trace(const std::string& path);

}  // namespace mra::scenario
