// Request-trace record/replay.
//
// A RequestTrace is the full request sequence of one run — for every
// request: birth time, site, CS duration, and the exact resource set. Traces
// make algorithm comparisons exact: replayed against any AllocatorNode
// implementation, every algorithm sees bit-identical input (same sites, same
// times, same resource sets), not merely identically-distributed input.
//
// On-disk format (`# mra-trace v1`), line-oriented and diff-friendly:
//
//   # mra-trace v1
//   scenario zipf-hot          (optional provenance)
//   sites 32
//   resources 80
//   seed 1
//   latency_ns 600000
//   clusters 4                 (optional: two-level topology)
//   wan_ns 10000000            (optional: inter-cluster latency)
//   <at_ns> <site> <cs_ns> <r1,r2,...>
//   ...
//
// Header keys come before events; `#` lines are comments; event lines start
// with a digit. Events are stored in birth-time order. The network keys let
// replay rebuild the topology the trace was recorded under — replaying a
// WAN-recorded trace on a flat 0.6 ms network would silently change what is
// being measured.
//
// `# mra-trace v2` extends v1 with self-contained repro provenance, so a
// trace alone (no command-line flags) replays bit-identically:
//
//   # mra-trace v2
//   ...v1 headers...
//   algorithm lass-loan         (what to replay the trace against)
//   delay_bound_ns 1000000      (BoundedDelayLatency perturbation bound)
//   quantum_ns 600000           (latency quantization grid, model checking)
//   mutant bl-control-token-loss  (seeded bug active during the run)
//
// All v2 keys are optional; in v2 the `seed` header is the *perturbation*
// seed that replay must honor to reproduce the latency schedule. Writers
// emit the v2 magic only when a v2 key is set, so plain request traces stay
// v1 and diff-stable. Readers accept both versions; any other version line
// is rejected with a named "unsupported trace version" error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace mra::scenario {

/// One request birth. `resources` is sorted ascending and non-empty.
struct TraceEvent {
  sim::SimTime at = 0;         ///< birth (issue) time
  SiteId site = 0;
  sim::SimDuration cs = 0;     ///< critical-section duration
  std::vector<ResourceId> resources;

  bool operator==(const TraceEvent&) const = default;
};

struct RequestTrace {
  std::string scenario;  ///< provenance label, may be empty
  int num_sites = 0;
  int num_resources = 0;
  std::uint64_t seed = 0;

  /// Network the trace was recorded under, so replay reproduces it.
  sim::SimDuration network_latency = sim::from_ms(0.6);
  int hierarchical_clusters = 1;  ///< > 1: two-level topology
  sim::SimDuration hierarchical_remote_latency = 0;

  // v2 provenance (all optional; see format comment above) -------------------
  std::string algorithm;  ///< CLI name to replay against; empty = caller picks
  sim::SimDuration latency_delay_bound = 0;  ///< perturbation bound
  sim::SimDuration latency_quantum = 0;      ///< quantization grid
  std::string mutant;  ///< seeded bug active during the run, may be empty

  /// True when any v2 provenance field is set — the writer then emits the
  /// v2 magic; a pure-v1 trace round-trips byte-identically as v1.
  [[nodiscard]] bool has_v2_fields() const {
    return !algorithm.empty() || latency_delay_bound > 0 ||
           latency_quantum > 0 || !mutant.empty();
  }

  std::vector<TraceEvent> events;

  /// Structural checks: positive dimensions, sites/resources in range,
  /// non-empty sorted resource lists, non-negative times. Throws
  /// std::invalid_argument naming the first offending event.
  void validate() const;

  /// Largest request size in the trace (1 when empty).
  [[nodiscard]] int max_request_size() const;
};

/// Serializes in the line format above: v2 magic iff has_v2_fields().
void write_trace(std::ostream& os, const RequestTrace& trace);
void save_trace(const std::string& path, const RequestTrace& trace);

/// Parses the v1 or v2 format. Throws std::runtime_error on malformed input
/// (including "unsupported trace version" for any other version line) and
/// std::invalid_argument when the parsed trace fails validate().
[[nodiscard]] RequestTrace read_trace(std::istream& is);
[[nodiscard]] RequestTrace load_trace(const std::string& path);

}  // namespace mra::scenario
