// Runs a ScenarioSpec against any algorithm, records request traces, and
// replays recorded traces deterministically.
//
//   run_scenario    — warm-up + measured window, like experiment::
//                     run_experiment but driven by the scenario's pluggable
//                     generators (popularity, arrivals, heterogeneity);
//   record_scenario — same run, but also returns every request born during
//                     it as a RequestTrace;
//   replay_trace    — feeds a RequestTrace to a freshly built system in
//                     open-loop fashion (arrivals at the recorded times,
//                     FIFO queue per site) while checking the §1 safety
//                     property on every grant, and runs to quiescence so
//                     liveness is observable as completed_all.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "algo/factory.hpp"
#include "experiment/experiment.hpp"
#include "metrics/collector.hpp"
#include "scenario/generator.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "workload/workload.hpp"

namespace mra::check {
class Observer;
}  // namespace mra::check

namespace mra::scenario {

/// Drives one site: generates requests from the scenario's components and
/// feeds them to the AllocatorNode, closed- or open-loop depending on the
/// arrival process. The open-loop path queues arrivals born while a request
/// is in flight (one outstanding request per site, hypothesis 4).
class ScenarioDriver {
 public:
  ScenarioDriver(AllocatorNode& node, sim::Simulator& simulator,
                 const workload::WorkloadConfig& site_cfg,
                 const PopularitySpec& popularity, const ArrivalSpec& arrival,
                 sim::Rng rng, metrics::Collector& collector,
                 RequestTrace* record);

  void start();
  void stop() { stopped_ = true; }
  [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_; }

 private:
  struct PendingRequest {
    sim::SimTime born = 0;
    ResourceSet resources;
    sim::SimDuration cs = 0;
  };

  void make_request();         ///< draw + record + enqueue, then dispatch
  void schedule_next_birth();  ///< closed: after release; open: after birth
  void try_dispatch();
  void on_granted();
  void on_cs_done();

  AllocatorNode& node_;
  sim::Simulator& sim_;
  workload::RequestGenerator gen_;  ///< sizes, CS durations (per-site cfg)
  sim::Rng rng_;                    ///< picker + arrival draws
  std::unique_ptr<ResourcePicker> picker_;
  std::unique_ptr<ArrivalProcess> arrival_;
  metrics::Collector& collector_;
  RequestTrace* record_;  ///< may be null

  std::deque<PendingRequest> pending_;  ///< FIFO; open loop can grow it
  bool in_flight_ = false;
  sim::SimDuration current_cs_ = 0;
  bool stopped_ = false;
  std::uint64_t cycles_ = 0;
};

/// Drivers for every site of a system plus the shared collector — the
/// scenario counterpart of workload::WorkloadRunner.
class ScenarioRunner {
 public:
  ScenarioRunner(algo::AllocationSystem& system, const ScenarioSpec& spec,
                 std::uint64_t seed, std::size_t size_buckets = 6,
                 RequestTrace* record = nullptr);

  void start();
  void stop_issuing();

  [[nodiscard]] metrics::Collector& collector() { return collector_; }
  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }

 private:
  metrics::Collector collector_;
  std::vector<std::unique_ptr<ScenarioDriver>> drivers_;
};

/// Runs `spec` with `algorithm` (overriding spec.system.algorithm) through
/// warm-up + measured window. Deterministic: same spec + seed = bit-identical
/// result. Throws sim::EventBudgetExceeded on protocol livelock.
[[nodiscard]] experiment::ExperimentResult run_scenario(
    const ScenarioSpec& spec, algo::Algorithm algorithm);

/// Same run with an observer (a check::Monitor, an obs::FlightRecorder, or
/// a check::ObserverMux composing both) wired into the simulator, network
/// and every node *before* the first event fires, so it sees the complete
/// stream including warm-up. Borrowed; must outlive the call. Note the
/// network's cumulative counters are reset at the warm-up boundary (as in
/// the plain overload) — observers sampling them see the reset.
///
/// `on_wired` (optional) runs right after the observer is wired, before any
/// event fires — the spot to bind engine gauges to the freshly built system
/// (obs::FlightRecorder::enable_gauges needs its simulator and network).
[[nodiscard]] experiment::ExperimentResult run_scenario(
    const ScenarioSpec& spec, algo::Algorithm algorithm,
    check::Observer* observer,
    const std::function<void(algo::AllocationSystem&)>& on_wired = {});

/// Same run, returning the trace of every request born (warm-up included).
[[nodiscard]] RequestTrace record_scenario(const ScenarioSpec& spec,
                                           algo::Algorithm algorithm);

struct ReplayOptions {
  std::uint64_t seed = 1;  ///< network/protocol seed (trace fixes the rest)
  /// 0 = rebuild the network the trace was recorded under (header fields);
  /// > 0 overrides the base latency, e.g. to study latency sensitivity.
  sim::SimDuration network_latency = 0;
  double latency_jitter = 0.0;
  /// > 0: extra uniform per-message delay in [0, bound] — re-creates the
  /// schedule explorer's perturbed network (src/check/explore.hpp).
  sim::SimDuration latency_delay_bound = 0;
  /// > 0: round latencies up onto this grid (model-checking replays).
  sim::SimDuration latency_quantum = 0;
  std::size_t size_buckets = 6;
  /// Conformance observer wired into the replayed system's simulator,
  /// network and nodes (typically a check::Monitor). Borrowed; must outlive
  /// the call.
  check::Observer* observer = nullptr;
};

struct ReplayResult {
  experiment::ExperimentResult metrics;
  bool safety_ok = true;      ///< no conflicting grants ever overlapped
  bool completed_all = false; ///< every trace event granted and released
  sim::SimTime end_time = 0;  ///< when the replay quiesced
};

/// Replays `trace` against `algorithm` and runs to quiescence. The whole
/// replay is measured (no warm-up cut): identical traces make the comparison
/// exact, so discarding a prefix is the caller's choice, not a necessity.
[[nodiscard]] ReplayResult replay_trace(const RequestTrace& trace,
                                        algo::Algorithm algorithm,
                                        const ReplayOptions& options = {});

}  // namespace mra::scenario
