// The named-scenario registry: every workload the project can run by name,
// documented in one place. `mra_scenarios --list` prints this table and the
// README mirrors it; adding a scenario is one entry in registry.cpp.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace mra::scenario {

/// All registered scenarios, each already validated. Stable order.
[[nodiscard]] const std::vector<ScenarioSpec>& registry();

/// Registered names, in registry order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Looks a scenario up by name; throws std::invalid_argument listing the
/// valid names when absent.
[[nodiscard]] const ScenarioSpec& find_scenario(const std::string& name);

}  // namespace mra::scenario
