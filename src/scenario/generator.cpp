#include "scenario/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mra::scenario {

namespace {

/// The paper's §5.1 choice: delegates to the same Fisher-Yates helper
/// workload::RequestGenerator uses, so the two paths cannot drift.
class UniformPicker final : public ResourcePicker {
 public:
  explicit UniformPicker(int num_resources) : m_(num_resources) {}

  ResourceSet draw(int size, sim::Rng& rng) override {
    return workload::draw_uniform_resources(size, m_, rng);
  }

  const char* name() const override { return "uniform"; }

 private:
  int m_;
};

/// Weighted sampling without replacement via Efraimidis-Spirakis keys:
/// key_r = u_r^(1/w_r), take the `size` largest keys. One next_double()
/// per resource per draw — O(M) RNG consumption, fully deterministic, and
/// correct for any size up to M (no rejection loop that could degenerate).
class WeightedPicker final : public ResourcePicker {
 public:
  WeightedPicker(std::vector<double> weights, const char* name)
      : weights_(std::move(weights)), name_(name) {}

  ResourceSet draw(int size, sim::Rng& rng) override {
    const auto m = weights_.size();
    keys_.resize(m);
    order_.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      const double u = rng.next_double();
      // u == 0 would give key 0 for every weight; nudge into (0, 1).
      keys_[r] = std::pow(std::max(u, 1e-300), 1.0 / weights_[r]);
      order_[r] = static_cast<ResourceId>(r);
    }
    std::partial_sort(order_.begin(),
                      order_.begin() + static_cast<std::ptrdiff_t>(size),
                      order_.end(), [this](ResourceId a, ResourceId b) {
                        const auto ka = keys_[static_cast<std::size_t>(a)];
                        const auto kb = keys_[static_cast<std::size_t>(b)];
                        return ka != kb ? ka > kb : a < b;
                      });
    ResourceSet out(static_cast<ResourceId>(m));
    for (int i = 0; i < size; ++i) out.insert(order_[static_cast<std::size_t>(i)]);
    return out;
  }

  const char* name() const override { return name_; }

 private:
  std::vector<double> weights_;
  const char* name_;
  std::vector<double> keys_;       // scratch, reused across draws
  std::vector<ResourceId> order_;  // scratch
};

/// The paper's closed-loop think time: Exp(β · scale).
class ClosedExponentialArrival final : public ArrivalProcess {
 public:
  explicit ClosedExponentialArrival(double mean) : mean_(mean) {}

  sim::SimDuration next_delay(sim::SimTime /*now*/, sim::Rng& rng) override {
    return std::max<sim::SimDuration>(
        1, static_cast<sim::SimDuration>(rng.exponential(mean_)));
  }

 private:
  double mean_;
};

class OpenPoissonArrival final : public ArrivalProcess {
 public:
  explicit OpenPoissonArrival(double mean) : mean_(mean) {}

  bool open_loop() const override { return true; }

  sim::SimDuration next_delay(sim::SimTime /*now*/, sim::Rng& rng) override {
    return std::max<sim::SimDuration>(
        1, static_cast<sim::SimDuration>(rng.exponential(mean_)));
  }

 private:
  double mean_;
};

/// Closed loop gated by exponential ON/OFF phases: think time accrues only
/// while ON (a Markov-modulated process). A delay that would cross an OFF
/// phase is pushed past it, producing request bursts during ON windows.
class OnOffBurstyArrival final : public ArrivalProcess {
 public:
  OnOffBurstyArrival(double think_mean, sim::SimDuration on_mean,
                     sim::SimDuration off_mean)
      : think_mean_(think_mean), on_mean_(on_mean), off_mean_(off_mean) {}

  sim::SimDuration next_delay(sim::SimTime now, sim::Rng& rng) override {
    if (!initialized_) {
      initialized_ = true;
      on_ = true;
      phase_end_ = now + draw_phase(rng);
    }
    advance_to(now, rng);
    double remaining = rng.exponential(think_mean_);
    sim::SimTime t = now;
    while (true) {
      if (!on_) {
        t = phase_end_;
        toggle(rng);
        continue;
      }
      const double avail = static_cast<double>(phase_end_ - t);
      if (remaining <= avail) {
        const auto fire =
            t + static_cast<sim::SimDuration>(remaining);
        return std::max<sim::SimDuration>(1, fire - now);
      }
      remaining -= avail;
      t = phase_end_;
      toggle(rng);
    }
  }

 private:
  sim::SimDuration draw_phase(sim::Rng& rng) {
    const double mean =
        static_cast<double>(on_ ? on_mean_ : off_mean_);
    return std::max<sim::SimDuration>(
        1, static_cast<sim::SimDuration>(rng.exponential(mean)));
  }

  void toggle(sim::Rng& rng) {
    on_ = !on_;
    phase_end_ += draw_phase(rng);
  }

  void advance_to(sim::SimTime now, sim::Rng& rng) {
    while (phase_end_ <= now) toggle(rng);
  }

  double think_mean_;
  sim::SimDuration on_mean_;
  sim::SimDuration off_mean_;
  bool initialized_ = false;
  bool on_ = true;
  sim::SimTime phase_end_ = 0;
};

}  // namespace

std::unique_ptr<ResourcePicker> make_picker(const PopularitySpec& spec,
                                            int num_resources) {
  const auto m = static_cast<std::size_t>(num_resources);
  switch (spec.kind) {
    case Popularity::kUniform:
      return std::make_unique<UniformPicker>(num_resources);
    case Popularity::kZipf: {
      std::vector<double> w(m);
      for (std::size_t r = 0; r < m; ++r) {
        w[r] = 1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_exponent);
      }
      return std::make_unique<WeightedPicker>(std::move(w), "zipf");
    }
    case Popularity::kHotspot: {
      const auto k = static_cast<std::size_t>(spec.hot_k);
      std::vector<double> w(m);
      const double hot_w = spec.hot_mass / static_cast<double>(k);
      const double cold_w =
          m == k ? hot_w
                 : (1.0 - spec.hot_mass) / static_cast<double>(m - k);
      for (std::size_t r = 0; r < m; ++r) {
        w[r] = r < k ? hot_w : std::max(cold_w, 1e-12);
      }
      return std::make_unique<WeightedPicker>(std::move(w), "hotspot");
    }
  }
  return std::make_unique<UniformPicker>(num_resources);
}

std::unique_ptr<ArrivalProcess> make_arrival(
    const ArrivalSpec& spec, const workload::WorkloadConfig& site_cfg) {
  const double beta = static_cast<double>(site_cfg.beta());
  switch (spec.kind) {
    case Arrival::kClosedExponential:
      return std::make_unique<ClosedExponentialArrival>(beta);
    case Arrival::kOpenPoisson: {
      const double mean =
          spec.open_mean_interarrival > 0
              ? static_cast<double>(spec.open_mean_interarrival)
              : beta + static_cast<double>(site_cfg.mean_cs());
      return std::make_unique<OpenPoissonArrival>(mean);
    }
    case Arrival::kOnOffBursty:
      return std::make_unique<OnOffBurstyArrival>(
          beta * spec.burst_think_scale, spec.on_mean, spec.off_mean);
  }
  return std::make_unique<ClosedExponentialArrival>(beta);
}

int num_heavy_sites(const ScenarioSpec& spec) {
  return static_cast<int>(
      std::lround(spec.heterogeneity.heavy_fraction *
                  static_cast<double>(spec.system.num_sites)));
}

workload::WorkloadConfig effective_site_workload(const ScenarioSpec& spec,
                                                 int site) {
  workload::WorkloadConfig wl = spec.workload;
  if (site < num_heavy_sites(spec)) {
    const auto& h = spec.heterogeneity;
    wl.phi = std::max(
        1, std::min(wl.num_resources,
                    static_cast<int>(std::lround(
                        static_cast<double>(wl.phi) * h.heavy_phi_scale))));
    wl.alpha_min = static_cast<sim::SimDuration>(
        static_cast<double>(wl.alpha_min) * h.heavy_cs_scale);
    wl.alpha_max = static_cast<sim::SimDuration>(
        static_cast<double>(wl.alpha_max) * h.heavy_cs_scale);
  }
  return wl;
}

}  // namespace mra::scenario
