#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mra::scenario {

const char* to_string(Popularity p) {
  switch (p) {
    case Popularity::kUniform: return "uniform";
    case Popularity::kZipf: return "zipf";
    case Popularity::kHotspot: return "hotspot";
  }
  return "?";
}

const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::kClosedExponential: return "closed-exponential";
    case Arrival::kOpenPoisson: return "open-poisson";
    case Arrival::kOnOffBursty: return "on-off-bursty";
  }
  return "?";
}

void ScenarioSpec::validate() const {
  workload.validate();
  if (system.num_resources != workload.num_resources) {
    throw std::invalid_argument(
        "scenario.system.num_resources: must equal workload.num_resources (" +
        std::to_string(system.num_resources) + " vs " +
        std::to_string(workload.num_resources) + ")");
  }
  if (popularity.kind == Popularity::kZipf && popularity.zipf_exponent <= 0.0) {
    throw std::invalid_argument(
        "scenario.popularity.zipf_exponent: must be > 0, got " +
        std::to_string(popularity.zipf_exponent));
  }
  if (popularity.kind == Popularity::kHotspot) {
    if (popularity.hot_k < 1 || popularity.hot_k > workload.num_resources) {
      throw std::invalid_argument(
          "scenario.popularity.hot_k: must be in [1, num_resources=" +
          std::to_string(workload.num_resources) + "], got " +
          std::to_string(popularity.hot_k));
    }
    if (popularity.hot_mass <= 0.0 || popularity.hot_mass > 1.0) {
      throw std::invalid_argument(
          "scenario.popularity.hot_mass: must be in (0, 1], got " +
          std::to_string(popularity.hot_mass));
    }
  }
  if (arrival.kind == Arrival::kOpenPoisson &&
      arrival.open_mean_interarrival < 0) {
    throw std::invalid_argument(
        "scenario.arrival.open_mean_interarrival: must be >= 0 (0 = derive)");
  }
  if (arrival.kind == Arrival::kOnOffBursty) {
    if (arrival.on_mean <= 0 || arrival.off_mean <= 0) {
      throw std::invalid_argument(
          "scenario.arrival.on_mean/off_mean: must be > 0");
    }
    if (arrival.burst_think_scale <= 0.0) {
      throw std::invalid_argument(
          "scenario.arrival.burst_think_scale: must be > 0, got " +
          std::to_string(arrival.burst_think_scale));
    }
  }
  if (heterogeneity.heavy_fraction < 0.0 ||
      heterogeneity.heavy_fraction > 1.0) {
    throw std::invalid_argument(
        "scenario.heterogeneity.heavy_fraction: must be in [0, 1], got " +
        std::to_string(heterogeneity.heavy_fraction));
  }
  if (heterogeneity.heavy_phi_scale < 1.0 ||
      heterogeneity.heavy_cs_scale < 1.0) {
    throw std::invalid_argument(
        "scenario.heterogeneity.heavy_*_scale: must be >= 1 (heavy sites "
        "are at least as demanding as light ones)");
  }
  if (warmup < 0 || measure <= 0) {
    throw std::invalid_argument(
        "scenario.warmup/measure: need warmup >= 0 and measure > 0");
  }
}

int ScenarioSpec::max_request_size() const {
  int max_phi = workload.phi;
  if (heterogeneity.heavy_fraction > 0.0) {
    const int heavy_phi = std::min(
        workload.num_resources,
        static_cast<int>(std::lround(static_cast<double>(workload.phi) *
                                     heterogeneity.heavy_phi_scale)));
    max_phi = std::max(max_phi, heavy_phi);
  }
  return max_phi;
}

}  // namespace mra::scenario
