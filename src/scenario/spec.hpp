// ScenarioSpec: a complete, named description of one simulated workload
// scenario — system topology, the paper's §5.1 base workload, plus the
// pluggable generator components this subsystem adds on top of it:
//
//   * resource popularity  — which resources a request tends to pick
//                            (uniform as in the paper, Zipf, hotspot-k);
//   * arrival process      — when requests are born (closed-loop exponential
//                            as in the paper, open-loop Poisson, ON/OFF
//                            bursty);
//   * site heterogeneity   — a fraction of "heavy" sites with larger φ and
//                            longer critical sections.
//
// A ScenarioSpec plus a seed fully determines a run: the same spec yields
// bit-identical metrics across runs (see tests/test_scenario.cpp).
#pragma once

#include <string>

#include "algo/factory.hpp"
#include "sim/time.hpp"
#include "workload/workload.hpp"

namespace mra::scenario {

/// Which resources a request draws. The paper's model is kUniform.
enum class Popularity {
  kUniform,  ///< every resource equally likely (§5.1)
  kZipf,     ///< P(resource r) ∝ 1/(r+1)^s — few very hot resources
  kHotspot,  ///< k hot resources share `hot_mass` of the picks
};

[[nodiscard]] const char* to_string(Popularity p);

struct PopularitySpec {
  Popularity kind = Popularity::kUniform;
  double zipf_exponent = 1.2;  ///< Zipf: skew s > 0 (larger = more skewed)
  int hot_k = 4;               ///< hotspot: number of hot resources
  double hot_mass = 0.8;       ///< hotspot: probability mass on hot set
};

/// When requests are born at a site. The paper's model is closed-loop:
/// a site thinks Exp(β) after each CS, so load self-throttles. Open-loop
/// arrivals keep coming while a request is in flight and queue at the site.
enum class Arrival {
  kClosedExponential,  ///< think Exp(β) between release and next request
  kOpenPoisson,        ///< Poisson arrivals, FIFO queue per site
  kOnOffBursty,        ///< closed loop gated by exponential ON/OFF phases
};

[[nodiscard]] const char* to_string(Arrival a);

struct ArrivalSpec {
  Arrival kind = Arrival::kClosedExponential;

  /// Open-loop: mean inter-arrival time per site. 0 = derive from the
  /// workload as β + ᾱ (the mean cycle length of the closed-loop model, so
  /// open and closed loop offer comparable load).
  sim::SimDuration open_mean_interarrival = 0;

  /// ON/OFF: exponential phase durations, and the think-time scale during
  /// ON (0.1 = requests arrive 10x faster than the base β while ON).
  sim::SimDuration on_mean = sim::from_ms(200);
  sim::SimDuration off_mean = sim::from_ms(800);
  double burst_think_scale = 0.1;
};

/// The first round(heavy_fraction · N) sites are "heavy": their φ and CS
/// durations are scaled. Deterministic assignment keeps runs reproducible.
struct HeterogeneitySpec {
  double heavy_fraction = 0.0;  ///< in [0, 1]; 0 disables
  double heavy_phi_scale = 1.0;  ///< heavy φ = min(M, round(φ · scale))
  double heavy_cs_scale = 1.0;   ///< heavy α range multiplied by this
};

struct ScenarioSpec {
  std::string name;
  std::string summary;  ///< one line, shown by `mra_scenarios --list`

  algo::SystemConfig system;        ///< topology, latency, algorithm knobs
  workload::WorkloadConfig workload;  ///< §5.1 base model
  PopularitySpec popularity;
  ArrivalSpec arrival;
  HeterogeneitySpec heterogeneity;

  sim::SimDuration warmup = sim::from_ms(2000);    ///< discarded
  sim::SimDuration measure = sim::from_ms(10000);  ///< measured window

  /// Validates every component; throws std::invalid_argument naming the
  /// offending field.
  void validate() const;

  /// Largest request size any site can draw (accounts for heavy sites).
  [[nodiscard]] int max_request_size() const;
};

}  // namespace mra::scenario
