// The pluggable generator components behind a ScenarioSpec:
//
//   ResourcePicker  — strategy for "which x resources does this request
//                     take": uniform (the paper), or weighted (Zipf,
//                     hotspot) sampled without replacement;
//   ArrivalProcess  — strategy for "when is the next request born":
//                     closed-loop exponential (the paper), open-loop
//                     Poisson, or ON/OFF bursty;
//   effective_site_workload — per-site WorkloadConfig with the scenario's
//                     heterogeneity applied (heavy sites get larger φ and
//                     longer CS ranges).
//
// All components are deterministic given the Rng they are fed.
#pragma once

#include <memory>

#include "core/resource_set.hpp"
#include "scenario/spec.hpp"
#include "sim/random.hpp"

namespace mra::scenario {

/// Draws `size` distinct resources from [0, M) according to a popularity
/// distribution. Stateless between draws apart from the caller's RNG.
class ResourcePicker {
 public:
  virtual ~ResourcePicker() = default;
  [[nodiscard]] virtual ResourceSet draw(int size, sim::Rng& rng) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

[[nodiscard]] std::unique_ptr<ResourcePicker> make_picker(
    const PopularitySpec& spec, int num_resources);

/// Produces inter-request delays. Closed-loop processes return the think
/// time between a CS release and the next request; open-loop processes
/// (open_loop() == true) return the gap to the next arrival, independent of
/// service. May keep internal phase state (ON/OFF), advanced by `now`.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual bool open_loop() const { return false; }
  [[nodiscard]] virtual sim::SimDuration next_delay(sim::SimTime now,
                                                    sim::Rng& rng) = 0;
};

/// `site_cfg` supplies β (and ᾱ for the open-loop default rate).
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival(
    const ArrivalSpec& spec, const workload::WorkloadConfig& site_cfg);

/// Number of heavy sites implied by the spec: round(heavy_fraction · N).
[[nodiscard]] int num_heavy_sites(const ScenarioSpec& spec);

/// The WorkloadConfig site `site` actually runs (heavy sites scaled).
[[nodiscard]] workload::WorkloadConfig effective_site_workload(
    const ScenarioSpec& spec, int site);

}  // namespace mra::scenario
