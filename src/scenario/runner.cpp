#include "scenario/runner.hpp"

#include <cassert>
#include <deque>
#include <functional>

#include "check/mutant.hpp"

namespace mra::scenario {

ScenarioDriver::ScenarioDriver(AllocatorNode& node, sim::Simulator& simulator,
                               const workload::WorkloadConfig& site_cfg,
                               const PopularitySpec& popularity,
                               const ArrivalSpec& arrival, sim::Rng rng,
                               metrics::Collector& collector,
                               RequestTrace* record)
    : node_(node),
      sim_(simulator),
      gen_(site_cfg, rng.split()),
      rng_(rng.split()),
      picker_(make_picker(popularity, site_cfg.num_resources)),
      arrival_(make_arrival(arrival, site_cfg)),
      collector_(collector),
      record_(record) {
  node_.set_grant_callback([this](RequestId /*seq*/) { on_granted(); });
}

void ScenarioDriver::start() { schedule_next_birth(); }

void ScenarioDriver::schedule_next_birth() {
  // Tagged with the site id: births at different sites touch disjoint driver
  // and node state, so the model checker may commute them within an instant.
  sim_.schedule_in(arrival_->next_delay(sim_.now(), rng_),
                   static_cast<int>(node_.id()), [this]() { make_request(); });
}

void ScenarioDriver::make_request() {
  if (stopped_) return;
  const int size = gen_.draw_size();
  PendingRequest req;
  req.born = sim_.now();
  req.resources = picker_->draw(size, rng_);
  req.cs = gen_.draw_cs_duration(size);
  if (record_) {
    record_->events.push_back(TraceEvent{req.born, node_.id(), req.cs,
                                         req.resources.to_vector()});
  }
  pending_.push_back(std::move(req));
  // Open loop: the next arrival is independent of service, so schedule it
  // now. Closed loop: the next request is born only after this one's CS.
  if (arrival_->open_loop()) schedule_next_birth();
  try_dispatch();
}

void ScenarioDriver::try_dispatch() {
  if (in_flight_ || pending_.empty()) return;
  assert(node_.state() == ProcessState::kIdle);
  PendingRequest req = std::move(pending_.front());
  pending_.pop_front();
  in_flight_ = true;
  current_cs_ = req.cs;
  // Waiting time is measured from birth: for queued open-loop arrivals it
  // includes the queueing delay at the site.
  collector_.on_issue(req.born, node_.id(), node_.current_request_id() + 1,
                      req.resources);
  node_.request(req.resources);
}

void ScenarioDriver::on_granted() {
  collector_.on_grant(sim_.now(), node_.id(), node_.current_request_id(),
                      node_.current_request());
  // release() must not run inside the grant callback (protocols may still be
  // mid-handler), so even a zero-length CS goes through the event queue.
  sim_.schedule_in(current_cs_, static_cast<int>(node_.id()),
                   [this]() { on_cs_done(); });
}

void ScenarioDriver::on_cs_done() {
  const ResourceSet held = node_.current_request();
  collector_.on_release(sim_.now(), node_.id(), node_.current_request_id(),
                        held);
  node_.release();
  in_flight_ = false;
  ++cycles_;
  if (arrival_->open_loop()) {
    try_dispatch();
  } else if (!stopped_) {
    schedule_next_birth();
  }
}

ScenarioRunner::ScenarioRunner(algo::AllocationSystem& system,
                               const ScenarioSpec& spec, std::uint64_t seed,
                               std::size_t size_buckets, RequestTrace* record)
    : collector_(system.num_resources(), size_buckets) {
  collector_.set_max_size(static_cast<std::size_t>(spec.max_request_size()));
  if (record) {
    record->scenario = spec.name;
    record->num_sites = system.num_sites();
    record->num_resources = system.num_resources();
    // Provenance: the user-facing seed (spec.system.seed), not the mixed
    // internal stream seed — the header must let a reader reproduce the run.
    record->seed = spec.system.seed;
    record->network_latency = spec.system.network_latency;
    record->hierarchical_clusters = spec.system.hierarchical_clusters;
    // The WAN latency is meaningless on a flat topology (SystemConfig
    // defaults it to 10 ms regardless), so only record it when it applies.
    record->hierarchical_remote_latency =
        spec.system.hierarchical_clusters > 1
            ? spec.system.hierarchical_remote_latency
            : 0;
    // v2 provenance: everything replay needs to reproduce the run with no
    // flags — the algorithm, the perturbation model, any seeded bug. The
    // writer stays on the v1 magic when none of these are set.
    record->algorithm = algo::cli_name(spec.system.algorithm);
    record->latency_delay_bound = spec.system.latency_delay_bound;
    record->latency_quantum = spec.system.latency_quantum;
    if (check::active_mutant() != check::Mutant::kNone) {
      record->mutant = check::to_string(check::active_mutant());
    }
  }
  sim::Rng master(seed);
  for (int i = 0; i < system.num_sites(); ++i) {
    drivers_.push_back(std::make_unique<ScenarioDriver>(
        system.node(i), system.simulator(), effective_site_workload(spec, i),
        spec.popularity, spec.arrival, master.split(), collector_, record));
  }
}

void ScenarioRunner::start() {
  for (auto& d : drivers_) d->start();
}

void ScenarioRunner::stop_issuing() {
  for (auto& d : drivers_) d->stop();
}

namespace {

experiment::ExperimentResult run_scenario_impl(
    const ScenarioSpec& spec, algo::Algorithm algorithm, RequestTrace* record,
    check::Observer* observer,
    const std::function<void(algo::AllocationSystem&)>& on_wired = {}) {
  ScenarioSpec s = spec;
  s.system.algorithm = algorithm;
  s.validate();

  auto system = algo::AllocationSystem::create(s.system);
  system->start();
  if (observer != nullptr) {
    // Wired before the first event fires, so the observer sees the complete
    // stream — warm-up included (spans born in warm-up stay reconstructable).
    system->simulator().set_observer(observer);
    system->network().set_observer(observer);
    for (SiteId i = 0; i < s.system.num_sites; ++i) {
      system->node(i).set_observer(observer);
    }
  }
  if (on_wired) on_wired(*system);

  ScenarioRunner runner(*system, s, s.system.seed ^ 0x9E3779B97F4A7C15ULL,
                        /*size_buckets=*/6, record);

  auto& sim = system->simulator();
  sim.set_event_budget(500'000'000ULL);

  runner.start();
  sim.run(s.warmup);
  runner.collector().reset(sim.now());
  system->network().reset_stats();
  sim.run(s.warmup + s.measure);

  experiment::ExperimentResult result =
      experiment::summarize(*system, runner.collector(), false);
  result.phi = s.workload.phi;
  result.rho = s.workload.rho;
  return result;
}

}  // namespace

experiment::ExperimentResult run_scenario(const ScenarioSpec& spec,
                                          algo::Algorithm algorithm) {
  return run_scenario_impl(spec, algorithm, nullptr, nullptr);
}

experiment::ExperimentResult run_scenario(
    const ScenarioSpec& spec, algo::Algorithm algorithm,
    check::Observer* observer,
    const std::function<void(algo::AllocationSystem&)>& on_wired) {
  return run_scenario_impl(spec, algorithm, nullptr, observer, on_wired);
}

RequestTrace record_scenario(const ScenarioSpec& spec,
                             algo::Algorithm algorithm) {
  RequestTrace trace;
  (void)run_scenario_impl(spec, algorithm, &trace, nullptr);
  return trace;
}

ReplayResult replay_trace(const RequestTrace& trace, algo::Algorithm algorithm,
                          const ReplayOptions& options) {
  trace.validate();

  algo::SystemConfig sys;
  sys.algorithm = algorithm;
  sys.num_sites = trace.num_sites;
  sys.num_resources = trace.num_resources;
  sys.seed = options.seed;
  // The trace header fixes the network the run was recorded under;
  // options.network_latency > 0 deliberately overrides it.
  sys.network_latency = options.network_latency > 0 ? options.network_latency
                                                    : trace.network_latency;
  sys.hierarchical_clusters = trace.hierarchical_clusters;
  sys.hierarchical_remote_latency = trace.hierarchical_remote_latency;
  sys.latency_jitter = options.latency_jitter;
  // v2 traces carry the perturbation model; explicit options still win so
  // latency-sensitivity studies can override a recorded schedule.
  sys.latency_delay_bound = options.latency_delay_bound > 0
                                ? options.latency_delay_bound
                                : trace.latency_delay_bound;
  sys.latency_quantum = options.latency_quantum > 0 ? options.latency_quantum
                                                    : trace.latency_quantum;
  auto system = algo::AllocationSystem::create(sys);
  system->start();
  if (options.observer != nullptr) {
    system->simulator().set_observer(options.observer);
    system->network().set_observer(options.observer);
    for (SiteId s = 0; s < trace.num_sites; ++s) {
      system->node(s).set_observer(options.observer);
    }
  }

  auto& sim = system->simulator();
  sim.set_event_budget(500'000'000ULL);

  metrics::Collector collector(trace.num_resources, options.size_buckets);
  collector.set_max_size(static_cast<std::size_t>(trace.max_request_size()));

  struct SiteState {
    std::deque<const TraceEvent*> pending;
    bool in_flight = false;
    sim::SimDuration cs = 0;
  };
  std::vector<SiteState> sites(static_cast<std::size_t>(trace.num_sites));
  ResourceSet busy(trace.num_resources);  // safety checker
  ReplayResult out;

  std::function<void(SiteId)> dispatch = [&](SiteId s) {
    auto& st = sites[static_cast<std::size_t>(s)];
    if (st.in_flight || st.pending.empty()) return;
    const TraceEvent* ev = st.pending.front();
    st.pending.pop_front();
    st.in_flight = true;
    st.cs = ev->cs;
    ResourceSet rs(trace.num_resources);
    for (ResourceId r : ev->resources) rs.insert(r);
    collector.on_issue(ev->at, s, system->node(s).current_request_id() + 1,
                       rs);
    system->node(s).request(rs);
  };

  for (SiteId s = 0; s < trace.num_sites; ++s) {
    system->node(s).set_grant_callback([&, s](RequestId) {
      auto& st = sites[static_cast<std::size_t>(s)];
      const ResourceSet& rs = system->node(s).current_request();
      if (rs.intersects(busy)) out.safety_ok = false;
      busy |= rs;
      collector.on_grant(sim.now(), s, system->node(s).current_request_id(),
                         rs);
      sim.schedule_in(st.cs, static_cast<int>(s), [&, s]() {
        const ResourceSet held = system->node(s).current_request();
        busy -= held;
        collector.on_release(sim.now(), s,
                             system->node(s).current_request_id(), held);
        system->node(s).release();
        sites[static_cast<std::size_t>(s)].in_flight = false;
        dispatch(s);
      });
    });
  }

  for (const TraceEvent& ev : trace.events) {
    sim.schedule_at(ev.at, static_cast<int>(ev.site), [&, e = &ev]() {
      sites[static_cast<std::size_t>(e->site)].pending.push_back(e);
      dispatch(e->site);
    });
  }

  sim.run();  // to quiescence: liveness means every request completes

  out.completed_all = collector.completed() == trace.events.size();
  for (const auto& st : sites) {
    if (st.in_flight || !st.pending.empty()) out.completed_all = false;
  }
  out.end_time = sim.now();
  out.metrics = experiment::summarize(*system, collector, false);
  // phi stays 0: a replay has no configured max request size, and reusing
  // the field for the trace's observed maximum would corrupt any consumer
  // that groups bench/scenario JSON rows by phi.
  return out;
}

}  // namespace mra::scenario
