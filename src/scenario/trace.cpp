#include "scenario/trace.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mra::scenario {

namespace {
constexpr const char* kMagicV1 = "# mra-trace v1";
constexpr const char* kMagicV2 = "# mra-trace v2";
constexpr const char* kMagicPrefix = "# mra-trace ";
}

void RequestTrace::validate() const {
  if (num_sites <= 0 || num_resources <= 0) {
    throw std::invalid_argument(
        "trace: sites and resources must be positive (got sites=" +
        std::to_string(num_sites) +
        " resources=" + std::to_string(num_resources) + ")");
  }
  if (network_latency < 0 || hierarchical_clusters < 1 ||
      hierarchical_remote_latency < 0) {
    throw std::invalid_argument(
        "trace: need latency_ns >= 0, clusters >= 1, wan_ns >= 0");
  }
  if (latency_delay_bound < 0 || latency_quantum < 0) {
    throw std::invalid_argument(
        "trace: need delay_bound_ns >= 0, quantum_ns >= 0");
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const std::string where = "trace event " + std::to_string(i);
    if (e.at < 0 || e.cs < 0) {
      throw std::invalid_argument(where + ": negative time");
    }
    if (e.site < 0 || e.site >= num_sites) {
      throw std::invalid_argument(where + ": site " + std::to_string(e.site) +
                                  " out of [0, " + std::to_string(num_sites) +
                                  ")");
    }
    if (e.resources.empty()) {
      throw std::invalid_argument(where + ": empty resource set");
    }
    if (!std::is_sorted(e.resources.begin(), e.resources.end()) ||
        std::adjacent_find(e.resources.begin(), e.resources.end()) !=
            e.resources.end()) {
      throw std::invalid_argument(where + ": resources not sorted/distinct");
    }
    if (e.resources.front() < 0 || e.resources.back() >= num_resources) {
      throw std::invalid_argument(where + ": resource id out of [0, " +
                                  std::to_string(num_resources) + ")");
    }
  }
}

int RequestTrace::max_request_size() const {
  std::size_t m = 1;
  for (const TraceEvent& e : events) m = std::max(m, e.resources.size());
  return static_cast<int>(m);
}

void write_trace(std::ostream& os, const RequestTrace& trace) {
  os << (trace.has_v2_fields() ? kMagicV2 : kMagicV1) << "\n";
  if (!trace.scenario.empty()) os << "scenario " << trace.scenario << "\n";
  os << "sites " << trace.num_sites << "\n";
  os << "resources " << trace.num_resources << "\n";
  os << "seed " << trace.seed << "\n";
  os << "latency_ns " << trace.network_latency << "\n";
  if (trace.hierarchical_clusters > 1) {
    os << "clusters " << trace.hierarchical_clusters << "\n";
    os << "wan_ns " << trace.hierarchical_remote_latency << "\n";
  }
  if (!trace.algorithm.empty()) os << "algorithm " << trace.algorithm << "\n";
  if (trace.latency_delay_bound > 0) {
    os << "delay_bound_ns " << trace.latency_delay_bound << "\n";
  }
  if (trace.latency_quantum > 0) {
    os << "quantum_ns " << trace.latency_quantum << "\n";
  }
  if (!trace.mutant.empty()) os << "mutant " << trace.mutant << "\n";
  for (const TraceEvent& e : trace.events) {
    os << e.at << " " << e.site << " " << e.cs << " ";
    for (std::size_t i = 0; i < e.resources.size(); ++i) {
      if (i != 0) os << ",";
      os << e.resources[i];
    }
    os << "\n";
  }
}

void save_trace(const std::string& path, const RequestTrace& trace) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(f, trace);
}

RequestTrace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind(kMagicPrefix, 0) != 0) {
    throw std::runtime_error("trace: missing magic line \"" +
                             std::string(kMagicV1) + "\"");
  }
  const bool v2 = line == kMagicV2;
  if (!v2 && line != kMagicV1) {
    throw std::runtime_error("trace: unsupported trace version \"" + line +
                             "\" (this build reads v1 and v2)");
  }
  RequestTrace trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (std::isdigit(static_cast<unsigned char>(line[0]))) {
      TraceEvent e;
      std::string resources;
      if (!(ls >> e.at >> e.site >> e.cs >> resources)) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": malformed event: " + line);
      }
      std::istringstream rs(resources);
      std::string tok;
      while (std::getline(rs, tok, ',')) {
        try {
          e.resources.push_back(
              static_cast<ResourceId>(std::stol(tok)));
        } catch (const std::exception&) {
          throw std::runtime_error("trace line " + std::to_string(line_no) +
                                   ": bad resource id \"" + tok + "\"");
        }
      }
      trace.events.push_back(std::move(e));
    } else {
      std::string key;
      ls >> key;
      if (key == "scenario") {
        ls >> trace.scenario;
      } else if (key == "sites") {
        ls >> trace.num_sites;
      } else if (key == "resources") {
        ls >> trace.num_resources;
      } else if (key == "seed") {
        ls >> trace.seed;
      } else if (key == "latency_ns") {
        ls >> trace.network_latency;
      } else if (key == "clusters") {
        ls >> trace.hierarchical_clusters;
      } else if (key == "wan_ns") {
        ls >> trace.hierarchical_remote_latency;
      } else if (v2 && key == "algorithm") {
        ls >> trace.algorithm;
      } else if (v2 && key == "delay_bound_ns") {
        ls >> trace.latency_delay_bound;
      } else if (v2 && key == "quantum_ns") {
        ls >> trace.latency_quantum;
      } else if (v2 && key == "mutant") {
        ls >> trace.mutant;
      } else {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": unknown header key \"" + key + "\"");
      }
      if (!ls) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": malformed header: " + line);
      }
    }
  }
  trace.validate();
  return trace;
}

RequestTrace load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace: " + path);
  return read_trace(f);
}

}  // namespace mra::scenario
