#include "experiment/replicate.hpp"

#include <stdexcept>

#include "experiment/sweep.hpp"
#include "sim/random.hpp"

namespace mra::experiment {

std::uint64_t replication_seed(std::uint64_t base_seed, std::size_t rep) {
  if (rep == 0) return base_seed;
  // splitmix64 was designed exactly for this: expanding one seed into
  // statistically independent substreams. Mixing the replication index into
  // the state keeps substreams stable under any execution order.
  std::uint64_t state =
      base_seed ^ (static_cast<std::uint64_t>(rep) * 0xD1B54A32D192ED03ULL);
  std::uint64_t seed = sim::splitmix64(state);
  // A substream colliding with the base seed would silently duplicate
  // replication 0; the extra round costs nothing and rules it out.
  if (seed == base_seed) seed = sim::splitmix64(state);
  return seed;
}

ReplicatedResult merge_replications(std::span<const ExperimentResult> reps) {
  if (reps.empty()) {
    throw std::invalid_argument("merge_replications: no replications");
  }
  ReplicatedResult out;
  out.algorithm = reps.front().algorithm;
  out.phi = reps.front().phi;
  out.rho = reps.front().rho;
  out.replications = reps.size();

  metrics::RunningStats use_rate;
  metrics::RunningStats waiting_mean;
  metrics::RunningStats messages_per_cs;
  for (const ExperimentResult& r : reps) {
    use_rate.add(r.use_rate);
    waiting_mean.add(r.waiting_mean_ms);
    messages_per_cs.add(r.messages_per_cs);
    out.waiting_pooled.merge(r.waiting_stats);
    out.waiting_sketch.merge(r.waiting_sketch);
    out.requests_completed += r.requests_completed;
    out.messages += r.messages;
    out.bytes += r.bytes;
    out.loans_used += r.loans_used;
    out.loans_failed += r.loans_failed;
  }
  out.use_rate = metrics::mean_ci95(use_rate);
  out.waiting_mean_ms = metrics::mean_ci95(waiting_mean);
  out.messages_per_cs = metrics::mean_ci95(messages_per_cs);
  out.waiting_p50_ms = out.waiting_sketch.percentile(50);
  out.waiting_p95_ms = out.waiting_sketch.percentile(95);
  out.waiting_p99_ms = out.waiting_sketch.percentile(99);
  return out;
}

std::vector<ReplicatedResult> run_replicated_jobs(
    const std::vector<ReplicatedJob>& jobs, unsigned threads) {
  return run_replicated_jobs(jobs, threads, nullptr);
}

std::vector<ReplicatedResult> run_replicated_jobs(
    const std::vector<ReplicatedJob>& jobs, unsigned threads,
    std::atomic<std::uint64_t>* reps_done,
    std::atomic<std::uint64_t>* reps_failed) {
  std::vector<SweepJob> flat;
  for (const ReplicatedJob& job : jobs) {
    if (job.replications == 0) {
      throw std::invalid_argument(
          "run_replicated_jobs: replications must be >= 1");
    }
    for (std::size_t rep = 0; rep < job.replications; ++rep) {
      const std::uint64_t seed = replication_seed(job.base_seed, rep);
      flat.emplace_back([make = job.make, seed]() { return make(seed); });
    }
  }
  // Each flattened sweep job is exactly one replication, so the pool's
  // jobs_done/jobs_failed counters are the replication counters.
  const std::vector<ExperimentResult> results =
      run_sweep(flat, threads, reps_done, reps_failed);

  std::vector<ReplicatedResult> merged;
  merged.reserve(jobs.size());
  std::size_t offset = 0;
  for (const ReplicatedJob& job : jobs) {
    merged.push_back(merge_replications(
        std::span(results).subspan(offset, job.replications)));
    offset += job.replications;
  }
  return merged;
}

std::vector<ReplicatedResult> run_replicated_sweep(
    const std::vector<ReplicatedConfig>& configs, unsigned threads) {
  return run_replicated_sweep(configs, threads, nullptr);
}

std::vector<ReplicatedResult> run_replicated_sweep(
    const std::vector<ReplicatedConfig>& configs, unsigned threads,
    std::atomic<std::uint64_t>* reps_done,
    std::atomic<std::uint64_t>* reps_failed) {
  std::vector<ReplicatedJob> jobs;
  jobs.reserve(configs.size());
  for (const ReplicatedConfig& cfg : configs) {
    ReplicatedJob job;
    job.base_seed = cfg.base.system.seed;
    job.replications = cfg.replications;
    job.make = [base = cfg.base](std::uint64_t rep_seed) {
      ExperimentConfig c = base;
      c.system.seed = rep_seed;
      return run_experiment(c);
    };
    jobs.push_back(std::move(job));
  }
  return run_replicated_jobs(jobs, threads, reps_done, reps_failed);
}

ReplicatedResult run_replicated(const ReplicatedConfig& config,
                                unsigned threads) {
  return run_replicated_sweep({config}, threads).front();
}

}  // namespace mra::experiment
