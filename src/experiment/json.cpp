#include "experiment/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace mra::experiment {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_one(std::ostream& os, const LabeledResult& lr) {
  const ExperimentResult& r = lr.result;
  os << "{\"label\":\"" << json_escape(lr.label) << "\""
     << ",\"algorithm\":\"" << json_escape(r.algorithm) << "\""
     << ",\"phi\":" << r.phi << ",\"rho\":" << num(r.rho)
     << ",\"use_rate\":" << num(r.use_rate)
     << ",\"waiting_mean_ms\":" << num(r.waiting_mean_ms)
     << ",\"waiting_stddev_ms\":" << num(r.waiting_stddev_ms)
     << ",\"waiting_p50_ms\":" << num(r.waiting_p50_ms)
     << ",\"waiting_p95_ms\":" << num(r.waiting_p95_ms)
     << ",\"waiting_p99_ms\":" << num(r.waiting_p99_ms)
     << ",\"requests_completed\":" << r.requests_completed
     << ",\"messages\":" << r.messages << ",\"bytes\":" << r.bytes
     << ",\"messages_per_cs\":" << num(r.messages_per_cs)
     << ",\"loans_used\":" << r.loans_used
     << ",\"loans_failed\":" << r.loans_failed << "}";
}

void write_one_replicated(std::ostream& os,
                          const LabeledReplicatedResult& lr) {
  const ReplicatedResult& r = lr.result;
  os << "{\"label\":\"" << json_escape(lr.label) << "\""
     << ",\"algorithm\":\"" << json_escape(r.algorithm) << "\""
     << ",\"phi\":" << r.phi << ",\"rho\":" << num(r.rho)
     << ",\"replications\":" << r.replications
     << ",\"use_rate\":" << num(r.use_rate.mean)
     << ",\"use_rate_ci95\":" << num(r.use_rate.ci95_half)
     << ",\"waiting_mean_ms\":" << num(r.waiting_mean_ms.mean)
     << ",\"waiting_mean_ms_ci95\":" << num(r.waiting_mean_ms.ci95_half)
     << ",\"waiting_stddev_ms\":" << num(r.waiting_pooled.stddev())
     << ",\"waiting_p50_ms\":" << num(r.waiting_p50_ms)
     << ",\"waiting_p95_ms\":" << num(r.waiting_p95_ms)
     << ",\"waiting_p99_ms\":" << num(r.waiting_p99_ms)
     << ",\"requests_completed\":" << r.requests_completed
     << ",\"messages\":" << r.messages << ",\"bytes\":" << r.bytes
     << ",\"messages_per_cs\":" << num(r.messages_per_cs.mean)
     << ",\"messages_per_cs_ci95\":" << num(r.messages_per_cs.ci95_half)
     << ",\"loans_used\":" << r.loans_used
     << ",\"loans_failed\":" << r.loans_failed << "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_results_json(std::ostream& os, const std::string& tool,
                        const std::vector<LabeledResult>& results) {
  os << "{\"tool\":\"" << json_escape(tool) << "\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  ";
    write_one(os, results[i]);
  }
  os << "\n]}\n";
}

void write_results_json_file(const std::string& path, const std::string& tool,
                             const std::vector<LabeledResult>& results) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_results_json(f, tool, results);
}

void write_replicated_json(
    std::ostream& os, const std::string& tool,
    const std::vector<LabeledReplicatedResult>& results) {
  os << "{\"tool\":\"" << json_escape(tool) << "\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  ";
    write_one_replicated(os, results[i]);
  }
  os << "\n]}\n";
}

void write_replicated_json_file(
    const std::string& path, const std::string& tool,
    const std::vector<LabeledReplicatedResult>& results) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_replicated_json(f, tool, results);
}

}  // namespace mra::experiment
