// Gantt rendering of a run's request records (reproduces the paper's
// Figures 1 and 4: resource lanes, coloured = in use).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/collector.hpp"

namespace mra::experiment {

struct GanttOptions {
  int columns = 100;            ///< characters across the time axis
  sim::SimTime start = 0;       ///< window start
  sim::SimTime end = 0;         ///< window end (0 = max release time)
  bool show_site_ids = true;    ///< draw the using site's id (mod 10)
};

/// Renders one lane per resource; '.' = idle, digit/# = in use by site.
void render_gantt(std::ostream& os,
                  const std::vector<metrics::RequestRecord>& records,
                  ResourceId num_resources, const GanttOptions& options = {});

/// Fraction of lane-columns that are busy (a discretised use rate, the
/// "coloured area" of the paper's Figure 4).
[[nodiscard]] double gantt_busy_fraction(
    const std::vector<metrics::RequestRecord>& records,
    ResourceId num_resources, const GanttOptions& options = {});

}  // namespace mra::experiment
