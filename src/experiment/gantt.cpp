#include "experiment/gantt.hpp"

#include <algorithm>

namespace mra::experiment {

namespace {

sim::SimTime window_end(const std::vector<metrics::RequestRecord>& records,
                        const GanttOptions& options) {
  if (options.end != 0) return options.end;
  sim::SimTime end = options.start + 1;
  for (const auto& rec : records) end = std::max(end, rec.released);
  return end;
}

std::vector<std::string> build_lanes(
    const std::vector<metrics::RequestRecord>& records,
    ResourceId num_resources, const GanttOptions& options) {
  const sim::SimTime t0 = options.start;
  const sim::SimTime t1 = window_end(records, options);
  const double span = static_cast<double>(t1 - t0);
  std::vector<std::string> lanes(
      static_cast<std::size_t>(num_resources),
      std::string(static_cast<std::size_t>(options.columns), '.'));

  for (const auto& rec : records) {
    if (rec.released <= t0 || rec.granted >= t1) continue;
    const auto c0 = static_cast<int>(
        static_cast<double>(std::max(rec.granted, t0) - t0) / span *
        options.columns);
    auto c1 = static_cast<int>(
        static_cast<double>(std::min(rec.released, t1) - t0) / span *
        options.columns);
    c1 = std::max(c1, c0 + 1);
    const char mark = options.show_site_ids
                          ? static_cast<char>('0' + rec.site % 10)
                          : '#';
    for (ResourceId r : rec.resources) {
      auto& lane = lanes[static_cast<std::size_t>(r)];
      for (int c = c0; c < c1 && c < options.columns; ++c) {
        lane[static_cast<std::size_t>(c)] = mark;
      }
    }
  }
  return lanes;
}

}  // namespace

void render_gantt(std::ostream& os,
                  const std::vector<metrics::RequestRecord>& records,
                  ResourceId num_resources, const GanttOptions& options) {
  const auto lanes = build_lanes(records, num_resources, options);
  for (ResourceId r = 0; r < num_resources; ++r) {
    os << "r" << r << (r < 10 ? "  |" : " |")
       << lanes[static_cast<std::size_t>(r)] << "|\n";
  }
}

double gantt_busy_fraction(const std::vector<metrics::RequestRecord>& records,
                           ResourceId num_resources,
                           const GanttOptions& options) {
  const auto lanes = build_lanes(records, num_resources, options);
  std::size_t busy = 0;
  std::size_t total = 0;
  for (const auto& lane : lanes) {
    for (char c : lane) busy += (c != '.') ? 1 : 0;
    total += lane.size();
  }
  return total == 0 ? 0.0 : static_cast<double>(busy) / static_cast<double>(total);
}

}  // namespace mra::experiment
