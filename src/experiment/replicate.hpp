// Replicated experiments: N independent repetitions of one configuration,
// each on its own deterministic RNG substream, reduced to mean ± 95%
// confidence intervals (Student-t over per-replication values) and tail
// quantiles (merged waiting-time sketch). This is the layer every figure
// reports through when error bars are requested (--reps N on the fig5/fig6
// benches and the scenario CLI).
//
// Determinism: replication r of base seed S always runs on
// replication_seed(S, r), and per-rep results are merged in replication
// order — so a replicated sweep produces byte-identical output whether it
// ran on 1 thread or 64.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "experiment/experiment.hpp"
#include "metrics/stats.hpp"

namespace mra::experiment {

/// One experiment configuration to run `replications` times. Replication r
/// reruns `base` with system.seed = replication_seed(base.system.seed, r);
/// every other knob is shared.
struct ReplicatedConfig {
  ExperimentConfig base;
  std::size_t replications = 1;
};

/// Deterministic, independent per-replication seed. Replication 0 is the
/// base seed itself — a single-replication run is bit-identical to the
/// plain run_experiment path — and later replications are splitmix64
/// expansions of (base_seed, rep), so substreams never depend on thread
/// count or execution order.
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t base_seed,
                                             std::size_t rep);

/// Cross-replication summary. Scalar metrics carry the mean over
/// per-replication values with a Student-t 95% half-width (NaN when
/// replications < 2); tail quantiles come from the merged waiting-time
/// sketch, i.e. they are quantiles of the pooled samples of all
/// replications, bit-identical to one long concatenated run.
struct ReplicatedResult {
  std::string algorithm;
  int phi = 0;
  double rho = 0.0;
  std::size_t replications = 0;

  metrics::Estimate use_rate;
  metrics::Estimate waiting_mean_ms;
  metrics::Estimate messages_per_cs;

  double waiting_p50_ms = 0.0;
  double waiting_p95_ms = 0.0;
  double waiting_p99_ms = 0.0;

  /// Pooled sample-level waiting stats (RunningStats::merge over reps, in
  /// replication order) — source of the pooled stddev.
  metrics::RunningStats waiting_pooled;
  /// Merged waiting-time sketch (source of the tail quantiles above).
  metrics::QuantileSketch waiting_sketch;

  // Totals over all replications.
  std::uint64_t requests_completed = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t loans_used = 0;
  std::uint64_t loans_failed = 0;
};

/// Reduces per-replication results (in replication order) to a
/// ReplicatedResult. Throws std::invalid_argument on an empty input.
/// (A span, so sweep code can merge slices of one results vector without
/// copying — each ExperimentResult carries a multi-KB sketch.)
[[nodiscard]] ReplicatedResult merge_replications(
    std::span<const ExperimentResult> reps);

/// Runs config.replications repetitions through the run_sweep pool.
[[nodiscard]] ReplicatedResult run_replicated(const ReplicatedConfig& config,
                                              unsigned threads = 0);

/// Sweep of replicated configs: all configs × replications fan out through
/// one run_sweep pool (maximum parallelism), then each config's reps merge
/// in order. results[i] summarizes configs[i].
[[nodiscard]] std::vector<ReplicatedResult> run_replicated_sweep(
    const std::vector<ReplicatedConfig>& configs, unsigned threads = 0);

/// Same, bumping `reps_done` (relaxed) once per finished replication — the
/// unit an obs::Heartbeat should report, since each replication is one
/// simulation — and `reps_failed` once per throwing replication (heartbeats
/// surface failures live; the SweepError still only fires after the pool
/// drains). Null pointers behave exactly like the plain overload.
[[nodiscard]] std::vector<ReplicatedResult> run_replicated_sweep(
    const std::vector<ReplicatedConfig>& configs, unsigned threads,
    std::atomic<std::uint64_t>* reps_done,
    std::atomic<std::uint64_t>* reps_failed = nullptr);

/// Job-based variant for work that is not a plain ExperimentConfig (the
/// scenario CLI replicates ScenarioSpec × Algorithm runs this way): `make`
/// is called once per replication with that replication's substream seed.
struct ReplicatedJob {
  std::function<ExperimentResult(std::uint64_t rep_seed)> make;
  std::uint64_t base_seed = 1;
  std::size_t replications = 1;
};

/// Same fan-out/merge as run_replicated_sweep, over arbitrary jobs.
[[nodiscard]] std::vector<ReplicatedResult> run_replicated_jobs(
    const std::vector<ReplicatedJob>& jobs, unsigned threads = 0);

/// Job-based variant with live progress, see the config overload.
[[nodiscard]] std::vector<ReplicatedResult> run_replicated_jobs(
    const std::vector<ReplicatedJob>& jobs, unsigned threads,
    std::atomic<std::uint64_t>* reps_done,
    std::atomic<std::uint64_t>* reps_failed = nullptr);

}  // namespace mra::experiment
