// Machine-readable result export: a small hand-rolled JSON writer for
// ExperimentResult (no third-party JSON dependency). Benches use it for the
// BENCH_*.json trajectory files; the scenario CLI uses it for --json.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "experiment/replicate.hpp"

namespace mra::experiment {

/// A result plus the caller's context label (load level, scenario name...).
struct LabeledResult {
  std::string label;
  ExperimentResult result;
};

/// A replicated result plus the caller's context label.
struct LabeledReplicatedResult {
  std::string label;
  ReplicatedResult result;
};

/// Escapes a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Writes `{"tool": ..., "results": [...]}` with one object per result
/// (label, algorithm, phi, rho, use_rate, waiting stats, message and loan
/// counters). Non-finite doubles are emitted as null.
void write_results_json(std::ostream& os, const std::string& tool,
                        const std::vector<LabeledResult>& results);

/// Same, to a file. Throws std::runtime_error when the file cannot be
/// opened.
void write_results_json_file(const std::string& path, const std::string& tool,
                             const std::vector<LabeledResult>& results);

/// Replicated-run export: same shape and row keys (label, algorithm, phi,
/// rho) as write_results_json so scripts/bench_compare.py matches rows, plus
/// `replications`, the `*_ci95` half-widths (null below two replications;
/// advisory by naming contract with bench_compare) and the pooled
/// waiting-time tail quantiles.
void write_replicated_json(std::ostream& os, const std::string& tool,
                           const std::vector<LabeledReplicatedResult>& results);

void write_replicated_json_file(
    const std::string& path, const std::string& tool,
    const std::vector<LabeledReplicatedResult>& results);

}  // namespace mra::experiment
