#include "experiment/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mra::experiment {

namespace {

std::string sweep_error_message(std::size_t job_index, std::size_t job_count,
                                std::size_t failed_count,
                                const std::string& cause) {
  std::string msg = "sweep job #" + std::to_string(job_index) + " of " +
                    std::to_string(job_count) + " failed";
  if (failed_count > 1) {
    msg += " (" + std::to_string(failed_count) + " job(s) failed in total)";
  }
  msg += ": " + cause;
  return msg;
}

}  // namespace

SweepError::SweepError(std::size_t job_index, std::size_t job_count,
                       std::size_t failed_count, const std::string& cause)
    : std::runtime_error(
          sweep_error_message(job_index, job_count, failed_count, cause)),
      job_index_(job_index),
      failed_count_(failed_count) {}

std::vector<ExperimentResult> run_sweep(const std::vector<SweepJob>& jobs,
                                        unsigned threads) {
  return run_sweep(jobs, threads, nullptr);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepJob>& jobs, unsigned threads,
    std::atomic<std::uint64_t>* jobs_done,
    std::atomic<std::uint64_t>* jobs_failed) {
  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  if (threads > jobs.size()) threads = static_cast<unsigned>(jobs.size());

  std::atomic<std::size_t> next{0};
  // Keep the *lowest-index* failure, not the first in wall-clock order:
  // which job loses a race depends on scheduling, the reported index must
  // not.
  std::size_t error_index = jobs.size();
  std::exception_ptr error;
  std::size_t failed = 0;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i]();
      } catch (...) {
        if (jobs_failed != nullptr) {
          jobs_failed->fetch_add(1, std::memory_order_relaxed);
        }
        std::scoped_lock lock(error_mutex);
        ++failed;
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
      if (jobs_done != nullptr) {
        jobs_done->fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }  // joins

  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      throw SweepError(error_index, jobs.size(), failed, e.what());
    } catch (...) {
      throw SweepError(error_index, jobs.size(), failed,
                       "unknown exception type");
    }
  }
  return results;
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads) {
  return run_sweep(configs, threads, nullptr);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads,
    std::atomic<std::uint64_t>* jobs_done,
    std::atomic<std::uint64_t>* jobs_failed) {
  std::vector<SweepJob> jobs;
  jobs.reserve(configs.size());
  for (const auto& cfg : configs) {
    jobs.emplace_back([&cfg]() { return run_experiment(cfg); });
  }
  return run_sweep(jobs, threads, jobs_done, jobs_failed);
}

}  // namespace mra::experiment
