#include "experiment/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mra::experiment {

std::vector<ExperimentResult> run_sweep(const std::vector<SweepJob>& jobs,
                                        unsigned threads) {
  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  if (threads > jobs.size()) threads = static_cast<unsigned>(jobs.size());

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i]();
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }  // joins

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads) {
  std::vector<SweepJob> jobs;
  jobs.reserve(configs.size());
  for (const auto& cfg : configs) {
    jobs.emplace_back([&cfg]() { return run_experiment(cfg); });
  }
  return run_sweep(jobs, threads);
}

}  // namespace mra::experiment
