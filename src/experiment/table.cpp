#include "experiment/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mra::experiment {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, fill) << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::right << row[c]
         << " |";
    }
    os << '\n';
  };
  line('-');
  print_row(header_);
  line('-');
  for (const auto& row : rows_) print_row(row);
  line('-');
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_estimate(const metrics::Estimate& e, int precision) {
  const std::string half = std::isnan(e.ci95_half)
                               ? std::string("n/a")
                               : Table::fmt(e.ci95_half, precision);
  return Table::fmt(e.mean, precision) + " ±" + half;
}

}  // namespace mra::experiment
