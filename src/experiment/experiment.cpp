#include "experiment/experiment.hpp"

#include "algo/lass/node.hpp"
#include "workload/driver.hpp"

namespace mra::experiment {

ExperimentResult summarize(algo::AllocationSystem& system,
                           const metrics::Collector& col, bool keep_records) {
  ExperimentResult result;
  result.algorithm = algo::to_string(system.config().algorithm);

  auto& sim = system.simulator();
  result.use_rate = col.usage().use_rate(sim.now());
  result.waiting_mean_ms = col.waiting().mean();
  result.waiting_stddev_ms = col.waiting().stddev();
  result.waiting_stats = col.waiting();
  result.waiting_sketch = col.waiting_sketch();
  result.waiting_p50_ms = result.waiting_sketch.percentile(50);
  result.waiting_p95_ms = result.waiting_sketch.percentile(95);
  result.waiting_p99_ms = result.waiting_sketch.percentile(99);
  result.requests_completed = col.completed();
  for (const auto& s : col.waiting_by_size()) {
    result.waiting_by_size.push_back(
        BucketStats{s.mean(), s.stddev(), s.count()});
  }

  result.messages = system.network().total_messages();
  result.bytes = system.network().total_bytes();
  result.messages_per_cs =
      col.completed() == 0
          ? 0.0
          : static_cast<double>(result.messages) /
                static_cast<double>(col.completed());
  for (const auto& [kind, st] : system.network().stats_by_kind()) {
    result.messages_by_kind[kind] = st.count;
  }

  for (int i = 0; i < system.num_sites(); ++i) {
    if (const auto* lass =
            dynamic_cast<const algo::lass::LassNode*>(&system.node(i))) {
      result.loans_used += lass->loans_used();
      result.loans_failed += lass->loans_failed();
    }
  }

  if (keep_records) result.records = col.records();
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  auto system = algo::AllocationSystem::create(config.system);
  system->start();

  workload::WorkloadRunner runner(*system, config.workload,
                                  config.system.seed ^ 0x9E3779B97F4A7C15ULL,
                                  config.size_buckets);
  runner.collector().set_keep_records(config.keep_records);

  auto& sim = system->simulator();
  // Generous budget: a healthy run processes far fewer events; a livelocked
  // protocol trips this instead of hanging the harness.
  sim.set_event_budget(500'000'000ULL);

  // Warm-up, then cut the statistics window.
  runner.start();
  sim.run(config.warmup);
  runner.collector().reset(sim.now());
  system->network().reset_stats();

  const sim::SimTime end = config.warmup + config.measure;
  sim.run(end);

  ExperimentResult result =
      summarize(*system, runner.collector(), config.keep_records);
  result.phi = config.workload.phi;
  result.rho = config.workload.rho;
  return result;
}

}  // namespace mra::experiment
