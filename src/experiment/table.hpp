// ASCII table rendering and CSV export for bench output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/stats.hpp"

namespace mra::experiment {

/// A simple column-aligned table: set a header, append rows, print.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (helper for cells).
  static std::string fmt(double value, int precision = 2);

  void print(std::ostream& os) const;
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 ±0.4" — a mean with its 95% half-width at the given precision
/// ("±n/a" when fewer than two replications make the interval undefined).
/// Shared by every table front end that renders a metrics::Estimate cell.
[[nodiscard]] std::string fmt_estimate(const metrics::Estimate& e,
                                       int precision);

}  // namespace mra::experiment
