// Parallel parameter sweeps.
//
// Each experiment is an independent, single-threaded simulation, so a sweep
// is embarrassingly parallel: a fixed pool of std::jthread workers pulls
// configs from an atomic counter. Results land at their config's index, so
// the output order is deterministic regardless of scheduling.
#pragma once

#include <vector>

#include "experiment/experiment.hpp"

namespace mra::experiment {

/// Runs all configs, using up to `threads` workers (0 = hardware
/// concurrency). Exceptions from individual runs propagate after the pool
/// drains.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);

}  // namespace mra::experiment
