// Parallel parameter sweeps.
//
// Each experiment is an independent, single-threaded simulation, so a sweep
// is embarrassingly parallel: a fixed pool of std::jthread workers pulls
// configs from an atomic counter. Results land at their config's index, so
// the output order is deterministic regardless of scheduling.
#pragma once

#include <functional>
#include <vector>

#include "experiment/experiment.hpp"

namespace mra::experiment {

/// One unit of sweep work: any callable producing an ExperimentResult.
/// Lets callers sweep things that are not plain ExperimentConfigs (the
/// scenario runner sweeps ScenarioSpec × Algorithm jobs this way).
using SweepJob = std::function<ExperimentResult()>;

/// Runs all jobs, using up to `threads` workers (0 = hardware concurrency).
/// Results land at their job's index, so the output order is deterministic
/// regardless of scheduling. Exceptions from individual runs propagate after
/// the pool drains.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepJob>& jobs, unsigned threads = 0);

/// Convenience wrapper: one run_experiment job per config.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);

}  // namespace mra::experiment
