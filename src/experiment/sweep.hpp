// Parallel parameter sweeps.
//
// Each experiment is an independent, single-threaded simulation, so a sweep
// is embarrassingly parallel: a fixed pool of std::jthread workers pulls
// configs from an atomic counter. Results land at their config's index, so
// the output order is deterministic regardless of scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"

namespace mra::experiment {

/// One unit of sweep work: any callable producing an ExperimentResult.
/// Lets callers sweep things that are not plain ExperimentConfigs (the
/// scenario runner sweeps ScenarioSpec × Algorithm jobs this way).
using SweepJob = std::function<ExperimentResult()>;

/// Thrown by run_sweep when at least one job failed. Identifies the failing
/// job (the lowest-index failure, which is stable across scheduling) and
/// carries its message plus the total failure count; what() reads e.g.
/// "sweep job #3 of 12 failed (2 job(s) failed in total): <cause>".
class SweepError : public std::runtime_error {
 public:
  SweepError(std::size_t job_index, std::size_t job_count,
             std::size_t failed_count, const std::string& cause);

  [[nodiscard]] std::size_t job_index() const { return job_index_; }
  [[nodiscard]] std::size_t failed_count() const { return failed_count_; }

 private:
  std::size_t job_index_;
  std::size_t failed_count_;
};

/// Runs all jobs, using up to `threads` workers (0 = hardware concurrency).
/// Results land at their job's index, so the output order is deterministic
/// regardless of scheduling.
///
/// Error contract: the pool always drains — a throwing job never cancels
/// the others — and afterwards a SweepError for the lowest-index failure is
/// thrown. No partial results escape: the output vector is discarded on
/// throw, so callers never see a default-constructed ExperimentResult
/// standing in for a failed run.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepJob>& jobs, unsigned threads = 0);

/// Same, bumping `jobs_done` (relaxed) after each finished job — including
/// failed ones — so an obs::Heartbeat polling it reports live progress.
/// `jobs_failed` (when non-null) is bumped once per throwing job, so the
/// heartbeat can surface failures while the pool keeps draining (the
/// SweepError only fires after the last job). Null pointers behave exactly
/// like the plain overload.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepJob>& jobs, unsigned threads,
    std::atomic<std::uint64_t>* jobs_done,
    std::atomic<std::uint64_t>* jobs_failed = nullptr);

/// Convenience wrapper: one run_experiment job per config.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);

/// Config wrapper with live progress, see the SweepJob overload.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads,
    std::atomic<std::uint64_t>* jobs_done,
    std::atomic<std::uint64_t>* jobs_failed = nullptr);

}  // namespace mra::experiment
