// One experiment = one algorithm + one workload + warm-up + measurement.
// Produces the metrics the paper reports (§5).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "metrics/collector.hpp"
#include "workload/workload.hpp"

namespace mra::experiment {

struct ExperimentConfig {
  algo::SystemConfig system;
  workload::WorkloadConfig workload;

  sim::SimDuration warmup = sim::from_ms(2000);    ///< discarded
  sim::SimDuration measure = sim::from_ms(10000);  ///< measured window
  std::size_t size_buckets = 6;  ///< waiting-time buckets (Fig. 7 uses 6)
  bool keep_records = false;     ///< keep the per-request log (Gantt)
};

struct BucketStats {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  std::uint64_t count = 0;
};

struct ExperimentResult {
  std::string algorithm;
  int phi = 0;
  double rho = 0.0;

  double use_rate = 0.0;              ///< [0, 1]
  double waiting_mean_ms = 0.0;
  double waiting_stddev_ms = 0.0;
  double waiting_p50_ms = 0.0;
  double waiting_p95_ms = 0.0;
  double waiting_p99_ms = 0.0;
  std::uint64_t requests_completed = 0;
  std::vector<BucketStats> waiting_by_size;

  /// Mergeable waiting-time accumulators, carried so replicated runs can
  /// pool per-rep samples exactly (experiment/replicate.hpp).
  metrics::RunningStats waiting_stats;
  metrics::QuantileSketch waiting_sketch;

  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double messages_per_cs = 0.0;
  std::map<std::string, std::uint64_t> messages_by_kind;

  std::uint64_t loans_used = 0;    ///< LASS only
  std::uint64_t loans_failed = 0;  ///< LASS only

  std::vector<metrics::RequestRecord> records;  ///< when keep_records
};

/// Runs one experiment to completion. Deterministic given the config.
/// Throws sim::EventBudgetExceeded if the protocol livelocks (bug guard).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Extracts every metric field of an ExperimentResult from a finished run:
/// algorithm name, use rate, waiting statistics, message counters and LASS
/// loan counters. Shared by run_experiment and scenario::run_scenario;
/// `phi`/`rho` stay at their defaults (the caller knows the workload).
[[nodiscard]] ExperimentResult summarize(algo::AllocationSystem& system,
                                         const metrics::Collector& collector,
                                         bool keep_records);

}  // namespace mra::experiment
