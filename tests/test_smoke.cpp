// End-to-end smoke: every algorithm completes a small workload with sane
// metrics. Deeper invariants live in the per-module test files.
#include <gtest/gtest.h>

#include "experiment/experiment.hpp"

namespace mra::experiment {
namespace {

class SmokeTest : public ::testing::TestWithParam<algo::Algorithm> {};

TEST_P(SmokeTest, CompletesSmallWorkload) {
  ExperimentConfig cfg;
  cfg.system.algorithm = GetParam();
  cfg.system.num_sites = 8;
  cfg.system.num_resources = 12;
  cfg.system.seed = 42;
  cfg.workload = workload::medium_load(/*phi=*/4, /*num_resources=*/12);
  cfg.warmup = sim::from_ms(200);
  cfg.measure = sim::from_ms(2000);

  const ExperimentResult result = run_experiment(cfg);
  EXPECT_GT(result.requests_completed, 20u);
  EXPECT_GE(result.use_rate, 0.0);
  EXPECT_LE(result.use_rate, 1.0);
  EXPECT_GE(result.waiting_mean_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SmokeTest,
    ::testing::Values(algo::Algorithm::kIncremental,
                      algo::Algorithm::kBouabdallahLaforest,
                      algo::Algorithm::kLassWithoutLoan,
                      algo::Algorithm::kLassWithLoan,
                      algo::Algorithm::kCentralSharedMemory,
                      algo::Algorithm::kMaddi),
    [](const ::testing::TestParamInfo<algo::Algorithm>& info) {
      std::string name = algo::to_string(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mra::experiment
