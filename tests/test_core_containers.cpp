// Tests for the flat containers behind the per-site memory layout
// (DESIGN.md §13): SmallVector inline/spill mechanics, FlatMap ordering
// semantics (which LASS flush order depends on), the shared spill pool,
// and the end-to-end determinism golden proving a LASS trace is
// byte-identical across the std::map -> FlatMap migration.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algo/factory.hpp"
#include "core/arena.hpp"
#include "core/flat_map.hpp"
#include "core/small_vector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/workload.hpp"

namespace {

using mra::core::Arena;
using mra::core::FlatMap;
using mra::core::FreeListPool;
using mra::core::SmallVector;

TEST(SmallVector, PushBackPreservesOrderAcrossSpill) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inline_storage());
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.inline_storage());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 99);
}

TEST(SmallVector, StaysInlineAtCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inline_storage());  // spill happens on the 5th element
  v.push_back(4);
  EXPECT_FALSE(v.inline_storage());
}

TEST(SmallVector, InsertAndEraseShiftElements) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.push_back(3);
  v.insert(v.begin() + 1, 2);  // forces a spill too (capacity 2 -> 3)
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);

  v.erase(v.begin());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 3);

  v.erase(v.begin(), v.end());
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveStealsHeapBufferAndMovesInlineElements) {
  SmallVector<std::string, 2> inline_v;
  inline_v.push_back("a");
  SmallVector<std::string, 2> from_inline = std::move(inline_v);
  ASSERT_EQ(from_inline.size(), 1u);
  EXPECT_EQ(from_inline[0], "a");
  EXPECT_TRUE(from_inline.inline_storage());

  SmallVector<std::string, 2> spilled;
  for (int i = 0; i < 8; ++i) spilled.push_back(std::to_string(i));
  const std::string* heap = spilled.data();
  SmallVector<std::string, 2> from_heap = std::move(spilled);
  EXPECT_EQ(from_heap.data(), heap);  // buffer stolen, not copied
  ASSERT_EQ(from_heap.size(), 8u);
  EXPECT_EQ(from_heap[7], "7");
}

TEST(FlatMap, IterationIsAscendingKeyOrder) {
  // LASS flushes its aggregation buffers by iterating the per-site map;
  // replay stays byte-identical only because this order matches std::map.
  FlatMap<int, std::string, 2> m;
  m[30] = "c";
  m[10] = "a";
  m[20] = "b";
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
}

TEST(FlatMap, FindEraseAndDefaultConstruct) {
  FlatMap<int, int, 2> m;
  EXPECT_EQ(m[5], 0);  // operator[] default-constructs, std::map semantics
  m[5] = 42;
  EXPECT_TRUE(m.contains(5));
  EXPECT_EQ(m.at(5), 42);
  EXPECT_EQ(m.find(6), m.end());
  EXPECT_THROW((void)m.at(6), std::out_of_range);

  auto [it, inserted] = m.try_emplace(6, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 7);
  auto [it2, inserted2] = m.try_emplace(6, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 7);

  EXPECT_EQ(m.erase(5), 1u);
  EXPECT_EQ(m.erase(5), 0u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, SpillsToHeapBeyondInlineCapacity) {
  FlatMap<int, int, 4> m;
  for (int i = 0; i < 4; ++i) m[i] = i;
  EXPECT_TRUE(m.inline_storage());
  m[4] = 4;
  EXPECT_FALSE(m.inline_storage());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(m.at(i), i);
}

TEST(FreeListPool, RecyclesBlocksInLifoOrder) {
  FreeListPool pool;
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  const std::size_t reserved = pool.arena().bytes_allocated();
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  EXPECT_EQ(pool.allocate(64), b);  // LIFO: last freed, first reused
  EXPECT_EQ(pool.allocate(64), a);
  // Recycling never touched the arena again.
  EXPECT_EQ(pool.arena().bytes_allocated(), reserved);
}

TEST(ArenaTest, BumpAllocatesAndTracksBytes) {
  Arena arena(/*first_chunk_bytes=*/128);
  void* p = arena.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_allocated(), 100u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
  // A request larger than the current chunk grows geometrically.
  void* q = arena.allocate(1000);
  ASSERT_NE(q, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

#ifndef MRA_CONTAINER_POOL_DISABLED
TEST(ContainerPool, SmallVectorSpillRecyclesThroughPool) {
  const std::size_t before = mra::core::container_spill_pool()
                                 .arena()
                                 .bytes_allocated();
  for (int round = 0; round < 8; ++round) {
    SmallVector<std::uint64_t, 2> v;
    for (int i = 0; i < 16; ++i) v.push_back(static_cast<std::uint64_t>(i));
  }
  const std::size_t after = mra::core::container_spill_pool()
                                .arena()
                                .bytes_allocated();
  // All 8 rounds spill through the same recycled free-list blocks: the
  // arena grows for the first round only (grow chain 32 -> 64 -> 128 B).
  EXPECT_LE(after - before, 32u + 64u + 128u);
}
#endif  // MRA_CONTAINER_POOL_DISABLED

// ---------------------------------------------------------------------------
// Determinism golden: the exact event trace of a LASS-with-loan run, pinned
// before the flat-container migration (std::map / std::vector state) and
// required to stay byte-identical forever after. If FlatMap iteration
// order, lazy token materialization, or the sparse FIFO watermark ever
// diverge from the dense originals, the FNV hash moves and this fails.
// ---------------------------------------------------------------------------

namespace golden {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace golden

TEST(LassDeterminism, LassTraceByteIdentical) {
  mra::algo::SystemConfig sys;
  sys.algorithm = mra::algo::Algorithm::kLassWithLoan;
  sys.num_sites = 8;
  sys.num_resources = 16;
  sys.seed = 7;
  sys.network_latency = mra::sim::from_ms(0.6);
  auto system = mra::algo::AllocationSystem::create(sys);

  std::string all;
  system->trace().enable();
  system->trace().set_capacity(1 << 20);
  system->trace().set_sink([&all](const std::string& line) {
    all += line;
    all += '\n';
  });
  system->start();

  mra::workload::WorkloadConfig wl =
      mra::workload::high_load(/*phi=*/4, /*M=*/16);
  mra::workload::WorkloadRunner runner(*system, wl,
                                       sys.seed ^ 0x9E3779B97F4A7C15ULL);
  runner.start();
  system->simulator().run(mra::sim::from_ms(500));

  // Values captured from the pre-refactor build (commit with dense
  // std::map state); see DESIGN.md §13.
  EXPECT_EQ(system->trace().lines().size(), 215u);
  EXPECT_EQ(golden::fnv1a(all), 11022870670007805999ULL);
  EXPECT_EQ(system->trace().lines().front(),
            "[2.06171ms] s3 Request_CS {4, 7}");
  EXPECT_EQ(system->trace().lines().back(),
            "[498.882ms] s6 waitCS mark=7.000000");
  EXPECT_EQ(runner.collector().completed(), 45u);
  EXPECT_EQ(system->network().total_messages(), 502u);
  EXPECT_EQ(system->network().total_bytes(), 47462u);
}

}  // namespace
