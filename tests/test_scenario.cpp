// Scenario subsystem tests: generator determinism and distribution shape,
// spec validation, registry completeness, bit-identical reruns, and trace
// record/replay round trips (including safety/liveness across every
// algorithm in the factory).
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "scenario/generator.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

namespace mra::scenario {
namespace {

/// Shrinks a spec so one run takes milliseconds, preserving its character.
ScenarioSpec shrink(ScenarioSpec s) {
  s.system.num_sites = 8;
  s.system.num_resources = 16;
  s.workload.num_resources = 16;
  s.workload.phi = std::min(s.workload.phi, 4);
  s.popularity.hot_k = std::min(s.popularity.hot_k, 4);
  s.warmup = sim::from_ms(100);
  s.measure = sim::from_ms(600);
  return s;
}

// --- pickers ---------------------------------------------------------------

TEST(Picker, EveryKindIsDeterministicAndDrawsDistinctSets) {
  for (Popularity kind :
       {Popularity::kUniform, Popularity::kZipf, Popularity::kHotspot}) {
    PopularitySpec spec;
    spec.kind = kind;
    auto a = make_picker(spec, 20);
    auto b = make_picker(spec, 20);
    sim::Rng ra(42), rb(42);
    for (int i = 0; i < 200; ++i) {
      const int size = 1 + i % 8;
      const ResourceSet sa = a->draw(size, ra);
      const ResourceSet sb = b->draw(size, rb);
      ASSERT_EQ(sa.to_vector(), sb.to_vector()) << to_string(kind);
      ASSERT_EQ(sa.size(), static_cast<std::size_t>(size)) << to_string(kind);
      sa.for_each([](ResourceId r) {
        ASSERT_GE(r, 0);
        ASSERT_LT(r, 20);
      });
    }
  }
}

TEST(Picker, ZipfRankOneFrequencyDominates) {
  PopularitySpec spec;
  spec.kind = Popularity::kZipf;
  spec.zipf_exponent = 1.2;
  auto picker = make_picker(spec, 20);
  sim::Rng rng(7);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 6000; ++i) {
    picker->draw(1, rng).for_each(
        [&](ResourceId r) { ++counts[static_cast<std::size_t>(r)]; });
  }
  // Rank 1 beats rank 2 (expected ratio 2^1.2 ≈ 2.3) and crushes the tail.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 3 * counts[10]);
  for (int c : counts) EXPECT_GT(c, 0);  // but nothing starves
}

TEST(Picker, HotspotConcentratesConfiguredMass) {
  PopularitySpec spec;
  spec.kind = Popularity::kHotspot;
  spec.hot_k = 4;
  spec.hot_mass = 0.8;
  auto picker = make_picker(spec, 20);
  sim::Rng rng(11);
  int hot = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    picker->draw(1, rng).for_each([&](ResourceId r) {
      if (r < 4) ++hot;
    });
  }
  const double hot_share = static_cast<double>(hot) / n;
  EXPECT_GE(hot_share, 0.75);  // configured mass 0.8 ± sampling noise
  EXPECT_LE(hot_share, 0.85);
}

// --- arrival processes -----------------------------------------------------

TEST(Arrival, AllKindsDeterministicAndPositive) {
  workload::WorkloadConfig wl;
  for (Arrival kind : {Arrival::kClosedExponential, Arrival::kOpenPoisson,
                       Arrival::kOnOffBursty}) {
    ArrivalSpec spec;
    spec.kind = kind;
    auto a = make_arrival(spec, wl);
    auto b = make_arrival(spec, wl);
    sim::Rng ra(5), rb(5);
    sim::SimTime now = 0;
    for (int i = 0; i < 300; ++i) {
      const auto da = a->next_delay(now, ra);
      const auto db = b->next_delay(now, rb);
      ASSERT_EQ(da, db) << to_string(kind);
      ASSERT_GT(da, 0) << to_string(kind);
      now += da;
    }
  }
}

TEST(Arrival, OnlyOpenPoissonIsOpenLoop) {
  workload::WorkloadConfig wl;
  ArrivalSpec spec;
  EXPECT_FALSE(make_arrival(spec, wl)->open_loop());
  spec.kind = Arrival::kOpenPoisson;
  EXPECT_TRUE(make_arrival(spec, wl)->open_loop());
  spec.kind = Arrival::kOnOffBursty;
  EXPECT_FALSE(make_arrival(spec, wl)->open_loop());
}

// --- heterogeneity ---------------------------------------------------------

TEST(Heterogeneity, HeavySitesGetScaledWorkload) {
  ScenarioSpec s = find_scenario("heterogeneous");
  ASSERT_EQ(num_heavy_sites(s), 8);  // 25% of 32
  const auto heavy = effective_site_workload(s, 0);
  const auto light = effective_site_workload(s, 8);
  EXPECT_EQ(light.phi, s.workload.phi);
  EXPECT_EQ(heavy.phi, 16);  // 4 * 4, under M = 80
  EXPECT_EQ(heavy.alpha_max, 2 * light.alpha_max);
  EXPECT_NO_THROW(heavy.validate());
}

TEST(Heterogeneity, HeavyPhiIsCappedAtM) {
  ScenarioSpec s = find_scenario("heterogeneous");
  s.heterogeneity.heavy_phi_scale = 1000.0;
  EXPECT_EQ(effective_site_workload(s, 0).phi, s.workload.num_resources);
}

// --- spec validation -------------------------------------------------------

TEST(Spec, ValidationNamesTheOffendingField) {
  auto message_of = [](const ScenarioSpec& s) -> std::string {
    try {
      s.validate();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  ScenarioSpec s = find_scenario("zipf-hot");
  s.popularity.zipf_exponent = -1.0;
  EXPECT_NE(message_of(s).find("zipf_exponent"), std::string::npos);

  s = find_scenario("hotspot-k4");
  s.popularity.hot_k = 0;
  EXPECT_NE(message_of(s).find("hot_k"), std::string::npos);
  s = find_scenario("hotspot-k4");
  s.popularity.hot_mass = 1.5;
  EXPECT_NE(message_of(s).find("hot_mass"), std::string::npos);

  s = find_scenario("heterogeneous");
  s.heterogeneity.heavy_fraction = 2.0;
  EXPECT_NE(message_of(s).find("heavy_fraction"), std::string::npos);

  s = find_scenario("bursty");
  s.arrival.burst_think_scale = 0.0;
  EXPECT_NE(message_of(s).find("burst_think_scale"), std::string::npos);

  s = find_scenario("paper-phi4");
  s.system.num_resources = 40;  // now disagrees with workload
  EXPECT_NE(message_of(s).find("num_resources"), std::string::npos);
}

// --- registry --------------------------------------------------------------

TEST(Registry, HasAtLeastSixDocumentedValidScenarios) {
  const auto& all = registry();
  EXPECT_GE(all.size(), 6u);
  std::map<std::string, int> seen;
  for (const ScenarioSpec& s : all) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty()) << s.name;
    EXPECT_NO_THROW(s.validate()) << s.name;
    ++seen[s.name];
  }
  for (const auto& [name, count] : seen) EXPECT_EQ(count, 1) << name;
  for (const char* required :
       {"paper-phi4", "paper-phi80", "zipf-hot", "bursty", "heterogeneous",
        "clouds-hierarchical"}) {
    EXPECT_NO_THROW((void)find_scenario(required)) << required;
  }
  EXPECT_THROW((void)find_scenario("no-such-scenario"),
               std::invalid_argument);
}

// --- end-to-end determinism ------------------------------------------------

TEST(RunScenario, BitIdenticalMetricsAcrossRunsForEveryScenario) {
  for (const ScenarioSpec& registered : registry()) {
    const ScenarioSpec spec = shrink(registered);
    const auto a = run_scenario(spec, algo::Algorithm::kLassWithLoan);
    const auto b = run_scenario(spec, algo::Algorithm::kLassWithLoan);
    EXPECT_EQ(a.use_rate, b.use_rate) << spec.name;  // bitwise
    EXPECT_EQ(a.waiting_mean_ms, b.waiting_mean_ms) << spec.name;
    EXPECT_EQ(a.requests_completed, b.requests_completed) << spec.name;
    EXPECT_EQ(a.messages, b.messages) << spec.name;
    EXPECT_EQ(a.bytes, b.bytes) << spec.name;
    EXPECT_GT(a.requests_completed, 0u) << spec.name;
  }
}

TEST(RunScenario, OpenLoopCompletesQueuedArrivals) {
  const ScenarioSpec spec = shrink(find_scenario("open-loop"));
  const auto r = run_scenario(spec, algo::Algorithm::kLassWithLoan);
  EXPECT_GT(r.requests_completed, 0u);
  EXPECT_GT(r.use_rate, 0.0);
}

// --- trace record / replay -------------------------------------------------

TEST(TraceFormat, RoundTripsThroughStream) {
  // clouds-hierarchical also exercises the optional topology header keys.
  for (const char* name : {"hotspot-k4", "clouds-hierarchical"}) {
    const ScenarioSpec spec = shrink(find_scenario(name));
    const RequestTrace trace =
        record_scenario(spec, algo::Algorithm::kLassWithLoan);
    ASSERT_FALSE(trace.events.empty()) << name;

    std::stringstream ss;
    write_trace(ss, trace);
    const RequestTrace back = read_trace(ss);

    EXPECT_EQ(back.scenario, trace.scenario);
    EXPECT_EQ(back.num_sites, trace.num_sites);
    EXPECT_EQ(back.num_resources, trace.num_resources);
    EXPECT_EQ(back.seed, trace.seed);
    EXPECT_EQ(back.network_latency, trace.network_latency);
    EXPECT_EQ(back.hierarchical_clusters, trace.hierarchical_clusters);
    EXPECT_EQ(back.hierarchical_remote_latency,
              trace.hierarchical_remote_latency);
    ASSERT_EQ(back.events.size(), trace.events.size()) << name;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      EXPECT_EQ(back.events[i], trace.events[i]) << name << " event " << i;
    }
  }
}

TEST(TraceFormat, RejectsMalformedInput) {
  std::stringstream no_magic("sites 4\nresources 8\nseed 1\n");
  EXPECT_THROW((void)read_trace(no_magic), std::runtime_error);

  std::stringstream bad_key("# mra-trace v1\nbogus 12\n");
  EXPECT_THROW((void)read_trace(bad_key), std::runtime_error);

  std::stringstream bad_site(
      "# mra-trace v1\nsites 4\nresources 8\nseed 1\n100 9 50 0,1\n");
  EXPECT_THROW((void)read_trace(bad_site), std::invalid_argument);

  std::stringstream bad_resource(
      "# mra-trace v1\nsites 4\nresources 8\nseed 1\n100 0 50 0,99\n");
  EXPECT_THROW((void)read_trace(bad_resource), std::invalid_argument);
}

TEST(Replay, EveryFactoryAlgorithmIsSafeAndLive) {
  const ScenarioSpec spec = shrink(find_scenario("zipf-hot"));
  const RequestTrace trace =
      record_scenario(spec, algo::Algorithm::kLassWithLoan);
  ASSERT_FALSE(trace.events.empty());

  for (algo::Algorithm alg : algo::all_algorithms()) {
    const ReplayResult r = replay_trace(trace, alg);
    EXPECT_TRUE(r.safety_ok) << algo::to_string(alg);
    EXPECT_TRUE(r.completed_all) << algo::to_string(alg);
    EXPECT_EQ(r.metrics.requests_completed, trace.events.size())
        << algo::to_string(alg);
  }
}

TEST(Replay, DeterministicMetrics) {
  const ScenarioSpec spec = shrink(find_scenario("bursty"));
  const RequestTrace trace =
      record_scenario(spec, algo::Algorithm::kLassWithoutLoan);
  const ReplayResult a = replay_trace(trace, algo::Algorithm::kLassWithLoan);
  const ReplayResult b = replay_trace(trace, algo::Algorithm::kLassWithLoan);
  EXPECT_EQ(a.metrics.waiting_mean_ms, b.metrics.waiting_mean_ms);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.use_rate, b.metrics.use_rate);
}

// --- trace v2 --------------------------------------------------------------

TEST(TraceV2, RecordedTracesCarrySelfContainedProvenance) {
  ScenarioSpec spec = shrink(find_scenario("hotspot-k4"));
  spec.system.latency_delay_bound = sim::from_ms(1);
  const RequestTrace trace =
      record_scenario(spec, algo::Algorithm::kLassWithLoan);
  EXPECT_TRUE(trace.has_v2_fields());
  EXPECT_EQ(trace.algorithm, "lass-loan");
  EXPECT_EQ(trace.latency_delay_bound, sim::from_ms(1));

  std::stringstream ss;
  write_trace(ss, trace);
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "# mra-trace v2");
  ss.seekg(0);
  const RequestTrace back = read_trace(ss);
  EXPECT_EQ(back.algorithm, trace.algorithm);
  EXPECT_EQ(back.latency_delay_bound, trace.latency_delay_bound);
  EXPECT_EQ(back.latency_quantum, trace.latency_quantum);
  EXPECT_EQ(back.mutant, trace.mutant);
  ASSERT_EQ(back.events.size(), trace.events.size());

  // write -> read -> write is byte-stable.
  std::stringstream ss2;
  write_trace(ss2, back);
  EXPECT_EQ(ss2.str(), ss.str());
}

TEST(TraceV2, PureV1TracesStillParseAndStayV1) {
  const std::string v1 =
      "# mra-trace v1\n"
      "scenario hand\n"
      "sites 4\n"
      "resources 8\n"
      "seed 7\n"
      "latency_ns 600000\n"
      "100 0 50 0,1\n"
      "200 1 60 2\n";
  std::stringstream in(v1);
  const RequestTrace t = read_trace(in);
  EXPECT_FALSE(t.has_v2_fields());
  EXPECT_TRUE(t.algorithm.empty());
  ASSERT_EQ(t.events.size(), 2u);

  // A v2-aware writer keeps a pure-v1 trace in the v1 format, byte-stably.
  std::stringstream out;
  write_trace(out, t);
  EXPECT_EQ(out.str().rfind("# mra-trace v1", 0), 0u);
  std::stringstream again(out.str());
  std::stringstream out2;
  write_trace(out2, read_trace(again));
  EXPECT_EQ(out2.str(), out.str());
}

TEST(TraceV2, UnsupportedVersionsAndLeakedV2KeysAreRejected) {
  std::stringstream v3("# mra-trace v3\nsites 4\nresources 8\nseed 1\n");
  try {
    (void)read_trace(v3);
    FAIL() << "a v3 trace was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported trace version"),
              std::string::npos)
        << e.what();
  }

  // v2 keys are only legal under the v2 magic.
  std::stringstream leaked(
      "# mra-trace v1\nsites 4\nresources 8\nseed 1\nalgorithm lass\n");
  EXPECT_THROW((void)read_trace(leaked), std::runtime_error);

  // Negative provenance values fail validation by name.
  std::stringstream negative(
      "# mra-trace v2\nsites 4\nresources 8\nseed 1\ndelay_bound_ns -5\n"
      "100 0 50 0\n");
  EXPECT_THROW((void)read_trace(negative), std::invalid_argument);
}

TEST(TraceV2, ReplayHonorsTheEmbeddedPerturbation) {
  ScenarioSpec spec = shrink(find_scenario("zipf-hot"));
  spec.system.latency_delay_bound = sim::from_ms(2);
  const RequestTrace trace =
      record_scenario(spec, algo::Algorithm::kLassWithLoan);
  ASSERT_GT(trace.latency_delay_bound, 0);

  // The trace alone pins the perturbed network: bit-identical replays.
  ReplayOptions opt;
  opt.seed = trace.seed;
  const ReplayResult a =
      replay_trace(trace, algo::Algorithm::kLassWithLoan, opt);
  const ReplayResult b =
      replay_trace(trace, algo::Algorithm::kLassWithLoan, opt);
  EXPECT_EQ(a.metrics.waiting_mean_ms, b.metrics.waiting_mean_ms);  // bitwise
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.end_time, b.end_time);

  // ... and it matters: stripping the v2 header changes the schedule.
  RequestTrace stripped = trace;
  stripped.latency_delay_bound = 0;
  const ReplayResult c =
      replay_trace(stripped, algo::Algorithm::kLassWithLoan, opt);
  EXPECT_NE(a.end_time, c.end_time);
}

}  // namespace
}  // namespace mra::scenario
