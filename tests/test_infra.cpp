// Infrastructure tests: trace collector, system factory, workload runner.
#include <gtest/gtest.h>

#include "algo/factory.hpp"
#include "core/trace.hpp"
#include "workload/driver.hpp"

namespace mra {
namespace {

TEST(TraceTest, DisabledByDefaultAndCostsNothing) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.log(0, 0, "ignored");
  EXPECT_TRUE(t.lines().empty());
}

TEST(TraceTest, CollectsFormattedLines) {
  Trace t;
  t.enable();
  t.log(sim::from_ms(1.5), 3, "hello");
  ASSERT_EQ(t.lines().size(), 1u);
  EXPECT_EQ(t.lines()[0], "[1.5ms] s3 hello");
}

TEST(TraceTest, RingCapacityEvictsOldest) {
  Trace t;
  t.enable();
  t.set_capacity(3);
  for (int i = 0; i < 5; ++i) t.log(0, i, "x");
  ASSERT_EQ(t.lines().size(), 3u);
  EXPECT_EQ(t.lines()[0], "[0ms] s2 x");
}

TEST(TraceTest, SinkReceivesEveryLine) {
  Trace t;
  t.enable();
  int count = 0;
  t.set_sink([&](const std::string&) { ++count; });
  t.log(0, 0, "a");
  t.log(0, 0, "b");
  EXPECT_EQ(count, 2);
  t.clear();
  EXPECT_TRUE(t.lines().empty());
}

TEST(Factory, CreatesEveryAlgorithm) {
  for (auto alg : algo::all_algorithms()) {
    algo::SystemConfig cfg;
    cfg.algorithm = alg;
    cfg.num_sites = 4;
    cfg.num_resources = 6;
    auto system = algo::AllocationSystem::create(cfg);
    system->start();
    EXPECT_EQ(system->num_sites(), 4);
    EXPECT_EQ(system->num_resources(), 6);
    for (SiteId s = 0; s < 4; ++s) {
      EXPECT_EQ(system->node(s).state(), ProcessState::kIdle);
      EXPECT_EQ(system->node(s).id(), s);
    }
  }
}

TEST(Factory, RejectsBadConfigAndDoubleStart) {
  algo::SystemConfig cfg;
  cfg.num_sites = 0;
  EXPECT_THROW(algo::AllocationSystem::create(cfg), std::invalid_argument);
  cfg.num_sites = 2;
  cfg.num_resources = 0;
  EXPECT_THROW(algo::AllocationSystem::create(cfg), std::invalid_argument);
  cfg.num_resources = 2;
  auto system = algo::AllocationSystem::create(cfg);
  system->start();
  EXPECT_THROW(system->start(), std::logic_error);
}

TEST(Factory, AlgorithmNamesAreDistinct) {
  std::set<std::string> names;
  for (auto alg : algo::all_algorithms()) {
    names.insert(algo::to_string(alg));
  }
  EXPECT_EQ(names.size(), algo::all_algorithms().size());
}

TEST(Factory, HierarchicalTopologySlowsCrossClusterTraffic) {
  // Same workload; inter-cluster latency dominates the waiting time when
  // the WAN hop is large.
  auto run = [](int clusters, double wan_ms) {
    algo::SystemConfig cfg;
    cfg.algorithm = algo::Algorithm::kLassWithoutLoan;
    cfg.num_sites = 8;
    cfg.num_resources = 8;
    cfg.hierarchical_clusters = clusters;
    cfg.hierarchical_remote_latency = sim::from_ms(wan_ms);
    auto system = algo::AllocationSystem::create(cfg);
    system->start();
    // One remote round trip: site 7 (cluster 1) fetches everything from
    // site 0 (cluster 0).
    ResourceSet all(8);
    for (ResourceId r = 0; r < 8; ++r) all.insert(r);
    sim::SimTime granted = -1;
    system->node(7).set_grant_callback(
        [&](RequestId) { granted = system->simulator().now(); });
    system->node(7).request(all);
    system->simulator().run();
    return granted;
  };
  const auto flat = run(1, 0.0);
  const auto wan = run(2, 30.0);
  EXPECT_GT(wan, flat);
  EXPECT_GE(wan, sim::from_ms(60.0));  // at least one WAN round trip
}

TEST(WorkloadRunnerTest, DrivesAllNodesAndStops) {
  algo::SystemConfig sys;
  sys.algorithm = algo::Algorithm::kLassWithLoan;
  sys.num_sites = 4;
  sys.num_resources = 6;
  auto system = algo::AllocationSystem::create(sys);
  system->start();

  workload::WorkloadConfig wl;
  wl.num_resources = 6;
  wl.phi = 2;
  workload::WorkloadRunner runner(*system, wl, /*seed=*/5);
  runner.start();
  system->simulator().run(sim::from_ms(500));
  const auto completed_mid = runner.collector().completed();
  EXPECT_GT(completed_mid, 0u);

  runner.stop_issuing();
  system->simulator().run();  // drain in-flight work
  const auto completed_end = runner.collector().completed();
  EXPECT_GE(completed_end, completed_mid);
  // Fully quiescent: no node stuck in a non-idle state.
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(system->node(s).state(), ProcessState::kIdle);
  }
}

TEST(ProcessStateTest, Names) {
  EXPECT_STREQ(to_string(ProcessState::kIdle), "Idle");
  EXPECT_STREQ(to_string(ProcessState::kWaitS), "waitS");
  EXPECT_STREQ(to_string(ProcessState::kWaitCS), "waitCS");
  EXPECT_STREQ(to_string(ProcessState::kInCS), "inCS");
}

}  // namespace
}  // namespace mra
