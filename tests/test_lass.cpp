// LASS-specific tests: the sorted request queue, the `/` total order, the
// counter mechanism, the Figure 3 walkthrough, the loan mechanism, and
// token-conservation invariants.
#include <gtest/gtest.h>

#include <functional>

#include "algo/lass/node.hpp"
#include "experiment/experiment.hpp"
#include "harness.hpp"
#include "net/network.hpp"

namespace mra::algo::lass {
namespace {

ReqItem res_item(ResourceId r, SiteId s, RequestId id, double mark) {
  ReqItem item;
  item.type = ReqType::kRes;
  item.r = r;
  item.sinit = s;
  item.id = id;
  item.mark = mark;
  return item;
}

TEST(SortedRequestQueue, OrdersByMarkThenSite) {
  SortedRequestQueue q;
  q.insert(res_item(0, 3, 1, 5.0));
  q.insert(res_item(0, 1, 1, 7.0));
  q.insert(res_item(0, 2, 1, 5.0));  // same mark as site 3: site id breaks tie
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.head().sinit, 2);
  EXPECT_EQ(q.pop_head().sinit, 2);
  EXPECT_EQ(q.pop_head().sinit, 3);
  EXPECT_EQ(q.pop_head().sinit, 1);
}

TEST(SortedRequestQueue, OneEntryPerSiteNewerIdWins) {
  SortedRequestQueue q;
  EXPECT_TRUE(q.insert(res_item(0, 1, 1, 5.0)));
  EXPECT_FALSE(q.insert(res_item(0, 1, 1, 9.0)));  // same id ignored
  EXPECT_EQ(q.head().mark, 5.0);
  EXPECT_TRUE(q.insert(res_item(0, 1, 2, 9.0)));  // newer id replaces
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head().mark, 9.0);
  EXPECT_FALSE(q.insert(res_item(0, 1, 1, 1.0)));  // older id ignored
  EXPECT_EQ(q.head().id, 2);
}

TEST(SortedRequestQueue, RemoveSiteAndPrune) {
  SortedRequestQueue q;
  q.insert(res_item(0, 0, 3, 1.0));
  q.insert(res_item(0, 1, 5, 2.0));
  q.insert(res_item(0, 2, 1, 3.0));
  EXPECT_TRUE(q.remove_site(1));
  EXPECT_FALSE(q.remove_site(1));
  EXPECT_EQ(q.size(), 2u);
  // last_cs: site 0 satisfied up to id 3 -> its entry (id 3) is obsolete.
  // Sparse map: unlisted sites read as 0.
  SiteRequestIds last_cs;
  last_cs[0] = 3;
  q.prune_obsolete(last_cs);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head().sinit, 2);
}

TEST(TotalOrder, PrecedesIsStrictTotalOrder) {
  const ReqItem a = res_item(0, 1, 1, 2.0);
  const ReqItem b = res_item(0, 2, 1, 2.0);
  const ReqItem c = res_item(0, 1, 1, 3.0);
  EXPECT_TRUE(a.precedes(b));   // tie on mark: site order
  EXPECT_FALSE(b.precedes(a));
  EXPECT_TRUE(a.precedes(c));
  EXPECT_FALSE(a.precedes(a));  // irreflexive
}

// --- full-node scenario fixtures -------------------------------------------

struct LassFixture {
  sim::Simulator sim;
  net::Network net{sim, net::make_fixed_latency(sim::from_ms(0.6)), 9};
  std::vector<std::unique_ptr<LassNode>> nodes;
  LassConfig cfg;

  LassFixture(int n, int m, bool loan = true) {
    cfg.num_sites = n;
    cfg.num_resources = m;
    cfg.enable_loan = loan;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<LassNode>(cfg));
      net.add_node(*nodes.back());
    }
    net.start();
  }

  LassNode& node(SiteId s) { return *nodes[static_cast<std::size_t>(s)]; }

  /// Sum of owned tokens across sites plus tokens in transit must equal M.
  void expect_token_conservation_at_quiescence() {
    ASSERT_TRUE(sim.idle());
    std::vector<int> holders(static_cast<std::size_t>(cfg.num_resources), 0);
    for (auto& n : nodes) {
      n->owned_tokens().for_each([&](ResourceId r) {
        ++holders[static_cast<std::size_t>(r)];
      });
    }
    for (ResourceId r = 0; r < cfg.num_resources; ++r) {
      EXPECT_EQ(holders[static_cast<std::size_t>(r)], 1)
          << "token multiplicity violated for r" << r;
    }
  }
};

TEST(LassNode, ElectedNodeStartsWithAllTokens) {
  LassFixture f(3, 2);
  EXPECT_EQ(f.node(0).owned_tokens().size(), 2u);
  EXPECT_EQ(f.node(1).owned_tokens().size(), 0u);
  EXPECT_EQ(f.node(0).state(), ProcessState::kIdle);
}

TEST(LassNode, Figure3Walkthrough) {
  // s1(=0) in CS on r_red(=0), s3(=2) in CS on r_blue(=1); s2(=1) asks both.
  LassFixture f(3, 2);
  const ResourceSet red(2, {0});
  const ResourceSet blue(2, {1});
  const ResourceSet both(2, {0, 1});

  int s1_granted = 0;
  int s2_granted = 0;
  int s3_granted = 0;
  f.node(0).set_grant_callback([&](RequestId) { ++s1_granted; });
  f.node(1).set_grant_callback([&](RequestId) { ++s2_granted; });
  f.node(2).set_grant_callback([&](RequestId) { ++s3_granted; });

  // Move r_blue's token to s3 first (s3 requests and enters CS).
  f.sim.schedule_in(0, [&]() { f.node(0).request(red); });
  f.sim.schedule_in(0, [&]() { f.node(2).request(blue); });
  f.sim.run();
  EXPECT_EQ(s1_granted, 1);  // held the token: synchronous grant
  EXPECT_EQ(s3_granted, 1);

  // s2 requests both while the others are in CS.
  f.sim.schedule_in(0, [&]() { f.node(1).request(both); });
  f.sim.run();
  EXPECT_EQ(s2_granted, 0) << "s2 must wait: both resources are in use";
  EXPECT_EQ(f.node(1).state(), ProcessState::kWaitCS);
  // s2 has collected both counter values by now.
  EXPECT_NE(f.node(1).counter_vector()[0], 0);
  EXPECT_NE(f.node(1).counter_vector()[1], 0);

  // Releases let s2 in; afterwards s2 is root of both trees (owns tokens).
  f.node(0).release();
  f.node(2).release();
  f.sim.run();
  EXPECT_EQ(s2_granted, 1);
  EXPECT_EQ(f.node(1).state(), ProcessState::kInCS);
  EXPECT_TRUE(f.node(1).owned_tokens().contains(0));
  EXPECT_TRUE(f.node(1).owned_tokens().contains(1));

  f.node(1).release();
  f.sim.run();
  f.expect_token_conservation_at_quiescence();
}

TEST(LassNode, CounterValuesAreUniquePerResource) {
  // Issue staggered requests from every site on one resource and check that
  // the counter values they observe never repeat (the core of the paper's
  // deadlock-freedom argument).
  LassFixture f(6, 1, /*loan=*/false);
  const ResourceSet r0(1, {0});
  std::vector<CounterValue> seen;
  int completed = 0;
  for (SiteId s = 0; s < 6; ++s) {
    f.node(s).set_grant_callback([&, s](RequestId) {
      f.sim.schedule_in(sim::from_ms(1), [&, s]() {
        ++completed;
        f.node(s).release();
      });
    });
    f.sim.schedule_in(sim::from_ms(s / 2), [&, s]() {
      f.node(s).request(r0);
      // The counter value lands in MyVector once known; sample it later.
    });
    f.sim.schedule_in(sim::from_ms(20 + s), [&, s]() {
      // After everything settled the value is gone (reset on release), so
      // sample during the run instead via token snapshot below.
    });
  }
  f.sim.run();
  EXPECT_EQ(completed, 6);
  // The token's counter ends at 1 (initial) + 6 assignments.
  SiteId holder = kNoSite;
  for (SiteId s = 0; s < 6; ++s) {
    if (f.node(s).owned_tokens().contains(0)) holder = s;
  }
  ASSERT_NE(holder, kNoSite);
  EXPECT_EQ(f.node(holder).token_snapshot(0).counter, 7);
  f.expect_token_conservation_at_quiescence();
}

TEST(LassNode, LoanCompletesStarvedRequest) {
  // s0 owns everything. s1 asks {0,1}; s2 asks {1,2}. After s1 enters CS
  // holding 0 and 1, s2 misses only 1 -> it may borrow from s1's successor
  // chain. Regardless of the exact path, liveness must hold and loans must
  // be returned (lender recovers its tokens).
  LassFixture f(4, 3, /*loan=*/true);
  const ResourceSet a(3, {0, 1});
  const ResourceSet b(3, {1, 2});

  int grants = 0;
  for (SiteId s : {1, 2}) {
    f.node(s).set_grant_callback([&, s](RequestId) {
      ++grants;
      f.sim.schedule_in(sim::from_ms(2), [&, s]() { f.node(s).release(); });
    });
  }
  f.sim.schedule_in(0, [&]() { f.node(1).request(a); });
  f.sim.schedule_in(sim::from_ms(0.1), [&]() { f.node(2).request(b); });
  f.sim.run();
  EXPECT_EQ(grants, 2);
  EXPECT_TRUE(f.node(1).lent_resources().empty());
  EXPECT_TRUE(f.node(2).lent_resources().empty());
  f.expect_token_conservation_at_quiescence();
}

TEST(LassNode, LoanMechanismActuallyFires) {
  // Statistical check: under sustained contention with threshold 1, at least
  // one loan completes a CS (the Fig. 5/6 "with loan" improvement exists).
  test::StressOptions opt;
  opt.algorithm = algo::Algorithm::kLassWithLoan;
  opt.num_sites = 10;
  opt.num_resources = 8;
  opt.phi = 5;
  opt.requests_per_site = 60;
  opt.max_think = 0;
  opt.seed = 5;
  const test::StressOutcome out = test::run_stress(opt);
  EXPECT_EQ(out.completed, 600u);
  // Loans-used counter lives on the nodes, which run_stress hides; instead
  // run a direct experiment and read the aggregated stats.
  experiment::ExperimentConfig cfg;
  cfg.system.algorithm = algo::Algorithm::kLassWithLoan;
  cfg.system.num_sites = 10;
  cfg.system.num_resources = 8;
  cfg.system.seed = 5;
  cfg.workload = workload::high_load(5, 8);
  cfg.warmup = sim::from_ms(100);
  cfg.measure = sim::from_ms(3000);
  const auto result = experiment::run_experiment(cfg);
  EXPECT_GT(result.loans_used, 0u);
}

TEST(LassNode, SingleResourceOptimizationSavesMessages) {
  // With only single-resource requests, the optimized variant must use
  // strictly fewer messages for the same schedule.
  auto run = [](bool opt) {
    experiment::ExperimentConfig cfg;
    cfg.system.algorithm = algo::Algorithm::kLassWithoutLoan;
    cfg.system.num_sites = 8;
    cfg.system.num_resources = 6;
    cfg.system.seed = 9;
    cfg.system.opt_single_resource = opt;
    cfg.workload = workload::high_load(1, 6);  // phi = 1: all single-resource
    cfg.warmup = sim::from_ms(100);
    cfg.measure = sim::from_ms(2000);
    return run_experiment(cfg);
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_GT(with.requests_completed, 100u);
  EXPECT_LT(with.messages_per_cs, without.messages_per_cs);
}

TEST(LassNode, MarkPolicyChangesSchedule) {
  auto run = [](MarkPolicy p) {
    experiment::ExperimentConfig cfg;
    cfg.system.algorithm = algo::Algorithm::kLassWithoutLoan;
    cfg.system.num_sites = 8;
    cfg.system.num_resources = 6;
    cfg.system.seed = 12;
    cfg.system.mark_policy = p;
    cfg.workload = workload::high_load(4, 6);
    cfg.warmup = sim::from_ms(100);
    cfg.measure = sim::from_ms(2000);
    return run_experiment(cfg);
  };
  const auto avg = run(MarkPolicy::kAverageNonZero);
  const auto sum = run(MarkPolicy::kSumNonZero);
  // Both live; schedules differ (different completion counts or waits).
  EXPECT_GT(avg.requests_completed, 50u);
  EXPECT_GT(sum.requests_completed, 50u);
  EXPECT_TRUE(avg.requests_completed != sum.requests_completed ||
              avg.waiting_mean_ms != sum.waiting_mean_ms);
}

TEST(LassNode, InvalidConfigThrows) {
  LassConfig cfg;
  EXPECT_THROW(LassNode{cfg}, std::invalid_argument);
  cfg.num_sites = 2;
  EXPECT_THROW(LassNode{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace mra::algo::lass
