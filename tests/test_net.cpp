// Network substrate tests: FIFO links, latency models, statistics, and the
// pooled message allocator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/message_pool.hpp"
#include "net/network.hpp"

namespace mra::net {
namespace {

struct TestMsg final : Message {
  int payload = 0;
  explicit TestMsg(int p) : payload(p) {}
  [[nodiscard]] std::string_view kind() const override { return "Test"; }
  [[nodiscard]] std::size_t wire_size() const override { return 100; }
};

class RecorderNode final : public Node {
 public:
  struct Received {
    SiteId from;
    int payload;
    sim::SimTime at;
  };
  std::vector<Received> log;
  void on_message(SiteId from, const Message& msg) override {
    log.push_back({from, static_cast<const TestMsg&>(msg).payload,
                   network_->simulator().now()});
  }
};

struct Fixture {
  sim::Simulator sim;
  Network net;
  RecorderNode a, b, c;
  explicit Fixture(std::unique_ptr<LatencyModel> latency)
      : net(sim, std::move(latency), 1) {
    net.add_node(a);
    net.add_node(b);
    net.add_node(c);
    net.start();
  }
};

TEST(Network, DeliversWithFixedLatency) {
  Fixture f(make_fixed_latency(sim::from_ms(0.6)));
  f.net.send(0, 1, std::make_unique<TestMsg>(42));
  f.sim.run();
  ASSERT_EQ(f.b.log.size(), 1u);
  EXPECT_EQ(f.b.log[0].payload, 42);
  EXPECT_EQ(f.b.log[0].from, 0);
  EXPECT_EQ(f.b.log[0].at, sim::from_ms(0.6));
}

TEST(Network, FifoPerLinkEvenWithJitter) {
  // Heavy jitter would reorder messages; the network must prevent that on a
  // single ordered link (the paper's FIFO-channel assumption).
  Fixture f(make_uniform_jitter_latency(sim::from_ms(1.0), 0.9));
  for (int i = 0; i < 200; ++i) {
    f.sim.schedule_in(i * 10, [&f, i]() {
      f.net.send(0, 1, std::make_unique<TestMsg>(i));
    });
  }
  f.sim.run();
  ASSERT_EQ(f.b.log.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.b.log[static_cast<std::size_t>(i)].payload, i);
  }
  for (std::size_t i = 1; i < f.b.log.size(); ++i) {
    EXPECT_GT(f.b.log[i].at, f.b.log[i - 1].at);
  }
}

TEST(Network, IndependentLinksMayReorder) {
  // FIFO is per ordered pair only: a later message on a faster link may
  // arrive first. (Different-source messages to one destination.)
  struct StepLatency final : LatencyModel {
    sim::SimDuration sample(int src, int /*dst*/, sim::Rng&) override {
      return src == 0 ? sim::from_ms(5.0) : sim::from_ms(1.0);
    }
  };
  sim::Simulator sim;
  Network net(sim, std::make_unique<StepLatency>(), 1);
  RecorderNode a, b, c;
  net.add_node(a);
  net.add_node(b);
  net.add_node(c);
  net.start();
  net.send(0, 2, std::make_unique<TestMsg>(1));  // slow
  net.send(1, 2, std::make_unique<TestMsg>(2));  // fast, sent "later"
  sim.run();
  ASSERT_EQ(c.log.size(), 2u);
  EXPECT_EQ(c.log[0].payload, 2);
  EXPECT_EQ(c.log[1].payload, 1);
}

TEST(Network, SelfSendGoesThroughLatency) {
  Fixture f(make_fixed_latency(sim::from_ms(0.5)));
  f.net.send(0, 0, std::make_unique<TestMsg>(9));
  f.sim.run();
  ASSERT_EQ(f.a.log.size(), 1u);
  EXPECT_EQ(f.a.log[0].at, sim::from_ms(0.5));
}

TEST(Network, SendInstantDeliversAtCurrentInstant) {
  Fixture f(make_fixed_latency(sim::from_ms(5)));
  f.net.send_instant(0, 1, std::make_unique<TestMsg>(1));
  f.sim.run();
  ASSERT_EQ(f.b.log.size(), 1u);
  EXPECT_LE(f.b.log[0].at, 1);  // only the FIFO epsilon may apply
}

TEST(Network, CountsMessagesAndBytesByKind) {
  Fixture f(make_fixed_latency(1));
  f.net.send(0, 1, std::make_unique<TestMsg>(1));
  f.net.send(1, 2, std::make_unique<TestMsg>(2));
  f.sim.run();
  EXPECT_EQ(f.net.total_messages(), 2u);
  EXPECT_EQ(f.net.total_bytes(), 2 * (100 + Network::kEnvelopeBytes));
  const auto& stats = f.net.stats_by_kind();
  ASSERT_TRUE(stats.contains("Test"));
  EXPECT_EQ(stats.at("Test").count, 2u);
  f.net.reset_stats();
  EXPECT_EQ(f.net.total_messages(), 0u);
  EXPECT_TRUE(f.net.stats_by_kind().empty());
}

TEST(Network, HierarchicalLatencyDistinguishesClusters) {
  sim::Rng rng(1);
  HierarchicalLatency lat(/*cluster_size=*/4, sim::from_ms(0.1),
                          sim::from_ms(10.0));
  EXPECT_EQ(lat.sample(0, 3, rng), sim::from_ms(0.1));   // same cluster
  EXPECT_EQ(lat.sample(0, 4, rng), sim::from_ms(10.0));  // cross cluster
  EXPECT_EQ(lat.sample(5, 7, rng), sim::from_ms(0.1));
}

TEST(Network, AddNodeAfterStartThrows) {
  sim::Simulator sim;
  Network net(sim, make_fixed_latency(1), 1);
  RecorderNode a;
  net.add_node(a);
  net.start();
  RecorderNode b;
  EXPECT_THROW(net.add_node(b), std::logic_error);
}

TEST(Network, NullLatencyModelThrows) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, nullptr, 1), std::invalid_argument);
}

// The pool recycles message storage in LIFO order: allocating after a free
// of the same size class must reuse the freed block instead of touching the
// system allocator. (Disabled under sanitizers, where the pool forwards to
// the system allocator so ASan keeps seeing message lifetimes.)
TEST(MessagePool, RecyclesFreedBlocksOfSameSizeClass) {
  if (!message_pool_stats().enabled) {
    GTEST_SKIP() << "message pool disabled (sanitizer build)";
  }
  auto first = std::make_unique<TestMsg>(1);
  void* first_addr = first.get();
  first.reset();
  auto second = std::make_unique<TestMsg>(2);
  EXPECT_EQ(static_cast<void*>(second.get()), first_addr);
}

TEST(MessagePool, CountsAllocationsAndReleases) {
  if (!message_pool_stats().enabled) {
    GTEST_SKIP() << "message pool disabled (sanitizer build)";
  }
  const MessagePoolStats before = message_pool_stats();
  {
    auto a = std::make_unique<TestMsg>(1);
    auto b = std::make_unique<TestMsg>(2);
  }
  const MessagePoolStats after = message_pool_stats();
  EXPECT_EQ(after.allocations, before.allocations + 2);
  EXPECT_EQ(after.deallocations, before.deallocations + 2);
  EXPECT_GT(after.bytes_reserved, 0u);
}

// End to end: a full simulated exchange must leave no message block behind
// (every operator new paired with an operator delete through the pool).
TEST(MessagePool, SimulationReturnsEveryMessageToThePool) {
  if (!message_pool_stats().enabled) {
    GTEST_SKIP() << "message pool disabled (sanitizer build)";
  }
  const MessagePoolStats before = message_pool_stats();
  {
    Fixture f(make_fixed_latency(sim::from_ms(0.6)));
    for (int i = 0; i < 50; ++i) {
      f.net.send(0, 1, std::make_unique<TestMsg>(i));
    }
    f.sim.run();
    EXPECT_EQ(f.b.log.size(), 50u);
  }
  const MessagePoolStats after = message_pool_stats();
  EXPECT_EQ(after.allocations - before.allocations,
            after.deallocations - before.deallocations);
}

}  // namespace
}  // namespace mra::net
