// Shared test harness: drives an AllocationSystem with a random workload
// while checking the three correctness properties of the problem statement
// (§1 of the paper) as explicit gtest expectations:
//   safety       — conflicting requests never overlap in CS,
//   liveness     — every issued request is eventually granted and released,
//   concurrency  — non-conflicting requests may overlap (checked as: some
//                  overlap occurred in runs where it is statistically certain).
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "algo/factory.hpp"
#include "sim/random.hpp"
#include "workload/workload.hpp"

namespace mra::test {

struct StressOptions {
  algo::Algorithm algorithm = algo::Algorithm::kLassWithLoan;
  int num_sites = 8;
  int num_resources = 12;
  int phi = 4;
  int requests_per_site = 25;
  std::uint64_t seed = 1;
  double rho = 1.0;
  sim::SimDuration cs_time = sim::from_ms(2.0);
  sim::SimDuration max_think = sim::from_ms(4.0);
};

struct StressOutcome {
  std::uint64_t completed = 0;
  std::uint64_t max_concurrent_cs = 0;
  std::uint64_t messages = 0;
  bool quiescent = false;   ///< event queue drained
  bool all_idle = false;    ///< every node back to Idle
  sim::SimTime end_time = 0;
};

/// Runs the workload to quiescence while checking safety on every grant.
/// gtest EXPECT failures are recorded against the current test.
StressOutcome run_stress(const StressOptions& options);

}  // namespace mra::test
