// Oracle sensitivity: each MRA_CHECK_MUTANTS seeded bug must be detected by
// the oracle it targets, deterministically, and must leave a replayable
// repro trace (the recorded request trace re-triggers the same oracle under
// checked replay). In builds without -DMRA_CHECK_MUTANTS=ON every test
// SKIPs — the hooks compile to constant-false and cannot be activated.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "check/explore.hpp"
#include "check/fanout.hpp"
#include "check/mutant.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace mra::check {
namespace {

class MutantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mutants_compiled_in()) {
      GTEST_SKIP() << "build without MRA_CHECK_MUTANTS";
    }
  }
  void TearDown() override { set_active_mutant(Mutant::kNone); }

  /// The standard seeded-bug hunt: paper-phi4 with quick windows and a
  /// fixed 1 ms perturbation, seed 1 — deterministic by construction.
  static scenario::ScenarioSpec hunt_spec() {
    scenario::ScenarioSpec spec = scenario::find_scenario("paper-phi4");
    spec.warmup = sim::from_ms(200);
    spec.measure = sim::from_ms(800);
    spec.system.seed = 1;
    spec.system.latency_delay_bound = sim::from_ms(1);
    return spec;
  }

  static bool has_oracle(const std::vector<Violation>& violations,
                         const std::string& oracle) {
    return std::any_of(
        violations.begin(), violations.end(),
        [&](const Violation& v) { return v.oracle == oracle; });
  }

  /// Runs the hunt under `algorithm`, expects `oracle` to fire, and proves
  /// the recorded trace is a working repro: checked replay (mutant still
  /// active) re-triggers the same oracle on the same trace.
  void expect_caught(algo::Algorithm algorithm, const std::string& oracle) {
    const scenario::ScenarioSpec spec = hunt_spec();
    CheckOptions opt;
    const CheckedRun run = run_checked_scenario(spec, algorithm, opt);
    ASSERT_FALSE(run.violations.empty())
        << to_string(active_mutant()) << " was not detected";
    EXPECT_TRUE(has_oracle(run.violations, oracle))
        << "expected oracle \"" << oracle << "\", got \""
        << run.violations.front().oracle << "\": "
        << run.violations.front().detail;
    EXPECT_FALSE(run.violations.front().recent_events.empty());

    ASSERT_FALSE(run.trace.events.empty());
    const std::vector<Violation> replayed =
        check_replay(run.trace, algorithm, MonitorConfig{}, spec.system.seed,
                     spec.system.latency_delay_bound);
    EXPECT_TRUE(has_oracle(replayed, oracle))
        << "repro trace did not re-trigger the " << oracle << " oracle";

    // The same trace is also a *self-contained* v2 repro: algorithm,
    // perturbation seed, delay bound and the active mutant all ride in the
    // header, so the single-argument replay needs no knowledge of this test.
    EXPECT_TRUE(run.trace.has_v2_fields());
    EXPECT_EQ(run.trace.mutant, to_string(active_mutant()));
    EXPECT_TRUE(has_oracle(check_replay(run.trace), oracle))
        << "self-contained v2 replay did not re-trigger " << oracle;
  }
};

TEST_F(MutantTest, LassPrematureEntryCaughtByMutualExclusion) {
  set_active_mutant(Mutant::kLassPrematureEntry);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "mutual-exclusion");
}

TEST_F(MutantTest, LassDropReleaseCaughtByDeadlock) {
  set_active_mutant(Mutant::kLassDropRelease);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "deadlock");
}

TEST_F(MutantTest, LassSkipCounterReplyCaughtByDeadlock) {
  set_active_mutant(Mutant::kLassSkipCounterReply);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "deadlock");
}

TEST_F(MutantTest, IncrementalReversedAcquireCaughtAsWaitForCycle) {
  set_active_mutant(Mutant::kIncrementalReversedAcquire);
  const scenario::ScenarioSpec spec = hunt_spec();
  CheckOptions opt;
  const CheckedRun run =
      run_checked_scenario(spec, algo::Algorithm::kIncremental, opt);
  ASSERT_FALSE(run.violations.empty());
  ASSERT_EQ(run.violations.front().oracle, "deadlock");
  // The cycle is observed *online* from kHold events — before quiescence —
  // not merely inferred from stuck waiters at the end.
  EXPECT_NE(run.violations.front().detail.find("wait-for cycle"),
            std::string::npos)
      << run.violations.front().detail;
}

TEST_F(MutantTest, NetFifoViolationCaughtByFifoOracle) {
  set_active_mutant(Mutant::kNetFifoViolation);
  // Any message-heavy algorithm works; Incremental floods the tree links.
  const scenario::ScenarioSpec spec = hunt_spec();
  CheckOptions opt;
  opt.record_trace = false;
  const CheckedRun run =
      run_checked_scenario(spec, algo::Algorithm::kIncremental, opt);
  ASSERT_FALSE(run.violations.empty());
  EXPECT_TRUE(has_oracle(run.violations, "fifo"))
      << run.violations.front().oracle << ": "
      << run.violations.front().detail;
}

TEST_F(MutantTest, MutexNtDropTokenCaughtByDeadlock) {
  set_active_mutant(Mutant::kMutexNtDropToken);
  MutexExploreConfig cfg;
  cfg.protocols = {MutexProtocol::kNaimiTrehel};
  cfg.num_sites = 6;
  cfg.requests_per_site = 10;
  cfg.seeds_per_case = 2;
  const ExploreReport report = explore_mutex(cfg);
  ASSERT_FALSE(report.found.empty()) << "dropped token was not detected";
  EXPECT_TRUE(has_oracle(report.found.front().violations, "deadlock"));
}

TEST_F(MutantTest, ExplorerMinimizesAndSavesReplayableRepro) {
  set_active_mutant(Mutant::kLassPrematureEntry);
  ExploreConfig cfg;
  cfg.scenarios = {hunt_spec()};
  cfg.algorithms = {algo::Algorithm::kLassWithoutLoan};
  cfg.seeds_per_case = 4;
  cfg.trace_dir = ::testing::TempDir();
  const ExploreReport report = explore(cfg);
  ASSERT_FALSE(report.found.empty());
  const FoundViolation& f = report.found.front();
  EXPECT_TRUE(f.replay_reproduces);
  EXPECT_LE(f.minimized_events, f.trace_events);
  ASSERT_FALSE(f.trace_path.empty());

  // The saved minimized trace is a self-contained repro.
  const scenario::RequestTrace repro = scenario::load_trace(f.trace_path);
  EXPECT_EQ(repro.events.size(), f.minimized_events);
  const std::vector<Violation> replayed =
      check_replay(repro, algo::Algorithm::kLassWithoutLoan, MonitorConfig{},
                   f.seed, f.delay_bound);
  EXPECT_TRUE(has_oracle(replayed, "mutual-exclusion"));
}

TEST_F(MutantTest, BlControlTokenLossCaughtByDeadlock) {
  set_active_mutant(Mutant::kBlControlTokenLoss);
  expect_caught(algo::Algorithm::kBouabdallahLaforest, "deadlock");
}

TEST_F(MutantTest, MaddiTimestampRegressionCaughtByStarvation) {
  // The regression (every request stamped ts = 1) only shows under
  // *sustained* contention on one resource: pending queues order by
  // (ts, site), so low-id sites jump the queue forever and a high-id site
  // starves. On the registry scenarios queues drain between bursts and the
  // mutant stays latent — hence this dedicated single-hot-resource spec.
  scenario::ScenarioSpec spec;
  spec.name = "maddi-contention";
  spec.system.num_sites = 8;
  spec.system.num_resources = 1;
  spec.system.seed = 1;
  spec.workload.num_resources = 1;
  spec.workload.phi = 1;
  spec.workload.alpha_min = sim::from_ms(5);
  spec.workload.alpha_max = sim::from_ms(10);
  spec.workload.cs_jitter = 0.0;
  spec.workload.rho = 0.5;  // heavy closed-loop load: the queue never drains
  spec.warmup = sim::from_ms(100);
  spec.measure = sim::from_ms(2900);

  CheckOptions opt;
  // Honest worst-case wait is ~N * (cs + latency) ~ 100 ms; give 10x slack.
  opt.monitor.starvation_horizon = sim::from_ms(1000);

  // Healthy baseline: Lamport timestamps keep the queue fair.
  set_active_mutant(Mutant::kNone);
  const CheckedRun healthy =
      run_checked_scenario(spec, algo::Algorithm::kMaddi, opt);
  ASSERT_TRUE(healthy.violations.empty())
      << "healthy Maddi trips the dedicated spec: "
      << healthy.violations.front().oracle << ": "
      << healthy.violations.front().detail;

  set_active_mutant(Mutant::kMaddiTimestampRegression);
  const CheckedRun run =
      run_checked_scenario(spec, algo::Algorithm::kMaddi, opt);
  ASSERT_FALSE(run.violations.empty()) << "timestamp regression not detected";
  EXPECT_TRUE(has_oracle(run.violations, "starvation"))
      << run.violations.front().oracle << ": "
      << run.violations.front().detail;

  // The recorded trace is a working repro.
  ASSERT_FALSE(run.trace.events.empty());
  const std::vector<Violation> replayed =
      check_replay(run.trace, algo::Algorithm::kMaddi, opt.monitor,
                   spec.system.seed, spec.system.latency_delay_bound);
  EXPECT_TRUE(has_oracle(replayed, "starvation"))
      << "repro trace did not re-trigger the starvation oracle";

  // Self-contained: the v2 header re-activates the mutant by itself.
  set_active_mutant(Mutant::kNone);
  EXPECT_TRUE(has_oracle(check_replay(run.trace, opt.monitor), "starvation"))
      << "v2 repro trace alone did not re-trigger the starvation oracle";
}

TEST_F(MutantTest, CmForkBottleConfusionCaughtByMutualExclusion) {
  set_active_mutant(Mutant::kCmForkBottleConfusion);
  CmRingExploreConfig cfg;
  cfg.trace_dir = ::testing::TempDir();
  const ExploreReport report = explore_cm_ring(cfg);
  ASSERT_FALSE(report.found.empty()) << "bottle-phase skip was not detected";
  const FoundViolation& f = report.found.front();
  EXPECT_TRUE(has_oracle(f.violations, "mutual-exclusion"));
  EXPECT_TRUE(f.replay_reproduces);

  // The saved trace is a self-contained v2 repro: algorithm "cm-ring" and
  // the mutant ride in the header, so a bare check_replay(trace) — with the
  // global mutant cleared — re-triggers the violation.
  ASSERT_FALSE(f.trace_path.empty());
  const scenario::RequestTrace repro = scenario::load_trace(f.trace_path);
  EXPECT_EQ(repro.algorithm, "cm-ring");
  EXPECT_EQ(repro.mutant, "cm-fork-bottle-confusion");
  set_active_mutant(Mutant::kNone);
  EXPECT_TRUE(has_oracle(check_replay(repro), "mutual-exclusion"))
      << "v2 repro trace alone did not re-trigger the violation";
}

// Forensics contract: with a Monitor and an obs::FlightRecorder composed
// through one ObserverMux, the span timeline pinpoints the violating
// acquire — the recorder holds a span whose acquire stamp is exactly the
// instant and site the mutual-exclusion oracle flagged, and the exported
// Chrome trace carries the violation marker next to it.
TEST_F(MutantTest, RecorderSpanPinpointsViolatingAcquire) {
  set_active_mutant(Mutant::kLassPrematureEntry);
  const scenario::ScenarioSpec spec = hunt_spec();

  MonitorConfig mc;
  mc.num_sites = spec.system.num_sites;
  mc.num_resources = spec.system.num_resources;
  Monitor monitor(mc);
  obs::FlightRecorder recorder;
  ObserverMux mux;
  mux.add(monitor);
  mux.add(recorder);
  (void)scenario::run_scenario(
      spec, algo::Algorithm::kLassWithoutLoan, &mux,
      [&monitor](algo::AllocationSystem& system) {
        monitor.bind_simulator(system.simulator());
      });

  ASSERT_FALSE(monitor.violations().empty())
      << "premature entry was not detected";
  const Violation* flagged = nullptr;
  for (const Violation& v : monitor.violations()) {
    if (v.oracle == "mutual-exclusion") {
      flagged = &v;
      break;
    }
  }
  ASSERT_NE(flagged, nullptr);

  bool span_found = false;
  for (const obs::RequestSpan& span : recorder.spans()) {
    if (span.acquire_at == flagged->at &&
        std::find(flagged->sites.begin(), flagged->sites.end(), span.site) !=
            flagged->sites.end()) {
      span_found = true;
      break;
    }
  }
  EXPECT_TRUE(span_found)
      << "no recorded span acquires at the flagged instant";

  std::ostringstream trace;
  obs::ChromeTraceOptions options;
  options.violations = &monitor.violations();
  obs::write_chrome_trace(recorder, trace, options);
  EXPECT_NE(trace.str().find("violation: mutual-exclusion"),
            std::string::npos);
}

// Clean builds: activation is impossible, so the hooks are inert by
// construction. This test runs in *both* build flavours.
TEST(MutantGate, InactiveByDefault) {
  EXPECT_EQ(active_mutant(), Mutant::kNone);
  EXPECT_FALSE(mutant_enabled(Mutant::kLassDropRelease));
}

}  // namespace
}  // namespace mra::check
