// Oracle sensitivity: each MRA_CHECK_MUTANTS seeded bug must be detected by
// the oracle it targets, deterministically, and must leave a replayable
// repro trace (the recorded request trace re-triggers the same oracle under
// checked replay). In builds without -DMRA_CHECK_MUTANTS=ON every test
// SKIPs — the hooks compile to constant-false and cannot be activated.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/explore.hpp"
#include "check/mutant.hpp"
#include "scenario/registry.hpp"

namespace mra::check {
namespace {

class MutantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mutants_compiled_in()) {
      GTEST_SKIP() << "build without MRA_CHECK_MUTANTS";
    }
  }
  void TearDown() override { set_active_mutant(Mutant::kNone); }

  /// The standard seeded-bug hunt: paper-phi4 with quick windows and a
  /// fixed 1 ms perturbation, seed 1 — deterministic by construction.
  static scenario::ScenarioSpec hunt_spec() {
    scenario::ScenarioSpec spec = scenario::find_scenario("paper-phi4");
    spec.warmup = sim::from_ms(200);
    spec.measure = sim::from_ms(800);
    spec.system.seed = 1;
    spec.system.latency_delay_bound = sim::from_ms(1);
    return spec;
  }

  static bool has_oracle(const std::vector<Violation>& violations,
                         const std::string& oracle) {
    return std::any_of(
        violations.begin(), violations.end(),
        [&](const Violation& v) { return v.oracle == oracle; });
  }

  /// Runs the hunt under `algorithm`, expects `oracle` to fire, and proves
  /// the recorded trace is a working repro: checked replay (mutant still
  /// active) re-triggers the same oracle on the same trace.
  void expect_caught(algo::Algorithm algorithm, const std::string& oracle) {
    const scenario::ScenarioSpec spec = hunt_spec();
    CheckOptions opt;
    const CheckedRun run = run_checked_scenario(spec, algorithm, opt);
    ASSERT_FALSE(run.violations.empty())
        << to_string(active_mutant()) << " was not detected";
    EXPECT_TRUE(has_oracle(run.violations, oracle))
        << "expected oracle \"" << oracle << "\", got \""
        << run.violations.front().oracle << "\": "
        << run.violations.front().detail;
    EXPECT_FALSE(run.violations.front().recent_events.empty());

    ASSERT_FALSE(run.trace.events.empty());
    const std::vector<Violation> replayed =
        check_replay(run.trace, algorithm, MonitorConfig{}, spec.system.seed,
                     spec.system.latency_delay_bound);
    EXPECT_TRUE(has_oracle(replayed, oracle))
        << "repro trace did not re-trigger the " << oracle << " oracle";
  }
};

TEST_F(MutantTest, LassPrematureEntryCaughtByMutualExclusion) {
  set_active_mutant(Mutant::kLassPrematureEntry);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "mutual-exclusion");
}

TEST_F(MutantTest, LassDropReleaseCaughtByDeadlock) {
  set_active_mutant(Mutant::kLassDropRelease);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "deadlock");
}

TEST_F(MutantTest, LassSkipCounterReplyCaughtByDeadlock) {
  set_active_mutant(Mutant::kLassSkipCounterReply);
  expect_caught(algo::Algorithm::kLassWithoutLoan, "deadlock");
}

TEST_F(MutantTest, IncrementalReversedAcquireCaughtAsWaitForCycle) {
  set_active_mutant(Mutant::kIncrementalReversedAcquire);
  const scenario::ScenarioSpec spec = hunt_spec();
  CheckOptions opt;
  const CheckedRun run =
      run_checked_scenario(spec, algo::Algorithm::kIncremental, opt);
  ASSERT_FALSE(run.violations.empty());
  ASSERT_EQ(run.violations.front().oracle, "deadlock");
  // The cycle is observed *online* from kHold events — before quiescence —
  // not merely inferred from stuck waiters at the end.
  EXPECT_NE(run.violations.front().detail.find("wait-for cycle"),
            std::string::npos)
      << run.violations.front().detail;
}

TEST_F(MutantTest, NetFifoViolationCaughtByFifoOracle) {
  set_active_mutant(Mutant::kNetFifoViolation);
  // Any message-heavy algorithm works; Incremental floods the tree links.
  const scenario::ScenarioSpec spec = hunt_spec();
  CheckOptions opt;
  opt.record_trace = false;
  const CheckedRun run =
      run_checked_scenario(spec, algo::Algorithm::kIncremental, opt);
  ASSERT_FALSE(run.violations.empty());
  EXPECT_TRUE(has_oracle(run.violations, "fifo"))
      << run.violations.front().oracle << ": "
      << run.violations.front().detail;
}

TEST_F(MutantTest, MutexNtDropTokenCaughtByDeadlock) {
  set_active_mutant(Mutant::kMutexNtDropToken);
  MutexExploreConfig cfg;
  cfg.protocols = {MutexProtocol::kNaimiTrehel};
  cfg.num_sites = 6;
  cfg.requests_per_site = 10;
  cfg.seeds_per_case = 2;
  const ExploreReport report = explore_mutex(cfg);
  ASSERT_FALSE(report.found.empty()) << "dropped token was not detected";
  EXPECT_TRUE(has_oracle(report.found.front().violations, "deadlock"));
}

TEST_F(MutantTest, ExplorerMinimizesAndSavesReplayableRepro) {
  set_active_mutant(Mutant::kLassPrematureEntry);
  ExploreConfig cfg;
  cfg.scenarios = {hunt_spec()};
  cfg.algorithms = {algo::Algorithm::kLassWithoutLoan};
  cfg.seeds_per_case = 4;
  cfg.trace_dir = ::testing::TempDir();
  const ExploreReport report = explore(cfg);
  ASSERT_FALSE(report.found.empty());
  const FoundViolation& f = report.found.front();
  EXPECT_TRUE(f.replay_reproduces);
  EXPECT_LE(f.minimized_events, f.trace_events);
  ASSERT_FALSE(f.trace_path.empty());

  // The saved minimized trace is a self-contained repro.
  const scenario::RequestTrace repro = scenario::load_trace(f.trace_path);
  EXPECT_EQ(repro.events.size(), f.minimized_events);
  const std::vector<Violation> replayed =
      check_replay(repro, algo::Algorithm::kLassWithoutLoan, MonitorConfig{},
                   f.seed, f.delay_bound);
  EXPECT_TRUE(has_oracle(replayed, "mutual-exclusion"));
}

// Clean builds: activation is impossible, so the hooks are inert by
// construction. This test runs in *both* build flavours.
TEST(MutantGate, InactiveByDefault) {
  EXPECT_EQ(active_mutant(), Mutant::kNone);
  EXPECT_FALSE(mutant_enabled(Mutant::kLassDropRelease));
}

}  // namespace
}  // namespace mra::check
