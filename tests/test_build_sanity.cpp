// Build/link sanity: the factory can construct and start every registered
// algorithm. A broken target or a missing translation unit in the build
// system shows up here as one fast failure instead of a cryptic link error
// deep inside a figure bench.
#include <gtest/gtest.h>

#include "algo/factory.hpp"

namespace mra::algo {
namespace {

TEST(BuildSanity, FactoryConstructsEveryRegisteredAlgorithm) {
  const std::vector<Algorithm> algorithms = all_algorithms();
  ASSERT_FALSE(algorithms.empty());

  for (Algorithm a : algorithms) {
    SCOPED_TRACE(to_string(a));
    SystemConfig cfg;
    cfg.algorithm = a;
    cfg.num_sites = 4;
    cfg.num_resources = 6;
    cfg.seed = 1;

    std::unique_ptr<AllocationSystem> system;
    ASSERT_NO_THROW(system = AllocationSystem::create(cfg));
    ASSERT_NE(system, nullptr);
    system->start();

    EXPECT_EQ(system->num_sites(), cfg.num_sites);
    for (SiteId s = 0; s < cfg.num_sites; ++s) {
      EXPECT_EQ(system->node(s).state(), ProcessState::kIdle);
    }
  }
}

TEST(BuildSanity, EveryAlgorithmHasAName) {
  for (Algorithm a : all_algorithms()) {
    EXPECT_STRNE(to_string(a), "");
  }
}

}  // namespace
}  // namespace mra::algo
