// The paper's qualitative claims as regression tests. These run scaled-down
// versions of the figure benches (shorter windows, same structure) so the
// suite stays fast while pinning the headline results:
//   - LASS outperforms Bouabdallah-Laforest at small request sizes,
//   - the loan mechanism helps under high load at medium sizes,
//   - BL's waiting time is size-independent; LASS penalizes small requests,
//   - the Incremental baseline suffers the domino effect at large phi,
//   - the shared-memory reference upper-bounds every distributed algorithm.
#include <gtest/gtest.h>

#include "experiment/sweep.hpp"

namespace mra::experiment {
namespace {

ExperimentConfig paper_like(algo::Algorithm alg, int phi, double rho,
                            std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.system.algorithm = alg;
  cfg.system.num_sites = 16;    // half the paper's N to keep tests fast
  cfg.system.num_resources = 40;
  cfg.system.seed = seed;
  cfg.workload = workload::medium_load(phi, 40);
  cfg.workload.rho = rho;
  cfg.warmup = sim::from_ms(500);
  cfg.measure = sim::from_ms(6000);
  return cfg;
}

TEST(PaperClaims, LassBeatsBouabdallahLaforestAtSmallPhi) {
  // §5.3: lower synchronization cost => lower waiting time at phi = 4.
  const auto bl = run_experiment(
      paper_like(algo::Algorithm::kBouabdallahLaforest, 4, 0.5));
  const auto lass =
      run_experiment(paper_like(algo::Algorithm::kLassWithoutLoan, 4, 0.5));
  EXPECT_LT(lass.waiting_mean_ms, bl.waiting_mean_ms);
  EXPECT_GT(lass.use_rate, bl.use_rate);
  EXPECT_GT(lass.requests_completed, bl.requests_completed);
}

TEST(PaperClaims, LoanImprovesHighLoadMediumSizes) {
  // §5.2: the loan mechanism reduces the conflict penalty of medium-size
  // requests under high load and never hurts large ones. A single seed is
  // noisy at test scale, so average over three.
  double use_with = 0, use_without = 0, wait_with = 0, wait_without = 0;
  std::uint64_t loans = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto without = run_experiment(
        paper_like(algo::Algorithm::kLassWithoutLoan, 8, 0.5, seed));
    const auto with = run_experiment(
        paper_like(algo::Algorithm::kLassWithLoan, 8, 0.5, seed));
    use_without += without.use_rate;
    use_with += with.use_rate;
    wait_without += without.waiting_mean_ms;
    wait_with += with.waiting_mean_ms;
    loans += with.loans_used;
  }
  EXPECT_GT(use_with, use_without);
  EXPECT_LT(wait_with, wait_without * 1.02);
  EXPECT_GT(loans, 0u);

  const auto without_big =
      run_experiment(paper_like(algo::Algorithm::kLassWithoutLoan, 40, 0.5));
  const auto with_big =
      run_experiment(paper_like(algo::Algorithm::kLassWithLoan, 40, 0.5));
  EXPECT_NEAR(with_big.use_rate, without_big.use_rate, 0.03)
      << "loan must not degrade large-request workloads";
}

TEST(PaperClaims, BlWaitingFlatInSizeLassPenalizesSmall) {
  // Figure 7's two signatures, at phi = M (largest request sizes).
  auto bl_cfg = paper_like(algo::Algorithm::kBouabdallahLaforest, 40, 0.5);
  bl_cfg.size_buckets = 4;
  auto lass_cfg = paper_like(algo::Algorithm::kLassWithoutLoan, 40, 0.5);
  lass_cfg.size_buckets = 4;
  const auto bl = run_experiment(bl_cfg);
  const auto lass = run_experiment(lass_cfg);

  ASSERT_EQ(bl.waiting_by_size.size(), 4u);
  const auto& bl_small = bl.waiting_by_size.front();
  const auto& bl_large = bl.waiting_by_size.back();
  ASSERT_GT(bl_small.count, 10u);
  ASSERT_GT(bl_large.count, 10u);
  // BL: static schedule => bucket means within 15% of each other.
  EXPECT_NEAR(bl_small.mean_ms / bl_large.mean_ms, 1.0, 0.15);

  // LASS: the smallest bucket has a markedly larger stddev than the
  // largest (single hot counters race ahead — §5.3).
  const auto& l_small = lass.waiting_by_size.front();
  const auto& l_large = lass.waiting_by_size.back();
  ASSERT_GT(l_small.count, 10u);
  EXPECT_GT(l_small.stddev_ms, l_large.stddev_ms * 1.5);
}

TEST(PaperClaims, IncrementalDominoEffectAtLargePhi) {
  // §2.1/§5.2: ordered locking wastes the request-size growth; its use rate
  // stays flat while LASS's grows with phi.
  const auto inc_small =
      run_experiment(paper_like(algo::Algorithm::kIncremental, 2, 0.5));
  const auto inc_large =
      run_experiment(paper_like(algo::Algorithm::kIncremental, 40, 0.5));
  const auto lass_large =
      run_experiment(paper_like(algo::Algorithm::kLassWithoutLoan, 40, 0.5));
  EXPECT_LT(inc_large.use_rate, inc_small.use_rate + 0.05)
      << "incremental must not benefit from larger requests";
  EXPECT_GT(lass_large.use_rate, inc_large.use_rate * 2.0)
      << "LASS must exploit large requests where incremental cannot";
}

TEST(PaperClaims, SharedMemoryUpperBoundsEveryAlgorithm) {
  for (int phi : {2, 8, 40}) {
    const auto shm = run_experiment(
        paper_like(algo::Algorithm::kCentralSharedMemory, phi, 0.5));
    for (auto alg : {algo::Algorithm::kIncremental,
                     algo::Algorithm::kBouabdallahLaforest,
                     algo::Algorithm::kLassWithLoan, algo::Algorithm::kMaddi}) {
      const auto r = run_experiment(paper_like(alg, phi, 0.5));
      EXPECT_LE(r.use_rate, shm.use_rate * 1.05)
          << algo::to_string(alg) << " at phi=" << phi
          << " beat the zero-cost scheduler — impossible";
    }
  }
}

TEST(PaperClaims, HigherLoadNeverReducesUseRate) {
  // Sanity on the load knob itself: more offered load (lower rho) cannot
  // reduce the use rate of a work-conserving-ish scheduler by much.
  for (auto alg : {algo::Algorithm::kLassWithLoan,
                   algo::Algorithm::kCentralSharedMemory}) {
    const auto medium = run_experiment(paper_like(alg, 4, 5.0));
    const auto high = run_experiment(paper_like(alg, 4, 0.5));
    EXPECT_GT(high.use_rate, medium.use_rate * 0.9) << algo::to_string(alg);
  }
}

TEST(PaperClaims, HierarchicalTopologyWidensBlGap) {
  // §6 conjecture at test scale: the BL/LASS waiting gap grows with the
  // WAN latency.
  auto make = [](algo::Algorithm alg, double wan_ms) {
    auto cfg = paper_like(alg, 4, 0.5);
    cfg.system.hierarchical_clusters = 2;
    cfg.system.hierarchical_remote_latency = sim::from_ms(wan_ms);
    return cfg;
  };
  const double gap_lan =
      run_experiment(make(algo::Algorithm::kBouabdallahLaforest, 0.6))
          .waiting_mean_ms /
      run_experiment(make(algo::Algorithm::kLassWithLoan, 0.6))
          .waiting_mean_ms;
  const double gap_wan =
      run_experiment(make(algo::Algorithm::kBouabdallahLaforest, 20.0))
          .waiting_mean_ms /
      run_experiment(make(algo::Algorithm::kLassWithLoan, 20.0))
          .waiting_mean_ms;
  EXPECT_GT(gap_wan, gap_lan);
}

TEST(PaperClaims, JitteredLatencyPreservesCorrectness) {
  // The paper assumes FIFO links, not constant latency; everything must
  // hold under ±50% jitter too.
  for (auto alg : {algo::Algorithm::kLassWithLoan,
                   algo::Algorithm::kBouabdallahLaforest,
                   algo::Algorithm::kMaddi}) {
    auto cfg = paper_like(alg, 6, 0.5);
    cfg.system.latency_jitter = 0.5;
    cfg.measure = sim::from_ms(3000);
    const auto r = run_experiment(cfg);
    EXPECT_GT(r.requests_completed, 100u) << algo::to_string(alg);
  }
}

}  // namespace
}  // namespace mra::experiment
