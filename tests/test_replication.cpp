// Replicated experiments: substream derivation, merge exactness, thread-count
// determinism (including byte-identical JSON), and run_sweep error reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/json.hpp"
#include "experiment/replicate.hpp"
#include "experiment/sweep.hpp"

namespace mra::experiment {
namespace {

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system.algorithm = algo::Algorithm::kLassWithLoan;
  cfg.system.num_sites = 6;
  cfg.system.num_resources = 8;
  cfg.system.seed = seed;
  cfg.workload = workload::high_load(3, 8);
  cfg.warmup = sim::from_ms(100);
  cfg.measure = sim::from_ms(1000);
  return cfg;
}

TEST(ReplicationSeed, Rep0IsBaseSeedAndSubstreamsAreDistinct) {
  EXPECT_EQ(replication_seed(1, 0), 1u);
  EXPECT_EQ(replication_seed(0xDEADBEEF, 0), 0xDEADBEEFu);
  // Substreams must be pairwise distinct and never collide with the base
  // seed (a collision would silently duplicate replication 0).
  for (std::uint64_t base : {1ULL, 2ULL, 42ULL, 0xDEADBEEFULL}) {
    for (std::size_t i = 0; i < 32; ++i) {
      for (std::size_t j = i + 1; j < 32; ++j) {
        EXPECT_NE(replication_seed(base, i), replication_seed(base, j))
            << "base " << base << " reps " << i << "," << j;
      }
    }
  }
}

TEST(ReplicationSeed, StableAcrossCalls) {
  for (std::size_t rep = 0; rep < 8; ++rep) {
    EXPECT_EQ(replication_seed(7, rep), replication_seed(7, rep));
  }
}

TEST(Replication, SubstreamsProduceIndependentRuns) {
  const auto a = run_experiment(small_config(replication_seed(4, 0)));
  const auto b = run_experiment(small_config(replication_seed(4, 1)));
  const auto c = run_experiment(small_config(replication_seed(4, 2)));
  EXPECT_NE(a.messages, b.messages);
  EXPECT_NE(b.messages, c.messages);
}

TEST(Replication, MergeMatchesManualReduction) {
  std::vector<ExperimentResult> reps;
  metrics::RunningStats use_rate;
  std::uint64_t completed = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    reps.push_back(run_experiment(small_config(replication_seed(9, r))));
    use_rate.add(reps.back().use_rate);
    completed += reps.back().requests_completed;
  }
  const ReplicatedResult merged = merge_replications(reps);
  EXPECT_EQ(merged.replications, 4u);
  EXPECT_DOUBLE_EQ(merged.use_rate.mean, use_rate.mean());
  EXPECT_FALSE(std::isnan(merged.use_rate.ci95_half));
  EXPECT_GT(merged.use_rate.ci95_half, 0.0);
  EXPECT_EQ(merged.requests_completed, completed);
  // Pooled waiting stats cover every sample of every replication.
  std::uint64_t samples = 0;
  for (const auto& r : reps) samples += r.waiting_stats.count();
  EXPECT_EQ(merged.waiting_pooled.count(), samples);
  EXPECT_EQ(merged.waiting_sketch.count(), samples);
  // Tail order must hold on the merged sketch.
  EXPECT_LE(merged.waiting_p50_ms, merged.waiting_p95_ms);
  EXPECT_LE(merged.waiting_p95_ms, merged.waiting_p99_ms);
}

TEST(Replication, MergedSketchBitMatchesConcatenatedSamples) {
  // Sketch merging is integer bucket addition: percentiles of the merged
  // per-rep sketches must be bit-identical to one sketch fed every sample.
  std::vector<ExperimentResult> reps;
  for (std::size_t r = 0; r < 3; ++r) {
    reps.push_back(run_experiment(small_config(replication_seed(11, r))));
  }
  const ReplicatedResult merged = merge_replications(reps);
  metrics::QuantileSketch concatenated;
  for (const auto& r : reps) concatenated.merge(r.waiting_sketch);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(merged.waiting_sketch.percentile(p),
                     concatenated.percentile(p));
  }
  // RunningStats::merge: counts and extrema are exact; moments match the
  // concatenated stream to floating-point rounding.
  metrics::RunningStats pooled;
  for (const auto& r : reps) pooled.merge(r.waiting_stats);
  EXPECT_EQ(merged.waiting_pooled.count(), pooled.count());
  EXPECT_DOUBLE_EQ(merged.waiting_pooled.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.waiting_pooled.max(), pooled.max());
  EXPECT_NEAR(merged.waiting_pooled.mean(), pooled.mean(),
              1e-12 * std::abs(pooled.mean()));
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  ReplicatedConfig cfg{small_config(5), /*replications=*/4};
  const ReplicatedResult serial = run_replicated(cfg, /*threads=*/1);
  const ReplicatedResult parallel = run_replicated(cfg, /*threads=*/4);
  EXPECT_EQ(serial.replications, parallel.replications);
  EXPECT_DOUBLE_EQ(serial.use_rate.mean, parallel.use_rate.mean);
  EXPECT_DOUBLE_EQ(serial.use_rate.ci95_half, parallel.use_rate.ci95_half);
  EXPECT_DOUBLE_EQ(serial.waiting_mean_ms.mean, parallel.waiting_mean_ms.mean);
  EXPECT_DOUBLE_EQ(serial.waiting_mean_ms.ci95_half,
                   parallel.waiting_mean_ms.ci95_half);
  EXPECT_DOUBLE_EQ(serial.waiting_p50_ms, parallel.waiting_p50_ms);
  EXPECT_DOUBLE_EQ(serial.waiting_p95_ms, parallel.waiting_p95_ms);
  EXPECT_DOUBLE_EQ(serial.waiting_p99_ms, parallel.waiting_p99_ms);
  EXPECT_EQ(serial.requests_completed, parallel.requests_completed);
  EXPECT_EQ(serial.messages, parallel.messages);

  // The acceptance-criterion form: the exported JSON is byte-identical.
  std::ostringstream a;
  std::ostringstream b;
  write_replicated_json(a, "test", {LabeledReplicatedResult{"x", serial}});
  write_replicated_json(b, "test", {LabeledReplicatedResult{"x", parallel}});
  EXPECT_EQ(a.str(), b.str());
}

TEST(Replication, SingleRepMatchesPlainRunAndHasNoInterval) {
  const ReplicatedResult one =
      run_replicated(ReplicatedConfig{small_config(4), 1});
  const ExperimentResult plain = run_experiment(small_config(4));
  EXPECT_EQ(one.replications, 1u);
  EXPECT_DOUBLE_EQ(one.use_rate.mean, plain.use_rate);
  EXPECT_DOUBLE_EQ(one.waiting_mean_ms.mean, plain.waiting_mean_ms);
  EXPECT_EQ(one.requests_completed, plain.requests_completed);
  EXPECT_TRUE(std::isnan(one.use_rate.ci95_half));
}

TEST(Replication, JobsVariantThreadsSubstreamSeeds) {
  std::vector<std::uint64_t> seen;
  std::mutex mu;
  ReplicatedJob job;
  job.base_seed = 21;
  job.replications = 3;
  job.make = [&](std::uint64_t rep_seed) {
    {
      std::scoped_lock lock(mu);
      seen.push_back(rep_seed);
    }
    return run_experiment(small_config(rep_seed));
  };
  const auto merged = run_replicated_jobs({job}, /*threads=*/1);
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_EQ(seen.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(seen[r], replication_seed(21, r));
  }
}

TEST(Replication, RejectsZeroReplications) {
  ReplicatedJob job;
  job.base_seed = 1;
  job.replications = 0;
  job.make = [](std::uint64_t seed) {
    return run_experiment(small_config(seed));
  };
  EXPECT_THROW((void)run_replicated_jobs({job}), std::invalid_argument);
  EXPECT_THROW((void)merge_replications({}), std::invalid_argument);
}

TEST(SweepErrors, ReportsLowestFailingJobIndexAndCount) {
  std::vector<SweepJob> jobs;
  for (std::size_t i = 0; i < 6; ++i) {
    jobs.emplace_back([i]() -> ExperimentResult {
      if (i == 2 || i == 4) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
      return run_experiment(small_config(i + 1));
    });
  }
  try {
    (void)run_sweep(jobs, /*threads=*/3);
    FAIL() << "run_sweep must throw when a job fails";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.job_index(), 2u);
    EXPECT_EQ(e.failed_count(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("sweep job #2 of 6"), std::string::npos) << what;
    EXPECT_NE(what.find("boom at 2"), std::string::npos) << what;
  }
}

TEST(SweepErrors, AllJobsRunDespiteEarlyFailure) {
  // The pool must drain: a throwing job never cancels the rest.
  std::atomic<int> ran{0};
  std::vector<SweepJob> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    jobs.emplace_back([i, &ran]() -> ExperimentResult {
      ++ran;
      if (i == 0) throw std::runtime_error("first job fails");
      return run_experiment(small_config(i + 1));
    });
  }
  EXPECT_THROW((void)run_sweep(jobs, /*threads=*/2), SweepError);
  EXPECT_EQ(ran.load(), 5);
}

}  // namespace
}  // namespace mra::experiment
