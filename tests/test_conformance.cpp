// The conformance subsystem (src/check/): oracle unit behavior on hand-fed
// event streams, violation-report JSON round-trips, monitor bookkeeping, and
// the headline acceptance property — every registry scenario under every
// algorithm, with the full oracle set attached, completes with zero
// violations (online checking included, not just end-state assertions).
#include <gtest/gtest.h>

#include <sstream>

#include "check/explore.hpp"
#include "check/monitor.hpp"
#include "check/oracles.hpp"
#include "check/violation.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace mra::check {
namespace {

struct TestSink final : ViolationSink {
  std::vector<Violation> violations;
  void report(Violation v) override { violations.push_back(std::move(v)); }
};

Event cs_event(EventType type, sim::SimTime at, SiteId site,
               const ResourceSet* rs, std::int64_t seq = 1) {
  Event e;
  e.type = type;
  e.at = at;
  e.site = site;
  e.seq = seq;
  e.resources = rs;
  return e;
}

Event msg_event(EventType type, sim::SimTime at, SiteId src, SiteId dst,
                std::int64_t id) {
  Event e;
  e.type = type;
  e.at = at;
  e.site = src;
  e.peer = dst;
  e.seq = id;
  e.kind = "Test";
  return e;
}

// ---------------------------------------------------------------------------
// Oracle units
// ---------------------------------------------------------------------------

TEST(MutualExclusionOracleTest, FlagsOverlappingGrantAndRecovers) {
  MutualExclusionOracle oracle(4);
  TestSink sink;
  const ResourceSet a(4, {0, 1});
  const ResourceSet b(4, {1, 2});

  oracle.on_event(cs_event(EventType::kAcquire, 10, 0, &a), sink);
  EXPECT_TRUE(sink.violations.empty());
  oracle.on_event(cs_event(EventType::kAcquire, 20, 1, &b), sink);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].oracle, "mutual-exclusion");
  EXPECT_EQ(sink.violations[0].resources, std::vector<ResourceId>{1});
  EXPECT_EQ(sink.violations[0].sites, (std::vector<SiteId>{0, 1}));

  // After both release, a fresh grant is clean again.
  oracle.on_event(cs_event(EventType::kRelease, 30, 1, &b), sink);
  oracle.on_event(cs_event(EventType::kRelease, 30, 0, &a), sink);
  oracle.on_event(cs_event(EventType::kAcquire, 40, 1, &a), sink);
  EXPECT_EQ(sink.violations.size(), 1u);
}

TEST(MutualExclusionOracleTest, CleanHandoffIsSilent) {
  MutualExclusionOracle oracle(2);
  TestSink sink;
  const ResourceSet rs(2, {0, 1});
  for (SiteId s = 0; s < 4; ++s) {
    oracle.on_event(cs_event(EventType::kAcquire, 10 * s, s, &rs), sink);
    oracle.on_event(cs_event(EventType::kRelease, 10 * s + 5, s, &rs), sink);
  }
  EXPECT_TRUE(sink.violations.empty());
}

TEST(DeadlockOracleTest, DetectsAbBaCycleOnline) {
  DeadlockOracle oracle(3, 2);
  TestSink sink;
  const ResourceSet both(2, {0, 1});

  // s0 requests {0,1} and holds r0; s1 requests {0,1} and holds r1.
  oracle.on_event(cs_event(EventType::kRequest, 1, 0, &both), sink);
  Event h0 = cs_event(EventType::kHold, 2, 0, nullptr);
  h0.resource = 0;
  oracle.on_event(h0, sink);
  oracle.on_event(cs_event(EventType::kRequest, 3, 1, &both), sink);
  EXPECT_TRUE(sink.violations.empty());

  Event h1 = cs_event(EventType::kHold, 4, 1, nullptr);
  h1.resource = 1;
  oracle.on_event(h1, sink);  // closes the cycle s0 -> s1 -> s0
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].oracle, "deadlock");
  EXPECT_EQ(sink.violations[0].sites, (std::vector<SiteId>{0, 1}));
  EXPECT_NE(sink.violations[0].detail.find("wait-for cycle"),
            std::string::npos);

  // The same cycle is not re-reported on every later event.
  Event h1b = h1;
  h1b.at = 5;
  oracle.on_event(h1b, sink);
  EXPECT_EQ(sink.violations.size(), 1u);
}

TEST(DeadlockOracleTest, OrderedAcquisitionIsSilent) {
  DeadlockOracle oracle(2, 2);
  TestSink sink;
  const ResourceSet both(2, {0, 1});
  oracle.on_event(cs_event(EventType::kRequest, 1, 0, &both), sink);
  oracle.on_event(cs_event(EventType::kRequest, 1, 1, &both), sink);
  Event h = cs_event(EventType::kHold, 2, 0, nullptr);
  h.resource = 0;
  oracle.on_event(h, sink);
  h.resource = 1;
  h.at = 3;
  oracle.on_event(h, sink);
  oracle.on_event(cs_event(EventType::kAcquire, 4, 0, &both), sink);
  oracle.on_event(cs_event(EventType::kRelease, 5, 0, &both), sink);
  oracle.finalize(6, /*quiescent=*/false, sink);
  EXPECT_TRUE(sink.violations.empty());
}

TEST(DeadlockOracleTest, StuckWaitersAtQuiescence) {
  DeadlockOracle oracle(2, 1);
  TestSink sink;
  const ResourceSet r0(1, {0});
  oracle.on_event(cs_event(EventType::kRequest, 1, 1, &r0), sink);

  // Not quiescent: waiting is normal, nothing to report.
  oracle.finalize(100, /*quiescent=*/false, sink);
  EXPECT_TRUE(sink.violations.empty());

  oracle.finalize(100, /*quiescent=*/true, sink);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].sites, std::vector<SiteId>{1});
  EXPECT_NE(sink.violations[0].detail.find("still waiting"),
            std::string::npos);
}

TEST(StarvationOracleTest, FiresWhenHorizonPassesAndNotBefore) {
  StarvationOracle oracle(2, /*horizon=*/sim::from_ms(10));
  TestSink sink;
  const ResourceSet r0(1, {0});

  oracle.on_event(cs_event(EventType::kRequest, 0, 0, &r0, 7), sink);
  oracle.on_advance(sim::from_ms(9), sink);
  EXPECT_TRUE(sink.violations.empty());
  oracle.on_advance(sim::from_ms(11), sink);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].oracle, "starvation");
  EXPECT_EQ(sink.violations[0].sites, std::vector<SiteId>{0});
  // One report per request, not one per instant.
  oracle.on_advance(sim::from_ms(20), sink);
  EXPECT_EQ(sink.violations.size(), 1u);
}

TEST(StarvationOracleTest, GrantBeforeDeadlineIsSilent) {
  StarvationOracle oracle(1, sim::from_ms(10));
  TestSink sink;
  const ResourceSet r0(1, {0});
  oracle.on_event(cs_event(EventType::kRequest, 0, 0, &r0, 3), sink);
  oracle.on_event(cs_event(EventType::kAcquire, sim::from_ms(5), 0, &r0, 3),
                  sink);
  oracle.on_advance(sim::from_ms(50), sink);
  oracle.finalize(sim::from_ms(50), true, sink);
  EXPECT_TRUE(sink.violations.empty());
}

TEST(StarvationOracleTest, FinalizeCatchesEndOfRunDeadline) {
  StarvationOracle oracle(1, sim::from_ms(10));
  TestSink sink;
  const ResourceSet r0(1, {0});
  oracle.on_event(cs_event(EventType::kRequest, 0, 0, &r0, 1), sink);
  oracle.finalize(sim::from_ms(30), /*quiescent=*/true, sink);
  EXPECT_EQ(sink.violations.size(), 1u);
}

TEST(FifoOracleTest, FlagsOvertakingOnALink) {
  FifoOracle oracle(2);
  TestSink sink;
  oracle.on_event(msg_event(EventType::kSend, 0, 0, 1, 100), sink);
  oracle.on_event(msg_event(EventType::kSend, 1, 0, 1, 101), sink);
  // #101 arrives before #100: FIFO broken.
  oracle.on_event(msg_event(EventType::kDeliver, 5, 0, 1, 101), sink);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].oracle, "fifo");
  oracle.on_event(msg_event(EventType::kDeliver, 6, 0, 1, 100), sink);
  // The late #100 is also out of order relative to the delivered #101.
  EXPECT_EQ(sink.violations.size(), 2u);
}

TEST(FifoOracleTest, InOrderDeliveryAndDistinctLinksAreSilent) {
  FifoOracle oracle(3);
  TestSink sink;
  oracle.on_event(msg_event(EventType::kSend, 0, 0, 1, 1), sink);
  oracle.on_event(msg_event(EventType::kSend, 0, 0, 2, 2), sink);
  oracle.on_event(msg_event(EventType::kSend, 1, 0, 1, 3), sink);
  // Cross-link reordering is allowed; per-link order is kept.
  oracle.on_event(msg_event(EventType::kDeliver, 4, 0, 2, 2), sink);
  oracle.on_event(msg_event(EventType::kDeliver, 5, 0, 1, 1), sink);
  oracle.on_event(msg_event(EventType::kDeliver, 6, 0, 1, 3), sink);
  EXPECT_TRUE(sink.violations.empty());
}

TEST(ComplexityOracleTest, AccountsAndEnforcesBound) {
  ComplexityOracle oracle(/*max_messages_per_cs=*/5.0);
  TestSink sink;
  const ResourceSet r0(1, {0});
  for (int i = 0; i < 12; ++i) {
    oracle.on_event(msg_event(EventType::kSend, i, 0, 1, i), sink);
  }
  oracle.on_event(cs_event(EventType::kAcquire, 20, 1, &r0), sink);
  EXPECT_EQ(oracle.messages(), 12u);
  EXPECT_EQ(oracle.cs_entries(), 1u);
  EXPECT_EQ(oracle.by_kind().at("Test"), 12u);
  oracle.finalize(30, true, sink);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_EQ(sink.violations[0].oracle, "message-complexity");

  ComplexityOracle lenient(20.0);
  TestSink sink2;
  for (int i = 0; i < 12; ++i) {
    lenient.on_event(msg_event(EventType::kSend, i, 0, 1, i), sink2);
  }
  lenient.on_event(cs_event(EventType::kAcquire, 20, 1, &r0), sink2);
  lenient.finalize(30, true, sink2);
  EXPECT_TRUE(sink2.violations.empty());
}

// ---------------------------------------------------------------------------
// Violation JSON round-trip
// ---------------------------------------------------------------------------

TEST(ViolationJson, RoundTripsExactly) {
  std::vector<Violation> in;
  Violation a;
  a.oracle = "mutual-exclusion";
  a.at = (1LL << 53) + 1;  // above double's exact-integer range
  a.sites = {2, 7};
  a.resources = {0, 31};
  a.detail = "resource r31 granted to s7 while held by s2";
  a.recent_events = {"[1.2ms] s2 acquire {0,31} seq=4",
                     "quote \" backslash \\ newline \n tab \t done"};
  in.push_back(a);
  Violation b;
  b.oracle = "deadlock";
  b.detail = "empty lists work too";
  in.push_back(b);

  std::ostringstream os;
  write_violations_json(os, in);
  const std::vector<Violation> out = read_violations_json(os.str());
  EXPECT_EQ(in, out);
}

TEST(ViolationJson, EmptyListAndErrors) {
  std::ostringstream os;
  write_violations_json(os, {});
  EXPECT_TRUE(read_violations_json(os.str()).empty());
  EXPECT_THROW((void)read_violations_json("{not json"), std::runtime_error);
  EXPECT_THROW((void)read_violations_json("[{\"oracle\": }]"),
               std::runtime_error);
  // Number-shaped garbage must surface as the documented runtime_error, not
  // leak std::stod/stoi's invalid_argument.
  EXPECT_THROW((void)read_violations_json("[{\"at_ns\": e}]"),
               std::runtime_error);
  EXPECT_THROW((void)read_violations_json("[{\"detail\": \"\\uZZZZ\"}]"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Monitor bookkeeping
// ---------------------------------------------------------------------------

TEST(MonitorTest, RecentEventsAreOldestFirstAndBounded) {
  MonitorConfig cfg;
  cfg.num_sites = 2;
  cfg.num_resources = 1;
  cfg.event_window = 4;
  Monitor monitor(cfg);
  const ResourceSet r0(1, {0});
  for (int i = 0; i < 10; ++i) {
    monitor.on_event(cs_event(EventType::kRequest, i, 0, &r0, i));
  }
  const std::vector<std::string> recent = monitor.recent_events();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_NE(recent.front().find("seq=6"), std::string::npos);
  EXPECT_NE(recent.back().find("seq=9"), std::string::npos);
  EXPECT_EQ(monitor.events_seen(), 10u);
}

TEST(MonitorTest, ViolationCarriesRecentWindow) {
  MonitorConfig cfg;
  cfg.num_sites = 2;
  cfg.num_resources = 1;
  Monitor monitor(cfg);
  const ResourceSet r0(1, {0});
  monitor.on_event(cs_event(EventType::kAcquire, 1, 0, &r0));
  monitor.on_event(cs_event(EventType::kAcquire, 2, 1, &r0));
  ASSERT_FALSE(monitor.ok());
  EXPECT_FALSE(monitor.violations()[0].recent_events.empty());
}

// ---------------------------------------------------------------------------
// The headline property: every registry scenario, every algorithm, full
// oracle set, zero violations (quick windows keep this test fast).
// ---------------------------------------------------------------------------

TEST(ConformanceSweep, AllScenariosAllAlgorithmsZeroViolations) {
  for (const scenario::ScenarioSpec& registered : scenario::registry()) {
    scenario::ScenarioSpec spec = registered;
    spec.warmup = sim::from_ms(200);
    spec.measure = sim::from_ms(800);
    for (algo::Algorithm alg : algo::all_algorithms()) {
      CheckOptions opt;
      opt.record_trace = false;
      const CheckedRun run = run_checked_scenario(spec, alg, opt);
      EXPECT_TRUE(run.violations.empty())
          << spec.name << " / " << algo::to_string(alg) << ": "
          << (run.violations.empty() ? ""
                                     : run.violations.front().oracle + ": " +
                                           run.violations.front().detail);
      EXPECT_TRUE(run.quiescent) << spec.name << " / " << algo::to_string(alg);
      EXPECT_GT(run.events, 0u);
    }
  }
}

TEST(ConformanceSweep, CheckedReplayOfRecordedTraceIsClean) {
  scenario::ScenarioSpec spec = scenario::find_scenario("zipf-hot");
  spec.warmup = sim::from_ms(200);
  spec.measure = sim::from_ms(600);
  const scenario::RequestTrace trace =
      scenario::record_scenario(spec, algo::Algorithm::kLassWithLoan);
  ASSERT_FALSE(trace.events.empty());
  const std::vector<Violation> violations =
      check_replay(trace, algo::Algorithm::kLassWithLoan, MonitorConfig{},
                   /*seed=*/1, /*delay_bound=*/sim::from_ms(1));
  EXPECT_TRUE(violations.empty());
}

// ---------------------------------------------------------------------------
// Explorer smoke: deterministic, clean on healthy code, exact run counts.
// ---------------------------------------------------------------------------

TEST(ExplorerTest, CleanSweepCountsRunsAndFindsNothing) {
  ExploreConfig cfg;
  cfg.scenarios = {scenario::find_scenario("paper-phi4")};
  cfg.scenarios[0].warmup = sim::from_ms(100);
  cfg.scenarios[0].measure = sim::from_ms(400);
  cfg.algorithms = {algo::Algorithm::kLassWithLoan,
                    algo::Algorithm::kIncremental};
  cfg.seeds_per_case = 2;
  const ExploreReport report = explore(cfg);
  EXPECT_EQ(report.runs, 4u);
  EXPECT_EQ(report.violating_runs, 0u);
  EXPECT_TRUE(report.found.empty());

  // Determinism: the same sweep gives the same (empty) answer.
  const ExploreReport again = explore(cfg);
  EXPECT_EQ(again.runs, report.runs);
  EXPECT_EQ(again.violating_runs, 0u);
}

TEST(ExplorerTest, MutexSweepAllProtocolsClean) {
  MutexExploreConfig cfg;
  cfg.protocols = all_mutex_protocols();
  cfg.num_sites = 6;
  cfg.requests_per_site = 15;
  cfg.seeds_per_case = 2;
  const ExploreReport report = explore_mutex(cfg);
  EXPECT_EQ(report.runs, 6u);
  EXPECT_EQ(report.violating_runs, 0u);
}

}  // namespace
}  // namespace mra::check
