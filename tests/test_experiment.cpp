// Experiment harness: determinism, sweep parallel==serial, table/CSV, gantt.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "experiment/experiment.hpp"
#include "experiment/gantt.hpp"
#include "experiment/sweep.hpp"
#include "experiment/table.hpp"

namespace mra::experiment {
namespace {

ExperimentConfig small_config(algo::Algorithm alg, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system.algorithm = alg;
  cfg.system.num_sites = 6;
  cfg.system.num_resources = 8;
  cfg.system.seed = seed;
  cfg.workload = workload::high_load(3, 8);
  cfg.warmup = sim::from_ms(100);
  cfg.measure = sim::from_ms(1500);
  return cfg;
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(small_config(algo::Algorithm::kLassWithLoan, 4));
  const auto b = run_experiment(small_config(algo::Algorithm::kLassWithLoan, 4));
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.use_rate, b.use_rate);
  EXPECT_DOUBLE_EQ(a.waiting_mean_ms, b.waiting_mean_ms);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Experiment, SeedChangesOutcome) {
  const auto a = run_experiment(small_config(algo::Algorithm::kLassWithLoan, 4));
  const auto b = run_experiment(small_config(algo::Algorithm::kLassWithLoan, 5));
  EXPECT_NE(a.messages, b.messages);
}

TEST(Experiment, ReportsMessageKinds) {
  const auto r = run_experiment(small_config(algo::Algorithm::kLassWithLoan, 4));
  EXPECT_TRUE(r.messages_by_kind.contains("Lass.Token"));
  EXPECT_TRUE(r.messages_by_kind.contains("Lass.Req"));
  std::uint64_t sum = 0;
  for (const auto& [kind, count] : r.messages_by_kind) sum += count;
  EXPECT_EQ(sum, r.messages);
}

TEST(Experiment, CentralHasNoMessages) {
  const auto r =
      run_experiment(small_config(algo::Algorithm::kCentralSharedMemory, 4));
  EXPECT_EQ(r.messages, 0u) << "the shared-memory reference must not network";
  EXPECT_GT(r.requests_completed, 50u);
}

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    configs.push_back(small_config(algo::Algorithm::kLassWithoutLoan, s));
  }
  const auto serial = run_sweep(configs, /*threads=*/1);
  const auto parallel = run_sweep(configs, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].messages, parallel[i].messages);
    EXPECT_DOUBLE_EQ(serial[i].use_rate, parallel[i].use_rate);
  }
}

TEST(Sweep, EmptyInputIsFine) {
  EXPECT_TRUE(run_sweep(std::vector<ExperimentConfig>{}).empty());
  EXPECT_TRUE(run_sweep(std::vector<SweepJob>{}).empty());
}

TEST(TableTest, PrintsAlignedAndRejectsBadRows) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
}

TEST(TableTest, CsvEscapesSeparators) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string path = "/tmp/lass_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::string line;
  std::getline(in, header);
  std::getline(in, line);
  EXPECT_EQ(header, "name,value");
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Gantt, RendersBusyLanes) {
  std::vector<metrics::RequestRecord> records;
  metrics::RequestRecord rec;
  rec.site = 3;
  rec.size = 2;
  rec.granted = 0;
  rec.released = sim::from_ms(50);
  rec.resources = {0, 1};
  records.push_back(rec);

  GanttOptions opt;
  opt.columns = 10;
  opt.start = 0;
  opt.end = sim::from_ms(100);
  std::ostringstream os;
  render_gantt(os, records, /*num_resources=*/2, opt);
  const std::string out = os.str();
  // First half of both lanes marked with site id 3, second half idle.
  EXPECT_NE(out.find("33333....."), std::string::npos);
  EXPECT_DOUBLE_EQ(gantt_busy_fraction(records, 2, opt), 0.5);
}

TEST(Gantt, EmptyRecordsRenderIdle) {
  std::ostringstream os;
  GanttOptions opt;
  opt.columns = 4;
  render_gantt(os, {}, 1, opt);
  EXPECT_NE(os.str().find("...."), std::string::npos);
  EXPECT_DOUBLE_EQ(gantt_busy_fraction({}, 1, opt), 0.0);
}

TEST(Experiment, KeepRecordsProducesLog) {
  auto cfg = small_config(algo::Algorithm::kLassWithLoan, 4);
  cfg.keep_records = true;
  const auto r = run_experiment(cfg);
  EXPECT_FALSE(r.records.empty());
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.issued, rec.granted);
    EXPECT_LT(rec.granted, rec.released);
    EXPECT_EQ(rec.size, rec.resources.size());
  }
}

TEST(Experiment, UseRateWithinBounds) {
  for (auto alg : algo::all_algorithms()) {
    const auto r = run_experiment(small_config(alg, 11));
    EXPECT_GE(r.use_rate, 0.0) << algo::to_string(alg);
    EXPECT_LE(r.use_rate, 1.0) << algo::to_string(alg);
    EXPECT_GT(r.requests_completed, 10u) << algo::to_string(alg);
  }
}

}  // namespace
}  // namespace mra::experiment
