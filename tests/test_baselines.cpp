// Baseline-specific behaviour: Bouabdallah-Laforest control-token variants,
// the central scheduler's policies, Maddi's broadcast pattern, Chandy-Misra
// on explicit conflict graphs, and the mark-function library.
#include <gtest/gtest.h>

#include <functional>

#include "algo/chandy_misra.hpp"
#include "core/mark.hpp"
#include "experiment/experiment.hpp"
#include "harness.hpp"
#include "net/network.hpp"

namespace mra {
namespace {

// --- Bouabdallah-Laforest ---------------------------------------------------

TEST(BouabdallahLaforest, EarlyCtReleaseOutperformsGlobalLock) {
  auto run = [](bool early) {
    experiment::ExperimentConfig cfg;
    cfg.system.algorithm = algo::Algorithm::kBouabdallahLaforest;
    cfg.system.num_sites = 12;
    cfg.system.num_resources = 20;
    cfg.system.seed = 3;
    cfg.system.bl_release_control_token_early = early;
    cfg.workload = workload::high_load(4, 20);
    cfg.warmup = sim::from_ms(200);
    cfg.measure = sim::from_ms(4000);
    return experiment::run_experiment(cfg);
  };
  const auto early = run(true);
  const auto held = run(false);
  EXPECT_GT(early.requests_completed, 50u);
  EXPECT_GT(held.requests_completed, 50u);
  // Registration-only release overlaps acquisitions -> strictly better.
  EXPECT_GT(early.use_rate, held.use_rate);
  EXPECT_LT(early.waiting_mean_ms, held.waiting_mean_ms);
}

TEST(BouabdallahLaforest, BothVariantsPassStress) {
  for (bool early : {false, true}) {
    // run_stress uses the factory default; drive variant via a one-off
    // experiment for the early case instead.
    experiment::ExperimentConfig cfg;
    cfg.system.algorithm = algo::Algorithm::kBouabdallahLaforest;
    cfg.system.num_sites = 8;
    cfg.system.num_resources = 6;
    cfg.system.seed = 17;
    cfg.system.bl_release_control_token_early = early;
    cfg.workload = workload::high_load(6, 6);  // max conflicts
    cfg.warmup = sim::from_ms(100);
    cfg.measure = sim::from_ms(3000);
    const auto r = experiment::run_experiment(cfg);
    EXPECT_GT(r.requests_completed, 50u) << "variant early=" << early;
  }
}

// --- Central scheduler -------------------------------------------------------

TEST(CentralScheduler, BackfillBeatsStrictFifo) {
  auto run = [](bool strict) {
    experiment::ExperimentConfig cfg;
    cfg.system.algorithm = algo::Algorithm::kCentralSharedMemory;
    cfg.system.num_sites = 16;
    cfg.system.num_resources = 24;
    cfg.system.seed = 21;
    cfg.system.central_strict_fifo = strict;
    cfg.workload = workload::high_load(8, 24);
    cfg.warmup = sim::from_ms(100);
    cfg.measure = sim::from_ms(3000);
    return experiment::run_experiment(cfg);
  };
  const auto backfill = run(false);
  const auto fifo = run(true);
  EXPECT_GT(backfill.use_rate, fifo.use_rate)
      << "in-order backfill must dominate head-of-line blocking";
}

TEST(CentralScheduler, StrictFifoPreservesOrderUnderConflict) {
  // With a single resource, grants must follow submission order exactly.
  algo::CentralConfig cfg;
  cfg.num_sites = 4;
  cfg.num_resources = 1;
  cfg.strict_fifo = true;
  sim::Simulator sim;
  algo::CentralCoordinator coord(cfg, sim);
  std::vector<std::unique_ptr<algo::CentralNode>> nodes;
  std::vector<SiteId> grant_order;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<algo::CentralNode>(cfg, coord));
    // CentralNode never touches the network; assign ids manually via a tiny
    // trick: submission order below identifies them.
  }
  ResourceSet r0(1, {0});
  for (int i = 0; i < 4; ++i) {
    auto* node = nodes[static_cast<std::size_t>(i)].get();
    node->set_grant_callback([&grant_order, i, node, &sim](RequestId) {
      grant_order.push_back(static_cast<SiteId>(i));
      sim.schedule_in(10, [node]() { node->release(); });
    });
  }
  // Submit in reverse id order to make FIFO != id order.
  for (int i = 3; i >= 0; --i) {
    nodes[static_cast<std::size_t>(i)]->request(r0);
  }
  sim.run();
  EXPECT_EQ(grant_order, (std::vector<SiteId>{3, 2, 1, 0}));
}

// --- Maddi -------------------------------------------------------------------

TEST(Maddi, MessageCountScalesWithN) {
  auto msgs_per_cs = [](int n) {
    test::StressOptions opt;
    opt.algorithm = algo::Algorithm::kMaddi;
    opt.num_sites = n;
    opt.num_resources = 12;
    opt.phi = 3;
    opt.requests_per_site = 20;
    opt.seed = 9;
    const auto out = test::run_stress(opt);
    return static_cast<double>(out.messages) /
           static_cast<double>(out.completed);
  };
  const double small = msgs_per_cs(6);
  const double large = msgs_per_cs(24);
  // Broadcast: every request costs at least N-1 messages.
  EXPECT_GE(small, 5.0);
  EXPECT_GT(large, small * 2.5);
}

// --- Chandy-Misra -------------------------------------------------------------

struct CmRing {
  sim::Simulator sim;
  net::Network net{sim, net::make_fixed_latency(sim::from_ms(0.5)), 7};
  std::vector<std::unique_ptr<algo::ChandyMisraNode>> nodes;
  algo::ChandyMisraConfig cfg;

  explicit CmRing(int n) {
    cfg.num_sites = n;
    for (int i = 0; i < n; ++i) {
      cfg.sharers.emplace_back(static_cast<SiteId>(i),
                               static_cast<SiteId>((i + 1) % n));
    }
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<algo::ChandyMisraNode>(cfg));
      net.add_node(*nodes.back());
    }
    net.start();
  }
};

TEST(ChandyMisra, RingDrinkingSafetyAndLiveness) {
  const int n = 8;
  CmRing ring(n);
  sim::Rng rng(33);
  ResourceSet busy(n);
  std::vector<int> remaining(static_cast<std::size_t>(n), 25);
  int completed = 0;

  std::function<void(SiteId)> thirsty = [&](SiteId s) {
    if (remaining[static_cast<std::size_t>(s)]-- <= 0) return;
    const ResourceId left = static_cast<ResourceId>((s + n - 1) % n);
    const ResourceId right = static_cast<ResourceId>(s);
    ResourceSet want(n);
    switch (rng.uniform_int(0, 2)) {
      case 0: want.insert(left); break;
      case 1: want.insert(right); break;
      default: want.insert(left); want.insert(right);
    }
    ring.nodes[static_cast<std::size_t>(s)]->request(want);
  };

  for (SiteId s = 0; s < n; ++s) {
    auto* node = ring.nodes[static_cast<std::size_t>(s)].get();
    node->set_grant_callback([&, s, node](RequestId) {
      const ResourceSet& rs = node->current_request();
      EXPECT_FALSE(rs.intersects(busy)) << "two philosophers share a bottle";
      busy |= rs;
      ring.sim.schedule_in(sim::from_ms(1), [&, node]() {
        busy -= node->current_request();
        ++completed;
        node->release();
      });
    });
    ring.sim.schedule_in(
        static_cast<sim::SimDuration>(rng.uniform_int(0, 1'000'000)),
        [&, s]() { thirsty(s); });
  }
  // Refill: after each release, go thirsty again (drive from a poller).
  std::function<void()> refill = [&]() {
    for (SiteId s = 0; s < n; ++s) {
      auto* node = ring.nodes[static_cast<std::size_t>(s)].get();
      if (node->state() == ProcessState::kIdle &&
          remaining[static_cast<std::size_t>(s)] > 0) {
        thirsty(s);
      }
    }
    if (completed < 25 * n) ring.sim.schedule_in(sim::from_ms(2), refill);
  };
  ring.sim.schedule_in(sim::from_ms(2), refill);

  ring.sim.run();
  EXPECT_EQ(completed, 25 * n);
}

TEST(ChandyMisra, RejectsNonIncidentRequest) {
  CmRing ring(4);
  ResourceSet far(4);
  far.insert(2);  // resource 2 joins sites 2 and 3, not site 0
  EXPECT_THROW(ring.nodes[0]->request(far), std::invalid_argument);
}

TEST(ChandyMisra, InitialBottlePlacementAtLowerId) {
  CmRing ring(4);
  // Resource i is shared by (i, i+1): lower id holds the bottle initially.
  EXPECT_TRUE(ring.nodes[0]->holds_bottle(0));
  EXPECT_FALSE(ring.nodes[1]->holds_bottle(0));
  // Edge (3, 0): site 0 is the lower id.
  EXPECT_TRUE(ring.nodes[0]->holds_bottle(3));
  EXPECT_FALSE(ring.nodes[3]->holds_bottle(3));
}

TEST(ChandyMisra, BadConfigThrows) {
  algo::ChandyMisraConfig cfg;
  cfg.num_sites = 3;
  cfg.sharers = {{0, 0}};  // self-loop
  EXPECT_THROW(algo::ChandyMisraNode{cfg}, std::invalid_argument);
  cfg.sharers = {{0, 5}};  // out of range
  EXPECT_THROW(algo::ChandyMisraNode{cfg}, std::invalid_argument);
}

// --- mark functions -----------------------------------------------------------

TEST(MarkFunctions, AverageNonZeroMatchesPaper) {
  // A = average of the non-null counter values (§5).
  EXPECT_DOUBLE_EQ(average_non_zero({0, 4, 0, 8}), 6.0);
  EXPECT_DOUBLE_EQ(average_non_zero({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(average_non_zero({5}), 5.0);
}

TEST(MarkFunctions, PolicyLibrary) {
  const CounterVector v = {0, 3, 9, 0, 6};
  EXPECT_DOUBLE_EQ(make_mark_function(MarkPolicy::kAverageNonZero)(v), 6.0);
  EXPECT_DOUBLE_EQ(make_mark_function(MarkPolicy::kMaxValue)(v), 9.0);
  EXPECT_DOUBLE_EQ(make_mark_function(MarkPolicy::kSumNonZero)(v), 18.0);
  EXPECT_DOUBLE_EQ(make_mark_function(MarkPolicy::kMinNonZero)(v), 3.0);
}

TEST(MarkFunctions, RequestPrecedesTotalOrder) {
  EXPECT_TRUE(request_precedes(1.0, 5, 2.0, 1));
  EXPECT_TRUE(request_precedes(2.0, 1, 2.0, 5));   // site breaks ties
  EXPECT_FALSE(request_precedes(2.0, 5, 2.0, 5));  // irreflexive
}

}  // namespace
}  // namespace mra
