// The observability layer (src/obs/ + check/fanout): span reconstruction on
// hand-fed event streams, golden Chrome-trace/CSV bytes, byte-identical
// exports across identical runs, and the observer fan-out contract (mux
// composition, attach-ownership errors).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "check/explore.hpp"
#include "check/fanout.hpp"
#include "check/monitor.hpp"
#include "core/resource_set.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "scenario/runner.hpp"

namespace mra::obs {
namespace {

check::Event cs_event(check::EventType type, sim::SimTime at, SiteId site,
                      const ResourceSet* rs, std::int64_t seq = 1) {
  check::Event e;
  e.type = type;
  e.at = at;
  e.site = site;
  e.seq = seq;
  e.resources = rs;
  return e;
}

check::Event msg_event(check::EventType type, sim::SimTime at, SiteId src,
                       SiteId dst, std::int64_t id, std::uint32_t bytes = 0) {
  check::Event e;
  e.type = type;
  e.at = at;
  e.site = src;
  e.peer = dst;
  e.seq = id;
  e.kind = "Req";
  e.bytes = bytes;
  return e;
}

/// The shared hand-fed scenario: site 0 completes one request (with a
/// custody stamp and one message), site 1 is still waiting when the run
/// ends at t = 6 ms.
void feed_golden_stream(FlightRecorder& rec) {
  const ResourceSet ab(4, {0, 1});
  const ResourceSet c(4, {2});
  rec.on_advance(sim::from_ms(1));
  rec.on_event(cs_event(check::EventType::kRequest, sim::from_ms(1), 0, &ab));
  rec.on_event(msg_event(check::EventType::kSend, sim::from_ms(1), 0, 1, 1,
                         /*bytes=*/24));
  rec.on_advance(sim::from_ms(2));
  rec.on_event(msg_event(check::EventType::kDeliver, sim::from_ms(2), 0, 1, 1));
  {
    check::Event hold;
    hold.type = check::EventType::kHold;
    hold.at = sim::from_ms(2);
    hold.site = 0;
    hold.seq = 1;
    hold.resource = 0;
    rec.on_event(hold);
  }
  rec.on_advance(sim::from_ms(3));
  rec.on_event(cs_event(check::EventType::kAcquire, sim::from_ms(3), 0, &ab));
  rec.on_advance(sim::from_ms(4));
  rec.on_event(cs_event(check::EventType::kRequest, sim::from_ms(4), 1, &c));
  rec.on_advance(sim::from_ms(5));
  rec.on_event(cs_event(check::EventType::kRelease, sim::from_ms(5), 0, &ab));
  rec.on_advance(sim::from_ms(6));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void expect_same_lines(const std::string& expected,
                       const std::string& actual) {
  const std::vector<std::string> want = split_lines(expected);
  const std::vector<std::string> got = split_lines(actual);
  ASSERT_EQ(want.size(), got.size()) << actual;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "line " << i + 1;
  }
}

// ---------------------------------------------------------------------------
// Span reconstruction
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, ReconstructsSpanLifecycle) {
  FlightRecorder rec;
  feed_golden_stream(rec);

  ASSERT_EQ(rec.spans().size(), 2u);
  const RequestSpan& done = rec.spans()[0];
  EXPECT_EQ(done.site, 0);
  EXPECT_EQ(done.seq, 1);
  EXPECT_EQ(done.resources, (std::vector<ResourceId>{0, 1}));
  EXPECT_EQ(done.submit_at, sim::from_ms(1));
  EXPECT_EQ(done.first_message_at, sim::from_ms(1));
  EXPECT_EQ(done.acquire_at, sim::from_ms(3));
  EXPECT_EQ(done.release_at, sim::from_ms(5));
  EXPECT_TRUE(done.completed());
  EXPECT_EQ(done.waiting(rec.last_seen()), sim::from_ms(2));
  ASSERT_EQ(done.holds.size(), 1u);
  EXPECT_EQ(done.holds[0].resource, 0);
  ASSERT_EQ(done.messages.size(), 1u);

  const RequestSpan& open = rec.spans()[1];
  EXPECT_FALSE(open.completed());
  EXPECT_EQ(open.acquire_at, kNever);
  // Still waiting: time waited runs to the recorder's horizon (6 ms).
  EXPECT_EQ(open.waiting(rec.last_seen()), sim::from_ms(2));

  ASSERT_EQ(rec.messages().size(), 1u);
  const MessageRecord& msg = rec.messages()[0];
  EXPECT_EQ(msg.kind, "Req");
  EXPECT_EQ(msg.bytes, 24u);
  EXPECT_EQ(msg.send_at, sim::from_ms(1));
  EXPECT_EQ(msg.deliver_at, sim::from_ms(2));
  EXPECT_EQ(msg.span, 0);  // attributed to site 0's open span
}

TEST(FlightRecorderTest, SendWithNoOpenSpanStaysDetached) {
  FlightRecorder rec;
  rec.on_event(msg_event(check::EventType::kSend, sim::from_ms(1), 2, 3, 1));
  ASSERT_EQ(rec.messages().size(), 1u);
  EXPECT_EQ(rec.messages()[0].span, -1);
  EXPECT_TRUE(rec.spans().empty());
}

// ---------------------------------------------------------------------------
// Golden exports: the byte format is the contract Perfetto and the CI
// schema check rely on, so it is pinned here literally.
// ---------------------------------------------------------------------------

TEST(TraceExportTest, GoldenChromeTrace) {
  FlightRecorder rec;
  feed_golden_stream(rec);
  std::ostringstream out;
  write_chrome_trace(rec, out);

  const std::string expected = R"({"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"mra-sim"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"site 0"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"site 1"}},
{"name":"wait {0,1} #1","cat":"request","ph":"X","ts":1000.000,"dur":2000.000,"pid":0,"tid":0,"args":{"seq":1,"resources":"{0,1}","first_message_ms":1.000000}},
{"name":"Req","cat":"msg","ph":"s","id":1,"ts":1000.000,"pid":0,"tid":0,"args":{"dst":1,"bytes":24}},
{"name":"hold r0","cat":"hold","ph":"i","s":"t","ts":2000.000,"pid":0,"tid":0,"args":{"seq":1}},
{"name":"Req","cat":"msg","ph":"f","bp":"e","id":1,"ts":2000.000,"pid":0,"tid":1,"args":{"src":0}},
{"name":"cs {0,1} #1","cat":"cs","ph":"X","ts":3000.000,"dur":2000.000,"pid":0,"tid":0,"args":{"seq":1,"resources":"{0,1}"}},
{"name":"wait {2} #1","cat":"request","ph":"X","ts":4000.000,"dur":2000.000,"pid":0,"tid":1,"args":{"seq":1,"resources":"{2}","incomplete":true}}
],"displayTimeUnit":"ms"}
)";
  expect_same_lines(expected, out.str());
}

TEST(TraceExportTest, GoldenSpansCsv) {
  FlightRecorder rec;
  feed_golden_stream(rec);
  std::ostringstream out;
  write_spans_csv(rec, out);

  const std::string expected =
      "site,seq,resources,submit_ms,first_message_ms,acquire_ms,"
      "release_ms,waiting_ms,holding_ms,messages\n"
      "0,1,0+1,1.000000,1.000000,3.000000,5.000000,2.000000,2.000000,1\n"
      "1,1,2,4.000000,,,,2.000000,,0\n";
  expect_same_lines(expected, out.str());
}

TEST(TraceExportTest, SlowestSpansOrderAndTieBreak) {
  FlightRecorder rec;
  feed_golden_stream(rec);
  // Third span: site 0 again, submitted late — waits 0.5 ms to the horizon.
  const ResourceSet d(4, {3});
  rec.on_event(cs_event(check::EventType::kRequest,
                        sim::from_ms(5) + sim::microseconds(500), 0, &d, 2));
  rec.on_advance(sim::from_ms(6));

  const auto slowest = slowest_spans(rec, 2);
  ASSERT_EQ(slowest.size(), 2u);
  // Spans 0 and 1 tie at 2 ms waiting; the lower site wins the tie.
  EXPECT_EQ(slowest[0]->site, 0);
  EXPECT_EQ(slowest[0]->seq, 1);
  EXPECT_EQ(slowest[1]->site, 1);
}

// ---------------------------------------------------------------------------
// Determinism over a real run
// ---------------------------------------------------------------------------

struct Export {
  std::string trace;
  std::string csv;
  std::string gauges;
  std::size_t spans = 0;
};

Export run_and_export() {
  const scenario::ScenarioSpec spec = check::tiny_exhaustive_spec(3, 2);
  FlightRecorder rec;
  (void)scenario::run_scenario(
      spec, algo::Algorithm::kLassWithLoan, &rec,
      [&rec](algo::AllocationSystem& system) {
        rec.enable_gauges(system.simulator(), system.network(),
                          sim::from_ms(5));
      });
  Export out;
  out.spans = rec.spans().size();
  std::ostringstream trace, csv, gauges;
  write_chrome_trace(rec, trace);
  write_spans_csv(rec, csv);
  write_gauges_json(rec, gauges);
  out.trace = trace.str();
  out.csv = csv.str();
  out.gauges = gauges.str();
  return out;
}

TEST(TraceExportTest, RepeatedRunsExportIdenticalBytes) {
  const Export a = run_and_export();
  const Export b = run_and_export();
  EXPECT_GT(a.spans, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.gauges, b.gauges);
}

TEST(FlightRecorderTest, GaugesSampleOnTheSimulatedTimeGrid) {
  const scenario::ScenarioSpec spec = check::tiny_exhaustive_spec(3, 2);
  FlightRecorder rec;
  (void)scenario::run_scenario(
      spec, algo::Algorithm::kLassWithLoan, &rec,
      [&rec](algo::AllocationSystem& system) {
        rec.enable_gauges(system.simulator(), system.network(),
                          sim::from_ms(5));
      });
  ASSERT_GE(rec.gauges().size(), 2u);
  for (std::size_t i = 0; i < rec.gauges().size(); ++i) {
    EXPECT_EQ(rec.gauges()[i].at,
              static_cast<sim::SimTime>(i) * sim::from_ms(5));
  }
}

// ---------------------------------------------------------------------------
// Observer fan-out
// ---------------------------------------------------------------------------

struct CountingObserver final : check::Observer {
  int events = 0;
  int advances = 0;
  void on_event(const check::Event&) override { ++events; }
  void on_advance(sim::SimTime) override { ++advances; }
};

TEST(ObserverMuxTest, ForwardsToEveryObserverInOrder) {
  CountingObserver a;
  CountingObserver b;
  check::ObserverMux mux;
  mux.add(a);
  mux.add(b);
  const ResourceSet rs(4, {0});
  mux.on_event(cs_event(check::EventType::kRequest, 1, 0, &rs));
  mux.on_advance(2);
  EXPECT_EQ(a.events, 1);
  EXPECT_EQ(b.events, 1);
  EXPECT_EQ(a.advances, 1);
  EXPECT_EQ(b.advances, 1);
}

TEST(ObserverMuxTest, MonitorAndRecorderComposeOverOneRun) {
  const scenario::ScenarioSpec spec = check::tiny_exhaustive_spec(3, 2);
  check::MonitorConfig mc;
  mc.num_sites = spec.system.num_sites;
  mc.num_resources = spec.system.num_resources;
  check::Monitor monitor(mc);
  FlightRecorder rec;
  check::ObserverMux mux;
  mux.add(monitor);
  mux.add(rec);
  (void)scenario::run_scenario(
      spec, algo::Algorithm::kLassWithLoan, &mux,
      [&monitor](algo::AllocationSystem& system) {
        monitor.bind_simulator(system.simulator());
      });
  // Both consumers saw the same complete stream.
  EXPECT_TRUE(monitor.ok()) << monitor.violations().front().detail;
  EXPECT_GT(monitor.events_seen(), 0u);
  EXPECT_GT(rec.spans().size(), 0u);
  EXPECT_EQ(rec.messages().size() > 0, true);
}

TEST(ObserverMuxTest, AttachRefusesToDisplaceForeignObserver) {
  algo::SystemConfig cfg;
  cfg.num_sites = 3;
  cfg.num_resources = 2;
  auto system = algo::AllocationSystem::create(cfg);
  system->start();

  check::MonitorConfig mc;
  mc.num_sites = cfg.num_sites;
  mc.num_resources = cfg.num_resources;
  check::Monitor monitor(mc);
  monitor.attach(*system);

  check::ObserverMux mux;
  EXPECT_THROW(mux.attach(*system), check::AlreadyAttachedError);
  check::Monitor second(mc);
  EXPECT_THROW(second.attach(*system), check::AlreadyAttachedError);

  // detach() frees the hooks: the documented fix (one mux, both consumers)
  // then wires cleanly.
  monitor.detach();
  mux.add(monitor);
  EXPECT_NO_THROW(mux.attach(*system));
  mux.detach();
}

}  // namespace
}  // namespace mra::obs
