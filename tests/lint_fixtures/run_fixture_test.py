#!/usr/bin/env python3
"""Mutant tests for scripts/mra_lint.py: every fixture file under src/ must
fire exactly the rules its `// LINT-EXPECT:` header declares (multiset
equality, so a rule expected twice must fire twice), a `LINT-EXPECT: clean`
file must fire nothing, and the linter's exit code must agree. The clean
file's suppression must additionally be recorded as used — proving the
NOLINT pipeline works end to end, not just that nothing matched.

Run directly or via ctest (registered as lint_fixtures in CMakeLists.txt).
"""

import collections
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINTER = REPO / "scripts" / "mra_lint.py"
FIXTURE_SRC = HERE / "src"

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([\w-]+)")


def expected_rules(path):
    expects = EXPECT_RE.findall(path.read_text(encoding="utf-8"))
    if not expects:
        raise SystemExit(f"{path}: fixture has no LINT-EXPECT header")
    if expects == ["clean"]:
        return collections.Counter()
    if "clean" in expects:
        raise SystemExit(f"{path}: 'clean' cannot be mixed with rule names")
    return collections.Counter(expects)


def main():
    fixtures = sorted(FIXTURE_SRC.rglob("*.cpp"))
    if not fixtures:
        raise SystemExit(f"no fixtures found under {FIXTURE_SRC}")

    failures = []
    for fixture in fixtures:
        expected = expected_rules(fixture)
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            proc = subprocess.run(
                [sys.executable, str(LINTER), str(fixture),
                 "--src-root", str(FIXTURE_SRC), "--json", tmp.name,
                 "--quiet"],
                capture_output=True, text=True, check=False)
            report = json.load(open(tmp.name, encoding="utf-8"))

        fired = collections.Counter(v["rule"] for v in report["violations"])
        name = fixture.relative_to(FIXTURE_SRC)
        if fired != expected:
            failures.append(
                f"{name}: expected {dict(expected) or 'clean'}, "
                f"linter fired {dict(fired) or 'nothing'}")
        want_exit = 1 if expected else 0
        if proc.returncode != want_exit:
            failures.append(f"{name}: expected exit {want_exit}, "
                            f"got {proc.returncode}\n{proc.stdout}")
        if not expected and "MRA_NOLINT" in fixture.read_text(
                encoding="utf-8"):
            # A clean fixture that carries a suppression must have it
            # parsed, attributed, and marked used. (Clean fixtures that are
            # clean by allowlist — fabric/transport_file.cpp — carry none.)
            sup = report["suppressions"]
            if len(sup) != 1 or not sup[0]["used"] or not sup[0]["reason"]:
                failures.append(f"{name}: expected exactly one used "
                                f"suppression with a reason, got {sup}")
        print(f"ok {name}: {dict(fired) or 'clean'} "
              f"[{report['frontend']} frontend]")

    # The registry the fixtures assert against must match --list-rules (the
    # same list check_doc_refs.sh trusts for repo-wide NOLINT validation).
    listed = subprocess.run(
        [sys.executable, str(LINTER), "--list-rules"],
        capture_output=True, text=True, check=True).stdout.split()
    asserted = set().union(*(expected_rules(f) for f in fixtures))
    unknown = asserted - set(listed)
    if unknown:
        failures.append(f"fixtures assert unregistered rules: {unknown}")
    uncovered = set(listed) - asserted
    if uncovered:
        failures.append(
            f"registry rules with no violating fixture: {uncovered} — "
            "add a fixture before shipping a rule")

    if failures:
        print("\nlint fixture test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint fixture test OK: {len(fixtures)} fixtures, "
          f"{len(listed)} rules all covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
