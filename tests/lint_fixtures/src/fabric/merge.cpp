// Lint fixture: wall-clock INSIDE src/fabric/ but outside transport* must
// still fire — the allowlist covers the transport backends only, not the
// fabric's merge/coordinator/worker layers, which have to stay
// deterministic for byte-identical merges (DESIGN.md §15).
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: wall-clock
#include <chrono>

namespace fixture {

long stamp_merge_start() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
