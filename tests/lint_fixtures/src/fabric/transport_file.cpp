// Lint fixture: the fabric transport allowlist. This path matches the
// wall-clock rule's `fabric/transport` allowlist prefix, so the clock reads
// below — the exact shapes the real backends use for lease staleness and
// poll sleeps — must NOT fire, with no suppression comment needed. The flip
// side (the allowlist stops at transport*) is pinned by fabric/merge.cpp.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: clean
#include <chrono>
#include <thread>

namespace fixture {

double claim_age_sec() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long lease_deadline() {
  return std::chrono::steady_clock::now().time_since_epoch().count() + 30;
}

void sleep_poll() {
  std::this_thread::sleep_for(std::chrono::duration<double>(0.2));
}

}  // namespace fixture
