// Lint fixture: pointer-keyed ordering/hashing makes output depend on the
// allocator's address layout.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: pointer-key
// LINT-EXPECT: pointer-key
// LINT-EXPECT: pointer-key
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

struct Registry {
  std::map<Node*, int> rank_by_node;  // first violation
  std::set<const Node*> visited;      // second violation (multi-line arg ok:)
  std::map<Node*,
           double>
      weight_by_node;  // third violation
  std::map<int, Node*> node_by_rank;  // pointer VALUE, not key: must not fire
};

bool compare_ids(const Node* a, const Node* b) {
  return a->id < b->id;  // comparing through pointers is fine
}

bool less_than(int a, int b) { return a < b; }  // comparison, not a template

}  // namespace fixture
