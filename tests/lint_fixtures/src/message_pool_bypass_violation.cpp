// Lint fixture: net::Message storage must go through the class operator new
// (thread-local pool). ::new and make_shared/allocate_shared bypass it.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: message-pool-bypass
// LINT-EXPECT: message-pool-bypass
// (two findings: ::new and make_shared; make_unique below stays clean)
#include <memory>

#include "net/message.hpp"

namespace fixture {

struct TokenMsg : mra::net::Message {
  [[nodiscard]] std::string_view kind() const override { return "Token"; }
};

mra::net::Message* leak_one() {
  return ::new TokenMsg();  // first violation: global new skips the pool
}

std::shared_ptr<TokenMsg> share_one() {
  return std::make_shared<TokenMsg>();  // second: allocator-backed storage
}

std::unique_ptr<TokenMsg> pooled_ok() {
  return std::make_unique<TokenMsg>();  // class operator new: fine
}

}  // namespace fixture
