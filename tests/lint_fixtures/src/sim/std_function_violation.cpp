// Lint fixture: std::function inside src/sim/ — engine callables must be
// sim::Callback / sim::PredicateRef (move-only, small-buffer, no dispatch
// through an allocation-capable wrapper on the per-event path).
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: sim-std-function
#include <functional>

namespace fixture::sim {

struct Timer {
  std::function<void()> on_fire;  // violation: sim/ must use sim::Callback
};

}  // namespace fixture::sim
