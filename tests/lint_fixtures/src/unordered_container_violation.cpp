// Lint fixture: std::unordered_* containers are banned everywhere in src/
// (iteration order depends on the hash seed and standard-library version).
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: unordered-container
// LINT-EXPECT: unordered-container
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct SiteStats {
  std::unordered_map<int, double> per_site_rate;  // first violation
};

int count_unique(const std::unordered_set<std::string>& names) {  // second
  return static_cast<int>(names.size());
}

}  // namespace fixture
