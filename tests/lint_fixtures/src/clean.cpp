// Lint fixture: a clean file. Exercises the idioms the rules push toward,
// plus banned spellings in comments/strings (must not fire) and one
// correctly-suppressed violation (rule name + non-empty reason).
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: clean
#include <chrono>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

// std::unordered_map and steady_clock mentioned in a comment: no finding.
struct Ordered {
  std::map<int, double> rate_by_site;  // deterministic iteration order
};

const char* doc() {
  return "call rand() or mt19937 here and the linter would object, but "
         "string literals are not code";
}

long suppressed_clock_read() {
  // The one legitimate shape of an exception: named rule, stated reason.
  // MRA_NOLINT(wall-clock): fixture demonstrating a valid suppression
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
