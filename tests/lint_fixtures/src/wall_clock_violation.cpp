// Lint fixture: wall-clock sources outside the allowlisted boundary.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: wall-clock
// LINT-EXPECT: wall-clock
// LINT-EXPECT: wall-clock
#include <chrono>
#include <ctime>

namespace fixture {

long sample_latency_ns() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

long stamp_unix_seconds() { return static_cast<long>(std::time(nullptr)); }

double stamp_wall() {
  // system_clock in this comment must NOT fire; the call below must.
  return static_cast<double>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

const char* not_a_violation() {
  return "steady_clock in a string literal must not fire either";
}

}  // namespace fixture
