// Lint fixture: a reason-less MRA_NOLINT is itself an error — suppressions
// are design decisions and must say why. The malformed suppression does not
// suppress, so the underlying wall-clock violation fires too.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: bad-nolint
// LINT-EXPECT: wall-clock
#include <chrono>

namespace fixture {

long bad_suppression() {
  // MRA_NOLINT(wall-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
