// Lint fixture: MRA_NOLINT naming a rule that is not in the registry is an
// error (and the unsuppressed wall-clock violation still fires).
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: bad-nolint
// LINT-EXPECT: wall-clock
#include <chrono>

namespace fixture {

long typo_suppression() {
  // MRA_NOLINT(wallclock-usage): rule name does not exist in the registry
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
