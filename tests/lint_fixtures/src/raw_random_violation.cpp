// Lint fixture: randomness sources outside sim/random.* — everything must
// consume seeded splitmix64/xoshiro substreams instead.
// Never compiled — input for scripts/mra_lint.py via run_fixture_test.py.
// LINT-EXPECT: raw-random
// LINT-EXPECT: raw-random
// LINT-EXPECT: raw-random
#include <cstdlib>
#include <random>

namespace fixture {

int roll_die() {
  std::random_device rd;                         // first violation
  std::mt19937 gen(rd());                        // second violation
  return static_cast<int>(gen() % 6U) + 1;
}

int libc_roll() { return rand() % 6; }  // third violation

}  // namespace fixture
