// Workload model tests: distributions, load arithmetic, validation.
#include <gtest/gtest.h>

#include "workload/workload.hpp"

namespace mra::workload {
namespace {

/// Returns the what() of the std::invalid_argument validate() throws, or ""
/// when it does not throw.
std::string rejection_message(const WorkloadConfig& cfg) {
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(WorkloadConfig, ValidationRejectsBadRanges) {
  WorkloadConfig cfg;
  cfg.num_resources = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.phi = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.phi = 81;  // > M
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.alpha_max = cfg.alpha_min - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rho = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.cs_jitter = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(WorkloadConfig, RejectionMessagesNameTheOffendingField) {
  // Each rejection path must name the field (and value) that tripped it,
  // so a bad sweep config is diagnosable from the exception alone.
  WorkloadConfig cfg;
  cfg.num_resources = -3;
  EXPECT_NE(rejection_message(cfg).find("num_resources"), std::string::npos);
  EXPECT_NE(rejection_message(cfg).find("-3"), std::string::npos);

  cfg = {};
  cfg.phi = 81;  // > num_resources = 80
  EXPECT_NE(rejection_message(cfg).find("phi"), std::string::npos);
  EXPECT_NE(rejection_message(cfg).find("81"), std::string::npos);
  cfg.phi = 0;
  EXPECT_NE(rejection_message(cfg).find("phi"), std::string::npos);

  cfg = {};
  cfg.alpha_max = cfg.alpha_min - 1;
  EXPECT_NE(rejection_message(cfg).find("alpha"), std::string::npos);

  cfg = {};
  cfg.rho = -0.5;
  EXPECT_NE(rejection_message(cfg).find("rho"), std::string::npos);

  cfg = {};
  cfg.cs_jitter = 1.0;
  EXPECT_NE(rejection_message(cfg).find("cs_jitter"), std::string::npos);

  cfg = {};
  EXPECT_EQ(rejection_message(cfg), "");
}

TEST(WorkloadConfig, BetaFollowsRho) {
  // ρ = β / (ᾱ + γ)  =>  β = ρ (ᾱ + γ). Low ρ = high load = short think.
  WorkloadConfig cfg = medium_load(4);
  const auto beta_medium = cfg.beta();
  WorkloadConfig high = high_load(4);
  EXPECT_LT(high.beta(), beta_medium);
  EXPECT_NEAR(static_cast<double>(cfg.beta()),
              cfg.rho * static_cast<double>(cfg.mean_cs() + cfg.gamma), 1.0);
}

TEST(WorkloadConfig, MeanCsSpansAlphaRange) {
  WorkloadConfig cfg;
  cfg.cs_policy = CsDurationPolicy::kSizeProportional;
  // Mean of the size-proportional law is the middle of [αmin, αmax],
  // independent of φ (the paper's α varies 5..35 ms in every experiment).
  EXPECT_EQ(cfg.mean_cs(), (cfg.alpha_min + cfg.alpha_max) / 2);
  cfg.cs_policy = CsDurationPolicy::kFixed;
  EXPECT_EQ(cfg.mean_cs(), cfg.alpha_min);
}

TEST(RequestGenerator, SizesInRangeAndCoverPhi) {
  WorkloadConfig cfg;
  cfg.phi = 7;
  RequestGenerator gen(cfg, sim::Rng(3));
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 7000; ++i) {
    const int x = gen.draw_size();
    ASSERT_GE(x, 1);
    ASSERT_LE(x, 7);
    ++counts[static_cast<std::size_t>(x)];
  }
  for (int x = 1; x <= 7; ++x) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(x)], 1000, 150)
        << "size " << x << " not uniform";
  }
}

TEST(RequestGenerator, ResourcesDistinctAndInUniverse) {
  WorkloadConfig cfg;
  cfg.num_resources = 20;
  cfg.phi = 20;
  RequestGenerator gen(cfg, sim::Rng(4));
  for (int i = 0; i < 500; ++i) {
    const int size = gen.draw_size();
    const ResourceSet rs = gen.draw_resources(size);
    EXPECT_EQ(rs.size(), static_cast<std::size_t>(size));  // distinct by set
    rs.for_each([&](ResourceId r) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 20);
    });
  }
}

TEST(RequestGenerator, FullUniverseRequestPossible) {
  WorkloadConfig cfg;
  cfg.num_resources = 5;
  cfg.phi = 5;
  RequestGenerator gen(cfg, sim::Rng(5));
  const ResourceSet rs = gen.draw_resources(5);
  EXPECT_EQ(rs.size(), 5u);
}

TEST(RequestGenerator, CsDurationMonotoneInSizeOnAverage) {
  WorkloadConfig cfg;
  cfg.phi = 80;
  cfg.cs_policy = CsDurationPolicy::kSizeProportional;
  RequestGenerator gen(cfg, sim::Rng(6));
  double small_sum = 0;
  double large_sum = 0;
  for (int i = 0; i < 300; ++i) {
    small_sum += static_cast<double>(gen.draw_cs_duration(1));
    large_sum += static_cast<double>(gen.draw_cs_duration(80));
  }
  EXPECT_LT(small_sum / 300, static_cast<double>(sim::from_ms(8)));
  EXPECT_GT(large_sum / 300, static_cast<double>(sim::from_ms(28)));
  EXPECT_LT(small_sum, large_sum);
}

TEST(RequestGenerator, CsDurationWithinJitterBounds) {
  WorkloadConfig cfg;
  cfg.phi = 4;
  cfg.cs_jitter = 0.2;
  RequestGenerator gen(cfg, sim::Rng(7));
  for (int i = 0; i < 1000; ++i) {
    const auto d = gen.draw_cs_duration(4);  // x = φ: base = αmax
    EXPECT_GE(d, static_cast<sim::SimDuration>(0.8 * 35e6) - 1);
    EXPECT_LE(d, static_cast<sim::SimDuration>(1.2 * 35e6) + 1);
  }
}

TEST(RequestGenerator, ThinkTimeMeanTracksBeta) {
  WorkloadConfig cfg = medium_load(4);
  RequestGenerator gen(cfg, sim::Rng(8));
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(gen.draw_think_time());
  const double mean = sum / n;
  const double beta = static_cast<double>(cfg.beta());
  EXPECT_NEAR(mean / beta, 1.0, 0.05);
}

TEST(RequestGenerator, DeterministicGivenSeed) {
  WorkloadConfig cfg;
  RequestGenerator a(cfg, sim::Rng(9));
  RequestGenerator b(cfg, sim::Rng(9));
  for (int i = 0; i < 100; ++i) {
    const int sa = a.draw_size();
    const int sb = b.draw_size();
    ASSERT_EQ(sa, sb);
    ASSERT_EQ(a.draw_resources(sa).to_vector(), b.draw_resources(sb).to_vector());
    ASSERT_EQ(a.draw_cs_duration(sa), b.draw_cs_duration(sb));
    ASSERT_EQ(a.draw_think_time(), b.draw_think_time());
  }
}

}  // namespace
}  // namespace mra::workload
