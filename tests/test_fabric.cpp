// Distributed sweep fabric: wire/result serialization exactness, spool and
// checkpoint crash-safety, lease claiming/stealing, and the headline
// invariant — merged sharded output byte-identical to the single-process
// run, for any worker count, chunking, backend, or worker death.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiment/experiment.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/grid.hpp"
#include "fabric/merge.hpp"
#include "fabric/result.hpp"
#include "fabric/spool.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"

namespace mra::fabric {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test spool directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mra_fabric_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

GridSpec tiny_sweep_grid() {
  GridSpec grid;
  grid.kind = GridKind::kSweep;
  grid.scenarios = {"paper-phi4"};
  grid.algorithms = {"lass", "lass-loan"};
  grid.quick = true;
  return grid;
}

/// An ExperimentResult with awkward doubles and populated accumulators —
/// synthetic, so serde tests don't depend on the simulator.
experiment::ExperimentResult synthetic_result() {
  experiment::ExperimentResult r;
  r.algorithm = "test \"quoted\"\nname";
  r.phi = 4;
  r.rho = 1.0 / 3.0;
  r.use_rate = 0.1 + 0.2;  // 0.30000000000000004
  r.waiting_mean_ms = 17.000000000000004;
  r.waiting_stddev_ms = std::numeric_limits<double>::quiet_NaN();
  r.waiting_p50_ms = 6.25e-12;
  r.waiting_p95_ms = 1e300;
  r.waiting_p99_ms = -0.0;
  r.requests_completed = 327;
  r.messages = 4675;
  r.bytes = 729142;
  r.messages_per_cs = 14.296636085626911;
  r.loans_used = 3;
  r.loans_failed = 1;
  for (double x : {0.5, 1.0 / 7.0, 42.0, 1e-9, 250.75}) {
    r.waiting_stats.add(x);
    r.waiting_sketch.add(x);
  }
  return r;
}

TEST(FabricGrid, SpecSerializeParseRoundTrip) {
  GridSpec g;
  g.kind = GridKind::kReplicated;
  g.scenarios = {"paper-phi4", "zipf-hot"};
  g.algorithms = {"lass", "bl"};
  g.replications = 7;
  g.quick = true;
  g.seed_set = true;
  g.seed = 99;
  const std::string text = g.serialize();
  const GridSpec back = GridSpec::parse(text);
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.kind, GridKind::kReplicated);
  EXPECT_EQ(back.scenarios, g.scenarios);
  EXPECT_EQ(back.algorithms, g.algorithms);
  EXPECT_EQ(back.replications, 7u);
  EXPECT_TRUE(back.quick);
  EXPECT_TRUE(back.seed_set);
  EXPECT_EQ(back.seed, 99u);
}

TEST(FabricGrid, ManifestRoundTripAndChunkValidation) {
  Manifest m;
  m.grid = tiny_sweep_grid();
  m.chunk = 4;
  m.jobs = m.grid.job_count();
  const std::string text = m.serialize();
  const Manifest back = Manifest::parse(text);
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.jobs, 2u);

  std::string zero_chunk = text;
  const std::size_t pos = zero_chunk.find("\"chunk\":4");
  zero_chunk.replace(pos, 9, "\"chunk\":0");
  EXPECT_THROW((void)Manifest::parse(zero_chunk), std::invalid_argument);
}

TEST(FabricGrid, ValidateRejectsUnknownNamesAndBadCounts) {
  GridSpec g = tiny_sweep_grid();
  EXPECT_NO_THROW(g.validate());
  g.scenarios = {"no-such-scenario"};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = tiny_sweep_grid();
  g.algorithms = {"no-such-algo"};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = tiny_sweep_grid();
  g.kind = GridKind::kReplicated;
  g.replications = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  EXPECT_THROW((void)grid_kind_from_name("mesh"), std::invalid_argument);
}

TEST(FabricGrid, JobCountAndLabels) {
  GridSpec g = tiny_sweep_grid();
  g.scenarios = {"paper-phi4", "zipf-hot"};
  EXPECT_EQ(g.job_count(), 4u);
  EXPECT_EQ(g.job_label(0), "paper-phi4");
  EXPECT_EQ(g.job_label(1), "paper-phi4");
  EXPECT_EQ(g.job_label(2), "zipf-hot");

  g.kind = GridKind::kReplicated;
  g.replications = 3;
  EXPECT_EQ(g.job_count(), 12u);
  EXPECT_EQ(g.job_label(5), "paper-phi4");  // pair 1, rep 2
  EXPECT_EQ(g.job_label(6), "zipf-hot");

  g.kind = GridKind::kExplore;
  g.explore_jobs = 5;
  EXPECT_EQ(g.job_count(), 5u);
  EXPECT_EQ(g.job_label(2), "explore:2");
  EXPECT_THROW((void)g.run_job(5), std::out_of_range);
}

TEST(FabricResult, SerializeParseIsExact) {
  const experiment::ExperimentResult r = synthetic_result();
  const std::string line = serialize_result(r);
  const experiment::ExperimentResult back = parse_result(line);
  // String equality is the strong form: every double re-serializes to the
  // same %.17g token, so shipping a result through the wire twice is a
  // fixed point — the property the byte-identical merge rests on.
  EXPECT_EQ(serialize_result(back), line);
  EXPECT_EQ(back.algorithm, r.algorithm);
  EXPECT_EQ(back.phi, r.phi);
  EXPECT_DOUBLE_EQ(back.use_rate, r.use_rate);
  EXPECT_TRUE(std::isnan(back.waiting_stddev_ms));
  EXPECT_DOUBLE_EQ(back.waiting_p95_ms, 1e300);
  EXPECT_TRUE(std::signbit(back.waiting_p99_ms));
  EXPECT_EQ(back.requests_completed, 327u);
  EXPECT_EQ(back.waiting_stats.count(), 5u);
  EXPECT_DOUBLE_EQ(back.waiting_stats.mean(), r.waiting_stats.mean());
  EXPECT_DOUBLE_EQ(back.waiting_sketch.percentile(95),
                   r.waiting_sketch.percentile(95));
}

TEST(FabricResult, ErrorPayloadRoundTrip) {
  const std::string line = error_payload("scenario \"x\" exploded\nbadly");
  const auto message = parse_error(line);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, "scenario \"x\" exploded\nbadly");
  EXPECT_FALSE(parse_error(serialize_result(synthetic_result())).has_value());
  EXPECT_THROW((void)parse_result(line), std::invalid_argument);
}

TEST(FabricSpool, PartitionLeases) {
  const std::vector<Lease> leases = partition_leases(10, 4);
  ASSERT_EQ(leases.size(), 3u);
  EXPECT_EQ(leases[0].first, 0u);
  EXPECT_EQ(leases[0].count, 4u);
  EXPECT_EQ(leases[2].id, 2u);
  EXPECT_EQ(leases[2].first, 8u);
  EXPECT_EQ(leases[2].count, 2u);  // tail lease is short
  EXPECT_TRUE(partition_leases(0, 4).empty());
  EXPECT_THROW((void)partition_leases(10, 0), std::invalid_argument);
}

TEST(FabricSpool, CheckpointAppendLoadAndPartialTrailingLine) {
  const SpoolPaths paths{fresh_dir("checkpoint")};
  ensure_spool_dirs(paths);
  EXPECT_TRUE(load_checkpoint(paths, 4).empty());

  append_checkpoint(paths, Lease{0, 0, 4, 0});
  append_checkpoint(paths, Lease{2, 8, 2, 1});
  EXPECT_EQ(load_checkpoint(paths, 4), (std::vector<std::uint64_t>{0, 2}));

  // A crash mid-append leaves a partial trailing line; it must be ignored,
  // not rejected.
  {
    std::ofstream out(paths.checkpoint(), std::ios::app | std::ios::binary);
    out << "done 4 ";
  }
  EXPECT_EQ(load_checkpoint(paths, 4), (std::vector<std::uint64_t>{0, 2}));

  // A malformed COMPLETE line is corruption, not a crash artifact.
  {
    std::ofstream out(paths.checkpoint(), std::ios::trunc | std::ios::binary);
    out << "done x y\n";
  }
  EXPECT_THROW((void)load_checkpoint(paths, 4), std::invalid_argument);
}

TEST(FabricSpool, ResultFileRoundTripAndTornFile) {
  const SpoolPaths paths{fresh_dir("results")};
  ensure_spool_dirs(paths);
  LeaseResult result;
  result.lease = Lease{1, 4, 2, 3};
  result.payloads = {serialize_result(synthetic_result()),
                     error_payload("boom")};
  write_result_file(paths, result, "test");

  const auto back = read_result_file(paths, 1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->lease.first, 4u);
  EXPECT_EQ(back->lease.fence, 3u);
  EXPECT_EQ(back->payloads, result.payloads);

  EXPECT_FALSE(read_result_file(paths, 7).has_value());

  // Payload-count mismatch is rejected at write time...
  result.payloads.pop_back();
  EXPECT_THROW(write_result_file(paths, result, "test"),
               std::invalid_argument);
  // ...and a torn file (no trailing newline) reads as absent.
  {
    std::ofstream out(paths.result(2), std::ios::binary);
    out << "{\"lease\":2,\"first\":8,\"count\":1,\"fence\":0}\n{\"trunc";
  }
  EXPECT_FALSE(read_result_file(paths, 2).has_value());
}

TEST(FabricTransport, FileClaimStealAndKeepaliveLost) {
  const std::string spool = fresh_dir("steal");
  const SpoolPaths paths{spool};
  ensure_spool_dirs(paths);
  Manifest m;
  m.grid = tiny_sweep_grid();
  m.chunk = 1;
  m.jobs = m.grid.job_count();
  write_file_atomic(paths.manifest(), m.serialize(), "test");

  TransportTiming timing;
  timing.lease_timeout_sec = 0.2;
  timing.poll_interval_sec = 0.01;
  const auto first = make_file_worker(spool, "first", timing);
  ASSERT_TRUE(first->manifest().has_value());
  const auto lease = first->acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->fence, 0u);
  EXPECT_TRUE(first->keepalive(*lease));

  // Let the claim go stale, then a second worker must steal it with the
  // fence bumped — and the original holder must see its lease as lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto thief = make_file_worker(spool, "thief", timing);
  ASSERT_TRUE(thief->manifest().has_value());
  std::optional<Lease> stolen;
  for (int i = 0; i < 100 && !stolen; ++i) stolen = thief->acquire();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->fence, lease->fence + 1);
  EXPECT_FALSE(first->keepalive(*lease));
  EXPECT_TRUE(thief->keepalive(*stolen));
}

TEST(FabricTransport, TcpLeaseReissueAfterTimeout) {
  TransportTiming timing;
  timing.lease_timeout_sec = 0.15;
  timing.poll_interval_sec = 0.01;
  const auto coordinator = make_tcp_coordinator(0, timing);
  ASSERT_GT(coordinator->port(), 0);
  Manifest m;
  m.grid = tiny_sweep_grid();
  m.chunk = 2;
  m.jobs = m.grid.job_count();
  const std::vector<Lease> leases = partition_leases(m.jobs, m.chunk);
  coordinator->publish(m.serialize(), leases, std::vector<bool>(1, false));

  // The coordinator endpoint only serves inside poll(); pump it from a
  // background thread like run_coordinator's loop does.
  std::atomic<bool> stop{false};
  std::vector<LeaseResult> collected;
  std::thread pump([&] {
    while (!stop.load()) {
      for (LeaseResult& r : coordinator->poll()) {
        collected.push_back(std::move(r));
      }
    }
  });

  const auto dying = make_tcp_worker("127.0.0.1", coordinator->port(),
                                     "dying", timing);
  ASSERT_TRUE(dying->manifest().has_value());
  const auto lease = dying->acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->fence, 0u);

  // "dying" never submits and never keeps alive: after the timeout the
  // lease must be reissued to the next worker with the fence bumped.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const auto heir = make_tcp_worker("127.0.0.1", coordinator->port(), "heir",
                                    timing);
  std::optional<Lease> reissued;
  for (int i = 0; i < 100 && !reissued; ++i) reissued = heir->acquire();
  ASSERT_TRUE(reissued.has_value());
  EXPECT_EQ(reissued->id, lease->id);
  EXPECT_EQ(reissued->fence, lease->fence + 1);
  EXPECT_FALSE(dying->keepalive(*lease));
  EXPECT_TRUE(heir->keepalive(*reissued));

  // A submit under the ORIGINAL (superseded) fence must still complete the
  // lease: payloads are deterministic, first complete copy wins.
  LeaseResult result;
  result.lease = *lease;
  result.payloads = {"{\"error\":\"a\"}", "{\"error\":\"b\"}"};
  dying->submit(result);
  for (int i = 0; i < 100 && collected.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  pump.join();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].payloads.size(), 2u);
}

/// Runs the full fabric in-process: coordinator on this thread, `workers`
/// worker threads, file or TCP backend. Returns the merged output bytes.
std::string run_fabric(const GridSpec& grid, const std::string& spool,
                       std::uint64_t chunk, int workers, bool tcp) {
  CoordinatorOptions copts;
  copts.spool = spool;
  copts.chunk = chunk;
  copts.poll_interval_sec = 0.01;
  copts.out_path = spool + "/merged.json";
  int port = -1;
  if (tcp) {
    copts.listen_port = 0;
    copts.bound_port_out = &port;
  }

  std::vector<std::thread> threads;
  std::atomic<int> coordinator_code{-1};
  threads.emplace_back(
      [&] { coordinator_code = run_coordinator(grid, copts); });
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerOptions wopts;
      wopts.name = "w" + std::to_string(w);
      wopts.poll_interval_sec = 0.01;
      if (tcp) {
        // The coordinator thread binds before publish; spin until the test
        // hook reports the port.
        while (port < 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        wopts.connect = "127.0.0.1:" + std::to_string(port);
      } else {
        wopts.spool = spool;
      }
      EXPECT_EQ(run_worker(wopts), 0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(coordinator_code.load(), 0);
  return read_all(copts.out_path);
}

std::string local_reference(const GridSpec& grid) {
  std::ostringstream os;
  EXPECT_EQ(run_local(grid, 0, os, ""), 0);
  return os.str();
}

TEST(FabricEndToEnd, FileBackendMatchesLocalForAnyWorkerCount) {
  const GridSpec grid = tiny_sweep_grid();
  const std::string ref = local_reference(grid);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_w1"), 1, 1, false), ref);
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_w3"), 1, 3, false), ref);
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_c2"), 2, 2, false), ref);
}

TEST(FabricEndToEnd, TcpBackendMatchesLocal) {
  const GridSpec grid = tiny_sweep_grid();
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_tcp"), 1, 2, true),
            local_reference(grid));
}

TEST(FabricEndToEnd, ReplicatedGridMatchesLocal) {
  GridSpec grid = tiny_sweep_grid();
  grid.kind = GridKind::kReplicated;
  grid.algorithms = {"lass-loan"};
  grid.replications = 3;
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_rep"), 2, 2, false),
            local_reference(grid));
}

TEST(FabricEndToEnd, ExploreGridMatchesLocal) {
  GridSpec grid;
  grid.kind = GridKind::kExplore;
  grid.scenarios = {"paper-phi4"};
  grid.algorithms = {"lass"};
  grid.seeds_per_job = 1;
  grid.explore_jobs = 4;
  grid.quick = true;
  EXPECT_EQ(run_fabric(grid, fresh_dir("e2e_explore"), 2, 2, false),
            local_reference(grid));
}

TEST(FabricEndToEnd, ResumeSkipsCheckpointedLeasesAndMatchesLocal) {
  const GridSpec grid = tiny_sweep_grid();
  const std::string ref = local_reference(grid);
  const std::string spool = fresh_dir("resume");
  EXPECT_EQ(run_fabric(grid, spool, 1, 2, false), ref);

  // Simulate a crash that lost lease 1's result but kept its checkpoint
  // line: resume must demote it to pending and re-run it, because a
  // checkpoint entry is only trusted as far as its result file.
  const SpoolPaths paths{spool};
  fs::remove(paths.result(1));
  CoordinatorOptions copts;
  copts.spool = spool;
  copts.chunk = 1;
  copts.resume = true;
  copts.poll_interval_sec = 0.01;
  // The dead run's claim file for lease 1 is still in the spool; a short
  // lease timeout lets the restarted worker steal it promptly.
  copts.lease_timeout_sec = 0.2;
  copts.out_path = spool + "/merged2.json";
  std::thread worker([&] {
    WorkerOptions wopts;
    wopts.spool = spool;
    wopts.poll_interval_sec = 0.01;
    wopts.lease_timeout_sec = 0.2;
    EXPECT_EQ(run_worker(wopts), 0);
  });
  EXPECT_EQ(run_coordinator(grid, copts), 0);
  worker.join();
  EXPECT_EQ(read_all(copts.out_path), ref);
}

TEST(FabricEndToEnd, CheckpointWithoutResumeIsRefused) {
  const GridSpec grid = tiny_sweep_grid();
  const std::string spool = fresh_dir("no_resume");
  EXPECT_EQ(run_fabric(grid, spool, 1, 1, false), local_reference(grid));
  CoordinatorOptions copts;
  copts.spool = spool;
  copts.chunk = 1;
  EXPECT_EQ(run_coordinator(grid, copts), 2);  // checkpoint, no --resume
  GridSpec other = grid;
  other.algorithms = {"lass"};
  copts.resume = true;
  EXPECT_EQ(run_coordinator(other, copts), 2);  // different grid
}

TEST(FabricEndToEnd, FailingJobReportsLowestIndexAndNoOutput) {
  GridSpec grid = tiny_sweep_grid();
  grid.kind = GridKind::kExplore;
  grid.explore_jobs = 3;
  grid.seeds_per_job = 1;
  std::vector<std::string> payloads = {grid.run_job(0),
                                       error_payload("job 1 exploded"),
                                       error_payload("job 2 exploded")};
  std::ostringstream os;
  const auto error = write_merged_output(os, grid, payloads);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->job, 1u);
  EXPECT_EQ(error->message, "job 1 exploded");
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace mra::fabric
