// Metrics: streaming stats, histogram, exact use-rate integration, collector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "metrics/collector.hpp"
#include "metrics/stats.hpp"
#include "metrics/usage.hpp"
#include "sim/random.hpp"

namespace mra::metrics {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  sim::Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-10, 10);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  // Interpolated percentiles track the exact sorted-vector quantiles to
  // within one within-bucket sample spacing, not a full bucket width.
  EXPECT_NEAR(h.percentile(50), 49.5, 1.0);
  EXPECT_NEAR(h.percentile(99), 98.5, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.5);     // exact min
  EXPECT_DOUBLE_EQ(h.percentile(100), 99.5);  // exact max
}

TEST(Histogram, PercentileNotBucketUpperEdge) {
  // The old implementation returned the bucket's upper edge for every rank
  // in it: 100 samples of 1.0 in [0, 10) x 1 bucket answered 10.0 for p50 —
  // a 10x bias. The interpolated version stays inside the observed range.
  Histogram h(0.0, 10.0, 1);
  for (int i = 0; i < 100; ++i) h.add(1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1.0);
}

TEST(Histogram, OutOfRangeCountsAsUnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  h.add(5.0);
  // Outliers are tracked, not clamped into the edge buckets.
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(4), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
  // Side-correct tails: under/overflow ranks answer the exact extrema.
  EXPECT_DOUBLE_EQ(h.percentile(0), -100.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e9);
  EXPECT_DOUBLE_EQ(h.percentile(1), -100.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1e9);
}

TEST(Histogram, NonFiniteRejectedNotIndexed) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.nonfinite(), 3u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(h.bucket_count(b), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // still empty
}

TEST(Histogram, PercentileOutOfDomainThrows) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  EXPECT_THROW((void)h.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(100.5), std::invalid_argument);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// Exact p-th percentile of a sample vector, nearest-rank definition — the
// same rank convention the sketch uses, so only the value quantization
// (bucket width) separates estimate from truth.
double exact_percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0.0;
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  auto k = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  k = std::clamp<std::size_t>(k, 1, v.size());
  return v[k - 1];
}

TEST(QuantileSketch, GoldenAgainstExactQuantiles) {
  // The sketch guarantees the estimate lands in the sample's own log
  // bucket: relative error < gamma - 1 = 2*alpha/(1-alpha).
  const double alpha = 0.01;
  const double bound = 2.0 * alpha / (1.0 - alpha);
  sim::Rng rng(42);
  struct Case {
    const char* name;
    std::function<double()> draw;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform", [&]() { return rng.uniform_real(0.1, 100.0); }});
  cases.push_back({"exponential", [&]() { return rng.exponential(5.0); }});
  cases.push_back({"lognormal-ish", [&]() {
                     return std::exp(rng.uniform_real(-3.0, 8.0));
                   }});
  for (const auto& c : cases) {
    QuantileSketch sketch(alpha);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
      const double x = c.draw();
      samples.push_back(x);
      sketch.add(x);
    }
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
      const double exact = exact_percentile(samples, p);
      const double est = sketch.percentile(p);
      EXPECT_NEAR(est, exact, bound * exact + 1e-12)
          << c.name << " p" << p;
    }
  }
}

TEST(QuantileSketch, SmallCountsAndConstants) {
  QuantileSketch s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);  // empty
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
  QuantileSketch c;
  for (int i = 0; i < 1000; ++i) c.add(3.5);
  // A constant stream answers the constant exactly at every p (min/max
  // clamping, not bucket edges).
  EXPECT_DOUBLE_EQ(c.percentile(1), 3.5);
  EXPECT_DOUBLE_EQ(c.percentile(99), 3.5);
}

TEST(QuantileSketch, ZeroNegativeAndOverflowSamples) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-5.0);
  s.add(2e12);  // above kMaxTrackable
  s.add(1.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.underflow(), 1u);
  EXPECT_EQ(s.overflow(), 1u);
  EXPECT_DOUBLE_EQ(s.percentile(0), -5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 2e12);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 2e12);
}

TEST(QuantileSketch, NonFiniteRejectedNotIndexed) {
  QuantileSketch s;
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(std::numeric_limits<double>::infinity());
  s.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.nonfinite(), 3u);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
  s.add(1.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.percentile(99), 1.0);
}

TEST(QuantileSketch, MergeBitMatchesConcatenatedStream) {
  sim::Rng rng(7);
  QuantileSketch whole;
  std::vector<QuantileSketch> parts(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential(2.0);
    whole.add(x);
    parts[static_cast<std::size_t>(i % 4)].add(x);
  }
  // Merge in a deliberately scrambled order: bucket counts are integers, so
  // any merge order answers bit-identically to the single stream.
  QuantileSketch merged;
  for (std::size_t i : {2u, 0u, 3u, 1u}) merged.merge(parts[i]);
  EXPECT_EQ(merged.count(), whole.count());
  for (double p : {0.0, 10.0, 50.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), whole.percentile(p)) << "p" << p;
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedAccuracy) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RunningStats, SerdeGoldensAndRoundTrip) {
  // Golden wire strings (%.17g doubles, non-finite as quoted tokens): the
  // fabric's cross-process payloads depend on this exact format.
  RunningStats empty;
  EXPECT_EQ(empty.serialize(),
            "{\"count\":0,\"mean\":0,\"m2\":0,\"sum\":0,"
            "\"min\":\"inf\",\"max\":\"-inf\"}");
  RunningStats two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_EQ(two.serialize(),
            "{\"count\":2,\"mean\":1.5,\"m2\":0.5,\"sum\":3,"
            "\"min\":1,\"max\":2}");

  // Round trip is a fixed point even for awkward doubles...
  sim::Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 257; ++i) s.add(rng.exponential(1.0 / 3.0));
  const std::string wire = s.serialize();
  const RunningStats back = RunningStats::deserialize(wire);
  EXPECT_EQ(back.serialize(), wire);
  // ...and the restored accumulator is bit-identical in behaviour.
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.mean(), s.mean());
  EXPECT_DOUBLE_EQ(back.variance(), s.variance());
  EXPECT_DOUBLE_EQ(back.min(), s.min());
  EXPECT_DOUBLE_EQ(back.max(), s.max());
  EXPECT_THROW((void)RunningStats::deserialize("{\"count\":x}"),
               std::invalid_argument);
}

TEST(QuantileSketch, SerdeGoldensAndRoundTrip) {
  QuantileSketch empty;
  EXPECT_EQ(empty.serialize(),
            "{\"alpha\":0.01,\"count\":0,\"underflow\":0,\"overflow\":0,"
            "\"nonfinite\":0,\"min\":\"inf\",\"max\":\"-inf\",\"buckets\":[]}");
  QuantileSketch mixed;
  mixed.add(0.0);  // zero bucket
  mixed.add(1.0);
  mixed.add(-5.0);   // underflow
  mixed.add(2e12);   // overflow (above kMaxTrackable)
  mixed.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(mixed.serialize(),
            "{\"alpha\":0.01,\"count\":4,\"underflow\":1,\"overflow\":1,"
            "\"nonfinite\":1,\"min\":-5,\"max\":2000000000000,"
            "\"buckets\":[[0,1],[1038,1]]}");

  const QuantileSketch back = QuantileSketch::deserialize(mixed.serialize());
  EXPECT_EQ(back.serialize(), mixed.serialize());
  for (double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(back.percentile(p), mixed.percentile(p)) << "p" << p;
  }
  EXPECT_THROW((void)QuantileSketch::deserialize("{\"alpha\":0.01}"),
               std::invalid_argument);
}

TEST(QuantileSketch, PartitionMergeInvariance) {
  // The fabric's merge invariant as a property test: for ANY partition of a
  // sample stream into shards — contiguous ranges like job leases, shipped
  // through serialize/deserialize like worker payloads, merged in any order
  // — the pooled sketch answers every percentile bit-identically to the
  // sketch that saw the whole stream.
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    sim::Rng rng(100 + trial);
    const int n = 4000;
    std::vector<double> samples;
    QuantileSketch whole;
    for (int i = 0; i < n; ++i) {
      // A tail-heavy mix with zeros and negatives, like real waiting times
      // plus sentinel values.
      double x = rng.exponential(0.5);
      if (i % 97 == 0) x = 0.0;
      if (i % 131 == 0) x = -x;
      samples.push_back(x);
      whole.add(x);
    }

    // Random contiguous partition into 1..13 shards.
    const auto shards = static_cast<std::size_t>(rng.uniform_int(1, 13));
    std::vector<std::size_t> cuts = {0, samples.size()};
    for (std::size_t s = 1; s < shards; ++s) {
      cuts.push_back(static_cast<std::size_t>(rng.uniform_int(0, n - 1)));
    }
    std::sort(cuts.begin(), cuts.end());

    std::vector<std::string> wires;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      QuantileSketch shard;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) {
        shard.add(samples[i]);
      }
      wires.push_back(shard.serialize());
    }
    // Merge the deserialized shards back-to-front — order must not matter.
    QuantileSketch merged;
    for (auto it = wires.rbegin(); it != wires.rend(); ++it) {
      merged.merge(QuantileSketch::deserialize(*it));
    }

    EXPECT_EQ(merged.count(), whole.count()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(merged.min(), whole.min()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(merged.max(), whole.max()) << "trial " << trial;
    for (double p : {0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0, 99.9, 100.0}) {
      EXPECT_DOUBLE_EQ(merged.percentile(p), whole.percentile(p))
          << "trial " << trial << " p" << p;
    }
  }
}

TEST(StudentT, GoldenCriticalValues) {
  EXPECT_NEAR(student_t95(1), 12.706, 1e-9);
  EXPECT_NEAR(student_t95(4), 2.776, 1e-9);
  EXPECT_NEAR(student_t95(30), 2.042, 1e-9);
  EXPECT_NEAR(student_t95(40), 2.021, 1e-3);
  EXPECT_NEAR(student_t95(1000), 1.962, 5e-3);
  EXPECT_THROW((void)student_t95(0), std::invalid_argument);
  for (std::uint64_t df = 1; df < 200; ++df) {
    EXPECT_GE(student_t95(df), student_t95(df + 1)) << "df " << df;
    EXPECT_GT(student_t95(df + 1), 1.959) << "df " << df;
  }
}

TEST(StudentT, MeanCi95MatchesHandComputation) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const Estimate e = mean_ci95(s);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  // t_{0.975,4} * s / sqrt(n) = 2.776 * 1.58114 / 2.23607
  EXPECT_NEAR(e.ci95_half, 1.9629, 1e-3);
  EXPECT_NEAR(e.lo(), 3.0 - 1.9629, 1e-3);
  EXPECT_NEAR(e.hi(), 3.0 + 1.9629, 1e-3);
}

TEST(StudentT, SingleObservationHasNoInterval) {
  RunningStats s;
  s.add(3.0);
  const Estimate e = mean_ci95(s);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_TRUE(std::isnan(e.ci95_half));
}

TEST(UsageTracker, ExactIntegration) {
  UsageTracker u(4);
  ResourceSet a(4, {0, 1});
  ResourceSet b(4, {2});
  u.on_acquire(100, a);
  u.on_release(300, a);  // 2 resources x 200 = 400
  u.on_acquire(200, b);
  u.on_release(250, b);  // 1 x 50 = 50
  EXPECT_DOUBLE_EQ(u.busy_integral(1000), 450.0);
  EXPECT_DOUBLE_EQ(u.use_rate(1000), 450.0 / (1000.0 * 4.0));
}

TEST(UsageTracker, InFlightIntervalCountsUpToNow) {
  UsageTracker u(2);
  ResourceSet a(2, {0});
  u.on_acquire(10, a);
  EXPECT_DOUBLE_EQ(u.busy_integral(110), 100.0);
  EXPECT_DOUBLE_EQ(u.use_rate(110), 100.0 / (110.0 * 2.0));
}

TEST(UsageTracker, ResetCutsWindowButKeepsInFlight) {
  UsageTracker u(1);
  ResourceSet a(1, {0});
  u.on_acquire(0, a);
  u.reset(100);  // warm-up cut while resource busy
  u.on_release(150, a);
  // Only [100, 150] counts, window starts at 100.
  EXPECT_DOUBLE_EQ(u.busy_integral(200), 50.0);
  EXPECT_DOUBLE_EQ(u.use_rate(200), 50.0 / 100.0);
}

TEST(Collector, WaitingTimesAndSizeBuckets) {
  Collector c(/*num_resources=*/10, /*size_buckets=*/2);
  c.set_max_size(4);
  ResourceSet small(10, {0});
  ResourceSet large(10, {1, 2, 3});

  c.on_issue(0, /*site=*/0, 1, small);
  c.on_grant(sim::from_ms(2), 0, 1, small);   // wait 2 ms, size 1 -> bucket 0
  c.on_release(sim::from_ms(3), 0, 1, small);

  c.on_issue(0, /*site=*/1, 1, large);
  c.on_grant(sim::from_ms(10), 1, 1, large);  // wait 10 ms, size 3 -> bucket 1
  c.on_release(sim::from_ms(12), 1, 1, large);

  EXPECT_EQ(c.completed(), 2u);
  EXPECT_DOUBLE_EQ(c.waiting().mean(), 6.0);
  EXPECT_EQ(c.waiting_by_size()[0].count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting_by_size()[0].mean(), 2.0);
  EXPECT_EQ(c.waiting_by_size()[1].count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting_by_size()[1].mean(), 10.0);
}

TEST(Collector, ResetExcludesEarlierRequests) {
  Collector c(4, 1);
  c.set_max_size(4);
  ResourceSet rs(4, {0});
  c.on_issue(0, 0, 1, rs);
  c.reset(sim::from_ms(1));  // cut after issue, before grant
  c.on_grant(sim::from_ms(5), 0, 1, rs);
  c.on_release(sim::from_ms(6), 0, 1, rs);
  EXPECT_EQ(c.waiting().count(), 0u)
      << "requests issued before the cut must not enter waiting stats";
  // A request fully inside the window counts.
  c.on_issue(sim::from_ms(7), 0, 2, rs);
  c.on_grant(sim::from_ms(9), 0, 2, rs);
  c.on_release(sim::from_ms(10), 0, 2, rs);
  EXPECT_EQ(c.waiting().count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting().mean(), 2.0);
}

TEST(Collector, RecordsKeptOnlyWhenEnabled) {
  Collector c(4, 1);
  c.set_max_size(4);
  ResourceSet rs(4, {0});
  c.on_issue(0, 0, 1, rs);
  c.on_grant(1, 0, 1, rs);
  c.on_release(2, 0, 1, rs);
  EXPECT_TRUE(c.records().empty());
  c.set_keep_records(true);
  c.on_issue(3, 0, 2, rs);
  c.on_grant(4, 0, 2, rs);
  c.on_release(5, 0, 2, rs);
  ASSERT_EQ(c.records().size(), 1u);
  EXPECT_EQ(c.records()[0].seq, 2);
  EXPECT_EQ(c.records()[0].granted, 4);
}

}  // namespace
}  // namespace mra::metrics
