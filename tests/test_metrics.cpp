// Metrics: streaming stats, histogram, exact use-rate integration, collector.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/collector.hpp"
#include "metrics/stats.hpp"
#include "metrics/usage.hpp"
#include "sim/random.hpp"

namespace mra::metrics {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  sim::Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-10, 10);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.percentile(50), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(99), 100.0, 10.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(UsageTracker, ExactIntegration) {
  UsageTracker u(4);
  ResourceSet a(4, {0, 1});
  ResourceSet b(4, {2});
  u.on_acquire(100, a);
  u.on_release(300, a);  // 2 resources x 200 = 400
  u.on_acquire(200, b);
  u.on_release(250, b);  // 1 x 50 = 50
  EXPECT_DOUBLE_EQ(u.busy_integral(1000), 450.0);
  EXPECT_DOUBLE_EQ(u.use_rate(1000), 450.0 / (1000.0 * 4.0));
}

TEST(UsageTracker, InFlightIntervalCountsUpToNow) {
  UsageTracker u(2);
  ResourceSet a(2, {0});
  u.on_acquire(10, a);
  EXPECT_DOUBLE_EQ(u.busy_integral(110), 100.0);
  EXPECT_DOUBLE_EQ(u.use_rate(110), 100.0 / (110.0 * 2.0));
}

TEST(UsageTracker, ResetCutsWindowButKeepsInFlight) {
  UsageTracker u(1);
  ResourceSet a(1, {0});
  u.on_acquire(0, a);
  u.reset(100);  // warm-up cut while resource busy
  u.on_release(150, a);
  // Only [100, 150] counts, window starts at 100.
  EXPECT_DOUBLE_EQ(u.busy_integral(200), 50.0);
  EXPECT_DOUBLE_EQ(u.use_rate(200), 50.0 / 100.0);
}

TEST(Collector, WaitingTimesAndSizeBuckets) {
  Collector c(/*num_resources=*/10, /*size_buckets=*/2);
  c.set_max_size(4);
  ResourceSet small(10, {0});
  ResourceSet large(10, {1, 2, 3});

  c.on_issue(0, /*site=*/0, 1, small);
  c.on_grant(sim::from_ms(2), 0, 1, small);   // wait 2 ms, size 1 -> bucket 0
  c.on_release(sim::from_ms(3), 0, 1, small);

  c.on_issue(0, /*site=*/1, 1, large);
  c.on_grant(sim::from_ms(10), 1, 1, large);  // wait 10 ms, size 3 -> bucket 1
  c.on_release(sim::from_ms(12), 1, 1, large);

  EXPECT_EQ(c.completed(), 2u);
  EXPECT_DOUBLE_EQ(c.waiting().mean(), 6.0);
  EXPECT_EQ(c.waiting_by_size()[0].count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting_by_size()[0].mean(), 2.0);
  EXPECT_EQ(c.waiting_by_size()[1].count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting_by_size()[1].mean(), 10.0);
}

TEST(Collector, ResetExcludesEarlierRequests) {
  Collector c(4, 1);
  c.set_max_size(4);
  ResourceSet rs(4, {0});
  c.on_issue(0, 0, 1, rs);
  c.reset(sim::from_ms(1));  // cut after issue, before grant
  c.on_grant(sim::from_ms(5), 0, 1, rs);
  c.on_release(sim::from_ms(6), 0, 1, rs);
  EXPECT_EQ(c.waiting().count(), 0u)
      << "requests issued before the cut must not enter waiting stats";
  // A request fully inside the window counts.
  c.on_issue(sim::from_ms(7), 0, 2, rs);
  c.on_grant(sim::from_ms(9), 0, 2, rs);
  c.on_release(sim::from_ms(10), 0, 2, rs);
  EXPECT_EQ(c.waiting().count(), 1u);
  EXPECT_DOUBLE_EQ(c.waiting().mean(), 2.0);
}

TEST(Collector, RecordsKeptOnlyWhenEnabled) {
  Collector c(4, 1);
  c.set_max_size(4);
  ResourceSet rs(4, {0});
  c.on_issue(0, 0, 1, rs);
  c.on_grant(1, 0, 1, rs);
  c.on_release(2, 0, 1, rs);
  EXPECT_TRUE(c.records().empty());
  c.set_keep_records(true);
  c.on_issue(3, 0, 2, rs);
  c.on_grant(4, 0, 2, rs);
  c.on_release(5, 0, 2, rs);
  ASSERT_EQ(c.records().size(), 1u);
  EXPECT_EQ(c.records()[0].seq, 2);
  EXPECT_EQ(c.records()[0].granted, 4);
}

}  // namespace
}  // namespace mra::metrics
