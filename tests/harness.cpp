#include "harness.hpp"

#include <functional>

namespace mra::test {

StressOutcome run_stress(const StressOptions& options) {
  algo::SystemConfig sys;
  sys.algorithm = options.algorithm;
  sys.num_sites = options.num_sites;
  sys.num_resources = options.num_resources;
  sys.seed = options.seed;
  auto system = algo::AllocationSystem::create(sys);
  system->start();
  auto& sim = system->simulator();
  sim.set_event_budget(50'000'000ULL);

  sim::Rng rng(options.seed * 7919 + 13);
  workload::WorkloadConfig wl;
  wl.num_resources = options.num_resources;
  wl.phi = options.phi;
  wl.rho = options.rho;
  workload::RequestGenerator gen(wl, rng.split());

  StressOutcome outcome;
  ResourceSet busy(options.num_resources);        // safety checker
  std::vector<int> remaining(static_cast<std::size_t>(options.num_sites),
                             options.requests_per_site);
  std::uint64_t in_cs = 0;

  std::function<void(SiteId)> issue = [&](SiteId s) {
    if (remaining[static_cast<std::size_t>(s)]-- <= 0) return;
    const int size = gen.draw_size();
    system->node(s).request(gen.draw_resources(size));
  };

  for (SiteId s = 0; s < options.num_sites; ++s) {
    auto& node = system->node(s);
    node.set_grant_callback([&, s](RequestId) {
      // SAFETY: the granted set must be disjoint from everything in use.
      const ResourceSet& rs = system->node(s).current_request();
      EXPECT_FALSE(rs.intersects(busy))
          << "mutual exclusion violated at t=" << sim.now() << " site " << s
          << " set " << rs.to_string() << " busy " << busy.to_string();
      busy |= rs;
      ++in_cs;
      outcome.max_concurrent_cs = std::max(outcome.max_concurrent_cs, in_cs);
      sim.schedule_in(options.cs_time, [&, s]() {
        const ResourceSet held = system->node(s).current_request();
        busy -= held;
        --in_cs;
        ++outcome.completed;
        system->node(s).release();
        sim.schedule_in(
            static_cast<sim::SimDuration>(rng.uniform_int(
                0, static_cast<std::int64_t>(options.max_think))),
            [&, s]() { issue(s); });
      });
    });
    sim.schedule_in(static_cast<sim::SimDuration>(
                        rng.uniform_int(0, static_cast<std::int64_t>(
                                               options.max_think))),
                    [&, s]() { issue(s); });
  }

  sim.run();

  outcome.quiescent = sim.idle();
  outcome.all_idle = true;
  for (SiteId s = 0; s < options.num_sites; ++s) {
    if (system->node(s).state() != ProcessState::kIdle) {
      outcome.all_idle = false;
    }
  }
  outcome.messages = system->network().total_messages();
  outcome.end_time = sim.now();
  return outcome;
}

}  // namespace mra::test
