// Property-based protocol tests: every algorithm must satisfy safety
// (mutual exclusion of conflicting requests), liveness (all requests served,
// clean quiescence) and the concurrency property (non-conflicting requests
// overlap) across a grid of system sizes, request-size regimes and seeds.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace mra::test {
namespace {

struct GridParam {
  algo::Algorithm algorithm;
  int num_sites;
  int num_resources;
  int phi;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<GridParam>& info) {
  std::string name = algo::to_string(info.param.algorithm);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_n" + std::to_string(info.param.num_sites) + "_m" +
         std::to_string(info.param.num_resources) + "_phi" +
         std::to_string(info.param.phi) + "_s" +
         std::to_string(info.param.seed);
}

class ProtocolGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ProtocolGrid, SafetyAndLiveness) {
  const GridParam& p = GetParam();
  StressOptions opt;
  opt.algorithm = p.algorithm;
  opt.num_sites = p.num_sites;
  opt.num_resources = p.num_resources;
  opt.phi = p.phi;
  opt.seed = p.seed;
  opt.requests_per_site = 20;

  const StressOutcome out = run_stress(opt);

  // Liveness: the fixed request budget is fully served, the event queue
  // drains, and every site returns to Idle.
  EXPECT_EQ(out.completed,
            static_cast<std::uint64_t>(p.num_sites) * 20u);
  EXPECT_TRUE(out.quiescent);
  EXPECT_TRUE(out.all_idle);
}

std::vector<GridParam> make_grid() {
  std::vector<GridParam> grid;
  const std::vector<algo::Algorithm> algorithms = {
      algo::Algorithm::kIncremental,   algo::Algorithm::kBouabdallahLaforest,
      algo::Algorithm::kLassWithoutLoan, algo::Algorithm::kLassWithLoan,
      algo::Algorithm::kCentralSharedMemory, algo::Algorithm::kMaddi};
  struct Shape {
    int n, m, phi;
  };
  const std::vector<Shape> shapes = {
      {2, 1, 1},    // minimal: one resource, pure mutual exclusion
      {3, 2, 2},    // the paper's Figure 3 topology
      {8, 12, 4},   // small requests over a roomy universe
      {8, 6, 6},    // requests may span the whole universe (max conflicts)
      {16, 10, 3},  // more sites than resources
  };
  for (auto alg : algorithms) {
    for (const auto& s : shapes) {
      for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
        grid.push_back(GridParam{alg, s.n, s.m, s.phi, seed});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolGrid, ::testing::ValuesIn(make_grid()),
                         param_name);

// High-contention soak: every site wants large overlapping sets; this is the
// regime where deadlock bugs surface (wait-for cycles across queues).
class ContentionSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionSoak, AllAlgorithmsSurviveMaxConflict) {
  for (auto alg : {algo::Algorithm::kIncremental,
                   algo::Algorithm::kBouabdallahLaforest,
                   algo::Algorithm::kLassWithoutLoan,
                   algo::Algorithm::kLassWithLoan, algo::Algorithm::kMaddi}) {
    StressOptions opt;
    opt.algorithm = alg;
    opt.num_sites = 6;
    opt.num_resources = 4;
    opt.phi = 4;  // requests up to the full universe
    opt.seed = GetParam();
    opt.requests_per_site = 30;
    opt.max_think = 0;  // re-request immediately: sustained saturation
    const StressOutcome out = run_stress(opt);
    EXPECT_EQ(out.completed, 180u) << algo::to_string(alg);
    EXPECT_TRUE(out.all_idle) << algo::to_string(alg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionSoak,
                         ::testing::Values(3, 17, 99, 2024, 31337));

// The concurrency property (§1): two non-conflicting requests must be able
// to run simultaneously. With many resources and tiny requests, overlap is
// statistically certain unless an algorithm serializes needlessly.
TEST(ConcurrencyProperty, NonConflictingRequestsOverlap) {
  for (auto alg :
       {algo::Algorithm::kIncremental, algo::Algorithm::kLassWithoutLoan,
        algo::Algorithm::kLassWithLoan, algo::Algorithm::kCentralSharedMemory,
        algo::Algorithm::kMaddi}) {
    StressOptions opt;
    opt.algorithm = alg;
    opt.num_sites = 12;
    opt.num_resources = 48;
    opt.phi = 2;
    opt.requests_per_site = 30;
    opt.max_think = sim::from_ms(0.5);
    opt.cs_time = sim::from_ms(5.0);
    const StressOutcome out = run_stress(opt);
    EXPECT_GT(out.max_concurrent_cs, 1u)
        << algo::to_string(alg) << " serialized non-conflicting requests";
  }
}

// The global-lock variant of BL is expected to overlap *acquisitions* never,
// but critical sections still overlap once the control token moved on.
TEST(ConcurrencyProperty, BouabdallahLaforestOverlapsCs) {
  StressOptions opt;
  opt.algorithm = algo::Algorithm::kBouabdallahLaforest;
  opt.num_sites = 12;
  opt.num_resources = 48;
  opt.phi = 2;
  opt.requests_per_site = 30;
  opt.cs_time = sim::from_ms(10.0);
  opt.max_think = sim::from_ms(0.5);
  const StressOutcome out = run_stress(opt);
  EXPECT_GT(out.max_concurrent_cs, 1u);
}

// Determinism: identical options give bit-identical outcomes; different
// seeds genuinely change the schedule.
TEST(Determinism, SameSeedSameRun) {
  StressOptions opt;
  opt.algorithm = algo::Algorithm::kLassWithLoan;
  opt.seed = 77;
  const StressOutcome a = run_stress(opt);
  const StressOutcome b = run_stress(opt);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.max_concurrent_cs, b.max_concurrent_cs);

  opt.seed = 78;
  const StressOutcome c = run_stress(opt);
  EXPECT_NE(a.end_time, c.end_time);
}

}  // namespace
}  // namespace mra::test
