// The schedule explorer: DPOR enumeration (exact golden schedule counts,
// canonical-first ordering, forced-prefix replay), sweep thread-invariance,
// and — in MRA_CHECK_MUTANTS builds — a seeded bug found in every run mode
// with a self-contained v2 repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/dpor.hpp"
#include "check/explore.hpp"
#include "check/mutant.hpp"
#include "scenario/trace.hpp"

namespace mra::check {
namespace {

bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.oracle == oracle; });
}

// ---------------------------------------------------------------------------
// DporScheduler unit semantics
// ---------------------------------------------------------------------------

TEST(DporScheduler, FirstScheduleIsCanonicalAndEnumerationIsExact) {
  DporScheduler s{DporConfig{}};
  s.begin_run();
  // A batch of three same-instant events: two at site 0, one at site 1.
  const std::vector<int> tags = {0, 0, 1};
  std::vector<std::size_t> order = {0, 1, 2};
  s.on_round(0, tags, order);
  // Schedule #1 is always the canonical (time, seq) order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(s.stats().choice_points, 1u);
  // The same-tag pair has 2 orderings; the cross-tag interleaving commutes
  // and is never enumerated: 3! = 6 total, 2 kept, 4 pruned.
  EXPECT_EQ(s.stats().orderings_pruned, 4u);

  ASSERT_TRUE(s.advance());
  s.begin_run();
  order = {0, 1, 2};
  s.on_round(0, tags, order);
  // Schedule #2 swaps the same-tag pair; the other event stays put.
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0, 2}));

  EXPECT_FALSE(s.advance());
  EXPECT_TRUE(s.stats().complete);
  EXPECT_FALSE(s.stats().truncated);
  EXPECT_EQ(s.stats().schedules_executed, 2u);
}

TEST(DporScheduler, NoCommuteTagPinsEventsToCanonicalOrder) {
  DporScheduler s{DporConfig{}};
  s.begin_run();
  const std::vector<int> tags = {sim::Simulator::kNoCommuteTag,
                                 sim::Simulator::kNoCommuteTag};
  std::vector<std::size_t> order = {0, 1};
  s.on_round(0, tags, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.stats().choice_points, 0u);
  EXPECT_FALSE(s.advance());  // nothing to explore
  EXPECT_TRUE(s.stats().complete);
}

TEST(DporScheduler, ForcedPrefixReplaysTheRecordedSchedule) {
  DporConfig cfg;
  cfg.forced_prefix = {1};
  cfg.max_schedules = 1;
  DporScheduler s(cfg);
  s.begin_run();
  const std::vector<int> tags = {2, 2};
  std::vector<std::size_t> order = {0, 1};
  s.on_round(5, tags, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));  // choice 1 = swapped
  EXPECT_EQ(s.choices(), (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(s.advance());  // budget of one schedule spent
}

TEST(DporDriver, ExploreSchedulesStopsWhenTheBodyAsks) {
  int runs = 0;
  const DporStats stats =
      explore_schedules(DporConfig{}, [&](DporScheduler&) {
        ++runs;
        return true;  // "violation found"
      });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(stats.schedules_executed, 1u);
  EXPECT_FALSE(stats.complete);
}

// ---------------------------------------------------------------------------
// Golden exhaustive enumeration on the tiny configurations. These counts are
// the explorer's contract: a change in the simulator's instant batching, the
// commute tagging, or the reduction shows up here as a count shift.
// ---------------------------------------------------------------------------

TEST(ExhaustiveMutex, GoldenTinyNtConfigEnumeratesExactScheduleCount) {
  MutexExploreConfig cfg;
  cfg.protocols = {MutexProtocol::kNaimiTrehel};
  cfg.num_sites = 3;
  cfg.requests_per_site = 2;
  const ExploreReport a = explore_mutex_exhaustive(cfg, DporConfig{});
  EXPECT_EQ(a.runs, 6u);
  EXPECT_EQ(a.schedules_executed, 6u);
  EXPECT_EQ(a.choice_points, 1u);
  EXPECT_EQ(a.orderings_pruned, 0u);
  EXPECT_TRUE(a.exhaustive_complete);
  EXPECT_FALSE(a.exhaustive_truncated);
  EXPECT_TRUE(a.found.empty());
  EXPECT_EQ(a.violating_runs, 0u);

  // Pure function of (config, dpor): bit-identical coverage on a re-run.
  const ExploreReport b = explore_mutex_exhaustive(cfg, DporConfig{});
  EXPECT_EQ(b.runs, a.runs);
  EXPECT_EQ(b.choice_points, a.choice_points);
  EXPECT_EQ(b.orderings_pruned, a.orderings_pruned);
}

TEST(ExhaustiveCmRing, GoldenRingEnumeratesCompletelyAndStaysClean) {
  CmRingExploreConfig cfg;
  cfg.num_sites = 4;
  cfg.requests_per_site = 2;
  const ExploreReport r = explore_cm_ring_exhaustive(cfg, DporConfig{});
  EXPECT_EQ(r.runs, 4u);
  EXPECT_EQ(r.choice_points, 3u);
  EXPECT_EQ(r.orderings_pruned, 66u);
  EXPECT_TRUE(r.exhaustive_complete);
  EXPECT_TRUE(r.found.empty());
}

TEST(ExhaustiveScenario, TinySpecCompletesDeterministically) {
  const scenario::ScenarioSpec spec = tiny_exhaustive_spec();
  const ExploreReport a = explore_scenario_exhaustive(
      spec, algo::Algorithm::kLassWithLoan, MonitorConfig{}, DporConfig{});
  EXPECT_EQ(a.schedules_executed, 16u);
  EXPECT_TRUE(a.exhaustive_complete);
  EXPECT_TRUE(a.found.empty());

  const ExploreReport b = explore_scenario_exhaustive(
      spec, algo::Algorithm::kLassWithLoan, MonitorConfig{}, DporConfig{});
  EXPECT_EQ(b.schedules_executed, a.schedules_executed);
  EXPECT_EQ(b.choice_points, a.choice_points);
  EXPECT_EQ(b.orderings_pruned, a.orderings_pruned);
}

TEST(ExhaustiveMutex, AllThreeProtocolsCleanUnderEnumeration) {
  for (MutexProtocol p : all_mutex_protocols()) {
    MutexExploreConfig cfg;
    cfg.protocols = {p};
    cfg.num_sites = 3;
    cfg.requests_per_site = 2;
    DporConfig dpor;
    dpor.max_schedules = 500;  // bound RA/SK's larger schedule spaces
    const ExploreReport r = explore_mutex_exhaustive(cfg, dpor);
    EXPECT_TRUE(r.found.empty()) << to_string(p);
    EXPECT_GE(r.runs, 1u) << to_string(p);
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the sweep is sharded in fixed waves scanned in
// case order, so the report is a pure function of the config.
// ---------------------------------------------------------------------------

TEST(ExplorerThreads, MutexFuzzReportIndependentOfThreadCount) {
  MutexExploreConfig cfg;
  cfg.protocols = all_mutex_protocols();
  cfg.num_sites = 5;
  cfg.requests_per_site = 8;
  cfg.seeds_per_case = 4;  // 12 cases: spans two waves
  cfg.threads = 1;
  const ExploreReport a = explore_mutex(cfg);
  cfg.threads = 4;
  const ExploreReport b = explore_mutex(cfg);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.violating_runs, b.violating_runs);
  EXPECT_EQ(a.found.size(), b.found.size());
}

TEST(ExplorerThreads, ScenarioFuzzReportIndependentOfThreadCount) {
  ExploreConfig cfg;
  cfg.scenarios = {tiny_exhaustive_spec()};
  cfg.algorithms = {algo::Algorithm::kLassWithLoan,
                    algo::Algorithm::kIncremental};
  cfg.seeds_per_case = 3;
  cfg.threads = 1;
  const ExploreReport a = explore(cfg);
  cfg.threads = 4;
  const ExploreReport b = explore(cfg);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.violating_runs, b.violating_runs);
  EXPECT_EQ(a.found.size(), b.found.size());
}

// ---------------------------------------------------------------------------
// A seeded bug is found in every run mode, with a self-contained repro.
// ---------------------------------------------------------------------------

class ExploreMutantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mutants_compiled_in()) {
      GTEST_SKIP() << "build without MRA_CHECK_MUTANTS";
    }
  }
  void TearDown() override { set_active_mutant(Mutant::kNone); }
};

TEST_F(ExploreMutantTest, NtDropTokenFoundInEveryModeWithSelfContainedRepro) {
  set_active_mutant(Mutant::kMutexNtDropToken);
  MutexExploreConfig cfg;
  cfg.protocols = {MutexProtocol::kNaimiTrehel};
  cfg.num_sites = 3;
  cfg.requests_per_site = 2;
  cfg.seeds_per_case = 4;
  cfg.trace_dir = ::testing::TempDir();

  // Fuzz mode.
  const ExploreReport fuzz = explore_mutex(cfg);
  ASSERT_FALSE(fuzz.found.empty()) << "fuzz mode missed the dropped token";
  EXPECT_TRUE(has_oracle(fuzz.found.front().violations, "deadlock"));

  // Exhaustive mode: the canonical schedule already deadlocks, so the bug
  // is found in run #1 — deterministically.
  const ExploreReport ex = explore_mutex_exhaustive(cfg, DporConfig{});
  ASSERT_FALSE(ex.found.empty()) << "exhaustive mode missed it";
  EXPECT_EQ(ex.runs, 1u);
  const FoundViolation& f = ex.found.front();
  EXPECT_TRUE(has_oracle(f.violations, "deadlock"));

  // The saved trace is a *self-contained* v2 repro: algorithm and mutant in
  // the header, and the replay activates the mutant itself — deactivate the
  // global one to prove it.
  ASSERT_FALSE(f.trace_path.empty());
  const scenario::RequestTrace repro = scenario::load_trace(f.trace_path);
  EXPECT_EQ(repro.algorithm, "nt");
  EXPECT_EQ(repro.mutant, "mutex-nt-drop-token");
  set_active_mutant(Mutant::kNone);
  EXPECT_TRUE(has_oracle(check_replay(repro), "deadlock"))
      << "v2 repro trace alone did not re-trigger the deadlock";
}

TEST_F(ExploreMutantTest, FuzzThreadInvarianceHoldsOnViolatingSweeps) {
  set_active_mutant(Mutant::kMutexNtDropToken);
  MutexExploreConfig cfg;
  cfg.protocols = {MutexProtocol::kNaimiTrehel};
  cfg.num_sites = 3;
  cfg.requests_per_site = 2;
  cfg.seeds_per_case = 4;
  cfg.stop_on_first = true;
  cfg.threads = 1;
  const ExploreReport a = explore_mutex(cfg);
  cfg.threads = 4;
  const ExploreReport b = explore_mutex(cfg);
  ASSERT_FALSE(a.found.empty());
  ASSERT_FALSE(b.found.empty());
  // Same first violation: seed, drawn bound, oracle — regardless of which
  // worker thread happened to execute the violating run.
  EXPECT_EQ(a.found.front().seed, b.found.front().seed);
  EXPECT_EQ(a.found.front().delay_bound, b.found.front().delay_bound);
  EXPECT_EQ(a.runs, b.runs);
}

}  // namespace
}  // namespace mra::check
