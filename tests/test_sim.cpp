// Unit tests for the discrete-event engine and RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mra::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&]() { order.push_back(3); });
  q.schedule(10, [&]() { order.push_back(1); });
  q.schedule(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(10, [&]() { ++fired; });
  q.schedule(20, [&]() { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1, []() {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(5, []() {});
  q.schedule(9, []() {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, EmptyQueueReportsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

// The old implementation remembered every cancelled id in a tombstone set
// that grew with total_scheduled(); the slab implementation recycles slots,
// so a million schedule/cancel cycles must not grow memory past the peak
// number of outstanding events.
TEST(EventQueue, CancelBoundedMemoryOverMillionEvents) {
  EventQueue q;
  std::vector<EventId> pending;
  for (int wave = 0; wave < 1000; ++wave) {
    for (int i = 0; i < 1000; ++i) {
      pending.push_back(
          q.schedule(static_cast<SimTime>(wave * 1000 + i), []() {}));
    }
    for (const EventId id : pending) EXPECT_TRUE(q.cancel(id));
    pending.clear();
  }
  EXPECT_EQ(q.total_scheduled(), 1'000'000u);
  EXPECT_EQ(q.size(), 0u);
  // Peak outstanding was 1000; the slab may hold a compaction slack on top
  // of that, but must be nowhere near the million-event total.
  EXPECT_LT(q.capacity(), 4096u);
}

// Same seed, same interleaving of schedule/cancel/pop -> bit-identical
// Fired sequence. Guards against any address- or hash-dependent ordering
// sneaking into the queue (the trace replay tests depend on this).
TEST(EventQueue, DeterministicFiredSequenceUnderInterleavedScheduleCancel) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> fired;
    std::vector<EventId> live;
    int tag = 0;
    for (int step = 0; step < 20000; ++step) {
      const auto op = rng.uniform_int(0, 9);
      if (op < 5) {
        const auto at = static_cast<SimTime>(rng.uniform_int(0, 5000));
        const int t = tag++;
        live.push_back(q.schedule(at, [&fired, at, t]() {
          fired.emplace_back(at, t);
        }));
      } else if (op < 7 && !live.empty()) {
        const auto victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        q.cancel(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else if (!q.empty()) {
        q.pop().callback();
      }
    }
    while (!q.empty()) q.pop().callback();
    return fired;
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // Fired times must be non-decreasing only per pop runs; at minimum the
  // same-seed sequences agree element-wise, which is the contract.
}

// A slot freed by pop() is recycled by the next schedule(); the stale id of
// the fired event must not be able to cancel the new tenant.
TEST(EventQueue, GenerationTagMakesStaleIdsHarmlessAfterSlotReuse) {
  EventQueue q;
  int fired = 0;
  const EventId first = q.schedule(10, [&]() { ++fired; });
  q.pop().callback();
  EXPECT_EQ(fired, 1);
  const EventId second = q.schedule(20, [&]() { ++fired; });
  EXPECT_NE(first, second);  // same slot, different generation
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_EQ(fired, 2);

  // Cancelled slots are recycled too: cancel, reschedule, stale-cancel.
  const EventId third = q.schedule(30, [&]() { ++fired; });
  EXPECT_TRUE(q.cancel(third));
  EXPECT_FALSE(q.cancel(third));
  const EventId fourth = q.schedule(40, [&]() { ++fired; });
  EXPECT_FALSE(q.cancel(third));
  EXPECT_TRUE(q.cancel(fourth));
  EXPECT_TRUE(q.empty());
}

// Scheduling order must survive heavy cancellation churn (which triggers
// internal compaction sweeps) for events at one instant.
TEST(EventQueue, SameInstantOrderSurvivesCancelChurn) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 500; ++i) {
    q.schedule(7, [&order, i]() { order.push_back(i); });
    // Interleave far-future events, cancelled immediately, to drive the
    // dead-entry ratio over the compaction threshold repeatedly.
    victims.push_back(q.schedule(1000 + i, []() {}));
    if (victims.size() >= 10) {
      for (const EventId id : victims) EXPECT_TRUE(q.cancel(id));
      victims.clear();
    }
  }
  for (const EventId id : victims) EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ClockFollowsEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_in(100, [&]() { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilHorizonAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(50, [&]() { ++fired; });
  sim.schedule_in(500, [&]() { ++fired; });
  sim.run(/*until=*/200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);  // clock lands exactly on the horizon
  sim.run(/*until=*/1000);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(200, [&]() { ++fired; });
  sim.run(/*until=*/200);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(10, [&]() {
    order.push_back(1);
    sim.schedule_in(0, [&]() { order.push_back(2); });  // same instant, later
    sim.schedule_in(5, [&]() { order.push_back(4); });
  });
  sim.schedule_in(10, [&]() { order.push_back(3); });  // scheduled first? no:
  // scheduled earlier than the nested ones but at the same instant as #1.
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 4}));
}

// A callback may cancel an event queued for the *same* instant; the batch
// drain must honour that cancellation instead of firing a pre-popped event.
TEST(Simulator, SameInstantCancelFromCallbackPreventsFiring) {
  Simulator sim;
  std::vector<int> order;
  EventId doomed = 0;
  sim.schedule_in(10, [&]() {
    order.push_back(1);
    EXPECT_TRUE(sim.cancel(doomed));
  });
  doomed = sim.schedule_in(10, [&]() { order.push_back(2); });
  sim.schedule_in(10, [&]() { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// Chains of zero-delay events drain within one instant, in schedule order,
// without the clock moving.
TEST(Simulator, ZeroDelayChainsDrainWithinOneInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(5, [&]() {
    order.push_back(1);
    sim.schedule_in(0, [&]() {
      order.push_back(3);
      sim.schedule_in(0, [&]() { order.push_back(4); });
      EXPECT_EQ(sim.now(), 5);
    });
  });
  sim.schedule_in(5, [&]() { order.push_back(2); });
  sim.schedule_in(6, [&]() { order.push_back(5); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.now(), 6);
}

TEST(Simulator, StopEndsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1, [&]() {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(2, [&]() { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    sim.schedule_in(10, tick);
  };
  sim.schedule_in(0, tick);
  sim.run_until([&]() { return count >= 5; });
  EXPECT_EQ(count, 5);
}

TEST(Simulator, EventBudgetThrows) {
  Simulator sim;
  sim.set_event_budget(100);
  std::function<void()> loop = [&]() { sim.schedule_in(1, loop); };
  sim.schedule_in(0, loop);
  EXPECT_THROW(sim.run(), EventBudgetExceeded);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_in(10, [&]() {
    sim.schedule_in(-5, [&]() { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 10);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRangeAndHitsEnds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 50.0, 1.5);  // ~3 sigma of the sample mean
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(milliseconds(5), 5'000'000);
  EXPECT_EQ(from_ms(0.6), 600'000);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
}

}  // namespace
}  // namespace mra::sim
