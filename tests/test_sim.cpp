// Unit tests for the discrete-event engine and RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mra::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&]() { order.push_back(3); });
  q.schedule(10, [&]() { order.push_back(1); });
  q.schedule(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(10, [&]() { ++fired; });
  q.schedule(20, [&]() { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1, []() {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(5, []() {});
  q.schedule(9, []() {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, EmptyQueueReportsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(Simulator, ClockFollowsEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_in(100, [&]() { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilHorizonAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(50, [&]() { ++fired; });
  sim.schedule_in(500, [&]() { ++fired; });
  sim.run(/*until=*/200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);  // clock lands exactly on the horizon
  sim.run(/*until=*/1000);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(200, [&]() { ++fired; });
  sim.run(/*until=*/200);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(10, [&]() {
    order.push_back(1);
    sim.schedule_in(0, [&]() { order.push_back(2); });  // same instant, later
    sim.schedule_in(5, [&]() { order.push_back(4); });
  });
  sim.schedule_in(10, [&]() { order.push_back(3); });  // scheduled first? no:
  // scheduled earlier than the nested ones but at the same instant as #1.
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 4}));
}

TEST(Simulator, StopEndsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1, [&]() {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(2, [&]() { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    sim.schedule_in(10, tick);
  };
  sim.schedule_in(0, tick);
  sim.run_until([&]() { return count >= 5; });
  EXPECT_EQ(count, 5);
}

TEST(Simulator, EventBudgetThrows) {
  Simulator sim;
  sim.set_event_budget(100);
  std::function<void()> loop = [&]() { sim.schedule_in(1, loop); };
  sim.schedule_in(0, loop);
  EXPECT_THROW(sim.run(), EventBudgetExceeded);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_in(10, [&]() {
    sim.schedule_in(-5, [&]() { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 10);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRangeAndHitsEnds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 50.0, 1.5);  // ~3 sigma of the sample mean
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(milliseconds(5), 5'000'000);
  EXPECT_EQ(from_ms(0.6), 600'000);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
}

}  // namespace
}  // namespace mra::sim
